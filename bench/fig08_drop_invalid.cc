// Figure 8: average drop rate and invalid rate of PARD, Nexus, Clipper++ and
// Naive under the 12 workloads ({lv,tm,gm,da} x {wiki,tweet,azure}).
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig08_drop_invalid",
                     "Fig. 8 (drop & invalid rates, 12 workloads x 4 systems)");
  pard::bench::StdWorkloadHeader();

  std::map<std::string, double> drop_ratio_sum;
  std::map<std::string, double> invalid_ratio_sum;
  int workloads = 0;
  for (const std::string trace : {"wiki", "tweet", "azure"}) {
    pard::bench::Section("trace: " + trace);
    std::printf("%-6s", "app");
    for (const auto& sys : pard::bench::Systems()) {
      std::printf("  %22s", sys.c_str());
    }
    std::printf("\n");
    for (const std::string app : {"lv", "tm", "gm", "da"}) {
      std::printf("%-6s", app.c_str());
      double pard_drop = 0.0;
      double pard_invalid = 0.0;
      for (const auto& sys : pard::bench::Systems()) {
        const auto r = pard::RunExperiment(StdConfig(app, trace, sys));
        const double drop = r.analysis->DropRate();
        const double invalid = r.analysis->InvalidRate();
        std::printf("  drop %5.1f%% inv %5.1f%%", Pct(drop), Pct(invalid));
        if (sys == "pard") {
          pard_drop = drop;
          pard_invalid = invalid;
        } else {
          if (pard_drop > 0.0) {
            drop_ratio_sum[sys] += drop / pard_drop;
          }
          if (pard_invalid > 0.0) {
            invalid_ratio_sum[sys] += invalid / pard_invalid;
          }
        }
      }
      ++workloads;
      std::printf("\n");
    }
  }

  pard::bench::Section("summary: baseline/PARD ratios (mean over workloads)");
  for (const auto& sys : pard::bench::Systems()) {
    if (sys == "pard") {
      continue;
    }
    std::printf("%-10s drop %5.1fx   invalid %5.1fx\n", sys.c_str(),
                drop_ratio_sum[sys] / workloads, invalid_ratio_sum[sys] / workloads);
  }
  std::printf("paper: PARD reduces drop rate 1.6x-16.7x and wasted computation "
              "1.5x-61.9x vs Nexus/Clipper++; Naive is worst (up to 35x / 129x).\n");
  return 0;
}
