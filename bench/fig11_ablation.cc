// Table 1 + Figure 11: the ablation study. Every PARD design knob is
// disabled/replaced in turn (lv-tweet workload, as in §5.3):
//  (a) average drop rate and invalid rate per ablation
//  (b) percentage of drops at each module
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig11_ablation", "Table 1 + Fig. 11a/11b (ablation study, lv-tweet)");
  pard::bench::StdWorkloadHeader(pard::bench::Jobs());

  // Every ablation is an independent run on the same arrival stream; the
  // whole grid executes concurrently on the bench worker pool.
  const std::vector<std::string> names = pard::AblationPolicyNames();
  std::vector<pard::ExperimentConfig> grid;
  for (const std::string& name : names) {
    pard::ExperimentConfig cfg = StdConfig("lv", "tweet", name);
    if (name == "pard-oc") {
      cfg.params.oc_threshold = 25 * pard::kUsPerMs;  // Paper's tweet tuning.
      cfg.params.oc_alpha = 0.4;
    }
    grid.push_back(std::move(cfg));
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  pard::bench::Section("(a) drop & invalid rate  /  (b) drop placement per module");
  std::printf("%-14s %10s %12s   %s\n", "ablation", "drop", "invalid", "M1..M5 drop share");
  double pard_drop = 1.0;
  double pard_invalid = 1.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    const auto& r = results[i];
    const double drop = r.analysis->DropRate();
    const double invalid = r.analysis->InvalidRate();
    if (name == "pard") {
      pard_drop = drop;
      pard_invalid = invalid;
    }
    std::printf("%-14s %8.2f%% %10.2f%%  ", name.c_str(), Pct(drop), Pct(invalid));
    for (double s : r.analysis->PerModuleDropShare()) {
      std::printf(" %4.0f%%", Pct(s));
    }
    if (name != "pard" && pard_drop > 0.0) {
      std::printf("   (%.1fx / %.1fx vs pard)", drop / pard_drop,
                  pard_invalid > 0 ? invalid / pard_invalid : 0.0);
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper reference points (lv-tweet):\n"
      "  pard-back/sf/oc:   drop 1.1x-3.6x, invalid 2.1x-24x PARD; pard-back puts ~95%%\n"
      "                     of drops in the last module, pard-sf ~76%%\n"
      "  pard-split/wcl:    drop 2.6x/2.8x, invalid 6.7x/5.4x PARD\n"
      "  pard-lower:        invalid 3.5x PARD (mis-kept requests)\n"
      "  pard-upper:        drop 1.3x PARD (mis-dropped requests)\n"
      "  pard-fcfs/lbf/hbf: drop 1.8x/2.2x/0.5x-extra PARD; pard-instant +25%% drops\n"
      "  PARD concentrates ~87%% of drops in the first two modules.\n");
  return 0;
}
