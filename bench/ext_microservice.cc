// Microservice-workflow case study (paper §7's third domain).
//
// Multi-stage RPC workflows share the pipeline structure but not the
// batching discipline: each stage serves requests one at a time on a pool of
// replicas, and per-request service time is noisy. This bench models such a
// workflow as a 4-stage pipeline with near-singleton batches (forced by a
// tight per-stage budget), many replicas, and 25% execution jitter, then compares
// dropping policies — proactive dropping generalizes, as §7 argues, with the
// DAGOR-style overload control (pard-oc) as the domain's incumbent.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pipeline/apps.h"

using pard::bench::Pct;

namespace {

// Four light stages; the 80 ms SLO forces batch size 1 everywhere
// (2*d(2) exceeds every stage share), i.e. plain RPC servers.
pard::PipelineSpec MicroserviceWorkflow() {
  std::vector<pard::ModuleSpec> modules;
  const char* models[] = {"icon_recognition", "health_value_recognition",
                          "alive_player_recognition", "kill_count_detection"};
  for (int i = 0; i < 4; ++i) {
    pard::ModuleSpec m;
    m.id = i;
    m.model = models[i];
    if (i > 0) {
      m.pres.push_back(i - 1);
    }
    if (i < 3) {
      m.subs.push_back(i + 1);
    }
    modules.push_back(std::move(m));
  }
  return pard::PipelineSpec("rpc", pard::MsToUs(80), std::move(modules));
}

}  // namespace

int main() {
  pard::bench::Title("ext_microservice",
                     "§7 microservice-workflow case study (RPC stages, no batching)");

  const pard::PipelineSpec spec = MicroserviceWorkflow();
  std::printf("4-stage RPC workflow, SLO %.0f ms, near-singleton batches, 25%% exec jitter\n\n",
              pard::UsToMs(spec.slo()));

  std::printf("%-12s %12s %12s %14s\n", "policy", "norm.goodput", "drop rate", "invalid rate");
  for (const std::string policy : {"pard", "pard-oc", "nexus", "clipper++", "naive"}) {
    pard::ExperimentConfig c;
    c.custom_spec = spec;
    c.trace = "azure";
    c.policy = policy;
    c.duration_s = 120.0;
    c.base_rate = 400.0;
    c.seed = 7;
    c.provision_factor = 1.25;
    c.runtime.enable_scaling = true;
    c.runtime.scaling_epoch = 5 * pard::kUsPerSec;
    c.runtime.exec_jitter = 0.25;
    if (policy == "pard-oc") {
      c.params.oc_threshold = 10 * pard::kUsPerMs;  // Scaled to the 80 ms SLO.
    }
    const auto r = pard::RunExperiment(c);
    std::printf("%-12s %12.3f %11.2f%% %13.2f%%\n", policy.c_str(),
                r.analysis->NormalizedGoodput(), Pct(r.analysis->DropRate()),
                Pct(r.analysis->InvalidRate()));
  }
  std::printf("\nexpected shape: without batch wait the estimation problem is easier, but\n");
  std::printf("execution jitter plus queueing still reward pipeline-wide proactive\n");
  std::printf("estimation over stage-local reactive checks and coarse admission control.\n");
  return 0;
}
