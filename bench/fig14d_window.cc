// Figure 14d: sensitivity of the queue-delay sliding-window length. Drop
// rate of PARD on the lv application across the three traces as the window
// sweeps 1-15 s.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig14d_window", "Fig. 14d (drop rate vs sliding-window size)");
  pard::bench::StdWorkloadHeader(pard::bench::Jobs());

  // (window x trace) sweep grid, run concurrently.
  const std::vector<double> windows_s = {1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0, 15.0};
  const std::vector<std::string> traces = {"wiki", "tweet", "azure"};
  std::vector<pard::ExperimentConfig> grid;
  for (const double w : windows_s) {
    for (const std::string& trace : traces) {
      pard::ExperimentConfig cfg = StdConfig("lv", trace, "pard");
      cfg.runtime.stats_window = pard::SecToUs(w);
      grid.push_back(std::move(cfg));
    }
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  std::printf("%-12s %10s %10s %10s\n", "window (s)", "wiki", "tweet", "azure");
  for (std::size_t i = 0; i < windows_s.size(); ++i) {
    std::printf("%-12.1f", windows_s[i]);
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const auto& r = results[i * traces.size() + t];
      std::printf(" %9.2f%%", Pct(r.analysis->DropRate()));
    }
    std::printf("\n");
  }
  std::printf("\npaper: the optimum is trace-dependent — bursty traces (tweet CV~1.0,\n");
  std::printf("azure CV~1.3) favor 1-5 s windows, the stable wiki trace (CV~0.47)\n");
  std::printf("favors 5-7 s; the 5 s default sits within 3.2%%-6.3%% of each optimum.\n");
  return 0;
}
