// Figure 14d: sensitivity of the queue-delay sliding-window length. Drop
// rate of PARD on the lv application across the three traces as the window
// sweeps 1-15 s.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig14d_window", "Fig. 14d (drop rate vs sliding-window size)");

  const double windows_s[] = {1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0, 15.0};
  std::printf("%-12s %10s %10s %10s\n", "window (s)", "wiki", "tweet", "azure");
  for (const double w : windows_s) {
    std::printf("%-12.1f", w);
    for (const std::string trace : {"wiki", "tweet", "azure"}) {
      pard::ExperimentConfig cfg = StdConfig("lv", trace, "pard");
      cfg.runtime.stats_window = pard::SecToUs(w);
      const auto r = pard::RunExperiment(cfg);
      std::printf(" %9.2f%%", Pct(r.analysis->DropRate()));
    }
    std::printf("\n");
  }
  std::printf("\npaper: the optimum is trace-dependent — bursty traces (tweet CV~1.0,\n");
  std::printf("azure CV~1.3) favor 1-5 s windows, the stable wiki trace (CV~0.47)\n");
  std::printf("favors 5-7 s; the 5 s default sits within 3.2%%-6.3%% of each optimum.\n");
  return 0;
}
