// Figure 14a: stress test. Instance counts are fixed while the offered
// request rate rises past cluster capacity; goodput should saturate near the
// optimum (min(rate, capacity)) for PARD and degrade for the baselines.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/policy_factory.h"
#include "bench/bench_util.h"
#include "metrics/analysis.h"
#include "models/registry.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace {

struct StressPoint {
  double offered;
  double goodput;
};

double Capacity(const pard::PipelineSpec& spec, const std::vector<int>& batches,
                const std::vector<int>& workers) {
  double capacity = 1e18;
  for (const pard::ModuleSpec& m : spec.modules()) {
    const double tput =
        pard::ProfileRegistry::Get(m.model).Throughput(batches[static_cast<std::size_t>(m.id)]) *
        workers[static_cast<std::size_t>(m.id)];
    capacity = std::min(capacity, tput);
  }
  return capacity;
}

}  // namespace

int main() {
  pard::bench::Title("fig14a_stress", "Fig. 14a (goodput vs offered rate, fixed instances)");

  const pard::PipelineSpec spec = pard::MakeLiveVideo();
  const std::vector<int> batches = pard::PlanBatchSizes(spec);
  // Fix instances for ~600 req/s capacity.
  const std::vector<int> workers = pard::PlanWorkers(spec, batches, 600.0, 1.0, 32, 64);
  const double capacity = Capacity(spec, batches, workers);
  std::printf("fixed instances per module:");
  for (int w : workers) {
    std::printf(" %d", w);
  }
  std::printf("   (capacity ~%.0f req/s)\n\n", capacity);

  std::printf("%-10s", "rate");
  for (const auto& sys : pard::bench::Systems()) {
    std::printf(" %12s", sys.c_str());
  }
  std::printf(" %12s\n", "optimal");

  const double duration_s = 60.0;
  for (const double rate : {300.0, 450.0, 600.0, 750.0, 900.0, 1200.0}) {
    std::printf("%-10.0f", rate);
    // Identical Poisson stream per rate for all systems.
    for (const auto& sys : pard::bench::Systems()) {
      pard::Rng rng(17);
      const auto arrivals = pard::GenerateArrivals(pard::RateFunction::Constant(rate), 0,
                                                   pard::SecToUs(duration_s), rng);
      const auto policy = pard::MakePolicy(sys);
      pard::RuntimeOptions options;
      options.fixed_workers = workers;
      pard::PipelineRuntime runtime(spec, options, policy.get(), rate);
      runtime.RunTrace(arrivals);
      const pard::RunAnalysis analysis(runtime.requests(), spec);
      std::printf(" %12.0f", analysis.MeanGoodput());
    }
    std::printf(" %12.0f\n", std::min(rate, capacity));
  }
  std::printf("\npaper: past saturation PARD holds 11.9%%-132.9%% higher goodput than the\n");
  std::printf("baselines and sits 3.4x-23.4x closer to the optimal goodput line.\n");
  return 0;
}
