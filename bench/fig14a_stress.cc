// Figure 14a: stress test. Instance counts are fixed while the offered
// request rate rises past cluster capacity; goodput should saturate near the
// optimum (min(rate, capacity)) for PARD and degrade for the baselines.
//
// The (rate x system) grid is a SweepRunner workload: 24 independent runs
// execute on PARD_JOBS worker threads (metrics are bit-identical for every
// job count), so the full paper-length sweep fits in CI time. Override the
// per-point duration with PARD_BENCH_DURATION_S.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "models/registry.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"

namespace {

double Capacity(const pard::PipelineSpec& spec, const std::vector<int>& batches,
                const std::vector<int>& workers) {
  double capacity = 1e18;
  for (const pard::ModuleSpec& m : spec.modules()) {
    const double tput =
        pard::ProfileRegistry::Get(m.model).Throughput(batches[static_cast<std::size_t>(m.id)]) *
        workers[static_cast<std::size_t>(m.id)];
    capacity = std::min(capacity, tput);
  }
  return capacity;
}

}  // namespace

int main() {
  pard::bench::Title("fig14a_stress", "Fig. 14a (goodput vs offered rate, fixed instances)");

  const pard::PipelineSpec spec = pard::MakeLiveVideo();
  const std::vector<int> batches = pard::PlanBatchSizes(spec);
  // Fix instances for ~600 req/s capacity.
  const std::vector<int> workers = pard::PlanWorkers(spec, batches, 600.0, 1.0, 32, 64);
  const double capacity = Capacity(spec, batches, workers);
  const double duration_s = pard::bench::EnvOr("PARD_BENCH_DURATION_S", 60.0);
  pard::bench::WorkloadHeader(duration_s, 600.0, pard::bench::Jobs());
  std::printf("fixed instances per module:");
  for (int w : workers) {
    std::printf(" %d", w);
  }
  std::printf("   (capacity ~%.0f req/s)\n\n", capacity);

  // Identical Poisson stream per rate for all systems (shared seed + trace).
  const std::vector<double> rates = {300.0, 450.0, 600.0, 750.0, 900.0, 1200.0};
  std::vector<pard::ExperimentConfig> grid;
  for (const double rate : rates) {
    for (const auto& sys : pard::bench::Systems()) {
      pard::ExperimentConfig cfg;
      cfg.custom_spec = spec;
      cfg.custom_trace = pard::RateFunction::Constant(rate);
      cfg.trace = "constant";
      cfg.policy = sys;
      cfg.duration_s = duration_s;
      cfg.seed = 17;
      cfg.runtime.fixed_workers = workers;
      grid.push_back(std::move(cfg));
    }
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  std::printf("%-10s", "rate");
  for (const auto& sys : pard::bench::Systems()) {
    std::printf(" %12s", sys.c_str());
  }
  std::printf(" %12s\n", "optimal");
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::printf("%-10.0f", rates[r]);
    for (std::size_t s = 0; s < pard::bench::Systems().size(); ++s) {
      const auto& result = results[r * pard::bench::Systems().size() + s];
      std::printf(" %12.0f", result.analysis->MeanGoodput());
    }
    std::printf(" %12.0f\n", std::min(rates[r], capacity));
  }
  std::printf("\npaper: past saturation PARD holds 11.9%%-132.9%% higher goodput than the\n");
  std::printf("baselines and sits 3.4x-23.4x closer to the optimal goodput line.\n");
  return 0;
}
