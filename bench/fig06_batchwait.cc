// Figure 6: probability density / quantiles of aggregated batch wait time at
// each position of a 4-module pipeline, and the lambda = 0.1 sweet-spot
// table the paper derives from it:
//   w1 = 0.31 sum(d) (4 modules), w2 = 0.28 (3), w3 = 0.22 (2), w4 = 0.10 (1).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/irwin_hall.h"
#include "core/latency_estimator.h"
#include "pipeline/apps.h"
#include "runtime/state_board.h"

int main() {
  pard::bench::Title("fig06_batchwait", "Fig. 6 (aggregated batch-wait PDFs + quantile table)");

  // 4 downstream modules with equal duration d, uniform-wait model (fixed
  // batch sizes, as in the paper's figure).
  const pard::Duration d = 10 * pard::kUsPerMs;
  const pard::PipelineSpec lv = pard::MakeLiveVideo();
  pard::StateBoard board(5);
  for (int i = 0; i < 5; ++i) {
    pard::ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    board.Publish(std::move(s));
  }
  pard::EstimatorOptions options;
  options.mc_samples = 50000;
  pard::LatencyEstimator est(&lv, &board, options, pard::Rng(42));

  pard::bench::Section("aggregated batch-wait distribution per module position");
  const std::vector<std::vector<int>> paths = {{1, 2, 3, 4}, {2, 3, 4}, {3, 4}, {4}};
  std::printf("%-8s %10s %10s %10s %14s %14s %12s\n", "module", "p10 (ms)", "p50 (ms)",
              "p90 (ms)", "w_k=F^-1(0.1)", "as frac of sumd", "paper frac");
  const double paper_fracs[] = {0.31, 0.28, 0.22, 0.10};
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto dist = est.AggregateWaitDistribution(paths[i]);
    const double sum_d = static_cast<double>(d) * static_cast<double>(paths[i].size());
    const pard::Duration wk = est.AggregateWaitQuantile(paths[i], 0.1);
    std::printf("M%-7zu %10.2f %10.2f %10.2f %11.2fms %14.3f %12.2f\n", i + 1,
                dist.Quantile(0.1) / 1000.0, dist.Quantile(0.5) / 1000.0,
                dist.Quantile(0.9) / 1000.0, static_cast<double>(wk) / 1000.0,
                static_cast<double>(wk) / sum_d, paper_fracs[i]);
  }

  pard::bench::Section("analytic Irwin-Hall reference");
  for (int n = 1; n <= 4; ++n) {
    std::printf("n=%d  F^-1(0.1)/n = %.3f\n", n, pard::IrwinHallQuantile(n, 0.1) / n);
  }

  pard::bench::Section("central-limit concentration (median -> sum d / 2 as depth grows)");
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto dist = est.AggregateWaitDistribution(paths[i]);
    const double sum_d = static_cast<double>(d) * static_cast<double>(paths[i].size());
    std::printf("depth %zu: median / sum d = %.3f\n", paths[i].size(),
                dist.Quantile(0.5) / sum_d);
  }
  return 0;
}
