// §5.2 dynamic-path DAG experiment + the paper's stated future work.
//
// Two studies:
//  (1) the paper's measurement — the `da` app adapted so each request
//      probabilistically takes either branch; mis-estimation raises PARD's
//      drop rate relative to an oracle.
//  (2) the future-work fix — `pard-path` (request-path prediction) estimates
//      L_sub along the request's actual branch. To expose the estimation
//      error, a DAG with *asymmetric* branches is used (one heavy, one
//      light): the conservative max-over-paths over-drops light-branch
//      requests, which prediction recovers.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pipeline/apps.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

namespace {

// person_detection forks into a heavy two-module branch (object_detection ->
// face_recognition) and a light single-module branch (icon_recognition);
// the branches merge in expression_recognition. The conservative
// max-over-paths estimate always assumes the heavy branch.
pard::PipelineSpec AsymmetricDag() {
  pard::ModuleSpec person;
  person.id = 0;
  person.model = "person_detection";
  person.subs = {1, 3};
  pard::ModuleSpec heavy_a;
  heavy_a.id = 1;
  heavy_a.model = "object_detection";
  heavy_a.pres = {0};
  heavy_a.subs = {2};
  pard::ModuleSpec heavy_b;
  heavy_b.id = 2;
  heavy_b.model = "face_recognition";
  heavy_b.pres = {1};
  heavy_b.subs = {4};
  pard::ModuleSpec light;
  light.id = 3;
  light.model = "icon_recognition";
  light.pres = {0};
  light.subs = {4};
  pard::ModuleSpec merge;
  merge.id = 4;
  merge.model = "expression_recognition";
  merge.pres = {2, 3};
  merge.subs = {5};
  pard::ModuleSpec sink;
  sink.id = 5;
  sink.model = "eye_tracking";
  sink.pres = {4};
  return pard::PipelineSpec("dax", pard::MsToUs(420),
                            {person, heavy_a, heavy_b, light, merge, sink});
}

}  // namespace

int main() {
  pard::bench::Title("ext_dynamic_dag",
                     "§5.2 dynamic-path DAG study + path-prediction future work");
  pard::bench::StdWorkloadHeader();

  pard::bench::Section("(1) paper's `da` app: static vs dynamic routing (PARD)");
  std::printf("%-8s %18s %18s %18s\n", "trace", "pard (static)", "pard (dynamic)",
              "pard-path (dyn)");
  for (const std::string trace : {"wiki", "tweet", "azure"}) {
    pard::ExperimentConfig stat = StdConfig("da", trace, "pard");
    const auto r_static = pard::RunExperiment(stat);
    pard::ExperimentConfig dyn = StdConfig("da", trace, "pard");
    dyn.runtime.dynamic_paths = true;
    const auto r_dynamic = pard::RunExperiment(dyn);
    pard::ExperimentConfig predicted = StdConfig("da", trace, "pard-path");
    predicted.runtime.dynamic_paths = true;
    const auto r_predicted = pard::RunExperiment(predicted);
    std::printf("%-8s %17.2f%% %17.2f%% %17.2f%%\n", trace.c_str(),
                Pct(r_static.analysis->DropRate()), Pct(r_dynamic.analysis->DropRate()),
                Pct(r_predicted.analysis->DropRate()));
  }
  std::printf("note: dynamic routing also halves branch load, which offsets the\n");
  std::printf("mis-estimation penalty in this substrate; the estimation effect is\n");
  std::printf("isolated with asymmetric branches below.\n");

  pard::bench::Section("(2) asymmetric-branch DAG: conservative max vs path prediction");
  std::printf("%-8s %18s %18s %14s\n", "trace", "pard (dynamic)", "pard-path (dyn)",
              "pard/path");
  for (const std::string trace : {"wiki", "tweet", "azure"}) {
    pard::ExperimentConfig dyn = StdConfig("dax", trace, "pard");
    dyn.custom_spec = AsymmetricDag();
    dyn.runtime.dynamic_paths = true;
    const auto plain = pard::RunExperiment(dyn);
    pard::ExperimentConfig predicted = dyn;
    predicted.policy = "pard-path";
    const auto path = pard::RunExperiment(predicted);
    const double dplain = plain.analysis->DropRate();
    const double dpath = path.analysis->DropRate();
    std::printf("%-8s %17.2f%% %17.2f%% %13.2fx\n", trace.c_str(), Pct(dplain), Pct(dpath),
                dpath > 0 ? dplain / dpath : 0.0);
  }
  std::printf("\npaper: dynamic paths raise PARD's drop rate by 0.05x-0.21x due to\n");
  std::printf("mis-estimation; request-path prediction (the paper's future work,\n");
  std::printf("implemented as pard-path) recovers the gap.\n");
  return 0;
}
