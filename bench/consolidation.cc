// Multi-tenant consolidation: N tenants on one shared fleet vs N dedicated
// per-tenant fleets.
//
// The economic argument for tenancy (GoodServe's regime, see PAPERS.md): a
// shared fleet pools burst headroom and amortizes per-module worker
// quantization, so it clears MORE weighted goodput PER COST-UNIT than
// carving the same traffic into isolated per-tenant deployments — while the
// governor's admit floors keep any one tenant from being starved to pay for
// it. This bench runs both deployments on the identical arrival process and
// prints the comparison the PR charter gates on:
//
//   * shared weighted goodput/cost  >  dedicated weighted goodput/cost
//   * every shared-fleet tenant's ingress admit rate >= its admit_floor
//
// Both runs are discrete-event simulations, so the numbers are
// bit-deterministic; the PASS/FAIL verdict on the last line backs the
// smoke_bench_consolidation ctest entry.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "metrics/analysis.h"
#include "obs/drop_reason.h"
#include "pipeline/tenant_spec.h"

namespace pard {
namespace bench {
namespace {

struct DeploymentResult {
  double weighted_good = 0.0;
  double cost = 0.0;
  double ValuePerCost() const { return cost > 0.0 ? weighted_good / cost : 0.0; }
};

int Run() {
  Title("Multi-tenant consolidation: shared fleet vs dedicated fleets",
        "cost-aware serving extension (PR 9); cf. GoodServe-style SLO tiers");
  const double duration_s = StdDuration();
  const double base_rate = StdBaseRate();
  WorkloadHeader(duration_s, base_rate, 1);

  const std::vector<TenantSpec> catalog = MakeReferenceTenantCatalog();

  // Shared: every tenant rides one fleet; the governor arbitrates ingress.
  ExperimentConfig shared_config = StdConfig("lv", "tweet", "pard");
  shared_config.runtime.tenants = catalog;
  const ExperimentResult shared = RunExperiment(shared_config);
  DeploymentResult shared_dep;
  shared_dep.weighted_good = shared.analysis->WeightedGoodCount();
  shared_dep.cost = shared.fleet_cost;

  // Dedicated: each tenant gets its own isolated fleet provisioned for its
  // own slice of the traffic (base rate x share), same trace shape and SLO
  // class. Weighted good and cost sum across the N deployments.
  DeploymentResult dedicated_dep;
  std::vector<DeploymentResult> per_dedicated;
  for (const TenantSpec& tenant : catalog) {
    ExperimentConfig config = StdConfig("lv", "tweet", "pard");
    config.base_rate = base_rate * tenant.share;
    TenantSpec solo = tenant;
    solo.share = 1.0;       // The whole (smaller) stream is this tenant.
    solo.admit_floor = 0.0; // No cross-tenant arbitration to bound.
    config.runtime.tenants = {solo};
    const ExperimentResult result = RunExperiment(config);
    DeploymentResult dep;
    dep.weighted_good = result.analysis->WeightedGoodCount();
    dep.cost = result.fleet_cost;
    per_dedicated.push_back(dep);
    dedicated_dep.weighted_good += dep.weighted_good;
    dedicated_dep.cost += dep.cost;
  }

  Section("weighted goodput per cost-unit");
  std::printf("%-24s %14s %12s %12s\n", "deployment", "weighted good", "cost",
              "good/cost");
  std::printf("%-24s %14.1f %12.1f %12.4f\n", "shared fleet",
              shared_dep.weighted_good, shared_dep.cost, shared_dep.ValuePerCost());
  std::printf("%-24s %14.1f %12.1f %12.4f\n", "dedicated fleets (sum)",
              dedicated_dep.weighted_good, dedicated_dep.cost,
              dedicated_dep.ValuePerCost());
  for (std::size_t t = 0; t < catalog.size(); ++t) {
    std::printf("  dedicated:%-13s %14.1f %12.1f %12.4f\n",
                catalog[t].name.c_str(), per_dedicated[t].weighted_good,
                per_dedicated[t].cost, per_dedicated[t].ValuePerCost());
  }

  Section("shared-fleet fairness (admit floors)");
  const std::vector<TenantBreakdown> tenants = shared.analysis->PerTenant();
  bool floors_held = tenants.size() == catalog.size();
  std::printf("%-12s %8s %8s %10s %8s\n", "tenant", "total", "shed", "admit",
              "floor");
  for (std::size_t t = 0; t < tenants.size() && t < catalog.size(); ++t) {
    const TenantBreakdown& b = tenants[t];
    const std::size_t shed =
        b.drop_reasons.empty()
            ? 0
            : b.drop_reasons[static_cast<std::size_t>(DropReason::kTenantShed)];
    const double admit =
        b.total == 0 ? 1.0
                     : 1.0 - static_cast<double>(shed) / static_cast<double>(b.total);
    // 0.05 of slack covers hash quantization on a finite request sample.
    const bool held = admit >= catalog[t].admit_floor - 0.05;
    floors_held = floors_held && held;
    std::printf("%-12s %8zu %8zu %9.1f%% %7.0f%%%s\n", catalog[t].name.c_str(),
                b.total, shed, Pct(admit), Pct(catalog[t].admit_floor),
                held ? "" : "  VIOLATED");
  }

  const bool consolidation_wins =
      shared_dep.ValuePerCost() > dedicated_dep.ValuePerCost();
  std::printf("\nconsolidation advantage: %.4f vs %.4f good/cost (%+.1f%%)\n",
              shared_dep.ValuePerCost(), dedicated_dep.ValuePerCost(),
              dedicated_dep.ValuePerCost() > 0.0
                  ? Pct(shared_dep.ValuePerCost() / dedicated_dep.ValuePerCost() - 1.0)
                  : 0.0);
  if (consolidation_wins && floors_held) {
    std::printf("RESULT: PASS (shared fleet wins goodput/cost, floors held)\n");
    return 0;
  }
  std::printf("RESULT: FAIL (%s%s)\n",
              consolidation_wins ? "" : "shared fleet lost on goodput/cost; ",
              floors_held ? "" : "an admit floor was violated");
  return 1;
}

}  // namespace
}  // namespace bench
}  // namespace pard

int main() { return pard::bench::Run(); }
