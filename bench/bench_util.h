// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (1) the experimental setup, (2) the measured rows or
// series in the same shape the paper reports, and (3) the paper's reference
// values where the paper states them, so paper-vs-measured comparison is
// immediate. Absolute numbers are not expected to match (the substrate is a
// simulator, not the authors' 64-GPU testbed); the orderings, ratios and
// crossovers are the reproduction targets (see EXPERIMENTS.md).
#ifndef PARD_BENCH_BENCH_UTIL_H_
#define PARD_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

extern char** environ;  // POSIX; used to reject typo'd PARD_BENCH_* overrides.

#include "exec/thread_pool.h"
#include "harness/experiment.h"

namespace pard {
namespace bench {

inline void Title(const std::string& name, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", name.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& name) { std::printf("\n--- %s ---\n", name.c_str()); }

// CI smoke runs override the standard workload size via the environment
// (PARD_BENCH_DURATION_S / PARD_BENCH_BASE_RATE; see README "Bench
// environment overrides" for the full table). Only benches built on
// StdConfig honor it — benches that hardcode their own workload shape
// (e.g. ext_failure, fig06_batchwait) ignore these variables.
// A malformed or non-positive value aborts rather than silently shrinking
// the workload to nothing, and an unrecognized PARD_BENCH_* name aborts
// rather than being silently ignored (a typo'd override would otherwise
// run the full paper-scale workload while claiming to be a smoke run).
inline void CheckKnownBenchEnv() {
  static const bool checked = [] {
    static const char* const kKnown[] = {"PARD_BENCH_DURATION_S", "PARD_BENCH_BASE_RATE"};
    for (char** env = environ; *env != nullptr; ++env) {
      const char* entry = *env;
      if (std::strncmp(entry, "PARD_BENCH_", 11) != 0) {
        continue;
      }
      const char* eq = std::strchr(entry, '=');
      const std::string name(entry, eq != nullptr ? static_cast<std::size_t>(eq - entry)
                                                  : std::strlen(entry));
      bool known = false;
      for (const char* k : kKnown) {
        known = known || name == k;
      }
      if (!known) {
        std::fprintf(stderr,
                     "unknown environment override %s (supported: PARD_BENCH_DURATION_S, "
                     "PARD_BENCH_BASE_RATE; worker threads use PARD_JOBS)\n",
                     name.c_str());
        std::exit(2);
      }
    }
    return true;
  }();
  (void)checked;
}

inline double EnvOr(const char* name, double fallback) {
  CheckKnownBenchEnv();
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(parsed) || parsed <= 0.0) {
    std::fprintf(stderr, "invalid %s=\"%s\" (expected a positive number)\n", name, v);
    std::exit(2);
  }
  // Make the override visible so shrunken smoke-run numbers are never
  // mistaken for a failed paper reproduction.
  std::fprintf(stderr, "note: %s=%g overrides the standard workload (default %g)\n",
               name, parsed, fallback);
  return parsed;
}

// Worker-thread count for sweep benches: the strictly-validated PARD_JOBS
// override, defaulting to one job per hardware thread. Garbage or
// non-positive values abort, mirroring the PARD_BENCH_* contract.
inline int Jobs() {
  static const int jobs = [] {
    const char* v = std::getenv("PARD_JOBS");
    if (v == nullptr || *v == '\0') {
      return ThreadPool::ResolveJobs(0);
    }
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || parsed <= 0 || parsed > 4096) {
      std::fprintf(stderr, "invalid PARD_JOBS=\"%s\" (expected an integer in [1, 4096])\n", v);
      std::exit(2);
    }
    std::fprintf(stderr, "note: PARD_JOBS=%ld overrides the worker count (default %d)\n",
                 parsed, ThreadPool::ResolveJobs(0));
    return static_cast<int>(parsed);
  }();
  return jobs;
}

// Effective workload line in every result header: compressed runs announce
// themselves, so shrunken smoke/CI numbers can't be mistaken for the paper's
// ~1000 s scale.
inline void WorkloadHeader(double duration_s, double base_rate, int jobs) {
  std::printf("workload: duration %g s, base rate %g req/s, %d job%s%s\n", duration_s,
              base_rate, jobs, jobs == 1 ? "" : "s",
              duration_s < 1000.0 ? "  [compressed; paper scale ~1000 s]" : "  [paper scale]");
}

// The StdConfig workload shape, parsed once so sweep benches don't reprint
// the override note per run.
inline double StdDuration() {
  static const double duration_s = EnvOr("PARD_BENCH_DURATION_S", 150.0);
  return duration_s;
}
inline double StdBaseRate() {
  static const double base_rate = EnvOr("PARD_BENCH_BASE_RATE", 200.0);
  return base_rate;
}

// Header for benches built on StdConfig. Serial benches take the default;
// sweep benches pass Jobs().
inline void StdWorkloadHeader(int jobs = 1) {
  WorkloadHeader(StdDuration(), StdBaseRate(), jobs);
}

// Standard compressed workload: the paper's ~1000 s traces shrunk to keep
// every bench under a minute while preserving the burst structure. The rate
// is chosen so burst peaks exceed mean-provisioned capacity.
inline ExperimentConfig StdConfig(const std::string& app, const std::string& trace,
                                  const std::string& policy) {
  ExperimentConfig c;
  c.app = app;
  c.trace = trace;
  c.policy = policy;
  c.duration_s = StdDuration();
  c.base_rate = StdBaseRate();
  c.seed = 7;
  // Paper setup: resource scaling is on; capacity tracks the smoothed rate
  // with headroom, so drops concentrate in the burst/cold-start windows and
  // queueing stays in the sub-SLO regime where estimation quality decides
  // outcomes.
  c.provision_factor = 1.25;
  c.runtime.enable_scaling = true;
  c.runtime.scaling_epoch = 5 * kUsPerSec;
  return c;
}

inline const std::vector<std::string>& Systems() {
  static const std::vector<std::string> kSystems = {"pard", "nexus", "clipper++", "naive"};
  return kSystems;
}

inline double Pct(double x) { return 100.0 * x; }

}  // namespace bench
}  // namespace pard

#endif  // PARD_BENCH_BENCH_UTIL_H_
