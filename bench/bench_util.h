// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (1) the experimental setup, (2) the measured rows or
// series in the same shape the paper reports, and (3) the paper's reference
// values where the paper states them, so paper-vs-measured comparison is
// immediate. Absolute numbers are not expected to match (the substrate is a
// simulator, not the authors' 64-GPU testbed); the orderings, ratios and
// crossovers are the reproduction targets (see EXPERIMENTS.md).
#ifndef PARD_BENCH_BENCH_UTIL_H_
#define PARD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace pard {
namespace bench {

inline void Title(const std::string& name, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", name.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& name) { std::printf("\n--- %s ---\n", name.c_str()); }

// Standard compressed workload: the paper's ~1000 s traces shrunk to keep
// every bench under a minute while preserving the burst structure. The rate
// is chosen so burst peaks exceed mean-provisioned capacity.
inline ExperimentConfig StdConfig(const std::string& app, const std::string& trace,
                                  const std::string& policy) {
  ExperimentConfig c;
  c.app = app;
  c.trace = trace;
  c.policy = policy;
  c.duration_s = 150.0;
  c.base_rate = 200.0;
  c.seed = 7;
  // Paper setup: resource scaling is on; capacity tracks the smoothed rate
  // with headroom, so drops concentrate in the burst/cold-start windows and
  // queueing stays in the sub-SLO regime where estimation quality decides
  // outcomes.
  c.provision_factor = 1.25;
  c.runtime.enable_scaling = true;
  c.runtime.scaling_epoch = 5 * kUsPerSec;
  return c;
}

inline const std::vector<std::string>& Systems() {
  static const std::vector<std::string> kSystems = {"pard", "nexus", "clipper++", "naive"};
  return kSystems;
}

inline double Pct(double x) { return 100.0 * x; }

}  // namespace bench
}  // namespace pard

#endif  // PARD_BENCH_BENCH_UTIL_H_
