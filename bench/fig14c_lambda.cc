// Figure 14c: sensitivity of the batch-wait quantile lambda. Drop rate as
// lambda sweeps 0..1 for the four applications under the tweet trace.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig14c_lambda", "Fig. 14c (drop rate vs quantile lambda)");
  pard::bench::StdWorkloadHeader(pard::bench::Jobs());

  // (lambda x app) sweep grid, run concurrently.
  const std::vector<double> lambdas = {0.01, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0};
  const std::vector<std::string> apps = {"lv", "tm", "gm", "da"};
  std::vector<pard::ExperimentConfig> grid;
  for (const double lambda : lambdas) {
    for (const std::string& app : apps) {
      pard::ExperimentConfig cfg = StdConfig(app, "tweet", "pard");
      cfg.params.lambda = lambda;
      grid.push_back(std::move(cfg));
    }
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  std::printf("%-10s", "lambda");
  for (const std::string& app : apps) {
    std::printf(" %10s", app.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    std::printf("%-10.3f", lambdas[i]);
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const auto& r = results[i * apps.size() + a];
      std::printf(" %9.2f%%", Pct(r.analysis->DropRate()));
    }
    std::printf("\n");
  }
  std::printf("\npaper: the optimum consistently lies in [0.075, 0.15] with little\n");
  std::printf("variation inside that range; lambda = 0.1 is the default.\n");
  return 0;
}
