// Figure 14c: sensitivity of the batch-wait quantile lambda. Drop rate as
// lambda sweeps 0..1 for the four applications under the tweet trace.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig14c_lambda", "Fig. 14c (drop rate vs quantile lambda)");

  const double lambdas[] = {0.01, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1.0};
  std::printf("%-10s", "lambda");
  for (const std::string app : {"lv", "tm", "gm", "da"}) {
    std::printf(" %10s", app.c_str());
  }
  std::printf("\n");
  for (const double lambda : lambdas) {
    std::printf("%-10.3f", lambda);
    for (const std::string app : {"lv", "tm", "gm", "da"}) {
      pard::ExperimentConfig cfg = StdConfig(app, "tweet", "pard");
      cfg.params.lambda = lambda;
      const auto r = pard::RunExperiment(cfg);
      std::printf(" %9.2f%%", Pct(r.analysis->DropRate()));
    }
    std::printf("\n");
  }
  std::printf("\npaper: the optimum consistently lies in [0.075, 0.15] with little\n");
  std::printf("variation inside that range; lambda = 0.1 is the default.\n");
  return 0;
}
