// Figure 12: where the latency budget goes.
//  (a) consumed latency budget per module for SLO-compliant requests
//      (with the scaling engine on, so cold-start spikes appear)
//  (b) CDF of end-to-end sumQ, sumW, sumD
//  (c) per-module queueing delay during the burst: PARD vs PARD-FCFS vs
//      PARD-LBF
//  (d) remaining latency budget of 100 consecutive requests at M2 / M3
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig12_budget_analysis", "Fig. 12a-12d (latency budget analysis, lv-tweet)");
  pard::bench::StdWorkloadHeader();

  // ---- (a) consumed budget per module, scaling on ----------------------------
  pard::bench::Section("(a) mean consumed latency budget per module (ms), SLO-compliant requests");
  pard::ExperimentConfig scaled = StdConfig("lv", "tweet", "pard");
  scaled.runtime.enable_scaling = true;
  scaled.provision_factor = 0.9;
  const auto run_scaled = pard::RunExperiment(scaled);
  {
    const auto consumed = run_scaled.analysis->MeanConsumedBudgetPerModule();
    double total = 0.0;
    for (std::size_t m = 0; m < consumed.size(); ++m) {
      std::printf("M%zu %8.2f ms\n", m + 1, consumed[m] / 1000.0);
      total += consumed[m];
    }
    std::printf("total %6.2f ms of the %.0f ms SLO\n", total / 1000.0,
                pard::UsToMs(run_scaled.spec.slo()));
    std::printf("worker history samples (scaling engine): %zu\n",
                run_scaled.worker_history.size());
  }

  // ---- (b) CDFs of sumQ / sumW / sumD ----------------------------------------
  pard::bench::Section("(b) CDF of end-to-end queueing (Q), batch wait (W), execution (D)");
  const auto run = pard::RunExperiment(StdConfig("lv", "tweet", "pard"));
  const auto q = run.analysis->SumQueueDistribution();
  const auto w = run.analysis->SumWaitDistribution();
  const auto d = run.analysis->SumExecDistribution();
  std::printf("%-10s %10s %10s %10s\n", "quantile", "sumQ (ms)", "sumW (ms)", "sumD (ms)");
  for (const double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    std::printf("p%-9.0f %10.2f %10.2f %10.2f\n", p * 100, q.Quantile(p) / 1000.0,
                w.Quantile(p) / 1000.0, d.Quantile(p) / 1000.0);
  }
  const double w_spread = (w.Quantile(0.9) - w.Quantile(0.1)) / 1000.0;
  const double d_spread = (d.Quantile(0.9) - d.Quantile(0.1)) / 1000.0;
  std::printf("sumW p90-p10 spread %.2f ms vs sumD spread %.2f ms\n", w_spread, d_spread);
  std::printf("paper: sumW exhibits far greater variance than sumQ or sumD.\n");

  // ---- (c) queueing delay during the burst ------------------------------------
  pard::bench::Section("(c) mean queueing delay per module during the burst region (ms)");
  std::printf("%-12s", "policy");
  for (int m = 1; m <= 5; ++m) {
    std::printf(" %9s", ("M" + std::to_string(m)).c_str());
  }
  std::printf("\n");
  for (const std::string policy : {"pard", "pard-fcfs", "pard-lbf"}) {
    const auto r = pard::RunExperiment(StdConfig("lv", "tweet", policy));
    const auto region = r.burst_region;
    const auto delays = r.analysis->MeanQueueDelayPerModule(region.begin, region.end);
    std::printf("%-12s", policy.c_str());
    for (double v : delays) {
      std::printf(" %9.2f", v / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("paper: FCFS/LBF accumulate queueing during bursts (+34%% delay for FCFS);\n");
  std::printf("PARD's HBF mode keeps module queues short.\n");

  // ---- (d) remaining budgets of consecutive requests ---------------------------
  pard::bench::Section("(d) remaining latency budget of 100 consecutive requests (ms)");
  for (const int module : {1, 2}) {
    const auto budgets = run.analysis->RemainingBudgetAt(module, 100, 2000);
    double lo = 1e18;
    double hi = -1e18;
    double mean = 0.0;
    for (double b : budgets) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
      mean += b / static_cast<double>(budgets.size());
    }
    std::printf("M%d: n=%zu  min %.1f  mean %.1f  max %.1f  (spread %.1f ms)\n", module + 1,
                budgets.size(), lo / 1000.0, mean / 1000.0, hi / 1000.0, (hi - lo) / 1000.0);
  }
  std::printf("paper: remaining budgets of consecutive requests are highly variable and\n");
  std::printf("time-independent — arrival order does not reflect them (Fig. 12d).\n");
  return 0;
}
