// Figure 9: maximum average drop rate over the runtime at different time
// window sizes (22/24/26/28 s), 12 workloads, 4 systems.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig09_transient_drop",
                     "Fig. 9 (max window drop rate vs window size, 12 panels)");
  pard::bench::StdWorkloadHeader();
  for (const std::string app : {"lv", "tm", "gm", "da"}) {
    for (const std::string trace : {"wiki", "tweet", "azure"}) {
      pard::bench::Section(app + "-" + trace);
      std::printf("%-10s %8s %8s %8s %8s\n", "system", "22s", "24s", "26s", "28s");
      double pard_sum = 0.0;
      double worst_baseline_sum = 0.0;
      for (const auto& sys : pard::bench::Systems()) {
        const auto r = pard::RunExperiment(StdConfig(app, trace, sys));
        std::printf("%-10s", sys.c_str());
        double sum = 0.0;
        for (const double w : {22.0, 24.0, 26.0, 28.0}) {
          const double rate = r.analysis->MaxWindowDropRate(pard::SecToUs(w));
          sum += rate;
          std::printf(" %6.1f%%", Pct(rate));
        }
        std::printf("\n");
        if (sys == "pard") {
          pard_sum = sum;
        } else {
          worst_baseline_sum = std::max(worst_baseline_sum, sum);
        }
      }
      if (worst_baseline_sum > 0.0) {
        std::printf("PARD transient drop reduction vs worst baseline: %.0f%%\n",
                    Pct(1.0 - pard_sum / worst_baseline_sum));
      }
    }
  }
  std::printf("\npaper: reactive baselines reach transient drop rates up to 90%%-96%%;\n");
  std::printf("PARD cuts transient drop rates by 41%%-98%% across all timescales.\n");
  return 0;
}
