// §5.4 overhead analysis, as google-benchmark micro-benchmarks:
//  - DEPQ put()/get() at various queue depths (paper: O(log n), <0.16%
//    request latency)
//  - batch-wait distribution update, O(M * N) with M = 10 000 samples
//    (paper: asynchronous, no added request latency)
//  - state synchronization payload construction (paper: <3.2 kbps/worker)
//  - end-to-end Request Broker decision cost
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/latency_estimator.h"
#include "jsonio/json.h"
#include "pipeline/apps.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/state_board.h"
#include "stats/minmax_heap.h"

namespace pard {
namespace {

void BM_MinMaxHeapPush(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Rng rng(1);
  MinMaxHeap<std::int64_t> heap;
  for (std::int64_t i = 0; i < depth; ++i) {
    heap.Push(rng.UniformInt(0, 1 << 20));
  }
  for (auto _ : state) {
    heap.Push(rng.UniformInt(0, 1 << 20));
    benchmark::DoNotOptimize(heap.PopMin());
  }
}
BENCHMARK(BM_MinMaxHeapPush)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DepqPutGet(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Rng rng(2);
  RequestQueue queue;
  std::vector<RequestPtr> pool;
  for (std::int64_t i = 0; i < depth; ++i) {
    auto r = std::make_shared<Request>();
    r->deadline = rng.UniformInt(0, 1 << 20);
    queue.Push(r);
    pool.push_back(std::move(r));
  }
  int flip = 0;
  for (auto _ : state) {
    auto r = std::make_shared<Request>();
    r->deadline = rng.UniformInt(0, 1 << 20);
    queue.Push(std::move(r));
    // Alternate HBF/LBF pops, the adaptive-priority access pattern.
    benchmark::DoNotOptimize(
        queue.Pop(++flip % 2 == 0 ? PopSide::kMinBudget : PopSide::kMaxBudget));
  }
}
BENCHMARK(BM_DepqPutGet)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BatchWaitDistributionUpdate(benchmark::State& state) {
  // O(M(N-k+1)) with M = 10 000 reservoir samples across N = 5 modules.
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board(5);
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = 10 * kUsPerMs;
    s.wait_samples.reserve(10000);
    for (int j = 0; j < 10000; ++j) {
      s.wait_samples.push_back(rng.Uniform(0.0, 10000.0));
    }
    board.Publish(std::move(s));
  }
  EstimatorOptions options;
  options.mc_samples = static_cast<int>(state.range(0));
  LatencyEstimator est(&lv, &board, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.AggregateWaitDistribution({1, 2, 3, 4}));
  }
}
BENCHMARK(BM_BatchWaitDistributionUpdate)->Arg(128)->Arg(512)->Arg(2048);

void BM_BrokerDecision(benchmark::State& state) {
  // The cached per-admission path: one EstimateSubsequent per decision.
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board(5);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = 10 * kUsPerMs;
    board.Publish(std::move(s));
  }
  EstimatorOptions options;
  LatencyEstimator est(&lv, &board, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateSubsequent(0));
  }
}
BENCHMARK(BM_BrokerDecision);

void BM_StateSyncPayload(benchmark::State& state) {
  // Serializes the compact module state the paper exchanges once per second
  // (queueing delay, batch size, throughput, drop rate, wait distribution
  // digest) and reports its size — the <3.2 kbps/worker claim.
  for (auto _ : state) {
    JsonObject payload;
    payload["module_id"] = 3;
    payload["avg_queue_delay_us"] = 1234.5;
    payload["batch_size"] = 8;
    payload["throughput"] = 212.4;
    payload["drop_rate"] = 0.012;
    JsonArray digest;
    for (int i = 0; i < 16; ++i) {
      digest.emplace_back(static_cast<std::int64_t>(i * 100));
    }
    payload["wait_digest_us"] = std::move(digest);
    const std::string wire = JsonValue(std::move(payload)).Dump();
    benchmark::DoNotOptimize(wire);
    state.counters["payload_bytes"] =
        benchmark::Counter(static_cast<double>(wire.size()));
  }
}
BENCHMARK(BM_StateSyncPayload);

}  // namespace
}  // namespace pard

BENCHMARK_MAIN();
