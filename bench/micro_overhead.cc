// §5.4 overhead analysis, as google-benchmark micro-benchmarks:
//  - DEPQ put()/get() at various queue depths (paper: O(log n), <0.16%
//    request latency)
//  - event-kernel schedule/cancel/fire throughput (the simulator's innermost
//    loop; every simulated action pays it)
//  - batch-wait distribution update, O(M * N) with M samples
//    (paper: asynchronous, no added request latency)
//  - warm-epoch Request Broker decisions (between state syncs every
//    admission reuses the epoch-cached estimate)
//  - state synchronization payload construction (paper: <3.2 kbps/worker)
//  - end-to-end experiment runs (the number every other speedup rolls into)
//
// Machine-readable output: pass --json to emit the google-benchmark JSON
// format on stdout (an alias for --benchmark_format=json). The checked-in
// bench/BENCH_PR3.json is the pre-slab-kernel baseline captured with
//   micro_overhead --json > bench/BENCH_PR3.json
// and is the reference future perf work regresses against (see README
// "Performance").
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "common/rng.h"
#include "core/latency_estimator.h"
#include "core/pard_policy.h"
#include "core/tenant_governor.h"
#include "pipeline/tenant_spec.h"
#include "harness/experiment.h"
#include "jsonio/json.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "pipeline/apps.h"
#include "resilience/chaos.h"
#include "runtime/backend_fleet.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/state_board.h"
#include "serve/control_plane.h"
#include "sim/simulation.h"
#include "stats/minmax_heap.h"

namespace pard {
namespace {

void BM_MinMaxHeapPush(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Rng rng(1);
  MinMaxHeap<std::int64_t> heap;
  for (std::int64_t i = 0; i < depth; ++i) {
    heap.Push(rng.UniformInt(0, 1 << 20));
  }
  for (auto _ : state) {
    heap.Push(rng.UniformInt(0, 1 << 20));
    benchmark::DoNotOptimize(heap.PopMin());
  }
}
BENCHMARK(BM_MinMaxHeapPush)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DepqPutGet(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Rng rng(2);
  RequestQueue queue;
  std::vector<RequestPtr> pool;
  for (std::int64_t i = 0; i < depth; ++i) {
    auto r = std::make_shared<Request>();
    r->deadline = rng.UniformInt(0, 1 << 20);
    queue.Push(r);
    pool.push_back(std::move(r));
  }
  int flip = 0;
  for (auto _ : state) {
    auto r = std::make_shared<Request>();
    r->deadline = rng.UniformInt(0, 1 << 20);
    queue.Push(std::move(r));
    // Alternate HBF/LBF pops, the adaptive-priority access pattern.
    benchmark::DoNotOptimize(
        queue.Pop(++flip % 2 == 0 ? PopSide::kMinBudget : PopSide::kMaxBudget));
  }
}
BENCHMARK(BM_DepqPutGet)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

// --- Event kernel ----------------------------------------------------------

// Schedule + fire at a steady pending depth, with a capture the size of the
// runtime's delivery lambdas (shared_ptr + module id + runtime pointer): the
// kernel's common case. One iteration = one scheduled and one fired event.
void BM_EventScheduleFire(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Simulation sim;
  std::uint64_t sink = 0;
  // 32 bytes of captured state, like Deliver()'s [this, captured, module_id].
  struct Payload {
    std::uint64_t* sink;
    std::uint64_t a, b, c;
  };
  const Payload payload{&sink, 1, 2, 3};
  SimTime horizon = 0;
  for (std::int64_t i = 0; i < depth; ++i) {
    horizon += 7;
    sim.ScheduleAt(horizon, [payload] { *payload.sink += payload.a; });
  }
  for (auto _ : state) {
    horizon += 7;
    sim.ScheduleAt(horizon, [payload] { *payload.sink += payload.a; });
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["executed"] =
      benchmark::Counter(static_cast<double>(sim.ExecutedEvents()));
}
BENCHMARK(BM_EventScheduleFire)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

// The timeout pattern: most scheduled events are cancelled before firing
// (PARD re-arms per-request deadline work constantly). One iteration =
// two schedules, one cancel, one fire, at a steady pending depth.
void BM_EventScheduleCancel(benchmark::State& state) {
  const std::int64_t depth = state.range(0);
  Simulation sim;
  std::uint64_t sink = 0;
  SimTime horizon = 0;
  std::vector<EventId> ring(static_cast<std::size_t>(depth), 0);
  std::size_t head = 0;
  for (std::int64_t i = 0; i < depth; ++i) {
    horizon += 5;
    sim.ScheduleAt(horizon, [&sink] { ++sink; });
    ring[static_cast<std::size_t>(i)] =
        sim.ScheduleAt(horizon, [&sink] { sink += 2; });
  }
  for (auto _ : state) {
    horizon += 5;
    sim.ScheduleAt(horizon, [&sink] { ++sink; });
    const EventId doomed = sim.ScheduleAt(horizon, [&sink] { sink += 2; });
    benchmark::DoNotOptimize(sim.Cancel(ring[head]));
    ring[head] = doomed;
    head = (head + 1) % ring.size();
    sim.Step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventScheduleCancel)->Arg(16)->Arg(256)->Arg(1024)->Arg(4096)->Arg(65536);

// --- Estimator -------------------------------------------------------------

// Board with the paper's M = 10 000 observed waits on every module.
StateBoard SampledBoard(Rng* rng) {
  StateBoard board(5);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = 10 * kUsPerMs;
    s.wait_samples.reserve(10000);
    for (int j = 0; j < 10000; ++j) {
      s.wait_samples.push_back(rng->Uniform(0.0, 10000.0));
    }
    board.Publish(std::move(s));
  }
  return board;
}

void BM_BatchWaitDistributionUpdate(benchmark::State& state) {
  // O(M(N-k+1)) with M Monte-Carlo draws across N = 5 modules.
  const PipelineSpec lv = MakeLiveVideo();
  Rng rng(3);
  StateBoard board = SampledBoard(&rng);
  EstimatorOptions options;
  options.mc_samples = static_cast<int>(state.range(0));
  LatencyEstimator est(&lv, &board, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.AggregateWaitDistribution({1, 2, 3, 4}));
  }
}
BENCHMARK(BM_BatchWaitDistributionUpdate)->Arg(128)->Arg(512)->Arg(2048);

void BM_BrokerDecision(benchmark::State& state) {
  // The cached per-admission path: one EstimateSubsequent per decision.
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board(5);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = 10 * kUsPerMs;
    board.Publish(std::move(s));
  }
  EstimatorOptions options;
  LatencyEstimator est(&lv, &board, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.EstimateSubsequent(0));
  }
}
BENCHMARK(BM_BrokerDecision);

// Repeat decisions at a warm epoch: between state syncs the board version is
// unchanged, so the paper's asynchronous-update model says the Monte-Carlo
// aggregation should run once per epoch, not once per decision.
void BM_BrokerDecisionWarmEpoch(benchmark::State& state) {
  const PipelineSpec lv = MakeLiveVideo();
  Rng rng(6);
  StateBoard board = SampledBoard(&rng);
  EstimatorOptions options;  // Default mc_samples = 512.
  LatencyEstimator est(&lv, &board, options, Rng(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.AggregateWaitQuantile({1, 2, 3, 4}, 0.1));
  }
}
BENCHMARK(BM_BrokerDecisionWarmEpoch);

// Epoch advance: every decision lands just after a state sync, paying one
// full Monte-Carlo refresh — the worst case the warm-epoch cache amortizes.
void BM_BrokerDecisionEpochAdvance(benchmark::State& state) {
  const PipelineSpec lv = MakeLiveVideo();
  Rng rng(8);
  StateBoard board = SampledBoard(&rng);
  EstimatorOptions options;
  LatencyEstimator est(&lv, &board, options, Rng(9));
  for (auto _ : state) {
    ModuleState s;
    s.module_id = 0;
    s.batch_duration = 10 * kUsPerMs;
    board.Publish(std::move(s));  // Bumps the board version.
    benchmark::DoNotOptimize(est.EstimateSubsequent(0));
  }
}
BENCHMARK(BM_BrokerDecisionEpochAdvance);

// Cold epoch with a REAL input change: each iteration publishes a module
// state whose batch duration actually moved (EpochAdvance republishes an
// identical state), then pays one full estimate refresh. This is the
// decision-latency worst case the vectorized sweet-spot kernel (batched
// draws + nth_element selection, ISSUE 10) attacks; the gate pins it
// against the pre-vectorization epoch-advance cost.
void BM_BrokerDecisionColdEpoch(benchmark::State& state) {
  const PipelineSpec lv = MakeLiveVideo();
  Rng rng(8);
  StateBoard board = SampledBoard(&rng);
  EstimatorOptions options;
  LatencyEstimator est(&lv, &board, options, Rng(9));
  bool toggle = false;
  for (auto _ : state) {
    toggle = !toggle;
    ModuleState s;
    s.module_id = 0;
    s.batch_duration = (toggle ? 12 : 10) * kUsPerMs;
    board.Publish(std::move(s));  // A real input change, not just a version bump.
    benchmark::DoNotOptimize(est.EstimateSubsequent(0));
  }
}
BENCHMARK(BM_BrokerDecisionColdEpoch);

// --- Control sync + incremental refresh --------------------------------------

// One full serve-mode control sync per iteration — publish 16 warm module
// states (2 000-sample reservoirs), OnSync, the incremental estimator
// refresh, view rebuild and snapshot swap — with the LAST `dirty` modules'
// batch duration actually changed each epoch. Before ISSUE 10 every epoch
// re-ran the full Monte-Carlo aggregation per module regardless of what
// moved (~730 us on the reference container at any dirty count); the
// refresh now re-draws only the dirty modules' sample buffers and rebuilds
// path sums as element-wise adds. Flipping the tail of the chain is the
// conservative cut: module 15 sits on every downstream path, so dirty=1
// still recomputes 15 of 16 cache entries — the saving measured here is
// redraw work, not recompute skips. The 1/4/16 legs are separate named
// benchmarks so bench_compare can gate each against bench/BENCH_PR10.json.
struct SyncRefreshHarness {
  SyncRefreshHarness() : spec(MakeRefreshChain()), board(16) {
    control = std::make_unique<ControlPlane>(&spec, &policy, &board,
                                             ControlPlane::Options());
    Rng rng(17);
    for (int i = 0; i < 16; ++i) {
      ModuleState s;
      s.module_id = i;
      s.batch_duration = 10 * kUsPerMs;
      s.avg_queue_delay = 1500.0;
      s.batch_size = 4;
      s.wait_samples.reserve(2000);
      for (int j = 0; j < 2000; ++j) {
        s.wait_samples.push_back(rng.Uniform(0.0, 10000.0));
      }
      std::sort(s.wait_samples.begin(), s.wait_samples.end());
      states.push_back(std::move(s));
    }
    control->Sync(states, sync_t);
  }

  static PipelineSpec MakeRefreshChain() {
    std::vector<ModuleSpec> modules;
    for (int i = 0; i < 16; ++i) {
      ModuleSpec m;
      m.id = i;
      m.model = "eye_tracking";
      if (i > 0) {
        m.pres.push_back(i - 1);
      }
      if (i < 15) {
        m.subs.push_back(i + 1);
      }
      modules.push_back(std::move(m));
    }
    return PipelineSpec("chain16", MsToUs(1000), std::move(modules));
  }

  PipelineSpec spec;
  StateBoard board;
  PardPolicy policy;
  std::unique_ptr<ControlPlane> control;
  std::vector<ModuleState> states;
  SimTime sync_t = kUsPerSec;
};

void RunControlSyncRefresh(benchmark::State& state, int dirty_modules) {
  SyncRefreshHarness harness;
  bool toggle = false;
  for (auto _ : state) {
    toggle = !toggle;
    const Duration d = (toggle ? 12 : 10) * kUsPerMs;
    for (int m = 16 - dirty_modules; m < 16; ++m) {
      harness.states[static_cast<std::size_t>(m)].batch_duration = d;
    }
    harness.sync_t += kUsPerSec;
    const ControlPlane::SyncStats stats =
        harness.control->Sync(harness.states, harness.sync_t);
    benchmark::DoNotOptimize(stats.refreshed);
  }
  state.counters["dirty_modules"] =
      benchmark::Counter(static_cast<double>(dirty_modules));
}

void BM_ControlSyncRefresh1Modules(benchmark::State& state) {
  RunControlSyncRefresh(state, 1);
}
BENCHMARK(BM_ControlSyncRefresh1Modules)->Unit(benchmark::kMicrosecond);

void BM_ControlSyncRefresh4Modules(benchmark::State& state) {
  RunControlSyncRefresh(state, 4);
}
BENCHMARK(BM_ControlSyncRefresh4Modules)->Unit(benchmark::kMicrosecond);

void BM_ControlSyncRefresh16Modules(benchmark::State& state) {
  RunControlSyncRefresh(state, 16);
}
BENCHMARK(BM_ControlSyncRefresh16Modules)->Unit(benchmark::kMicrosecond);

void BM_StateSyncPayload(benchmark::State& state) {
  // Serializes the compact module state the paper exchanges once per second
  // (queueing delay, batch size, throughput, drop rate, wait distribution
  // digest) and reports its size — the <3.2 kbps/worker claim.
  for (auto _ : state) {
    JsonObject payload;
    payload["module_id"] = 3;
    payload["avg_queue_delay_us"] = 1234.5;
    payload["batch_size"] = 8;
    payload["throughput"] = 212.4;
    payload["drop_rate"] = 0.012;
    JsonArray digest;
    for (int i = 0; i < 16; ++i) {
      digest.emplace_back(static_cast<std::int64_t>(i * 100));
    }
    payload["wait_digest_us"] = std::move(digest);
    const std::string wire = JsonValue(std::move(payload)).Dump();
    benchmark::DoNotOptimize(wire);
    state.counters["payload_bytes"] =
        benchmark::Counter(static_cast<double>(wire.size()));
  }
}
BENCHMARK(BM_StateSyncPayload);

// --- Control-plane admission (multithreaded) -------------------------------

// The serving runtime's broker hot path under overload: one AdmitAtModule
// plus one ShouldDrop per iteration against a published control snapshot
// (PARD policy, live-video pipeline, 10 000 wait samples per module), while
// a control thread keeps republishing state — each Sync() rebuilds the
// policy view (~125 us of Monte-Carlo work) and swaps the snapshot, exactly
// what the overload scenario's control loop does every period (compressed
// here to microbenchmark timescales; the frequent-republication regime the
// ROADMAP's dynamic-interference item needs). Run at 1, 4 and 8 broker
// threads. The Locked variant forces every decision through the
// pre-sharding single-mutex fallback — the PR 4/5 control plane, where
// every decision waits out any in-flight Sync. The scaling claim is
// Snapshot at 8 broker threads vs Locked at 1 (the PR 5 deployment: one
// generator thread admitting inline against the mutex) — ≥3x measured even
// on a single-core container, where the gap is pure reader-writer blocking;
// with real cores the locked leg additionally pays cross-core line bouncing.
// bench_compare gates the Snapshot counter against bench/BENCH_PR6.json
// (see tests: bench_compare_pr6_self, and the CI bench-smoke job).
struct AdmissionHarness {
  explicit AdmissionHarness(bool force_locked) : spec(MakeLiveVideo()), board(5) {
    ControlPlane::Options options;
    options.force_locked = force_locked;
    control = std::make_unique<ControlPlane>(&spec, &policy, &board, options);
    Rng rng(11);
    for (int i = 0; i < 5; ++i) {
      ModuleState s;
      s.module_id = i;
      s.batch_duration = 10 * kUsPerMs;
      s.wait_samples.reserve(10000);
      for (int j = 0; j < 10000; ++j) {
        s.wait_samples.push_back(rng.Uniform(0.0, 10000.0));
      }
      std::sort(s.wait_samples.begin(), s.wait_samples.end());
      states.push_back(std::move(s));
    }
    control->Sync(states, sync_t);
  }

  // The benchmark-scope control loop: republish the same warm state with an
  // advancing clock, with a breather between syncs so decision threads see
  // alternating held/free windows rather than a permanently held lock.
  void StartRepublisher() {
    stop.store(false, std::memory_order_relaxed);
    writer = std::thread([this] {
      while (!stop.load(std::memory_order_relaxed)) {
        sync_t += kUsPerSec;
        control->Sync(states, sync_t);
        std::this_thread::sleep_for(std::chrono::microseconds(10));
      }
    });
  }

  void StopRepublisher() {
    stop.store(true, std::memory_order_relaxed);
    if (writer.joinable()) {
      writer.join();
    }
  }

  PipelineSpec spec;
  StateBoard board;
  PardPolicy policy;
  std::unique_ptr<ControlPlane> control;
  std::vector<ModuleState> states;
  SimTime sync_t = kUsPerSec;
  std::atomic<bool> stop{false};
  std::thread writer;
};

void RunAdmissionLoop(benchmark::State& state, AdmissionHarness& harness) {
  Request req;
  req.id = static_cast<std::uint64_t>(state.thread_index()) + 1;
  req.sent = kUsPerSec;
  req.slo = harness.spec.slo();
  req.deadline = req.sent + req.slo;
  req.hops.resize(5);
  const SimTime now = kUsPerSec + 5 * kUsPerMs;
  AdmissionContext ctx;
  ctx.request = &req;
  ctx.module_id = 0;
  ctx.now = now;
  ctx.batch_start = now;
  ctx.batch_duration = 10 * kUsPerMs;
  ctx.batch_size = 8;
  if (state.thread_index() == 0) {
    harness.StartRepublisher();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.control->AdmitAtModule(req, 0, now));
    benchmark::DoNotOptimize(harness.control->ShouldDrop(ctx));
  }
  if (state.thread_index() == 0) {
    harness.StopRepublisher();
  }
  // Summed across threads, divided by wall time: fleet-wide decisions/sec.
  state.counters["AdmissionDecisionsPerSec"] =
      benchmark::Counter(2.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_AdmissionDecisionSnapshot(benchmark::State& state) {
  // Leaked: shared by all benchmark threads, and the harness must outlive
  // the last of them (static destruction order vs. detached reporters).
  static AdmissionHarness* harness = new AdmissionHarness(/*force_locked=*/false);
  RunAdmissionLoop(state, *harness);
}
BENCHMARK(BM_AdmissionDecisionSnapshot)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_AdmissionDecisionLocked(benchmark::State& state) {
  static AdmissionHarness* harness = new AdmissionHarness(/*force_locked=*/true);
  RunAdmissionLoop(state, *harness);
}
BENCHMARK(BM_AdmissionDecisionLocked)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// --- Observability overhead ------------------------------------------------

// The instrumentation tax on the admission hot path: one broker decision
// (AdmitAtModule + ShouldDrop against a warm snapshot) per iteration, plus
// exactly the extra work ServeRuntime::Deliver does when obs is wired — a
// striped-counter bump and a sampled trace emit — versus the null-pointer
// fast path every site reduces to when obs is off. The pair is captured in
// bench/BENCH_PR7.json and gated in CI: tracing must stay a few-ns tax on a
// ~µs decision, never a second mutex on the hot path.
void RunObsAdmissionLoop(benchmark::State& state, TraceRecorder* trace,
                         MetricsRegistry* metrics) {
  static AdmissionHarness* harness = new AdmissionHarness(/*force_locked=*/false);
  Counter* admitted = metrics != nullptr ? metrics->GetCounter("module.m0.admitted") : nullptr;
  TraceShard* shard = trace != nullptr ? trace->ThisThreadShard() : nullptr;
  std::vector<TraceEvent> scratch;
  Request req;
  req.id = 1;
  req.sent = kUsPerSec;
  req.slo = harness->spec.slo();
  req.deadline = req.sent + req.slo;
  req.hops.resize(5);
  const SimTime now = kUsPerSec + 5 * kUsPerMs;
  AdmissionContext ctx;
  ctx.request = &req;
  ctx.module_id = 0;
  ctx.now = now;
  ctx.batch_start = now;
  ctx.batch_duration = 10 * kUsPerMs;
  ctx.batch_size = 8;
  benchmark::DoNotOptimize(trace);
  benchmark::DoNotOptimize(metrics);
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness->control->AdmitAtModule(req, 0, now));
    benchmark::DoNotOptimize(harness->control->ShouldDrop(ctx));
    ++n;
    if (metrics != nullptr) {
      admitted->Add(1);
    }
    if (trace != nullptr) {
      TraceEvent ev;
      ev.kind = TraceEventKind::kAdmit;
      ev.module = 0;
      ev.request_id = n;  // Varies the sampling hash input, like real ids.
      ev.ts = now;
      trace->EmitSampled(ev);
      if ((n & 8191u) == 0) {
        // Keep the SPSC ring from saturating into the (cheaper) drop-newest
        // path; producer-side drains are the simulator's own pattern.
        scratch.clear();
        shard->Drain(&scratch);
      }
    }
  }
}

void BM_ObsAdmissionUntraced(benchmark::State& state) {
  RunObsAdmissionLoop(state, nullptr, nullptr);
}
BENCHMARK(BM_ObsAdmissionUntraced);

void BM_ObsAdmissionTraced(benchmark::State& state) {
  static TraceRecorder* recorder = [] {
    TraceRecorder::Options options;
    options.sample_rate = 1.0;  // Worst case: every request traced.
    options.seed = 42;
    return new TraceRecorder(options);
  }();
  static MetricsRegistry* registry = new MetricsRegistry();
  RunObsAdmissionLoop(state, recorder, registry);
}
BENCHMARK(BM_ObsAdmissionTraced);

// --- Resilience ------------------------------------------------------------

// Chaos-schedule front end: parse the full grammar and expand a
// probabilistic entry into its concrete timeline. Runs once per experiment
// setup, so this guards against accidental quadratic parsing, not a hot
// path.
void BM_ChaosScheduleParseExpand(benchmark::State& state) {
  for (auto _ : state) {
    const ChaosSchedule schedule = ParseChaosSchedule(
        "5:1:hang:2, 8:0:slow:3.5:4, 10:stall-sync:3, prob:2:hang:1.5:60");
    benchmark::DoNotOptimize(ExpandChaosSchedule(schedule, 42));
  }
}
BENCHMARK(BM_ChaosScheduleParseExpand);

// The retry-path tax: a compressed kill-heavy experiment with the
// deadline-aware retry machinery on, versus BM_EndToEndRun's fault-free
// config. The watchdog/retry bookkeeping must stay noise next to the
// experiment itself — the per-request delta is what the gate bounds. The
// counter reports how many retries actually exercised the path.
void BM_RetryPathKillHeavy(benchmark::State& state) {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 2.0;
  config.base_rate = 250.0;
  config.seed = 7;
  config.slo_override = 2 * kUsPerSec;
  config.runtime.enable_scaling = false;
  config.runtime.fixed_workers = {2, 2, 2};
  config.runtime.fleet_events =
      ParseFaultSchedule("0.5:0:kill:1,0.8:1:kill:1,1.0:1:add:1,1.3:2:kill:1,1.5:0:add:1");
  config.runtime.resilience.max_retries = 2;
  std::uint64_t retries = 0;
  for (auto _ : state) {
    const ExperimentResult result = RunExperiment(config);
    retries = result.retries;
    benchmark::DoNotOptimize(result.analysis->DropRate());
  }
  state.counters["retries"] = benchmark::Counter(static_cast<double>(retries));
}
BENCHMARK(BM_RetryPathKillHeavy)->Unit(benchmark::kMillisecond);

// --- Multi-tenant admission ------------------------------------------------

// The tenant governor's ingress tax: one TenantOf + one AdmitAtIngress per
// iteration against a live shed plan (overloaded fleet, mid-run thresholds).
// This is the entire per-request cost of tenancy on the hot path — two
// splitmix64 hashes, one atomic threshold load and two relaxed counter
// bumps — and the gate pins it at nanoseconds next to the ~µs broker
// decision. Captured in bench/BENCH_PR9.json.
void BM_TenantAdmissionDecision(benchmark::State& state) {
  TenantGovernor governor(MakeReferenceTenantCatalog(), /*seed=*/42);
  std::vector<ModuleState> states(5);
  states[2].load_factor = 1.6;  // Sheds ~37% of traffic, floors permitting.
  governor.Resync(states);
  std::uint64_t id = 0;
  std::uint64_t admitted = 0;
  for (auto _ : state) {
    ++id;
    const int tenant = governor.TenantOf(id);
    admitted += governor.AdmitAtIngress(id, tenant) ? 1 : 0;
  }
  benchmark::DoNotOptimize(admitted);
  state.counters["admit_rate"] = benchmark::Counter(
      id > 0 ? static_cast<double>(admitted) / static_cast<double>(id) : 0.0);
}
BENCHMARK(BM_TenantAdmissionDecision);

// The consolidation scenario, compressed: a 3-tenant mix on one shared
// fleet, end to end through the simulator with per-tenant accounting and
// fleet-cost tracking on. Compare with BM_EndToEndRun — the delta is the
// whole-run price of tenancy (stamping, governor resyncs, per-tenant
// metrics). The counter reports weighted good requests per cost-unit, the
// objective bench/consolidation.cc demonstrates at full scale.
void BM_TenantConsolidationRun(benchmark::State& state) {
  ExperimentConfig config;
  config.app = "lv";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 2.0;
  config.base_rate = 60.0;
  config.seed = 7;
  config.provision_factor = 1.25;
  config.runtime.enable_scaling = true;
  config.runtime.scaling_epoch = 5 * kUsPerSec;
  config.runtime.tenants = MakeReferenceTenantCatalog();
  double value_per_cost = 0.0;
  for (auto _ : state) {
    const ExperimentResult result = RunExperiment(config);
    value_per_cost = result.fleet_cost > 0.0
                         ? result.analysis->WeightedGoodCount() / result.fleet_cost
                         : 0.0;
    benchmark::DoNotOptimize(result.analysis->WeightedNormalizedGoodput());
  }
  state.counters["weighted_good_per_cost"] = benchmark::Counter(value_per_cost);
}
BENCHMARK(BM_TenantConsolidationRun)->Unit(benchmark::kMillisecond);

// --- End to end ------------------------------------------------------------

// A complete compressed experiment (trace generation, serving, analysis):
// the wall-clock number all kernel/estimator/queue speedups roll into.
void BM_EndToEndRun(benchmark::State& state) {
  ExperimentConfig config;
  config.app = "lv";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 2.0;
  config.base_rate = 60.0;
  config.seed = 7;
  config.provision_factor = 1.25;
  config.runtime.enable_scaling = true;
  config.runtime.scaling_epoch = 5 * kUsPerSec;
  std::size_t requests = 0;
  for (auto _ : state) {
    const ExperimentResult result = RunExperiment(config);
    requests = result.analysis->Total();
    benchmark::DoNotOptimize(result.analysis->DropRate());
  }
  state.counters["requests"] = benchmark::Counter(static_cast<double>(requests));
}
BENCHMARK(BM_EndToEndRun)->Unit(benchmark::kMillisecond);

// The same compressed experiment with the full observability stack wired in
// at sample rate 1.0 (every request traced, all metrics live) — the
// whole-event-loop half of the traced/untraced overhead gate. Compare with
// BM_EndToEndRun: the delta is the total tracing tax on a simulator run.
void BM_EndToEndRunTraced(benchmark::State& state) {
  ExperimentConfig config;
  config.app = "lv";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 2.0;
  config.base_rate = 60.0;
  config.seed = 7;
  config.provision_factor = 1.25;
  config.runtime.enable_scaling = true;
  config.runtime.scaling_epoch = 5 * kUsPerSec;
  std::size_t requests = 0;
  for (auto _ : state) {
    TraceRecorder::Options trace_options;
    trace_options.sample_rate = 1.0;
    trace_options.seed = config.seed;
    TraceRecorder recorder(trace_options);
    MetricsRegistry registry;
    config.runtime.trace = &recorder;
    config.runtime.metrics = &registry;
    const ExperimentResult result = RunExperiment(config);
    requests = result.analysis->Total();
    benchmark::DoNotOptimize(result.analysis->DropRate());
    benchmark::DoNotOptimize(recorder.total_dropped_events());
  }
  state.counters["requests"] = benchmark::Counter(static_cast<double>(requests));
}
BENCHMARK(BM_EndToEndRunTraced)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pard

// BENCHMARK_MAIN plus one alias: --json expands to --benchmark_format=json so
// tooling (CI bench-smoke, tools/bench_compare.py) has a stable spelling.
int main(int argc, char** argv) {
  std::vector<char*> args;
  static char json_flag[] = "--benchmark_format=json";
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    args.push_back(std::strcmp(argv[i], "--json") == 0 ? json_flag : argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
