// Figure 13: module load factor and the HBF/LBF prioritization transitions of
// PARD (delayed transition) vs PARD-instant.
//
// The paper's panel shows a workload whose load factor oscillates around
// mu = 1 for long stretches: the instant policy thrashes between HBF and LBF
// on every fluctuation while the delayed policy (eps band from burstiness)
// holds steady. This bench drives exactly that regime: fixed provisioning
// and an offered rate that noisily crosses capacity.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/policy_factory.h"
#include "bench/bench_util.h"
#include "core/pard_policy.h"
#include "metrics/analysis.h"
#include "models/registry.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace {

// Rate curve oscillating around `capacity` with noise, crossing mu = 1 many
// times over the run.
pard::RateFunction OscillatingRate(double capacity, double duration_s, std::uint64_t seed) {
  pard::Rng rng(seed);
  std::vector<pard::RateFunction::Point> points;
  for (double t = 0.0; t <= duration_s; t += 2.0) {
    // Gentle swing just past the hysteresis band plus strong short-term
    // noise: the regime where mu crosses 1.0 on nearly every sync.
    const double swing = 0.10 * std::sin(2.0 * M_PI * t / 60.0);
    const double noise = rng.Normal(0.0, 0.16);
    points.push_back({pard::SecToUs(t), std::max(1.0, capacity * (1.0 + swing + noise))});
  }
  return pard::RateFunction(std::move(points));
}

struct RunStats {
  int transitions = 0;
  double drop_rate = 0.0;
  std::vector<pard::PardPolicy::TransitionSample> log;
};

RunStats Distill(const pard::ExperimentResult& result) {
  RunStats stats;
  for (const auto& t : result.transitions) {
    if (t.module_id == 0) {
      ++stats.transitions;
      stats.log.push_back(t);
    }
  }
  stats.drop_rate = result.analysis->DropRate();
  return stats;
}

}  // namespace

int main() {
  pard::bench::Title("fig13_load_factor",
                     "Fig. 13 (load factor + HBF/LBF transitions, delayed vs instant)");

  const pard::PipelineSpec spec = pard::MakeLiveVideo();
  const std::vector<int> batches = pard::PlanBatchSizes(spec);
  const std::vector<int> workers = pard::PlanWorkers(spec, batches, 400.0, 1.0, 32, 64);
  // Module 0's actual capacity with the planned batch size.
  const double capacity =
      pard::ProfileRegistry::Get(spec.Module(0).model).Throughput(batches[0]) * workers[0];
  const double duration_s = 240.0;
  const pard::RateFunction rate = OscillatingRate(capacity, duration_s, 99);
  // Bespoke workload: 240 s is the oscillation regime by design (not a
  // compressed stand-in), so no WorkloadHeader compression tag here.
  std::printf("workload: duration %.0f s oscillating around capacity %.0f req/s, "
              "%d job%s  [bespoke; ignores PARD_BENCH_*]\n",
              duration_s, capacity, pard::bench::Jobs(),
              pard::bench::Jobs() == 1 ? "" : "s");
  std::printf("offered rate oscillates around capacity %.0f req/s for %.0f s "
              "(mu crosses 1.0 repeatedly)\n",
              capacity, duration_s);

  // Both policies as one concurrent sweep over the identical oscillating
  // arrival stream (same seed + custom trace => same arrivals).
  std::vector<pard::ExperimentConfig> grid;
  for (const std::string policy : {"pard", "pard-instant"}) {
    pard::ExperimentConfig cfg;
    cfg.custom_spec = spec;
    cfg.custom_trace = rate;
    cfg.trace = "oscillating";
    cfg.policy = policy;
    cfg.duration_s = duration_s;
    cfg.seed = 99;
    cfg.runtime.fixed_workers = workers;
    grid.push_back(std::move(cfg));
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());
  const RunStats delayed = Distill(results[0]);
  const RunStats instant = Distill(results[1]);

  std::printf("\n%-14s transitions %4d   drop rate %6.2f%%\n", "pard", delayed.transitions,
              100.0 * delayed.drop_rate);
  std::printf("%-14s transitions %4d   drop rate %6.2f%%\n", "pard-instant",
              instant.transitions, 100.0 * instant.drop_rate);
  std::printf("\ninstant/delayed transition ratio: %.1fx\n",
              delayed.transitions > 0
                  ? static_cast<double>(instant.transitions) / delayed.transitions
                  : static_cast<double>(instant.transitions));

  std::printf("\nmodule-0 transition timeline (pard, delayed):\n ");
  for (const auto& t : delayed.log) {
    std::printf(" [%.0fs mu=%.2f->%s]", pard::UsToSec(t.t), t.load_factor,
                t.mode == pard::PriorityMode::kHbf ? "HBF" : "LBF");
  }
  std::printf("\nmodule-0 transition timeline (pard-instant, first 16):\n ");
  int shown = 0;
  for (const auto& t : instant.log) {
    std::printf(" [%.0fs mu=%.2f->%s]", pard::UsToSec(t.t), t.load_factor,
                t.mode == pard::PriorityMode::kHbf ? "HBF" : "LBF");
    if (++shown >= 16) {
      std::printf(" ...");
      break;
    }
  }
  std::printf("\n\npaper: PARD-instant flips between HBF and LBF on every fluctuation\n");
  std::printf("around mu = 1 and drops ~25%% more requests; the delayed transition's\n");
  std::printf("burstiness-scaled band keeps switching rare with the highest goodput.\n");
  return 0;
}
