// Figure 10: normalized real-time goodput of PARD and baselines across the
// 12 workloads, zoomed into each trace's burst region (the paper's red
// boxes), plus the trace rate curves themselves.
#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_util.h"

using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig10_goodput_timeline",
                     "Fig. 10 (traces + normalized goodput timelines, 12 panels)");
  pard::bench::StdWorkloadHeader();

  // ---- left side: the trace shapes -----------------------------------------
  pard::bench::Section("trace rate curves (compressed reproductions)");
  for (const std::string trace : {"wiki", "tweet", "azure"}) {
    pard::TraceOptions to;
    to.duration_s = 150.0;
    to.base_rate = 240.0;
    to.seed = 7;
    const pard::RateFunction f = pard::MakeTrace(trace, to);
    std::printf("%-6s  CV=%.2f  mean=%.0f req/s  peak=%.0f req/s\n", trace.c_str(),
                f.Cv(0, pard::SecToUs(150)), f.MeanRate(0, pard::SecToUs(150)), f.MaxRate());
  }
  std::printf("paper CVs: wiki 0.47, tweet 1.0, azure 1.3\n");

  // ---- right side: goodput timelines in the burst regions -------------------
  const pard::Duration bin = pard::SecToUs(5);
  for (const std::string trace : {"wiki", "tweet", "azure"}) {
    for (const std::string app : {"lv", "tm", "gm", "da"}) {
      pard::bench::Section(app + "-" + trace + " (burst region)");
      std::map<std::string, pard::ExperimentResult> runs;
      for (const auto& sys : pard::bench::Systems()) {
        runs.emplace(sys, pard::RunExperiment(StdConfig(app, trace, sys)));
      }
      const auto region = runs.at("pard").burst_region;
      std::printf("%-8s", "t (s)");
      for (const auto& sys : pard::bench::Systems()) {
        std::printf(" %10s", sys.c_str());
      }
      std::printf("\n");
      // All systems share identical arrivals, so series align by time.
      std::map<std::string, std::vector<pard::SeriesPoint>> series;
      for (const auto& sys : pard::bench::Systems()) {
        series[sys] =
            runs.at(sys).analysis->Slice(region.begin, region.end).NormalizedGoodputSeries(bin);
      }
      const std::size_t rows = series.at("pard").size();
      std::map<std::string, double> mean;
      for (std::size_t i = 0; i < rows; ++i) {
        std::printf("%-8.0f", pard::UsToSec(series.at("pard")[i].t));
        for (const auto& sys : pard::bench::Systems()) {
          const double v = i < series.at(sys).size() ? series.at(sys)[i].value : 0.0;
          mean[sys] += v / static_cast<double>(rows);
          std::printf(" %10.2f", v);
        }
        std::printf("\n");
      }
      std::printf("mean    ");
      for (const auto& sys : pard::bench::Systems()) {
        std::printf(" %10.2f", mean[sys]);
      }
      std::printf("\n");
      if (mean["nexus"] > 0.0 && mean["clipper++"] > 0.0) {
        std::printf("PARD goodput gain: %.0f%% vs nexus, %.0f%% vs clipper++\n",
                    100.0 * (mean["pard"] / mean["nexus"] - 1.0),
                    100.0 * (mean["pard"] / mean["clipper++"] - 1.0));
      }
    }
  }
  std::printf("\npaper: PARD improves goodput 16%%-176%% over Nexus/Clipper++ and "
              "dominates Naive in every burst region.\n");
  return 0;
}
