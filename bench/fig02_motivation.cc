// Figure 2: why reactive dropping fails.
//  (a) minimum normalized goodput across time-window sizes (lv-tweet)
//  (b) corresponding max window drop rate
//  (c) % of dropped requests per module for the reactive policy, 6 workloads
//  (d) transient drop rate of the reactive policy over time
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig02_motivation",
                     "Fig. 2a/2b (min goodput & drop rate vs window), Fig. 2c (drop "
                     "placement), Fig. 2d (transient drop rate)");
  pard::bench::StdWorkloadHeader(pard::bench::Jobs());

  // One sweep grid: the four systems on lv-tweet (panels a/b/d) followed by
  // the six reactive-policy workloads (panel c). All ten runs are
  // independent, so they execute concurrently on the bench worker pool.
  const std::vector<std::pair<std::string, std::string>> kReactiveWorkloads = {
      {"lv", "tweet"}, {"lv", "wiki"}, {"tm", "tweet"},
      {"tm", "wiki"},  {"gm", "tweet"}, {"gm", "wiki"}};
  std::vector<pard::ExperimentConfig> grid;
  for (const auto& sys : pard::bench::Systems()) {
    grid.push_back(StdConfig("lv", "tweet", sys));
  }
  for (const auto& [app, trace] : kReactiveWorkloads) {
    grid.push_back(StdConfig(app, trace, "nexus"));
  }
  std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  // ---- (a) + (b): lv-tweet, window sweep -----------------------------------
  pard::bench::Section("(a) min normalized goodput / (b) max window drop rate, lv-tweet");
  std::printf("%-12s", "window");
  for (const auto& sys : pard::bench::Systems()) {
    std::printf(" %22s", sys.c_str());
  }
  std::printf("\n");
  std::map<std::string, pard::ExperimentResult> runs;
  for (std::size_t s = 0; s < pard::bench::Systems().size(); ++s) {
    runs.emplace(pard::bench::Systems()[s], std::move(results[s]));
  }
  for (const double window_s : {22.0, 24.0, 26.0}) {
    std::printf("%-12s", (std::to_string(static_cast<int>(window_s)) + "s").c_str());
    for (const auto& sys : pard::bench::Systems()) {
      const pard::RunAnalysis& a = *runs.at(sys).analysis;
      std::printf("   good %5.2f drop %4.0f%%",
                  a.MinNormalizedGoodput(pard::SecToUs(window_s)),
                  Pct(a.MaxWindowDropRate(pard::SecToUs(window_s))));
    }
    std::printf("\n");
  }
  std::printf("paper: Nexus/Clipper++ goodput can fall to 0.30/0.21 of input with "
              "drop rates 70%%/79%%; PARD stays near 1.0.\n");

  // ---- (c): reactive drop placement over 6 workloads ------------------------
  pard::bench::Section("(c) % of drops per module, reactive policy (Nexus)");
  std::printf("%-10s", "workload");
  for (int m = 1; m <= 5; ++m) {
    std::printf(" %6s", ("M" + std::to_string(m)).c_str());
  }
  std::printf("   late-half\n");
  for (std::size_t w = 0; w < kReactiveWorkloads.size(); ++w) {
    const auto& [app, trace] = kReactiveWorkloads[w];
    const auto& r = results[pard::bench::Systems().size() + w];
    const auto share = r.analysis->PerModuleDropShare();
    std::printf("%-10s", (app + "-" + trace).c_str());
    double late = 0.0;
    for (std::size_t m = 0; m < 5; ++m) {
      if (m < share.size()) {
        std::printf(" %5.1f%%", Pct(share[m]));
        if (m >= share.size() / 2) {
          late += share[m];
        }
      } else {
        std::printf(" %6s", "-");
      }
    }
    std::printf("   %5.1f%%\n", Pct(late));
  }
  std::printf("paper: 57.1%%-97.2%% of reactive drops land in the latter half of the pipeline.\n");

  // ---- (d): transient drop rate --------------------------------------------
  pard::bench::Section("(d) transient drop rate over time, reactive policy, lv-tweet");
  const auto series = runs.at("nexus").analysis->TransientDropRateSeries(pard::SecToUs(5));
  double peak = 0.0;
  for (const auto& p : series) {
    peak = std::max(peak, p.value);
  }
  for (const auto& p : series) {
    const int bars = static_cast<int>(p.value * 40);
    std::printf("t=%4.0fs %5.1f%% |%.*s\n", pard::UsToSec(p.t), Pct(p.value), bars,
                "########################################");
  }
  std::printf("peak transient drop rate: %.1f%% (paper: exceeds 95%% around the 2x step)\n",
              Pct(peak));
  return 0;
}
