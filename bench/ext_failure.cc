// Machine-failure disturbance study (extension).
//
// The paper motivates request dropping with two disturbance sources:
// workload bursts and machine failures (§1, §2). The main evaluation
// exercises bursts; this bench exercises the failure path: half of one
// module's GPUs die mid-run, the scaling engine replaces them after a cold
// start, and the dropping policy decides how much goodput survives the
// capacity hole.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using pard::bench::Pct;

int main() {
  pard::bench::Title("ext_failure",
                     "machine-failure disturbance (paper §1/§2 motivation, extension)");

  std::printf("lv pipeline, steady wiki trace; at t=60s half of module 2's workers\n");
  std::printf("fail; scaling replaces them after a cold start.\n\n");
  std::printf("%-12s %12s %12s %16s %18s\n", "policy", "drop rate", "invalid", "goodput@fail",
              "goodput@recovered");
  for (const std::string policy : {"pard", "nexus", "clipper++", "naive"}) {
    pard::ExperimentConfig c;
    c.app = "lv";
    c.trace = "wiki";
    c.policy = policy;
    c.duration_s = 150.0;
    c.base_rate = 200.0;
    c.seed = 7;
    c.provision_factor = 1.25;
    c.runtime.enable_scaling = true;
    c.runtime.scaling_epoch = 5 * pard::kUsPerSec;
    pard::RuntimeOptions::FailureEvent failure;
    failure.at = pard::SecToUs(60);
    failure.module_id = 1;
    failure.workers = 2;
    c.runtime.failures = {failure};
    const auto r = pard::RunExperiment(c);
    const double during =
        r.analysis->Slice(pard::SecToUs(60), pard::SecToUs(75)).NormalizedGoodput();
    const double after =
        r.analysis->Slice(pard::SecToUs(90), pard::SecToUs(140)).NormalizedGoodput();
    std::printf("%-12s %11.2f%% %11.2f%% %15.3f %17.3f\n", policy.c_str(),
                Pct(r.analysis->DropRate()), Pct(r.analysis->InvalidRate()), during, after);
  }
  std::printf("\nexpected shape: every policy dips while capacity is down; PARD wastes\n");
  std::printf("the least computation on doomed requests during the hole and recovers\n");
  std::printf("to full goodput once replacements warm up.\n");
  return 0;
}
