// Figure 15 + Table 2: the RAG workflow case study. Reactive vs proactive vs
// predict (output-length oracle) dropping under a 5 s TTFT SLO, plus the
// per-stage latency distributions that drive the estimation challenges.
#include <cstdio>

#include "bench/bench_util.h"
#include "rag/rag_workflow.h"

int main() {
  pard::bench::Title("fig15_rag", "Fig. 15a/15b + Table 2 (RAG workflow case study)");

  pard::RagOptions options;
  options.duration_s = 120.0;

  pard::bench::Section("(a) normalized goodput and drop rate");
  std::printf("%-12s %14s %12s\n", "policy", "norm.goodput", "drop rate");
  double reactive_drop = 0.0;
  double proactive_drop = 0.0;
  for (const pard::RagPolicy policy :
       {pard::RagPolicy::kPredict, pard::RagPolicy::kReactive, pard::RagPolicy::kProactive}) {
    const pard::RagResult r = pard::RunRagWorkflow(policy, options);
    std::printf("%-12s %14.3f %11.1f%%\n", pard::RagPolicyName(policy).c_str(),
                r.NormalizedGoodput(), 100.0 * r.DropRate());
    if (policy == pard::RagPolicy::kReactive) {
      reactive_drop = r.DropRate();
    }
    if (policy == pard::RagPolicy::kProactive) {
      proactive_drop = r.DropRate();
    }
  }
  if (reactive_drop > 0.0) {
    std::printf("proactive reduces drops by %.0f%% vs reactive\n",
                100.0 * (1.0 - proactive_drop / reactive_drop));
  }
  std::printf("paper: reactive 39%% drops, proactive 17%%, predict (oracle) 11%%;\n");
  std::printf("proactive cuts the drop rate by 22%%.\n");

  pard::bench::Section("(b) module latency distribution (ms)");
  const pard::RagResult detail = pard::RunRagWorkflow(pard::RagPolicy::kProactive, options);
  std::printf("%-10s %10s %10s %10s %10s\n", "stage", "p50", "p90", "p99", "max");
  for (const auto& stage : detail.stages) {
    if (stage.latency.Empty()) {
      continue;
    }
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", stage.name.c_str(),
                stage.latency.Quantile(0.5) / 1000.0, stage.latency.Quantile(0.9) / 1000.0,
                stage.latency.Quantile(0.99) / 1000.0, stage.latency.Max() / 1000.0);
  }
  std::printf("paper: rewrite latency varies with output length; search has a network\n");
  std::printf("long tail; retrieve and generate are comparatively tight.\n");
  return 0;
}
