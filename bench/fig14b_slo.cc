// Figure 14b: SLO sensitivity. Drop rate as the end-to-end SLO sweeps
// 200-600 ms; all systems re-plan their batch sizes per SLO.
#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"

using pard::bench::Pct;
using pard::bench::StdConfig;

int main() {
  pard::bench::Title("fig14b_slo", "Fig. 14b (drop rate vs SLO, 200-600 ms)");
  pard::bench::StdWorkloadHeader(pard::bench::Jobs());

  // (SLO x system) sweep grid, run concurrently.
  const std::vector<double> slos_ms = {200.0, 300.0, 400.0, 500.0, 600.0};
  std::vector<pard::ExperimentConfig> grid;
  for (const double slo_ms : slos_ms) {
    for (const auto& sys : pard::bench::Systems()) {
      pard::ExperimentConfig cfg = StdConfig("lv", "tweet", sys);
      cfg.slo_override = pard::MsToUs(slo_ms);
      grid.push_back(std::move(cfg));
    }
  }
  const std::vector<pard::ExperimentResult> results =
      pard::RunExperiments(grid, pard::bench::Jobs());

  std::printf("%-10s", "SLO (ms)");
  for (const auto& sys : pard::bench::Systems()) {
    std::printf(" %12s", sys.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < slos_ms.size(); ++i) {
    std::printf("%-10.0f", slos_ms[i]);
    for (std::size_t s = 0; s < pard::bench::Systems().size(); ++s) {
      const auto& r = results[i * pard::bench::Systems().size() + s];
      std::printf(" %11.2f%%", Pct(r.analysis->DropRate()));
    }
    std::printf("\n");
  }
  std::printf("\npaper: PARD sustains the lowest drop rates (0.85%%-3.04%%) across SLOs,\n");
  std::printf("1.9x-5.3x lower than the baselines.\n");
  return 0;
}
