// pardsim — command-line experiment runner.
//
// Runs one serving experiment (app x trace x policy) and prints a summary or
// a full JSON report. Example:
//
//   pardsim --app lv --trace tweet --policy pard --duration-s 150
//           --base-rate 200 --enable-scaling --json
//
// Heterogeneous fleets and fleet dynamics:
//
//   pardsim --app lv --backend-grades 1.0,0.5 --fault-schedule 60:1:kill:2,80:1:add:2
//           --serve --enable-scaling --speedup 25
//
// Long traces can be time-sharded across cores: --shards N splits the
// arrival stream into N independent runtimes executed on --jobs worker
// threads (see src/exec/sharded_trace.h for the warm-up-overlap
// approximation). See --help for all knobs.
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "core/latency_estimator.h"
#include "exec/thread_pool.h"
#include "harness/experiment.h"
#include "jsonio/json.h"
#include "metrics/report.h"
#include "obs/drop_reason.h"
#include "pipeline/apps.h"
#include "pipeline/backend_profile.h"
#include "pipeline/pipeline_spec.h"
#include "pipeline/tenant_spec.h"
#include "resilience/chaos.h"
#include "runtime/backend_fleet.h"

namespace {

pard::FlagSet BuildFlags() {
  pard::FlagSet flags;
  flags.AddString("app", "lv", "pipeline application: tm | lv | gm | da | lvhet");
  flags.AddString("trace", "tweet", "workload trace: wiki | tweet | azure");
  flags.AddString("policy", "pard",
                  "drop policy: pard, nexus, clipper++, naive, pard-back, pard-sf, "
                  "pard-oc, pard-split, pard-wcl, pard-lower, pard-upper, pard-fcfs, "
                  "pard-hbf, pard-lbf, pard-instant, pard-path");
  flags.AddString("pipeline-json", "",
                  "path to a JSON pipeline definition (overrides --app)");
  flags.AddDouble("duration-s", 150.0, "trace length in seconds");
  flags.AddDouble("base-rate", 200.0, "trace base rate, req/s");
  flags.AddDouble("slo-ms", 0.0, "override the app SLO (0 = app default)");
  flags.AddDouble("lambda", 0.1, "PARD batch-wait quantile");
  flags.AddInt("mc-samples", pard::kDefaultMcSamples,
               "estimator Monte-Carlo draws per epoch refresh (paper setup keeps "
               "M = 10000 reservoir samples per module; the default converges the "
               "lambda quantile at a fraction of the refresh cost)");
  flags.AddDouble("provision", 1.25, "capacity headroom over the mean rate");
  flags.AddDouble("window-s", 5.0, "state-planner sliding window length");
  flags.AddInt("seed", 7, "master random seed");
  flags.AddInt("jobs", 0,
               "worker threads for sharded execution (0 = one per hardware thread; "
               "not meaningful with --serve, which provisions its own module workers)");
  flags.AddInt("shards", 1,
               "time-shard the trace across this many independent runtimes (1 = exact "
               "single-runtime simulation)");
  flags.AddBool("enable-scaling", true,
                "enable the resource-scaling engine (both substrates; in --serve mode "
                "scale-ups are real threads that serve after their backend's cold "
                "start, capped at the serving thread budget)");
  flags.AddString("backend-grades", "",
                  "comma-separated speed grades composing a heterogeneous backend "
                  "catalog (e.g. 1.0,0.5); each grade takes an optional @cost "
                  "suffix in cost-units/s (e.g. 1.0@3.5,0.5@1.0; default cost 1). "
                  "Workers draw grades round-robin, or by best speed-per-cost "
                  "with --cost-aware. Conflicts with a pipeline that already "
                  "declares backends");
  flags.AddBool("cost-aware", false,
                "provision each scale-up against the cheapest effective backend "
                "grade (argmax of effective speed / cost_per_s) instead of "
                "round-robin; both substrates");
  flags.AddString("tenants", "",
                  "path to a {\"tenants\": [...]} JSON catalog (see "
                  "configs/tenants_mixed.json); requests are hash-assigned to "
                  "tenants, admission maximizes weighted goodput, and the "
                  "summary/JSON gain a per-tenant block. Conflicts with "
                  "--shards > 1");
  flags.AddString("fault-schedule", "",
                  "deterministic fleet disturbances: comma-separated "
                  "<at_s>:<module>:<kill|add>:<count> events (e.g. "
                  "60:1:kill:2,80:1:add:2), honored by both substrates");
  flags.AddString("chaos-schedule", "",
                  "chaos injections: comma-separated "
                  "<at_s>:<module>:hang:<count>[:<dur_s>] | "
                  "<at_s>:<module>:slow:<factor>:<dur_s> | "
                  "<at_s>:stall-sync:<dur_s> | "
                  "prob:<module>:hang:<rate_per_s>:<until_s> events; probabilistic "
                  "entries expand deterministically from --seed, honored by both "
                  "substrates");
  flags.AddInt("max-retries", 0,
               "deadline-aware retry budget for requests lost to worker failures "
               "(0 = legacy behavior: in-flight work on a killed worker is dropped)");
  flags.AddDouble("hang-budget-s", 0.0,
                  "serving mode: watchdog hang budget in virtual seconds; a busy "
                  "worker whose heartbeat is older than this is force-failed and "
                  "replaced (0 = watchdog off)");
  flags.AddDouble("staleness-budget-s", 0.0,
                  "serving mode: control-snapshot staleness budget in virtual "
                  "seconds; readers of an older snapshot fall back to conservative "
                  "static drop rules (0 = never degrade)");
  flags.AddBool("dynamic-paths", false, "requests take one branch per fork (dynamic DAG)");
  flags.AddBool("json", false, "emit a full JSON report instead of text");
  flags.AddBool("serve", false,
                "wall-clock serving mode: threaded module workers + open-loop load "
                "generator instead of the discrete-event simulator");
  flags.AddDouble("speedup", 20.0,
                  "serving mode: virtual seconds per wall second (1 = real time)");
  flags.AddString("arrivals", "trace",
                  "serving mode load generator: trace (replay --trace), poisson "
                  "(constant --base-rate), mmpp (bursty, --base-rate/--burst-rate)");
  flags.AddDouble("burst-rate", 0.0,
                  "serving mode mmpp burst-state rate, req/s (0 = 4x --base-rate)");
  flags.AddInt("broker-threads", 1,
               "serving mode: broker threads fanning injected requests into the "
               "pipeline (N > 1 admits concurrently through the lock-free control "
               "plane; delivery order across brokers is approximate)");
  flags.AddBool("parallel-refresh", true,
                "serving mode: fan the incremental estimator refresh across a "
                "thread pool at every control sync (per-module RNG streams keep "
                "results identical at any thread count); false = refresh inline "
                "on the control thread");
  flags.AddInt("refresh-threads", 0,
               "serving mode: estimator refresh-pool threads (0 = one per "
               "hardware thread); ignored without --parallel-refresh");
  flags.AddString("trace-out", "",
                  "write a Chrome trace-event JSON of per-request lifecycle spans "
                  "to this path (load at https://ui.perfetto.dev); empty = tracing off");
  flags.AddDouble("trace-sample-rate", 1.0,
                  "fraction of requests traced, [0, 1]; sampling is deterministic "
                  "per request id, so a sim run replays to an identical trace");
  flags.AddString("metrics-out", "",
                  "write live-metrics JSON (counter totals, gauges, histograms and "
                  "a sampled time series) to this path; empty = metrics off");
  flags.AddDouble("metrics-interval-s", 1.0,
                  "metrics sampling period in virtual seconds (--serve mode; the "
                  "simulator samples at control-plane sync ticks)");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  pard::FlagSet flags = BuildFlags();
  try {
    flags.Parse(argc - 1, argv + 1);
  } catch (const pard::CheckError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), flags.Usage("pardsim").c_str());
    return 2;
  }
  if (flags.HelpRequested()) {
    std::printf("%s", flags.Usage("pardsim").c_str());
    return 0;
  }

  pard::ExperimentConfig config;
  config.app = flags.GetString("app");
  config.trace = flags.GetString("trace");
  config.policy = flags.GetString("policy");
  config.duration_s = flags.GetDouble("duration-s");
  config.base_rate = flags.GetDouble("base-rate");
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed"));
  config.provision_factor = flags.GetDouble("provision");
  config.params.lambda = flags.GetDouble("lambda");
  const std::int64_t mc_samples = flags.GetInt("mc-samples");
  if (mc_samples < 1 || mc_samples > 1000000) {
    std::fprintf(stderr, "--mc-samples must be in [1, 1000000] (got %lld)\n",
                 static_cast<long long>(mc_samples));
    return 2;
  }
  config.params.mc_samples = static_cast<int>(mc_samples);
  config.runtime.stats_window = pard::SecToUs(flags.GetDouble("window-s"));
  config.runtime.enable_scaling = flags.GetBool("enable-scaling");
  config.runtime.dynamic_paths = flags.GetBool("dynamic-paths");
  if (!flags.GetString("fault-schedule").empty()) {
    try {
      config.runtime.fleet_events = pard::ParseFaultSchedule(flags.GetString("fault-schedule"));
    } catch (const pard::CheckError& e) {
      std::fprintf(stderr, "--fault-schedule: %s\n", e.what());
      return 2;
    }
  }
  if (!flags.GetString("chaos-schedule").empty()) {
    try {
      config.runtime.resilience.chaos =
          pard::ParseChaosSchedule(flags.GetString("chaos-schedule"));
    } catch (const pard::CheckError& e) {
      std::fprintf(stderr, "--chaos-schedule: %s\n", e.what());
      return 2;
    }
  }
  const std::int64_t max_retries = flags.GetInt("max-retries");
  if (max_retries < 0 || max_retries > 1000) {
    std::fprintf(stderr, "--max-retries must be in [0, 1000] (got %lld)\n",
                 static_cast<long long>(max_retries));
    return 2;
  }
  config.runtime.resilience.max_retries = static_cast<int>(max_retries);
  if (flags.GetDouble("hang-budget-s") < 0.0) {
    std::fprintf(stderr, "--hang-budget-s must be >= 0 (got %g)\n",
                 flags.GetDouble("hang-budget-s"));
    return 2;
  }
  config.runtime.resilience.hang_budget = pard::SecToUs(flags.GetDouble("hang-budget-s"));
  if (flags.GetDouble("staleness-budget-s") < 0.0) {
    std::fprintf(stderr, "--staleness-budget-s must be >= 0 (got %g)\n",
                 flags.GetDouble("staleness-budget-s"));
    return 2;
  }
  config.runtime.resilience.staleness_budget =
      pard::SecToUs(flags.GetDouble("staleness-budget-s"));
  if (flags.GetDouble("slo-ms") > 0.0) {
    config.slo_override = pard::MsToUs(flags.GetDouble("slo-ms"));
  }
  if (!flags.GetString("pipeline-json").empty()) {
    FILE* f = std::fopen(flags.GetString("pipeline-json").c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", flags.GetString("pipeline-json").c_str());
      return 2;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    try {
      config.custom_spec = pard::PipelineSpec::FromJsonText(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--pipeline-json %s: %s\n",
                   flags.GetString("pipeline-json").c_str(), e.what());
      return 2;
    }
  }
  if (!flags.GetString("backend-grades").empty()) {
    pard::PipelineSpec spec = config.custom_spec.has_value()
                                  ? *config.custom_spec
                                  : pard::MakeApp(config.app);
    if (!spec.backends().empty()) {
      std::fprintf(stderr,
                   "--backend-grades conflicts with a pipeline that already declares a "
                   "backend catalog (%s)\n",
                   config.custom_spec.has_value() ? "--pipeline-json" : config.app.c_str());
      return 2;
    }
    try {
      spec.set_backends(pard::ParseBackendGrades(flags.GetString("backend-grades")));
    } catch (const pard::CheckError& e) {
      std::fprintf(stderr, "--backend-grades: %s\n", e.what());
      return 2;
    }
    config.custom_spec = std::move(spec);
  }
  config.runtime.cost_aware_provisioning = flags.GetBool("cost-aware");
  if (!flags.GetString("tenants").empty()) {
    FILE* f = std::fopen(flags.GetString("tenants").c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", flags.GetString("tenants").c_str());
      return 2;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    try {
      config.runtime.tenants = pard::ParseTenantCatalogText(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "--tenants %s: %s\n", flags.GetString("tenants").c_str(),
                   e.what());
      return 2;
    }
  }

  config.obs.trace_out = flags.GetString("trace-out");
  config.obs.trace_sample_rate = flags.GetDouble("trace-sample-rate");
  if (config.obs.trace_sample_rate < 0.0 || config.obs.trace_sample_rate > 1.0) {
    std::fprintf(stderr, "--trace-sample-rate must be in [0, 1] (got %g)\n",
                 config.obs.trace_sample_rate);
    return 2;
  }
  config.obs.metrics_out = flags.GetString("metrics-out");
  config.obs.metrics_interval_s = flags.GetDouble("metrics-interval-s");
  if (!(config.obs.metrics_interval_s > 0.0)) {
    std::fprintf(stderr, "--metrics-interval-s must be > 0 (got %g)\n",
                 config.obs.metrics_interval_s);
    return 2;
  }

  const int shards = static_cast<int>(flags.GetInt("shards"));
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1 (got %d)\n", shards);
    return 2;
  }
  if (shards > 1 &&
      (!config.obs.trace_out.empty() || !config.obs.metrics_out.empty())) {
    std::fprintf(stderr,
                 "--trace-out/--metrics-out are not supported with --shards > 1\n");
    return 2;
  }
  if (shards > 1 && !config.runtime.tenants.empty()) {
    std::fprintf(stderr, "--tenants is not supported with --shards > 1\n");
    return 2;
  }
  const std::int64_t jobs_flag = flags.GetInt("jobs");
  if (jobs_flag < 0) {
    std::fprintf(stderr, "--jobs must be >= 0 (got %lld; 0 = one per hardware thread)\n",
                 static_cast<long long>(jobs_flag));
    return 2;
  }
  const int jobs = pard::ThreadPool::ResolveJobs(static_cast<int>(jobs_flag));

  const bool serve_mode = flags.GetBool("serve");
  pard::ServeOptions serve;
  if (serve_mode) {
    serve.speedup = flags.GetDouble("speedup");
    if (!(serve.speedup > 0.0)) {
      std::fprintf(stderr, "--speedup must be > 0 (got %g)\n", serve.speedup);
      return 2;
    }
    const std::string& arrivals = flags.GetString("arrivals");
    if (arrivals == "trace") {
      serve.arrivals = pard::ServeOptions::Arrivals::kTrace;
    } else if (arrivals == "poisson") {
      serve.arrivals = pard::ServeOptions::Arrivals::kPoisson;
      serve.poisson_rate = config.base_rate;
    } else if (arrivals == "mmpp") {
      serve.arrivals = pard::ServeOptions::Arrivals::kMmpp;
      serve.mmpp.base_rate = config.base_rate;
      const double burst = flags.GetDouble("burst-rate");
      serve.mmpp.burst_rate = burst > 0.0 ? burst : 4.0 * config.base_rate;
    } else {
      std::fprintf(stderr, "--arrivals must be trace | poisson | mmpp (got %s)\n",
                   arrivals.c_str());
      return 2;
    }
    const std::int64_t broker_threads = flags.GetInt("broker-threads");
    if (broker_threads < 1 || broker_threads > 64) {
      std::fprintf(stderr, "--broker-threads must be in [1, 64] (got %lld)\n",
                   static_cast<long long>(broker_threads));
      return 2;
    }
    serve.broker_threads = static_cast<int>(broker_threads);
    const std::int64_t refresh_threads = flags.GetInt("refresh-threads");
    if (refresh_threads < 0 || refresh_threads > 64) {
      std::fprintf(stderr, "--refresh-threads must be in [0, 64] (got %lld)\n",
                   static_cast<long long>(refresh_threads));
      return 2;
    }
    serve.parallel_refresh = flags.GetBool("parallel-refresh");
    serve.refresh_threads = static_cast<int>(refresh_threads);
    if (shards > 1) {
      std::fprintf(stderr, "--serve and --shards are mutually exclusive\n");
      return 2;
    }
    if (jobs_flag > 0) {
      std::fprintf(stderr,
                   "note: --jobs has no effect with --serve (module workers are "
                   "provisioned from the workload)\n");
    }
  }

  pard::ExperimentResult result;
  try {
    result = serve_mode ? pard::RunServeExperiment(config, serve)
             : shards > 1 ? pard::RunShardedExperiment(config, shards, jobs)
                          : pard::RunExperiment(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }
  const pard::RunAnalysis& a = *result.analysis;

  const bool resilience_on = !config.runtime.resilience.chaos.empty() ||
                             config.runtime.resilience.max_retries > 0 ||
                             config.runtime.resilience.hang_budget > 0 ||
                             config.runtime.resilience.staleness_budget > 0;

  const bool tenants_on = !config.runtime.tenants.empty();

  if (flags.GetBool("json")) {
    pard::JsonValue report = pard::BuildRunReport(a);
    if (resilience_on) {
      pard::JsonObject resilience;
      resilience["retries"] = static_cast<std::int64_t>(result.retries);
      resilience["watchdog_recoveries"] =
          static_cast<std::int64_t>(result.watchdog_recoveries);
      resilience["stale_fallbacks"] = static_cast<std::int64_t>(result.stale_fallbacks);
      report.AsObject()["resilience"] = std::move(resilience);
    }
    if (tenants_on) {
      report.AsObject()["tenants"] =
          pard::BuildTenantReport(a, config.runtime.tenants);
    }
    // The cost block only appears when the run opted into tenancy or
    // cost-aware provisioning, keeping legacy JSON reports byte-stable.
    if (tenants_on || config.runtime.cost_aware_provisioning) {
      pard::JsonObject cost;
      cost["fleet_cost"] = result.fleet_cost;
      cost["weighted_goodput_per_cost"] =
          result.fleet_cost > 0.0 ? a.WeightedGoodCount() / result.fleet_cost : 0.0;
      report.AsObject()["cost"] = std::move(cost);
    }
    std::printf("%s\n", report.Dump(2).c_str());
    return 0;
  }

  std::printf("app=%s trace=%s policy=%s  (%zu requests, mean input %.0f req/s)\n",
              config.app.c_str(), config.trace.c_str(), config.policy.c_str(), a.Total(),
              result.mean_input_rate);
  std::printf("workload: duration %g s, base rate %g req/s", config.duration_s,
              config.base_rate);
  if (shards > 1) {
    std::printf(", %d shards on %d jobs", shards, jobs);
  }
  if (serve_mode) {
    std::printf(", serving live (%s arrivals, speedup %gx; wall-clock timing — "
                "numbers vary run to run)",
                flags.GetString("arrivals").c_str(), serve.speedup);
  }
  std::printf("\n");
  if (resilience_on) {
    std::printf("resilience     retries %llu, watchdog recoveries %llu, stale fallbacks %llu\n",
                static_cast<unsigned long long>(result.retries),
                static_cast<unsigned long long>(result.watchdog_recoveries),
                static_cast<unsigned long long>(result.stale_fallbacks));
  }
  std::printf("goodput        %10.1f req/s  (normalized %.3f)\n", a.MeanGoodput(),
              a.NormalizedGoodput());
  std::printf("drop rate      %10.2f %%\n", 100.0 * a.DropRate());
  std::printf("invalid rate   %10.2f %%\n", 100.0 * a.InvalidRate());
  std::printf("drop placement ");
  const auto share = a.PerModuleDropShare();
  for (std::size_t m = 0; m < share.size(); ++m) {
    std::printf(" M%zu %.1f%%", m + 1, 100.0 * share[m]);
  }
  std::printf("\n");
  const std::size_t total_dropped = a.DroppedCount();
  if (total_dropped > 0) {
    std::printf("drop reasons   (of %zu dropped)\n", total_dropped);
    for (int r = 0; r < pard::kNumDropReasons; ++r) {
      const std::size_t count = result.drop_reason_counts[static_cast<std::size_t>(r)];
      if (count == 0) {
        continue;  // "none" only prints when attribution leaked (a bug).
      }
      std::printf("  %-20s %8zu  (%.1f%%)\n",
                  pard::DropReasonName(static_cast<pard::DropReason>(r)), count,
                  100.0 * static_cast<double>(count) / static_cast<double>(total_dropped));
    }
  }
  if (tenants_on || config.runtime.cost_aware_provisioning) {
    std::printf("fleet cost     %10.1f cost-units  (weighted goodput/cost %.4f)\n",
                result.fleet_cost,
                result.fleet_cost > 0.0 ? a.WeightedGoodCount() / result.fleet_cost
                                        : 0.0);
  }
  if (tenants_on) {
    std::printf("tenants        (%zu configured; weighted normalized goodput %.3f)\n",
                config.runtime.tenants.size(), a.WeightedNormalizedGoodput());
    const auto breakdown = a.PerTenant();
    std::printf("  %-12s %6s %6s %8s %8s %7s %7s\n", "name", "weight", "share",
                "total", "good", "admit%", "ngood");
    for (std::size_t t = 0; t < config.runtime.tenants.size(); ++t) {
      const pard::TenantSpec& spec = config.runtime.tenants[t];
      const pard::TenantBreakdown b =
          t < breakdown.size() ? breakdown[t] : pard::TenantBreakdown{};
      const std::size_t shed =
          b.drop_reasons.empty()
              ? 0
              : b.drop_reasons[static_cast<std::size_t>(pard::DropReason::kTenantShed)];
      const double admit =
          b.total == 0 ? 1.0
                       : 1.0 - static_cast<double>(shed) / static_cast<double>(b.total);
      std::printf("  %-12s %6.1f %6.2f %8zu %8zu %6.1f%% %7.3f\n", spec.name.c_str(),
                  spec.weight, spec.share, b.total, b.good, 100.0 * admit,
                  b.NormalizedGoodput());
    }
  }
  return 0;
}
