// dump_configs — regenerate configs/*.json from the built-in app definitions.
//
// The shipped JSON pipeline specs must round-trip against MakeApp() exactly
// (tests/configs_test.cc asserts this), so they are machine-generated rather
// than hand-written:
//
//   dump_configs [output_dir]     (default: configs)
#include <cstdio>
#include <fstream>
#include <string>

#include "pipeline/apps.h"
#include "pipeline/pipeline_spec.h"
#include "pipeline/tenant_spec.h"

namespace {

struct AppFile {
  const char* app;
  const char* file;
};

constexpr AppFile kAppFiles[] = {
    {"tm", "traffic_monitoring.json"},
    {"lv", "live_video.json"},
    {"gm", "game_analysis.json"},
    {"da", "dag_live_video.json"},
    // Heterogeneous-backend extension: lv on a mixed a100/t4 catalog. The
    // emitted "backends" array is the reference for the profile JSON schema
    // (see README "Heterogeneous backends & fleet dynamics").
    {"lvhet", "hetero_live_video.json"},
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "configs";
  for (const AppFile& af : kAppFiles) {
    const pard::PipelineSpec spec = pard::MakeApp(af.app);
    const std::string path = out_dir + "/" + af.file;
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s (does %s/ exist?)\n", path.c_str(),
                   out_dir.c_str());
      return 1;
    }
    out << spec.ToJson().Dump(2) << "\n";
    out.close();
    if (out.fail()) {
      std::fprintf(stderr, "write to %s failed\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%s, %d modules)\n", path.c_str(), spec.app_name().c_str(),
                spec.NumModules());
  }
  // The reference multi-tenant mix (pardsim --tenants; round-tripped by
  // tests/configs_test.cc like the pipeline specs above).
  {
    const std::string path = out_dir + "/tenants_mixed.json";
    std::ofstream out(path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s (does %s/ exist?)\n", path.c_str(),
                   out_dir.c_str());
      return 1;
    }
    const auto catalog = pard::MakeReferenceTenantCatalog();
    out << pard::TenantCatalogToJson(catalog).Dump(2) << "\n";
    out.close();
    if (out.fail()) {
      std::fprintf(stderr, "write to %s failed\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu tenants)\n", path.c_str(), catalog.size());
  }
  return 0;
}
