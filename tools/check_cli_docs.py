#!/usr/bin/env python3
"""Drift check for docs/CLI.md against the built pardsim binary.

Two assertions:
  1. The fenced block after the `help-output` marker in docs/CLI.md is
     byte-identical to the live `pardsim --help` output.
  2. Every `--flag` the binary reports also appears in the prose part of
     the doc (the reference tables), so a new flag can't hide in the
     transcript alone.

Usage: check_cli_docs.py <path/to/CLI.md> <path/to/pardsim>
Exit 0 when in sync; exit 1 with a unified diff / missing-flag list.
"""

import difflib
import re
import subprocess
import sys

MARKER = "<!-- help-output"


def extract_transcript(doc_text):
    """Return (prose, transcript) split at the help-output fenced block."""
    marker_at = doc_text.find(MARKER)
    if marker_at < 0:
        sys.exit("docs/CLI.md: missing '%s' marker" % MARKER)
    fence_open = doc_text.find("```text\n", marker_at)
    if fence_open < 0:
        sys.exit("docs/CLI.md: no ```text fence after the help-output marker")
    body_at = fence_open + len("```text\n")
    fence_close = doc_text.find("\n```", body_at)
    if fence_close < 0:
        sys.exit("docs/CLI.md: unterminated help-output fence")
    prose = doc_text[:marker_at]
    transcript = doc_text[body_at : fence_close + 1]
    return prose, transcript


def main():
    if len(sys.argv) != 3:
        sys.exit("usage: check_cli_docs.py <CLI.md> <pardsim>")
    doc_path, binary = sys.argv[1], sys.argv[2]

    with open(doc_path, encoding="utf-8") as f:
        prose, transcript = extract_transcript(f.read())

    run = subprocess.run(
        [binary, "--help"], capture_output=True, text=True, timeout=60
    )
    help_text = run.stdout
    if not help_text.startswith("usage:"):
        sys.exit("%s --help produced no usage text (exit %d)" % (binary, run.returncode))

    failed = False
    if transcript != help_text:
        print("docs/CLI.md transcript is out of sync with `pardsim --help`:")
        sys.stdout.writelines(
            difflib.unified_diff(
                transcript.splitlines(keepends=True),
                help_text.splitlines(keepends=True),
                fromfile="docs/CLI.md (help-output block)",
                tofile="pardsim --help",
            )
        )
        failed = True

    flags = sorted(set(re.findall(r"^  (--[a-z][a-z0-9-]*) ", help_text, re.M)))
    missing = [f for f in flags if "`%s`" % f not in prose]
    if missing:
        print("flags present in --help but absent from the docs/CLI.md tables:")
        for f in missing:
            print("  " + f)
        failed = True

    if failed:
        print("\nregenerate the transcript with `pardsim --help` and document "
              "new flags in the tables above it")
        sys.exit(1)
    print("docs/CLI.md in sync: %d flags documented" % len(flags))


if __name__ == "__main__":
    main()
