// bench_compare — CI perf-regression gate over micro_overhead --json output.
//
// Diffs a current Google-Benchmark JSON report against a checked-in baseline
// (bench/BENCH_PR3.json) and fails when any *gated* counter slowed down by
// more than the threshold:
//
//   bench_compare bench/BENCH_PR3.json now.json --threshold 0.30 --report compare.txt
//
// A second mode renders the per-PR baseline series as a markdown trajectory
// table (the perf dashboard the ROADMAP asks for; CI uploads it as an
// artifact):
//
//   bench_compare --history bench/BENCH_PR3.json bench/BENCH_PR4.json bench/BENCH_PR5.json
//                 --report bench_history.md
//
// Default gates cover the hot-path counters the PR 3 overhaul engineered:
// event schedule/fire, schedule/cancel, and the warm-epoch broker decision.
// A gated benchmark missing from the current report is itself a failure
// (deleting a counter must not silently pass the gate). Exit codes:
//   0 = all gated counters within threshold
//   1 = regression (or gated counter missing)
//   2 = usage / IO / malformed report
//
// Perf noise note: CI runners are noisy, which is why the gate compares
// against the deliberately conservative pre-overhaul baseline with a wide
// threshold — it catches "accidentally made the broker 2x slower" classes
// of regression, not single-digit drift. The full comparison table is
// written to --report for the uploaded artifact.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "jsonio/json.h"

namespace {

struct BenchRow {
  double cpu_time_ns = 0.0;
};

double UnitToNs(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  throw pard::CheckError("unknown time_unit \"" + unit + "\"");
}

std::string ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  PARD_CHECK_MSG(f != nullptr, "cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return text;
}

// name -> normalized cpu_time in ns, per-iteration rows only.
std::map<std::string, BenchRow> LoadReport(const std::string& path) {
  const pard::JsonValue doc = pard::ParseJson(ReadFile(path));
  const pard::JsonValue* benchmarks = doc.Find("benchmarks");
  PARD_CHECK_MSG(benchmarks != nullptr && benchmarks->IsArray(),
                 path + " has no \"benchmarks\" array (is this --json output?)");
  std::map<std::string, BenchRow> rows;
  for (const pard::JsonValue& b : benchmarks->AsArray()) {
    if (const pard::JsonValue* run_type = b.Find("run_type");
        run_type != nullptr && run_type->AsString() != "iteration") {
      continue;  // Skip mean/median/stddev aggregate rows.
    }
    BenchRow row;
    row.cpu_time_ns = b.At("cpu_time").AsDouble() * UnitToNs(b.At("time_unit").AsString());
    rows[b.At("name").AsString()] = row;
  }
  PARD_CHECK_MSG(!rows.empty(), path + " contains no benchmark rows");
  return rows;
}

bool IsGated(const std::string& name, const std::vector<std::string>& gates) {
  for (const std::string& gate : gates) {
    if (name.find(gate) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// "bench/BENCH_PR4.json" -> "BENCH_PR4".
std::string FileLabel(const std::string& path) {
  std::string label = path;
  if (const std::size_t slash = label.find_last_of("/\\"); slash != std::string::npos) {
    label = label.substr(slash + 1);
  }
  if (label.size() > 5 && label.substr(label.size() - 5) == ".json") {
    label = label.substr(0, label.size() - 5);
  }
  return label;
}

// --history: renders the baseline series as a markdown trajectory table.
// Rows are the union of benchmark names; the final column is the
// newest/oldest ratio (blank when either end is missing). Exit 0 on
// success, 2 on IO/parse problems — there is no pass/fail judgement here,
// the gate mode owns that.
//
// Drift detection: the per-PR gate only sees one step, so a counter can
// creep +20% every PR forever without tripping a +30% threshold. The
// history view flags exactly that shape — a run of 3+ consecutive reports
// where every step slows down but stays under the per-step gate
// (step_threshold), and the cumulative slowdown exceeds drift_threshold —
// with a "DRIFT:" line after the table. Informational only (exit stays 0):
// a human decides whether the trend is intentional, but CI logs make it
// impossible to miss.
std::string RenderHistoryHtml(const std::vector<std::map<std::string, BenchRow>>& reports,
                              const std::vector<std::string>& labels);

int RenderHistory(const std::vector<std::string>& paths, const std::string& report_path,
                  const std::string& html_path, double step_threshold,
                  double drift_threshold) {
  std::vector<std::map<std::string, BenchRow>> reports;
  std::vector<std::string> labels;
  try {
    for (const std::string& path : paths) {
      reports.push_back(LoadReport(path));
      labels.push_back(FileLabel(path));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
  std::map<std::string, bool> names;
  for (const auto& report : reports) {
    for (const auto& [name, row] : report) {
      (void)row;
      names[name] = true;
    }
  }
  // Each report column after the first is followed by a per-counter delta
  // column (Δ% vs the previous report), so a step change is readable in the
  // artifact without mental division; the final column keeps the
  // newest/oldest summary ratio.
  std::string table = "# Perf trajectory (cpu time per iteration, ns)\n\n| benchmark |";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      table += " Δ% |";
    }
    table += " " + labels[i] + " |";
  }
  table += " " + labels.back() + "/" + labels.front() + " |\n|---|";
  for (std::size_t i = 0; i < 2 * labels.size() - 1; ++i) {
    table += "---:|";
  }
  table += "---:|\n";
  for (const auto& [name, present] : names) {
    (void)present;
    table += "| " + name + " |";
    const BenchRow* first = nullptr;
    const BenchRow* last = nullptr;
    const BenchRow* prev = nullptr;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto it = reports[i].find(name);
      if (it == reports[i].end()) {
        if (i > 0) {
          table += " - |";  // Delta column.
        }
        table += " - |";
        prev = nullptr;  // A gap breaks the adjacent-delta chain.
        continue;
      }
      if (i > 0) {
        if (prev != nullptr && prev->cpu_time_ns > 0.0) {
          const double delta =
              100.0 * (it->second.cpu_time_ns / prev->cpu_time_ns - 1.0);
          table += pard::StrFormat(" %+.1f%% |", delta);
        } else {
          table += " - |";
        }
      }
      table += pard::StrFormat(" %.1f |", it->second.cpu_time_ns);
      prev = &it->second;
      if (first == nullptr) {
        first = &it->second;
      }
      if (i + 1 == reports.size()) {
        last = &it->second;
      }
    }
    if (first != nullptr && last != nullptr && first->cpu_time_ns > 0.0 &&
        reports.front().count(name) != 0) {
      table += pard::StrFormat(" %.3fx |\n", last->cpu_time_ns / first->cpu_time_ns);
    } else {
      table += " - |\n";
    }
  }
  // Monotone sub-gate creep across the series.
  std::string drift;
  for (const auto& [name, present] : names) {
    (void)present;
    // Longest run of consecutive reports containing this benchmark; a gap
    // (renamed/added counter) resets the run rather than comparing across it.
    std::vector<double> run;
    std::size_t run_start = 0;
    const auto flag_run = [&](const std::vector<double>& series, std::size_t start) {
      if (series.size() < 3 || series.front() <= 0.0) {
        return;
      }
      for (std::size_t i = 1; i < series.size(); ++i) {
        const double step = series[i] / series[i - 1];
        if (step < 1.0 || step > 1.0 + step_threshold) {
          return;  // Not a monotone creep, or a step the gate would catch.
        }
      }
      const double total = series.back() / series.front();
      if (total > 1.0 + drift_threshold) {
        drift += pard::StrFormat("DRIFT: %s +%.0f%% over %zu reports (%s..%s, each step under "
                                 "+%.0f%%)\n",
                                 name.c_str(), 100.0 * (total - 1.0), series.size(),
                                 labels[start].c_str(),
                                 labels[start + series.size() - 1].c_str(),
                                 100.0 * step_threshold);
      }
    };
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const auto it = reports[i].find(name);
      if (it == reports[i].end()) {
        flag_run(run, run_start);
        run.clear();
        continue;
      }
      if (run.empty()) {
        run_start = i;
      }
      run.push_back(it->second.cpu_time_ns);
    }
    flag_run(run, run_start);
  }
  if (!drift.empty()) {
    table += "\n" + drift;
  }
  std::printf("%s", table.c_str());
  if (!report_path.empty()) {
    FILE* out = std::fopen(report_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    std::fwrite(table.data(), 1, table.size(), out);
    std::fclose(out);
  }
  if (!html_path.empty()) {
    const std::string html = RenderHistoryHtml(reports, labels);
    FILE* out = std::fopen(html_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", html_path.c_str());
      return 2;
    }
    std::fwrite(html.data(), 1, html.size(), out);
    std::fclose(out);
  }
  return 0;
}

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// --history --html: a standalone HTML/inline-SVG chart of the same series
// the markdown table tabulates. Each benchmark is one polyline of its cpu
// time normalized to its first present report (log2 y-axis, so a 2x
// speedup and a 2x regression are symmetric around the 1.0x gridline); the
// legend carries the final ratio. Self-contained by construction — no
// scripts, no external assets — so CI can upload the file as-is.
std::string RenderHistoryHtml(const std::vector<std::map<std::string, BenchRow>>& reports,
                              const std::vector<std::string>& labels) {
  // Series: benchmark -> per-report normalized ratio (NaN = missing).
  std::map<std::string, bool> names;
  for (const auto& report : reports) {
    for (const auto& [name, row] : report) {
      (void)row;
      names[name] = true;
    }
  }
  struct Series {
    std::string name;
    std::vector<double> ratio;  // log2(value / first present value)
    double final_ratio = 1.0;
  };
  std::vector<Series> series;
  double lo = 0.0;
  double hi = 0.0;
  for (const auto& [name, present] : names) {
    (void)present;
    Series s;
    s.name = name;
    double first = 0.0;
    double last = 0.0;
    for (const auto& report : reports) {
      const auto it = report.find(name);
      if (it == report.end() || it->second.cpu_time_ns <= 0.0) {
        s.ratio.push_back(std::nan(""));
        continue;
      }
      if (first <= 0.0) {
        first = it->second.cpu_time_ns;
      }
      last = it->second.cpu_time_ns;
      const double r = std::log2(it->second.cpu_time_ns / first);
      s.ratio.push_back(r);
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    if (first > 0.0) {
      s.final_ratio = last / first;
      series.push_back(std::move(s));
    }
  }
  lo -= 0.2;
  hi += 0.2;

  // Layout: fixed plot box, legend below. Colors cycle a 12-hue palette.
  const double kW = 960.0, kH = 420.0, kL = 70.0, kR = 30.0, kT = 30.0, kB = 50.0;
  const double plot_w = kW - kL - kR;
  const double plot_h = kH - kT - kB;
  const std::size_t n = reports.size();
  const auto x_at = [&](std::size_t i) {
    return kL + (n > 1 ? plot_w * static_cast<double>(i) / static_cast<double>(n - 1)
                       : plot_w / 2.0);
  };
  const auto y_at = [&](double r) { return kT + plot_h * (hi - r) / (hi - lo); };
  static const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                   "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
                                   "#bcbd22", "#17becf", "#aec7e8", "#ffbb78"};
  const std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

  std::string svg = pard::StrFormat(
      "<svg viewBox=\"0 0 %.0f %.0f\" xmlns=\"http://www.w3.org/2000/svg\" "
      "font-family=\"sans-serif\" font-size=\"12\">\n",
      kW, kH);
  // Horizontal gridlines at power-of-two ratios inside [lo, hi].
  for (int p = static_cast<int>(std::floor(lo)); p <= static_cast<int>(std::ceil(hi)); ++p) {
    const double r = static_cast<double>(p);
    if (r < lo || r > hi) {
      continue;
    }
    const double y = y_at(r);
    svg += pard::StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" "
        "stroke-width=\"1\"/>\n",
        kL, y, kW - kR, y, p == 0 ? "#999" : "#ddd");
    svg += pard::StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" fill=\"#555\">%gx</text>\n",
        kL - 8.0, y + 4.0, std::exp2(r));
  }
  // X labels (report names).
  for (std::size_t i = 0; i < n; ++i) {
    svg += pard::StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" fill=\"#555\">%s</text>\n",
        x_at(i), kH - kB + 20.0, HtmlEscape(labels[i]).c_str());
  }
  // One polyline per benchmark (gaps break the line into segments).
  std::string legend = "<table style=\"border-collapse:collapse\">\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const Series& s = series[si];
    const char* color = kPalette[si % kPaletteSize];
    std::string points;
    for (std::size_t i = 0; i < s.ratio.size(); ++i) {
      if (std::isnan(s.ratio[i])) {
        if (!points.empty()) {
          svg += "<polyline fill=\"none\" stroke=\"" + std::string(color) +
                 "\" stroke-width=\"1.5\" points=\"" + points + "\"/>\n";
          points.clear();
        }
        continue;
      }
      points += pard::StrFormat("%.1f,%.1f ", x_at(i), y_at(s.ratio[i]));
      svg += pard::StrFormat(
          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\"/>\n", x_at(i),
          y_at(s.ratio[i]), color);
    }
    if (!points.empty()) {
      svg += "<polyline fill=\"none\" stroke=\"" + std::string(color) +
             "\" stroke-width=\"1.5\" points=\"" + points + "\"/>\n";
    }
    legend += pard::StrFormat(
        "<tr><td style=\"padding:2px 8px\"><span style=\"display:inline-block;width:12px;"
        "height:12px;background:%s\"></span></td><td style=\"padding:2px 8px\"><code>%s</code>"
        "</td><td style=\"padding:2px 8px;text-align:right\">%.3fx</td></tr>\n",
        color, HtmlEscape(s.name).c_str(), s.final_ratio);
  }
  legend += "</table>\n";
  svg += "</svg>\n";

  std::string html =
      "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
      "<title>Perf trajectory</title>\n</head>\n<body style=\"font-family:sans-serif;"
      "max-width:1000px;margin:2em auto\">\n"
      "<h1>Perf trajectory</h1>\n"
      "<p>Per-iteration cpu time of every benchmark across the checked-in baseline\n"
      "series, normalized to the benchmark's first appearance (log<sub>2</sub> scale:\n"
      "below the 1x line is faster, above is slower). Final column of the legend is\n"
      "newest/first. The markdown table artifact carries the raw numbers.</p>\n" +
      svg + "<h2>Legend (final ratio)</h2>\n" + legend + "</body>\n</html>\n";
  return html;
}

}  // namespace

int main(int argc, char** argv) {
  pard::FlagSet flags;
  flags.AddDouble("threshold", 0.30,
                  "maximum tolerated slowdown of a gated counter (0.30 = +30%)");
  flags.AddString("gates", "BM_EventScheduleFire,BM_EventScheduleCancel,BM_BrokerDecisionWarmEpoch",
                  "comma-separated name substrings whose slowdown fails the gate");
  flags.AddString("report", "", "also write the comparison table to this file");
  flags.AddDouble("drift-threshold", 0.25,
                  "--history: flag a benchmark whose cpu time creeps up monotonically "
                  "across 3+ reports, each step within --threshold, by more than this "
                  "in total (0.25 = +25%)");
  flags.AddBool("history", false,
                "render the given reports (oldest first, e.g. the bench/BENCH_PR*.json "
                "series) as a markdown trajectory table instead of gating");
  flags.AddString("html", "",
                  "--history: also write a standalone HTML/SVG chart of the series "
                  "(normalized per-benchmark polylines) to this file");
  try {
    flags.Parse(argc - 1, argv + 1);
  } catch (const pard::CheckError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 flags.Usage("bench_compare <baseline.json> <current.json>").c_str());
    return 2;
  }
  if (flags.GetBool("history")) {
    if (flags.HelpRequested() || flags.positional().empty()) {
      std::printf("%s", flags.Usage("bench_compare --history <oldest.json> ... <newest.json>")
                            .c_str());
      return flags.HelpRequested() ? 0 : 2;
    }
    const double drift = flags.GetDouble("drift-threshold");
    if (!(drift > 0.0) || !std::isfinite(drift)) {
      std::fprintf(stderr, "--drift-threshold must be a positive number (got %g)\n", drift);
      return 2;
    }
    return RenderHistory(flags.positional(), flags.GetString("report"),
                         flags.GetString("html"), flags.GetDouble("threshold"), drift);
  }
  if (flags.HelpRequested() || flags.positional().size() != 2) {
    std::printf("%s", flags.Usage("bench_compare <baseline.json> <current.json>").c_str());
    return flags.HelpRequested() ? 0 : 2;
  }
  const double threshold = flags.GetDouble("threshold");
  if (!(threshold > 0.0) || !std::isfinite(threshold)) {
    std::fprintf(stderr, "--threshold must be a positive number (got %g)\n", threshold);
    return 2;
  }
  std::vector<std::string> gates;
  for (const std::string& gate : pard::Split(flags.GetString("gates"), ',')) {
    const std::string trimmed(pard::Trim(gate));
    if (!trimmed.empty()) {
      gates.push_back(trimmed);
    }
  }
  if (gates.empty()) {
    std::fprintf(stderr, "--gates must name at least one counter\n");
    return 2;
  }

  std::map<std::string, BenchRow> baseline;
  std::map<std::string, BenchRow> current;
  try {
    baseline = LoadReport(flags.positional()[0]);
    current = LoadReport(flags.positional()[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  // Every gate must anchor to at least one usable baseline row — a baseline
  // captured from a truncated run (or with a zero timing) would otherwise
  // silently stop gating the very counter the gate exists for.
  for (const std::string& gate : gates) {
    bool anchored = false;
    for (const auto& [name, row] : baseline) {
      if (name.find(gate) != std::string::npos && row.cpu_time_ns > 0.0) {
        anchored = true;
        break;
      }
    }
    if (!anchored) {
      std::fprintf(stderr,
                   "bench_compare: gate \"%s\" matches no baseline benchmark with a "
                   "positive cpu_time in %s — refusing to run a vacuous gate\n",
                   gate.c_str(), flags.positional()[0].c_str());
      return 2;
    }
  }

  std::string table = pard::StrFormat("%-40s %14s %14s %8s  %s\n", "benchmark",
                                      "baseline(ns)", "current(ns)", "ratio", "verdict");
  std::vector<std::string> failures;
  int gated_seen = 0;
  for (const auto& [name, base_row] : baseline) {
    const bool gated = IsGated(name, gates);
    const auto it = current.find(name);
    if (it == current.end()) {
      if (gated) {
        failures.push_back(name + " missing from current report");
        table += pard::StrFormat("%-40s %14.1f %14s %8s  GATED MISSING\n", name.c_str(),
                                 base_row.cpu_time_ns, "-", "-");
      }
      continue;
    }
    const double ratio = base_row.cpu_time_ns > 0.0
                             ? it->second.cpu_time_ns / base_row.cpu_time_ns
                             : 0.0;
    const bool regressed = gated && ratio > 1.0 + threshold;
    if (gated) {
      ++gated_seen;
    }
    if (regressed) {
      failures.push_back(pard::StrFormat("%s slowed %.2fx (limit %.2fx)", name.c_str(), ratio,
                                         1.0 + threshold));
    }
    table += pard::StrFormat("%-40s %14.1f %14.1f %8.3f  %s\n", name.c_str(),
                             base_row.cpu_time_ns, it->second.cpu_time_ns, ratio,
                             regressed  ? "REGRESSED"
                             : gated    ? "ok (gated)"
                                        : "ok");
  }
  if (gated_seen == 0 && failures.empty()) {
    std::fprintf(stderr, "bench_compare: no gated benchmark matched %s\n",
                 flags.GetString("gates").c_str());
    return 2;
  }

  std::string summary;
  if (failures.empty()) {
    summary = pard::StrFormat("PASS: %d gated counters within +%.0f%% of baseline\n",
                              gated_seen, 100.0 * threshold);
  } else {
    summary = pard::StrFormat("FAIL: %zu gated regression(s) beyond +%.0f%%:\n",
                              failures.size(), 100.0 * threshold);
    for (const std::string& failure : failures) {
      summary += "  - " + failure + "\n";
    }
  }
  std::printf("%s%s", table.c_str(), summary.c_str());
  if (!flags.GetString("report").empty()) {
    FILE* out = std::fopen(flags.GetString("report").c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.GetString("report").c_str());
      return 2;
    }
    std::fwrite(table.data(), 1, table.size(), out);
    std::fwrite(summary.data(), 1, summary.size(), out);
    std::fclose(out);
  }
  return failures.empty() ? 0 : 1;
}
