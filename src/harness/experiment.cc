#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "pipeline/apps.h"
#include "trace/arrival_generator.h"

namespace pard {

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.spec = config.custom_spec.has_value() ? *config.custom_spec : MakeApp(config.app);
  if (config.slo_override > 0) {
    result.spec = PipelineSpec(result.spec.app_name(), config.slo_override,
                               result.spec.modules());
  }

  TraceOptions trace_options;
  trace_options.duration_s = config.duration_s;
  trace_options.base_rate = config.base_rate;
  trace_options.seed = config.seed;
  result.trace = MakeTrace(config.trace, trace_options);
  result.burst_region = BurstRegion(config.trace, trace_options);
  result.mean_input_rate = result.trace.MeanRate(0, SecToUs(config.duration_s));

  // The same (seed, trace) always yields the same arrival stream regardless
  // of policy, so comparisons share workloads exactly.
  Rng arrival_rng = Rng(config.seed).Fork("arrivals:" + config.trace);
  const std::vector<SimTime> arrivals =
      GenerateArrivals(result.trace, 0, SecToUs(config.duration_s), arrival_rng);
  PARD_CHECK_MSG(!arrivals.empty(), "trace produced no arrivals");

  PolicyParams params = config.params;
  params.seed = config.seed;
  std::unique_ptr<DropPolicy> policy = MakePolicy(config.policy, params);

  RuntimeOptions runtime = config.runtime;
  runtime.seed = config.seed;
  if (runtime.provision_headroom == RuntimeOptions{}.provision_headroom) {
    runtime.provision_headroom = config.provision_factor;
  }

  PipelineRuntime pipeline(result.spec, runtime, policy.get(), result.mean_input_rate);
  pipeline.RunTrace(arrivals);

  result.worker_history = pipeline.worker_history();
  if (auto* pard = dynamic_cast<PardPolicy*>(policy.get())) {
    result.transitions = pard->transition_log();
  }
  result.analysis = std::make_unique<RunAnalysis>(pipeline.requests(), result.spec);
  return result;
}

namespace {

ReplicatedMetric Summarize(const std::vector<double>& values) {
  ReplicatedMetric m;
  if (values.empty()) {
    return m;
  }
  m.min = values.front();
  m.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    m.min = std::min(m.min, v);
    m.max = std::max(m.max, v);
  }
  m.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - m.mean) * (v - m.mean);
    }
    m.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return m;
}

}  // namespace

ReplicatedResult RunReplicated(const ExperimentConfig& config, int replicas) {
  PARD_CHECK(replicas >= 1);
  std::vector<double> drops;
  std::vector<double> invalids;
  std::vector<double> goodputs;
  for (int i = 0; i < replicas; ++i) {
    ExperimentConfig replica = config;
    replica.seed = config.seed + static_cast<std::uint64_t>(i);
    const ExperimentResult r = RunExperiment(replica);
    drops.push_back(r.analysis->DropRate());
    invalids.push_back(r.analysis->InvalidRate());
    goodputs.push_back(r.analysis->NormalizedGoodput());
  }
  ReplicatedResult out;
  out.replicas = replicas;
  out.drop_rate = Summarize(drops);
  out.invalid_rate = Summarize(invalids);
  out.normalized_goodput = Summarize(goodputs);
  return out;
}

}  // namespace pard
