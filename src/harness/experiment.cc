#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "exec/sharded_trace.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "exec/sweep_runner.h"
#include "exec/thread_pool.h"
#include "pipeline/apps.h"
#include "serve/load_generator.h"
#include "serve/serve_runtime.h"
#include "trace/arrival_generator.h"

namespace pard {

namespace {

PipelineSpec BuildSpec(const ExperimentConfig& config) {
  PipelineSpec spec =
      config.custom_spec.has_value() ? *config.custom_spec : MakeApp(config.app);
  if (config.slo_override > 0) {
    spec = PipelineSpec(spec.app_name(), config.slo_override, spec.modules());
  }
  return spec;
}

// Fills the trace-derived fields of `result` and returns the arrival stream.
// The same (seed, trace) always yields the same arrivals regardless of
// policy, so comparisons share workloads exactly.
std::vector<SimTime> BuildWorkload(const ExperimentConfig& config, ExperimentResult& result) {
  if (config.custom_trace.has_value()) {
    result.trace = *config.custom_trace;
    result.burst_region = TraceRegion{0, 0};
  } else {
    TraceOptions trace_options;
    trace_options.duration_s = config.duration_s;
    trace_options.base_rate = config.base_rate;
    trace_options.seed = config.seed;
    result.trace = MakeTrace(config.trace, trace_options);
    result.burst_region = BurstRegion(config.trace, trace_options);
  }
  result.mean_input_rate = result.trace.MeanRate(0, SecToUs(config.duration_s));

  Rng arrival_rng = Rng(config.seed).Fork("arrivals:" + config.trace);
  std::vector<SimTime> arrivals =
      GenerateArrivals(result.trace, 0, SecToUs(config.duration_s), arrival_rng);
  PARD_CHECK_MSG(!arrivals.empty(), "trace produced no arrivals");
  return arrivals;
}

RuntimeOptions BuildRuntimeOptions(const ExperimentConfig& config, std::uint64_t seed) {
  RuntimeOptions runtime = config.runtime;
  runtime.seed = seed;
  if (runtime.provision_headroom == RuntimeOptions{}.provision_headroom) {
    runtime.provision_headroom = config.provision_factor;
  }
  return runtime;
}

std::unique_ptr<DropPolicy> BuildPolicy(const ExperimentConfig& config, std::uint64_t seed) {
  PolicyParams params = config.params;
  params.seed = seed;
  return MakePolicy(config.policy, params);
}

// Owns the run's observability objects (the runtime only borrows pointers).
// Wire() installs them into `runtime`; Export() writes the output files
// after the run has quiesced.
struct ObsSession {
  std::unique_ptr<TraceRecorder> trace;
  std::unique_ptr<MetricsRegistry> metrics;

  // `ring_capacity` is per emitting thread: the simulator is one producer,
  // so it gets one large ring; serve mode keeps per-thread rings modest and
  // relies on the self-describing dropped_events count (or sampling) when a
  // long run overflows them.
  void Wire(const ExperimentConfig& config, RuntimeOptions& runtime,
            std::size_t ring_capacity) {
    if (!config.obs.trace_out.empty()) {
      TraceRecorder::Options options;
      options.sample_rate = config.obs.trace_sample_rate;
      options.seed = config.seed;
      options.ring_capacity = ring_capacity;
      trace = std::make_unique<TraceRecorder>(options);
      runtime.trace = trace.get();
    }
    if (!config.obs.metrics_out.empty()) {
      metrics = std::make_unique<MetricsRegistry>();
      runtime.metrics = metrics.get();
      runtime.metrics_interval = SecToUs(config.obs.metrics_interval_s);
    }
  }

  void Export(const ExperimentConfig& config) {
    if (trace) {
      trace->WriteChromeTrace(config.obs.trace_out);
    }
    if (metrics) {
      metrics->WriteJson(config.obs.metrics_out);
    }
  }
};

}  // namespace

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.spec = BuildSpec(config);
  const std::vector<SimTime> arrivals = BuildWorkload(config, result);

  std::unique_ptr<DropPolicy> policy = BuildPolicy(config, config.seed);
  RuntimeOptions runtime = BuildRuntimeOptions(config, config.seed);
  ObsSession obs;
  obs.Wire(config, runtime, /*ring_capacity=*/std::size_t{1} << 20);

  PipelineRuntime pipeline(result.spec, runtime, policy.get(), result.mean_input_rate);
  pipeline.RunTrace(arrivals);
  obs.Export(config);

  result.worker_history = pipeline.worker_history();
  result.retries = pipeline.retries();
  result.fleet_cost = pipeline.fleet().AccumulatedCost(pipeline.sim().Now());
  if (auto* pard = dynamic_cast<PardPolicy*>(policy.get())) {
    result.transitions = pard->transition_log();
  }
  result.analysis = std::make_unique<RunAnalysis>(pipeline.requests(), result.spec);
  result.drop_reason_counts = result.analysis->DropReasonCounts();
  return result;
}

ExperimentResult RunServeExperiment(const ExperimentConfig& config, const ServeOptions& serve) {
  ExperimentResult result;
  result.spec = BuildSpec(config);

  // Arrival stream: matched trace replay by default (identical to what the
  // simulator would inject, so sim-vs-serve comparisons share workloads
  // exactly), or synthesized open-loop Poisson/MMPP processes.
  std::vector<SimTime> arrivals;
  switch (serve.arrivals) {
    case ServeOptions::Arrivals::kTrace:
      arrivals = BuildWorkload(config, result);
      break;
    case ServeOptions::Arrivals::kPoisson: {
      result.trace = RateFunction::Constant(serve.poisson_rate);
      result.mean_input_rate = serve.poisson_rate;
      Rng rng = Rng(config.seed).Fork("serve:poisson");
      arrivals = SynthesizePoissonArrivals(serve.poisson_rate, 0, SecToUs(config.duration_s), rng);
      break;
    }
    case ServeOptions::Arrivals::kMmpp: {
      const MmppOptions& mmpp = serve.mmpp;
      const double duty =
          mmpp.mean_burst_s / (mmpp.mean_base_s + mmpp.mean_burst_s);
      result.mean_input_rate = mmpp.base_rate * (1.0 - duty) + mmpp.burst_rate * duty;
      result.trace = RateFunction::Constant(result.mean_input_rate);
      Rng rng = Rng(config.seed).Fork("serve:mmpp");
      arrivals = SynthesizeMmppArrivals(mmpp, 0, SecToUs(config.duration_s), rng);
      break;
    }
  }
  PARD_CHECK_MSG(!arrivals.empty(), "serve workload produced no arrivals");

  std::unique_ptr<DropPolicy> policy = BuildPolicy(config, config.seed);
  RuntimeOptions runtime = BuildRuntimeOptions(config, config.seed);
  ObsSession obs;
  obs.Wire(config, runtime, /*ring_capacity=*/std::size_t{1} << 16);

  ServeRuntime server(result.spec, runtime, policy.get(), result.mean_input_rate, serve);
  server.RunTrace(arrivals);
  obs.Export(config);

  result.worker_history = server.worker_history();
  result.retries = server.retries();
  result.fleet_cost = server.fleet().AccumulatedCost(server.clock().Now());
  result.watchdog_recoveries = server.watchdog_recoveries();
  result.stale_fallbacks = server.control().StaleFallbacks();
  if (auto* pard = dynamic_cast<PardPolicy*>(policy.get())) {
    result.transitions = pard->transition_log();
  }
  result.analysis = std::make_unique<RunAnalysis>(server.requests(), result.spec);
  result.drop_reason_counts = result.analysis->DropReasonCounts();
  return result;
}

std::vector<ExperimentResult> RunExperiments(const std::vector<ExperimentConfig>& configs,
                                             int jobs) {
  SweepOptions options;
  options.jobs = jobs;
  return SweepRunner(options).Run(configs);
}

ExperimentResult RunShardedExperiment(const ExperimentConfig& config, int shards, int jobs) {
  if (shards <= 1) {
    return RunExperiment(config);
  }
  PARD_CHECK_MSG(config.obs.trace_out.empty() && config.obs.metrics_out.empty(),
                 "--trace-out/--metrics-out are not supported with --shards > 1");
  ExperimentResult result;
  result.spec = BuildSpec(config);
  const std::vector<SimTime> arrivals = BuildWorkload(config, result);

  ShardOptions shard_options;
  shard_options.shards = shards;
  const ShardedTrace sharded(arrivals, 0, SecToUs(config.duration_s), shard_options);

  // Each shard owns a full runtime under a shard-indexed seed, so outcomes
  // depend only on the partition — never on which thread ran which shard.
  std::vector<std::vector<RequestPtr>> shard_requests(sharded.size());
  const double expected_rate = result.mean_input_rate;
  const PipelineSpec& spec = result.spec;
  ParallelFor(jobs, sharded.size(), [&](std::size_t i) {
    const std::uint64_t shard_seed =
        Rng(config.seed).Fork("shard:" + std::to_string(i)).NextU64();
    std::unique_ptr<DropPolicy> policy = BuildPolicy(config, shard_seed);
    const RuntimeOptions runtime = BuildRuntimeOptions(config, shard_seed);
    PipelineRuntime pipeline(spec, runtime, policy.get(), expected_rate);
    pipeline.RunTrace(sharded.shards()[i].arrivals);
    shard_requests[i] = pipeline.requests();
  });

  result.analysis = std::make_unique<RunAnalysis>(
      MergeShardRecords(sharded, std::move(shard_requests)), result.spec);
  result.drop_reason_counts = result.analysis->DropReasonCounts();
  return result;
}

namespace {

ReplicatedMetric Summarize(const std::vector<double>& values) {
  ReplicatedMetric m;
  if (values.empty()) {
    return m;
  }
  m.min = values.front();
  m.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    m.min = std::min(m.min, v);
    m.max = std::max(m.max, v);
  }
  m.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - m.mean) * (v - m.mean);
    }
    m.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return m;
}

}  // namespace

ReplicatedResult RunReplicated(const ExperimentConfig& config, int replicas, int jobs) {
  PARD_CHECK(replicas >= 1);
  std::vector<ExperimentConfig> grid;
  grid.reserve(static_cast<std::size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    ExperimentConfig replica = config;
    replica.seed = config.seed + static_cast<std::uint64_t>(i);
    grid.push_back(std::move(replica));
  }
  const std::vector<ExperimentResult> results = RunExperiments(grid, jobs);

  std::vector<double> drops;
  std::vector<double> invalids;
  std::vector<double> goodputs;
  for (const ExperimentResult& r : results) {
    drops.push_back(r.analysis->DropRate());
    invalids.push_back(r.analysis->InvalidRate());
    goodputs.push_back(r.analysis->NormalizedGoodput());
  }
  ReplicatedResult out;
  out.replicas = replicas;
  out.drop_rate = Summarize(drops);
  out.invalid_rate = Summarize(invalids);
  out.normalized_goodput = Summarize(goodputs);
  return out;
}

}  // namespace pard
