// One-call experiment harness.
//
// Wires trace generation, provisioning, policy construction, the pipeline
// runtime and the metrics analysis into a single entry point so benches,
// examples and integration tests all run experiments the same way:
//
//   ExperimentConfig cfg;
//   cfg.app = "lv"; cfg.trace = "tweet"; cfg.policy = "pard";
//   ExperimentResult r = RunExperiment(cfg);
//   r.analysis->DropRate(); ...
//
// Identical (app, trace, seed, rates) produce identical arrival streams for
// every policy, so cross-policy comparisons are apples-to-apples.
#ifndef PARD_HARNESS_EXPERIMENT_H_
#define PARD_HARNESS_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/policy_factory.h"
#include "core/pard_policy.h"
#include "metrics/analysis.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/runtime_options.h"
#include "trace/traces.h"

namespace pard {

struct ExperimentConfig {
  std::string app = "lv";      // tm | lv | gm | da
  std::string trace = "tweet";  // wiki | tweet | azure
  std::string policy = "pard";  // Any MakePolicy name.

  // When set, overrides `app` with an arbitrary pipeline (e.g. a JSON-loaded
  // or synthetic spec).
  std::optional<PipelineSpec> custom_spec;

  // Trace shape. Defaults compress the paper's ~1000 s traces into 240 s at
  // a rate the simulated cluster can serve at mean load but not at burst
  // peaks — the regime where dropping policy matters.
  double duration_s = 240.0;
  double base_rate = 120.0;
  std::uint64_t seed = 42;

  // Provisioning: capacity is planned for `provision_factor` x the trace's
  // mean rate (bursts then exceed capacity, as in the paper's bursty
  // regions). Set fixed_workers in `runtime` to override entirely.
  double provision_factor = 1.15;

  PolicyParams params;
  RuntimeOptions runtime;

  // Optional SLO override (us); 0 keeps the app default.
  Duration slo_override = 0;
};

struct ExperimentResult {
  std::unique_ptr<RunAnalysis> analysis;
  PipelineSpec spec;
  RateFunction trace;
  TraceRegion burst_region{0, 0};
  double mean_input_rate = 0.0;

  // PARD-specific extras (empty for other policies).
  std::vector<PardPolicy::TransitionSample> transitions;
  std::vector<PipelineRuntime::WorkerSample> worker_history;
};

ExperimentResult RunExperiment(const ExperimentConfig& config);

// Replicated runs: the same experiment across `replicas` seeds
// (config.seed, config.seed+1, ...), with mean and sample standard deviation
// of the headline metrics. Use to put error bars on any comparison.
struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ReplicatedResult {
  int replicas = 0;
  ReplicatedMetric drop_rate;
  ReplicatedMetric invalid_rate;
  ReplicatedMetric normalized_goodput;
};

ReplicatedResult RunReplicated(const ExperimentConfig& config, int replicas);

}  // namespace pard

#endif  // PARD_HARNESS_EXPERIMENT_H_
