// One-call experiment harness.
//
// Wires trace generation, provisioning, policy construction, the pipeline
// runtime and the metrics analysis into a single entry point so benches,
// examples and integration tests all run experiments the same way:
//
//   ExperimentConfig cfg;
//   cfg.app = "lv"; cfg.trace = "tweet"; cfg.policy = "pard";
//   ExperimentResult r = RunExperiment(cfg);
//   r.analysis->DropRate(); ...
//
// Identical (app, trace, seed, rates) produce identical arrival streams for
// every policy, so cross-policy comparisons are apples-to-apples.
#ifndef PARD_HARNESS_EXPERIMENT_H_
#define PARD_HARNESS_EXPERIMENT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/policy_factory.h"
#include "core/pard_policy.h"
#include "metrics/analysis.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/runtime_options.h"
#include "serve/serve_options.h"
#include "trace/traces.h"

namespace pard {

struct ExperimentConfig {
  std::string app = "lv";      // tm | lv | gm | da
  std::string trace = "tweet";  // wiki | tweet | azure
  std::string policy = "pard";  // Any MakePolicy name.

  // When set, overrides `app` with an arbitrary pipeline (e.g. a JSON-loaded
  // or synthetic spec).
  std::optional<PipelineSpec> custom_spec;

  // When set, overrides `trace` with an arbitrary rate curve (e.g. a constant
  // offered rate or a bespoke oscillation). `duration_s` still bounds the
  // arrival window; `base_rate` is ignored and the burst region is empty.
  std::optional<RateFunction> custom_trace;

  // Trace shape. Defaults compress the paper's ~1000 s traces into 240 s at
  // a rate the simulated cluster can serve at mean load but not at burst
  // peaks — the regime where dropping policy matters.
  double duration_s = 240.0;
  double base_rate = 120.0;
  std::uint64_t seed = 42;

  // Provisioning: capacity is planned for `provision_factor` x the trace's
  // mean rate (bursts then exceed capacity, as in the paper's bursty
  // regions). Set fixed_workers in `runtime` to override entirely.
  double provision_factor = 1.15;

  PolicyParams params;
  RuntimeOptions runtime;

  // Optional SLO override (us); 0 keeps the app default.
  Duration slo_override = 0;

  // Observability (src/obs/). When trace_out / metrics_out are non-empty the
  // harness owns a TraceRecorder / MetricsRegistry for the run, wires the
  // borrowed pointers into `runtime`, and writes the export file after the
  // run returns. Leave the paths empty (the default) to disable all
  // instrumentation — goldens stay bit-identical. Not supported for sharded
  // runs (RunShardedExperiment rejects it; shard traces would interleave one
  // trace clock across shard-local clocks).
  struct ObsConfig {
    std::string trace_out;              // Chrome trace-event JSON (Perfetto).
    double trace_sample_rate = 1.0;     // Fraction of requests traced.
    std::string metrics_out;            // Metrics JSON (totals + time series).
    double metrics_interval_s = 1.0;    // Serve-mode sampler period (virtual s).
  };
  ObsConfig obs;
};

struct ExperimentResult {
  std::unique_ptr<RunAnalysis> analysis;
  PipelineSpec spec;
  RateFunction trace;
  TraceRegion burst_region{0, 0};
  double mean_input_rate = 0.0;

  // Dropped-request counts by DropReason, indexed by the enum value (size
  // kNumDropReasons); mirrors analysis->DropReasonCounts() so callers that
  // only keep the summary still get the breakdown.
  std::vector<std::size_t> drop_reason_counts;

  // PARD-specific extras (empty for other policies).
  std::vector<PardPolicy::TransitionSample> transitions;
  std::vector<PipelineRuntime::WorkerSample> worker_history;

  // Resilience tallies (all zero unless runtime.resilience is configured):
  // successful deadline-aware re-enqueues after worker failures, workers the
  // serve watchdog force-failed for exceeding the hang budget (always 0 in
  // sim — the simulator has no watchdog), and lock-free reader decisions made
  // under the stale-snapshot fallback rules (serve only).
  std::uint64_t retries = 0;
  std::uint64_t watchdog_recoveries = 0;
  std::uint64_t stale_fallbacks = 0;

  // Total provisioning cost of the run in cost-units: each worker accrues
  // its backend's cost_per_s over the interval it was provisioned (see
  // BackendFleet::AccumulatedCost). With the default single-grade catalog
  // (cost_per_s == 1.0 everywhere) this is worker-seconds. Zero for sharded
  // runs, which discard per-runtime fleets.
  double fleet_cost = 0.0;
};

ExperimentResult RunExperiment(const ExperimentConfig& config);

// Runs a grid of independent experiments on `jobs` worker threads (jobs < 1
// means one per hardware thread; see exec/sweep_runner.h). Results are
// positionally matched to configs and bit-identical for every job count —
// parallelism changes wall-clock only, never numbers.
std::vector<ExperimentResult> RunExperiments(const std::vector<ExperimentConfig>& configs,
                                             int jobs);

// Runs one long experiment by time-sharding its arrival stream across
// `shards` independent runtimes executing on `jobs` threads (see
// exec/sharded_trace.h for the warm-up-overlap approximation this makes).
// For a fixed shard count the result is bit-identical across job counts;
// shards == 1 is exactly RunExperiment. The merged result carries the
// request records and analysis; the PARD transition log and worker history
// are per-runtime artifacts and stay empty for sharded runs.
ExperimentResult RunShardedExperiment(const ExperimentConfig& config, int shards, int jobs);

// Serves the experiment's workload through the wall-clock threaded runtime
// (src/serve/) instead of the discrete-event simulator: same spec, same
// deterministic arrival stream (for serve.arrivals == kTrace), same policy
// construction, and the same metrics records/analysis — but module workers
// are real threads fed by an open-loop load generator, so the run takes
// duration_s / serve.speedup of wall time and numbers vary run to run.
// runtime.enable_scaling runs the live scaling engine (scale-ups are real
// threads after their backend's cold start, capped at
// serve.max_total_threads) and populates worker_history with the per-epoch
// fleet; runtime.failures / runtime.fleet_events apply the deterministic
// kill/recover schedule mid-run. The PARD transition log is collected after
// the run, as in the simulator.
ExperimentResult RunServeExperiment(const ExperimentConfig& config, const ServeOptions& serve);

// Replicated runs: the same experiment across `replicas` seeds
// (config.seed, config.seed+1, ...), with mean and sample standard deviation
// of the headline metrics. Use to put error bars on any comparison. Replicas
// are independent, so they run on `jobs` threads like RunExperiments.
struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ReplicatedResult {
  int replicas = 0;
  ReplicatedMetric drop_rate;
  ReplicatedMetric invalid_rate;
  ReplicatedMetric normalized_goodput;
};

ReplicatedResult RunReplicated(const ExperimentConfig& config, int replicas, int jobs = 1);

}  // namespace pard

#endif  // PARD_HARNESS_EXPERIMENT_H_
