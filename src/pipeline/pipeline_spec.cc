#include "pipeline/pipeline_spec.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/check.h"

namespace pard {

PipelineSpec::PipelineSpec(std::string app_name, Duration slo, std::vector<ModuleSpec> modules,
                           std::vector<BackendProfile> backends)
    : app_name_(std::move(app_name)),
      slo_(slo),
      modules_(std::move(modules)),
      backends_(std::move(backends)) {
  Validate();
  ValidateBackends();
  BuildPaths();
}

void PipelineSpec::set_backends(std::vector<BackendProfile> backends) {
  backends_ = std::move(backends);
  ValidateBackends();
}

void PipelineSpec::ValidateBackends() const {
  for (const BackendProfile& profile : backends_) {
    profile.Validate();
    for (const auto& [model, scale] : profile.module_scale) {
      (void)scale;
      bool known = false;
      for (const ModuleSpec& m : modules_) {
        known = known || m.model == model;
      }
      PARD_CHECK_MSG(known, "backend profile \"" << profile.name
                                                 << "\" scales unknown model \"" << model
                                                 << "\" (not in this pipeline)");
    }
  }
}

const ModuleSpec& PipelineSpec::Module(int id) const {
  PARD_CHECK(id >= 0 && id < NumModules());
  return modules_[static_cast<std::size_t>(id)];
}

void PipelineSpec::Validate() const {
  PARD_CHECK_MSG(!modules_.empty(), "pipeline has no modules");
  PARD_CHECK_MSG(slo_ > 0, "pipeline SLO must be positive");
  const int n = NumModules();
  for (int i = 0; i < n; ++i) {
    const ModuleSpec& m = modules_[static_cast<std::size_t>(i)];
    PARD_CHECK_MSG(m.id == i, "module ids must be dense and ordered");
    PARD_CHECK_MSG(!m.model.empty(), "module " << i << " has no model name");
    for (int p : m.pres) {
      PARD_CHECK_MSG(p >= 0 && p < n, "module " << i << " has out-of-range pre " << p);
      const auto& subs = modules_[static_cast<std::size_t>(p)].subs;
      PARD_CHECK_MSG(std::find(subs.begin(), subs.end(), i) != subs.end(),
                     "pres/subs asymmetry between " << p << " and " << i);
    }
    for (int s : m.subs) {
      PARD_CHECK_MSG(s >= 0 && s < n, "module " << i << " has out-of-range sub " << s);
      PARD_CHECK_MSG(s != i, "module " << i << " links to itself");
      const auto& pres = modules_[static_cast<std::size_t>(s)].pres;
      PARD_CHECK_MSG(std::find(pres.begin(), pres.end(), i) != pres.end(),
                     "pres/subs asymmetry between " << i << " and " << s);
    }
    const std::set<int> unique_subs(m.subs.begin(), m.subs.end());
    PARD_CHECK_MSG(unique_subs.size() == m.subs.size(), "duplicate subs on module " << i);
  }
  // Acyclicity + reachability: Kahn's algorithm must consume every module.
  PARD_CHECK_MSG(static_cast<int>(TopoOrder().size()) == n, "pipeline graph has a cycle");
  int sources = 0;
  int sinks = 0;
  for (const ModuleSpec& m : modules_) {
    sources += m.pres.empty() ? 1 : 0;
    sinks += m.subs.empty() ? 1 : 0;
  }
  PARD_CHECK_MSG(sources == 1, "pipeline must have exactly one source module");
  PARD_CHECK_MSG(sinks == 1, "pipeline must have exactly one sink module");
}

std::vector<int> PipelineSpec::TopoOrder() const {
  const int n = NumModules();
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const ModuleSpec& m : modules_) {
    indegree[static_cast<std::size_t>(m.id)] = static_cast<int>(m.pres.size());
  }
  // std::set gives deterministic (smallest-id-first) tie-breaking.
  std::set<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) {
      ready.insert(i);
    }
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const int id = *ready.begin();
    ready.erase(ready.begin());
    order.push_back(id);
    for (int s : modules_[static_cast<std::size_t>(id)].subs) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) {
        ready.insert(s);
      }
    }
  }
  return order;
}

int PipelineSpec::SourceModule() const {
  for (const ModuleSpec& m : modules_) {
    if (m.pres.empty()) {
      return m.id;
    }
  }
  PARD_CHECK_MSG(false, "no source module");
}

int PipelineSpec::SinkModule() const {
  for (const ModuleSpec& m : modules_) {
    if (m.subs.empty()) {
      return m.id;
    }
  }
  PARD_CHECK_MSG(false, "no sink module");
}

void PipelineSpec::BuildPaths() {
  const int n = NumModules();
  downstream_paths_.assign(static_cast<std::size_t>(n), {});
  // Process in reverse topological order so successors are ready first.
  std::vector<int> order = TopoOrder();
  std::reverse(order.begin(), order.end());
  for (int id : order) {
    auto& paths = downstream_paths_[static_cast<std::size_t>(id)];
    const ModuleSpec& m = modules_[static_cast<std::size_t>(id)];
    if (m.subs.empty()) {
      paths.push_back({});  // Sink: the single empty downstream path.
      continue;
    }
    for (int s : m.subs) {
      for (const auto& tail : downstream_paths_[static_cast<std::size_t>(s)]) {
        std::vector<int> path;
        path.reserve(tail.size() + 1);
        path.push_back(s);
        path.insert(path.end(), tail.begin(), tail.end());
        paths.push_back(std::move(path));
      }
    }
  }
}

const std::vector<std::vector<int>>& PipelineSpec::DownstreamPaths(int id) const {
  PARD_CHECK(id >= 0 && id < NumModules());
  return downstream_paths_[static_cast<std::size_t>(id)];
}

bool PipelineSpec::IsChain() const {
  for (const ModuleSpec& m : modules_) {
    if (m.pres.size() > 1 || m.subs.size() > 1) {
      return false;
    }
  }
  return true;
}

JsonValue PipelineSpec::ToJson() const {
  JsonArray modules;
  for (const ModuleSpec& m : modules_) {
    JsonObject mo;
    mo["id"] = static_cast<std::int64_t>(m.id);
    mo["name"] = m.model;
    JsonArray pres;
    for (int p : m.pres) {
      pres.emplace_back(static_cast<std::int64_t>(p));
    }
    JsonArray subs;
    for (int s : m.subs) {
      subs.emplace_back(static_cast<std::int64_t>(s));
    }
    mo["pres"] = std::move(pres);
    mo["subs"] = std::move(subs);
    modules.emplace_back(std::move(mo));
  }
  JsonObject obj;
  obj["app"] = app_name_;
  obj["slo_ms"] = UsToMs(slo_);
  obj["modules"] = std::move(modules);
  if (!backends_.empty()) {
    JsonArray backends;
    for (const BackendProfile& profile : backends_) {
      backends.push_back(profile.ToJson());
    }
    obj["backends"] = std::move(backends);
  }
  return JsonValue(std::move(obj));
}

PipelineSpec PipelineSpec::FromJson(const JsonValue& v) {
  std::vector<ModuleSpec> modules;
  for (const JsonValue& mv : v.At("modules").AsArray()) {
    ModuleSpec m;
    m.id = static_cast<int>(mv.At("id").AsInt());
    m.model = mv.At("name").AsString();
    for (const JsonValue& p : mv.At("pres").AsArray()) {
      m.pres.push_back(static_cast<int>(p.AsInt()));
    }
    for (const JsonValue& s : mv.At("subs").AsArray()) {
      m.subs.push_back(static_cast<int>(s.AsInt()));
    }
    modules.push_back(std::move(m));
  }
  // Modules may appear in any order in the file; sort by id.
  std::sort(modules.begin(), modules.end(),
            [](const ModuleSpec& a, const ModuleSpec& b) { return a.id < b.id; });
  std::vector<BackendProfile> backends;
  if (const JsonValue* bv = v.Find("backends")) {
    for (const JsonValue& profile : bv->AsArray()) {
      backends.push_back(BackendProfile::FromJson(profile));
    }
  }
  return PipelineSpec(v.At("app").AsString(), MsToUs(v.At("slo_ms").AsDouble()),
                      std::move(modules), std::move(backends));
}

PipelineSpec PipelineSpec::FromJsonText(const std::string& text) {
  return FromJson(ParseJson(text));
}

}  // namespace pard
