// The four benchmark applications from the paper (§5.1):
//   tm — traffic monitoring, 3-module chain, SLO 400 ms
//   lv — live video analysis, 5-module chain, SLO 500 ms
//   gm — game analysis, 5-module chain, SLO 600 ms
//   da — DAG-style live video: person detection fans out to pose + face
//        branches that merge in expression recognition, SLO 420 ms
// plus one heterogeneous-fleet extension:
//   lvhet — the lv pipeline on a mixed backend catalog (full-speed cards
//        interleaved with half-speed ones that are additionally bad at
//        face recognition and slower to cold-start)
#ifndef PARD_PIPELINE_APPS_H_
#define PARD_PIPELINE_APPS_H_

#include <string>
#include <vector>

#include "pipeline/pipeline_spec.h"

namespace pard {

PipelineSpec MakeTrafficMonitoring();
PipelineSpec MakeLiveVideo();
PipelineSpec MakeGameAnalysis();
PipelineSpec MakeDagLiveVideo();
PipelineSpec MakeHeteroLiveVideo();

// Dispatch by the paper's short name: "tm" | "lv" | "gm" | "da" | "lvhet".
PipelineSpec MakeApp(const std::string& name);

// All four app names in paper order.
std::vector<std::string> AppNames();

}  // namespace pard

#endif  // PARD_PIPELINE_APPS_H_
