#include "pipeline/backend_profile.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {

double BackendProfile::ExecScaleFor(const std::string& model) const {
  double scale = 1.0 / speed_grade;
  const auto it = module_scale.find(model);
  if (it != module_scale.end()) {
    scale *= it->second;
  }
  return scale;
}

bool BackendProfile::IsBaseline() const {
  return speed_grade == 1.0 && cold_start < 0 && module_scale.empty();
}

void BackendProfile::Validate() const {
  PARD_CHECK_MSG(std::isfinite(speed_grade) && speed_grade > 0.0,
                 "backend profile \"" << name << "\" has non-positive speed_grade "
                                      << speed_grade);
  for (const auto& [model, scale] : module_scale) {
    PARD_CHECK_MSG(std::isfinite(scale) && scale > 0.0,
                   "backend profile \"" << name << "\" has non-positive module_scale for \""
                                        << model << "\"");
  }
}

JsonValue BackendProfile::ToJson() const {
  JsonObject obj;
  obj["name"] = name;
  obj["speed_grade"] = speed_grade;
  if (cold_start >= 0) {
    obj["cold_start_ms"] = UsToMs(cold_start);
  }
  if (!module_scale.empty()) {
    JsonObject scales;
    for (const auto& [model, scale] : module_scale) {
      scales[model] = scale;
    }
    obj["module_scale"] = std::move(scales);
  }
  return JsonValue(std::move(obj));
}

BackendProfile BackendProfile::FromJson(const JsonValue& v) {
  BackendProfile profile;
  // Reject unknown fields up front: a typo'd "speed_grad" must fail the
  // load, not silently run the homogeneous default.
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    if (key != "name" && key != "speed_grade" && key != "cold_start_ms" &&
        key != "module_scale") {
      throw JsonError("unknown backend-profile field \"" + key +
                      "\" (supported: name, speed_grade, cold_start_ms, module_scale)");
    }
  }
  if (const JsonValue* name = v.Find("name")) {
    profile.name = name->AsString();
  }
  if (const JsonValue* grade = v.Find("speed_grade")) {
    profile.speed_grade = grade->AsDouble();
  }
  if (const JsonValue* cold = v.Find("cold_start_ms")) {
    profile.cold_start = MsToUs(cold->AsDouble());
  }
  if (const JsonValue* scales = v.Find("module_scale")) {
    for (const auto& [model, scale] : scales->AsObject()) {
      profile.module_scale[model] = scale.AsDouble();
    }
  }
  profile.Validate();
  return profile;
}

std::vector<BackendProfile> ParseBackendGrades(const std::string& text) {
  std::vector<BackendProfile> catalog;
  int index = 0;
  for (const std::string& part : Split(text, ',')) {
    const std::string trimmed(Trim(part));
    if (trimmed.empty()) {
      continue;
    }
    char* end = nullptr;
    const double grade = std::strtod(trimmed.c_str(), &end);
    PARD_CHECK_MSG(end != trimmed.c_str() && *end == '\0' && std::isfinite(grade) && grade > 0.0,
                   "invalid backend grade \"" << trimmed
                                              << "\" (expected a positive number)");
    BackendProfile profile;
    profile.name = "grade" + std::to_string(index++);
    profile.speed_grade = grade;
    profile.Validate();
    catalog.push_back(std::move(profile));
  }
  PARD_CHECK_MSG(!catalog.empty(), "backend grade list \"" << text << "\" names no grades");
  return catalog;
}

}  // namespace pard
