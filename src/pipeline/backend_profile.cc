#include "pipeline/backend_profile.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {

double BackendProfile::ExecScaleFor(const std::string& model) const {
  double scale = 1.0 / speed_grade;
  const auto it = module_scale.find(model);
  if (it != module_scale.end()) {
    scale *= it->second;
  }
  return scale;
}

bool BackendProfile::IsBaseline() const {
  return speed_grade == 1.0 && cold_start < 0 && cost_per_s == 1.0 && module_scale.empty();
}

void BackendProfile::Validate() const {
  PARD_CHECK_MSG(std::isfinite(speed_grade) && speed_grade > 0.0,
                 "backend profile \"" << name << "\" has non-positive speed_grade "
                                      << speed_grade);
  PARD_CHECK_MSG(std::isfinite(cost_per_s) && cost_per_s > 0.0,
                 "backend profile \"" << name << "\" has non-positive cost_per_s "
                                      << cost_per_s);
  for (const auto& [model, scale] : module_scale) {
    PARD_CHECK_MSG(std::isfinite(scale) && scale > 0.0,
                   "backend profile \"" << name << "\" has non-positive module_scale for \""
                                        << model << "\"");
  }
}

JsonValue BackendProfile::ToJson() const {
  JsonObject obj;
  obj["name"] = name;
  obj["speed_grade"] = speed_grade;
  if (cold_start >= 0) {
    obj["cold_start_ms"] = UsToMs(cold_start);
  }
  if (cost_per_s != 1.0) {
    obj["cost_per_s"] = cost_per_s;
  }
  if (!module_scale.empty()) {
    JsonObject scales;
    for (const auto& [model, scale] : module_scale) {
      scales[model] = scale;
    }
    obj["module_scale"] = std::move(scales);
  }
  return JsonValue(std::move(obj));
}

BackendProfile BackendProfile::FromJson(const JsonValue& v) {
  BackendProfile profile;
  // Reject unknown fields up front: a typo'd "speed_grad" must fail the
  // load, not silently run the homogeneous default.
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    if (key != "name" && key != "speed_grade" && key != "cold_start_ms" &&
        key != "cost_per_s" && key != "module_scale") {
      throw JsonError(
          "unknown backend-profile field \"" + key +
          "\" (supported: name, speed_grade, cold_start_ms, cost_per_s, module_scale)");
    }
  }
  if (const JsonValue* name = v.Find("name")) {
    profile.name = name->AsString();
  }
  if (const JsonValue* grade = v.Find("speed_grade")) {
    profile.speed_grade = grade->AsDouble();
  }
  if (const JsonValue* cold = v.Find("cold_start_ms")) {
    profile.cold_start = MsToUs(cold->AsDouble());
  }
  if (const JsonValue* cost = v.Find("cost_per_s")) {
    profile.cost_per_s = cost->AsDouble();
  }
  if (const JsonValue* scales = v.Find("module_scale")) {
    for (const auto& [model, scale] : scales->AsObject()) {
      profile.module_scale[model] = scale.AsDouble();
    }
  }
  profile.Validate();
  return profile;
}

std::vector<BackendProfile> ParseBackendGrades(const std::string& text) {
  std::vector<BackendProfile> catalog;
  int index = 0;
  for (const std::string& part : Split(text, ',')) {
    const std::string trimmed(Trim(part));
    if (trimmed.empty()) {
      continue;
    }
    // "1.0" or "1.0@3.5" (grade at a per-second cost).
    const std::size_t at = trimmed.find('@');
    const std::string grade_text = trimmed.substr(0, at);
    char* end = nullptr;
    const double grade = std::strtod(grade_text.c_str(), &end);
    PARD_CHECK_MSG(end != grade_text.c_str() && *end == '\0' && std::isfinite(grade) &&
                       grade > 0.0,
                   "invalid backend grade \"" << trimmed
                                              << "\" (expected a positive number)");
    BackendProfile profile;
    profile.name = "grade" + std::to_string(index++);
    profile.speed_grade = grade;
    if (at != std::string::npos) {
      const std::string cost_text = trimmed.substr(at + 1);
      const double cost = std::strtod(cost_text.c_str(), &end);
      PARD_CHECK_MSG(end != cost_text.c_str() && *end == '\0' && std::isfinite(cost) &&
                         cost > 0.0,
                     "invalid backend cost in \"" << trimmed
                                                  << "\" (expected grade@positive-cost)");
      profile.cost_per_s = cost;
    }
    profile.Validate();
    catalog.push_back(std::move(profile));
  }
  PARD_CHECK_MSG(!catalog.empty(), "backend grade list \"" << text << "\" names no grades");
  return catalog;
}

}  // namespace pard
