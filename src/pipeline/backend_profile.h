// Backend profile: the resource description of one GPU/accelerator class.
//
// PARD's goodput argument rests on the broker knowing each module's
// effective service capacity. Real fleets are heterogeneous — a module's
// workers may span A100s and T4s, and a slow card is not uniformly slow
// across models — so a pipeline spec can carry a *catalog* of backend
// profiles. The fleet layer (runtime/backend_fleet.h) assigns catalog
// entries to worker slots round-robin, and every capacity-facing quantity
// (execution duration, per-worker throughput units, cold-start delay)
// flows from the assigned profile:
//
//   effective d(b)  = d(b) * module_scale[model] / speed_grade
//   capacity units  = speed_grade / module_scale[model]  (1.0 = baseline)
//
// An empty catalog means the historical homogeneous fleet: every worker is
// the baseline grade-1.0 profile, and both substrates behave bit-identically
// to the pre-heterogeneity kernel.
#ifndef PARD_PIPELINE_BACKEND_PROFILE_H_
#define PARD_PIPELINE_BACKEND_PROFILE_H_

#include <map>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "jsonio/json.h"

namespace pard {

struct BackendProfile {
  // Catalog label ("a100", "t4", ...). Purely descriptive.
  std::string name = "default";

  // Relative execution speed: profiled batch durations divide by this.
  // 1.0 is the baseline grade the offline profiles were measured on;
  // 0.5 executes every batch twice as slowly. Must be positive.
  double speed_grade = 1.0;

  // Cold-start (model load) delay for workers of this class; negative
  // inherits RuntimeOptions::cold_start. A beefier card often loads faster,
  // a colder tier slower — scale-up latency is a per-backend property.
  Duration cold_start = -1;

  // Price of one provisioned-second of this class, in arbitrary $ units.
  // 1.0 (the baseline) keeps cost == provisioned-time and existing configs
  // byte-stable (the field is emitted only when set). Cost-aware
  // provisioning (RuntimeOptions::cost_aware_provisioning) picks the grade
  // maximizing speed / cost_per_s; BackendFleet::AccumulatedCost integrates
  // it over each slot's provisioned lifetime for $/goodput reporting.
  double cost_per_s = 1.0;

  // Optional per-module latency scale: model name -> extra duration
  // multiplier on top of the grade (a card can be disproportionately bad at
  // one model class). Keys must name models that exist in the pipeline;
  // values must be positive.
  std::map<std::string, double> module_scale;

  // Combined duration multiplier for `model` on this backend
  // (module_scale / speed_grade); 1.0 for the baseline profile.
  double ExecScaleFor(const std::string& model) const;

  // True for the implicit homogeneous profile: grade 1.0, inherited
  // cold-start, no per-module scales. A catalog of baseline profiles is
  // behaviourally identical to no catalog at all.
  bool IsBaseline() const;

  // Throws CheckError on non-positive grade/scales.
  void Validate() const;

  JsonValue ToJson() const;
  // Strict: an unknown field in the JSON object (e.g. a typo'd
  // "speed_grad") throws JsonError instead of being silently ignored —
  // same discipline as the PARD_BENCH_* env rejection in bench_util.h.
  static BackendProfile FromJson(const JsonValue& v);

  bool operator==(const BackendProfile& other) const {
    return name == other.name && speed_grade == other.speed_grade &&
           cold_start == other.cold_start && cost_per_s == other.cost_per_s &&
           module_scale == other.module_scale;
  }
  bool operator!=(const BackendProfile& other) const { return !(*this == other); }
};

// Parses a comma-separated grade list (the pardsim --backend-grades
// format) into a catalog of profiles named "grade<i>". Each entry is
// either "1.0" (cost defaults to 1.0 $/s) or "1.0@3.5" (grade at a
// per-second cost) — "1.0@3.5,0.5@1.0" describes a fast expensive tier and
// a slow cheap one for cost-aware provisioning. Throws CheckError on
// malformed or non-positive entries.
std::vector<BackendProfile> ParseBackendGrades(const std::string& text);

}  // namespace pard

#endif  // PARD_PIPELINE_BACKEND_PROFILE_H_
