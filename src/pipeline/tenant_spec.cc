#include "pipeline/tenant_spec.h"

#include <cmath>
#include <set>

#include "common/check.h"

namespace pard {

void TenantSpec::Validate() const {
  PARD_CHECK_MSG(!name.empty(), "tenant has an empty name");
  PARD_CHECK_MSG(std::isfinite(weight) && weight > 0.0,
                 "tenant \"" << name << "\" has non-positive weight " << weight);
  PARD_CHECK_MSG(std::isfinite(share) && share > 0.0 && share <= 1.0,
                 "tenant \"" << name << "\" has share " << share << " outside (0, 1]");
  PARD_CHECK_MSG(std::isfinite(slo_scale) && slo_scale > 0.0,
                 "tenant \"" << name << "\" has non-positive slo_scale " << slo_scale);
  PARD_CHECK_MSG(std::isfinite(admit_floor) && admit_floor >= 0.0 && admit_floor <= 1.0,
                 "tenant \"" << name << "\" has admit_floor " << admit_floor
                             << " outside [0, 1]");
}

JsonValue TenantSpec::ToJson() const {
  JsonObject obj;
  obj["name"] = name;
  obj["weight"] = weight;
  obj["share"] = share;
  if (slo_scale != 1.0) {
    obj["slo_scale"] = slo_scale;
  }
  if (admit_floor != 0.0) {
    obj["admit_floor"] = admit_floor;
  }
  return JsonValue(std::move(obj));
}

TenantSpec TenantSpec::FromJson(const JsonValue& v) {
  TenantSpec spec;
  // Reject unknown fields up front: a typo'd "admit_flor" must fail the
  // load, not silently run with no fairness floor.
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    if (key != "name" && key != "weight" && key != "share" && key != "slo_scale" &&
        key != "admit_floor") {
      throw JsonError("unknown tenant field \"" + key +
                      "\" (supported: name, weight, share, slo_scale, admit_floor)");
    }
  }
  if (const JsonValue* name = v.Find("name")) {
    spec.name = name->AsString();
  }
  if (const JsonValue* weight = v.Find("weight")) {
    spec.weight = weight->AsDouble();
  }
  if (const JsonValue* share = v.Find("share")) {
    spec.share = share->AsDouble();
  }
  if (const JsonValue* scale = v.Find("slo_scale")) {
    spec.slo_scale = scale->AsDouble();
  }
  if (const JsonValue* floor = v.Find("admit_floor")) {
    spec.admit_floor = floor->AsDouble();
  }
  spec.Validate();
  return spec;
}

void ValidateTenantCatalog(const std::vector<TenantSpec>& catalog) {
  PARD_CHECK_MSG(!catalog.empty(), "tenant catalog is empty");
  std::set<std::string> names;
  double share_sum = 0.0;
  for (const TenantSpec& tenant : catalog) {
    tenant.Validate();
    PARD_CHECK_MSG(names.insert(tenant.name).second,
                   "tenant catalog repeats name \"" << tenant.name << "\"");
    share_sum += tenant.share;
  }
  PARD_CHECK_MSG(std::fabs(share_sum - 1.0) <= 1e-6,
                 "tenant catalog shares sum to " << share_sum << ", expected 1.0");
}

JsonValue TenantCatalogToJson(const std::vector<TenantSpec>& catalog) {
  JsonArray tenants;
  tenants.reserve(catalog.size());
  for (const TenantSpec& tenant : catalog) {
    tenants.push_back(tenant.ToJson());
  }
  JsonObject doc;
  doc["tenants"] = std::move(tenants);
  return JsonValue(std::move(doc));
}

std::vector<TenantSpec> ParseTenantCatalog(const JsonValue& doc) {
  // Reject unknown top-level keys too — the file IS the catalog.
  for (const auto& [key, value] : doc.AsObject()) {
    (void)value;
    if (key != "tenants") {
      throw JsonError("unknown tenant-catalog field \"" + key + "\" (supported: tenants)");
    }
  }
  std::vector<TenantSpec> catalog;
  for (const JsonValue& entry : doc.At("tenants").AsArray()) {
    catalog.push_back(TenantSpec::FromJson(entry));
  }
  ValidateTenantCatalog(catalog);
  return catalog;
}

std::vector<TenantSpec> ParseTenantCatalogText(std::string_view text) {
  return ParseTenantCatalog(ParseJson(text));
}

std::vector<TenantSpec> MakeReferenceTenantCatalog() {
  std::vector<TenantSpec> catalog(3);
  catalog[0].name = "platinum";
  catalog[0].weight = 4.0;
  catalog[0].share = 0.2;
  catalog[0].slo_scale = 1.0;
  catalog[0].admit_floor = 0.9;
  catalog[1].name = "standard";
  catalog[1].weight = 2.0;
  catalog[1].share = 0.3;
  catalog[1].slo_scale = 1.0;
  catalog[1].admit_floor = 0.5;
  catalog[2].name = "batch";
  catalog[2].weight = 1.0;
  catalog[2].share = 0.5;
  catalog[2].slo_scale = 2.0;
  catalog[2].admit_floor = 0.1;
  ValidateTenantCatalog(catalog);
  return catalog;
}

}  // namespace pard
