// Pipeline specification: the DAG of modules a request traverses.
//
// Matches the paper's JSON schema (§5.1): a pipeline is a list of module
// configurations (name, id, pres, subs) plus an end-to-end latency SLO.
// `name` identifies the DNN model in the application library (our
// ProfileRegistry); `pres`/`subs` wire the DAG. PARD splits requests when
// `subs` has multiple entries and merges them when `pres` does.
#ifndef PARD_PIPELINE_PIPELINE_SPEC_H_
#define PARD_PIPELINE_PIPELINE_SPEC_H_

#include <string>
#include <vector>

#include "common/time_types.h"
#include "jsonio/json.h"
#include "pipeline/backend_profile.h"

namespace pard {

struct ModuleSpec {
  // Dense module id; must equal the module's index in PipelineSpec::modules.
  int id = 0;
  // Model name registered in the application library (ProfileRegistry).
  std::string model;
  // Preceding / subsequent module ids.
  std::vector<int> pres;
  std::vector<int> subs;
};

class PipelineSpec {
 public:
  PipelineSpec() = default;
  PipelineSpec(std::string app_name, Duration slo, std::vector<ModuleSpec> modules,
               std::vector<BackendProfile> backends = {});

  const std::string& app_name() const { return app_name_; }
  Duration slo() const { return slo_; }
  void set_slo(Duration slo) { slo_ = slo; }

  // Backend catalog for the worker fleet (see backend_profile.h). Empty
  // means the homogeneous baseline fleet; otherwise the fleet layer assigns
  // catalog entries to worker slots round-robin per module.
  const std::vector<BackendProfile>& backends() const { return backends_; }
  // Replaces the catalog; validates grades/scales and that every
  // module_scale key names a model present in this pipeline.
  void set_backends(std::vector<BackendProfile> backends);
  int NumModules() const { return static_cast<int>(modules_.size()); }
  const ModuleSpec& Module(int id) const;
  const std::vector<ModuleSpec>& modules() const { return modules_; }

  // Validates DAG structure: dense ids, pres/subs symmetry, acyclicity,
  // exactly one source and one sink. Throws CheckError with a description on
  // violation. Construction and FromJson validate automatically.
  void Validate() const;

  // Module ids in a topological order (stable: ties broken by id).
  std::vector<int> TopoOrder() const;

  // The unique module with no predecessors / successors.
  int SourceModule() const;
  int SinkModule() const;

  // All downstream paths from (exclusive) module `id` to the sink; each path
  // is a sequence of module ids. For the sink this is a single empty path.
  // Precomputed at construction; cheap to query per-request.
  const std::vector<std::vector<int>>& DownstreamPaths(int id) const;

  // True if the pipeline is a simple chain (every module has <=1 pre/sub).
  bool IsChain() const;

  JsonValue ToJson() const;
  static PipelineSpec FromJson(const JsonValue& v);
  static PipelineSpec FromJsonText(const std::string& text);

 private:
  void BuildPaths();
  void ValidateBackends() const;

  std::string app_name_;
  Duration slo_ = 0;
  std::vector<ModuleSpec> modules_;
  std::vector<BackendProfile> backends_;
  std::vector<std::vector<std::vector<int>>> downstream_paths_;
};

}  // namespace pard

#endif  // PARD_PIPELINE_PIPELINE_SPEC_H_
