// Tenant catalog: the multi-tenant workload description.
//
// The paper's goodput argument is single-tenant — one pipeline, one SLO.
// Production fleets (GoodServe's regime, see PAPERS.md) serve many tenants
// with different SLO classes and business weights from ONE shared
// BackendFleet, and the interesting admission question becomes *weighted
// global* goodput: shedding a low-weight tenant's request is correct when
// it saves capacity for higher-weight ones. A TenantSpec describes one such
// tenant:
//
//   * share       — the tenant's fraction of the arrival stream. Requests
//                   are assigned to tenants by a deterministic hash of the
//                   request id (core/tenant_governor.h), so the arrival
//                   process itself is untouched and untenanted runs stay
//                   bit-identical.
//   * weight      — goodput value per completed request; the governor sheds
//                   lowest-weight traffic first under overload, and reports
//                   weighted (normalized) goodput = Σ weight over good.
//   * slo_scale   — per-tenant SLO class: the request's SLO is the pipeline
//                   SLO times this scale (2.0 = a relaxed batch tier).
//   * admit_floor — fairness bound: the minimum fraction of this tenant's
//                   own offered requests that ingress must admit, no matter
//                   how overloaded the fleet is (tests/tenant_test.cc pins
//                   that no tenant starves below its floor).
//
// Catalogs load from JSON ({"tenants": [...]}, see configs/
// tenants_mixed.json) with the same strict unknown-field rejection as
// BackendProfile::FromJson.
#ifndef PARD_PIPELINE_TENANT_SPEC_H_
#define PARD_PIPELINE_TENANT_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "jsonio/json.h"

namespace pard {

struct TenantSpec {
  // Catalog label ("platinum", "batch", ...). Must be unique per catalog.
  std::string name = "tenant";

  // Goodput value of one completed request. Must be positive.
  double weight = 1.0;

  // Fraction of arrivals assigned to this tenant. Positive; a catalog's
  // shares must sum to 1 (within 1e-6).
  double share = 1.0;

  // Per-tenant SLO = pipeline SLO * slo_scale. Must be positive.
  double slo_scale = 1.0;

  // Minimum ingress admit probability under overload, in [0, 1].
  // 0 = the governor may shed this tenant entirely.
  double admit_floor = 0.0;

  // Throws CheckError on out-of-range fields.
  void Validate() const;

  JsonValue ToJson() const;
  // Strict: unknown fields throw JsonError (same discipline as
  // BackendProfile::FromJson) instead of silently running defaults.
  static TenantSpec FromJson(const JsonValue& v);

  bool operator==(const TenantSpec& other) const {
    return name == other.name && weight == other.weight && share == other.share &&
           slo_scale == other.slo_scale && admit_floor == other.admit_floor;
  }
  bool operator!=(const TenantSpec& other) const { return !(*this == other); }
};

// Throws CheckError if the catalog is empty, has duplicate names, or its
// shares do not sum to 1 (within 1e-6).
void ValidateTenantCatalog(const std::vector<TenantSpec>& catalog);

// {"tenants": [...]} document wrapper, the configs/tenants_mixed.json
// on-disk format.
JsonValue TenantCatalogToJson(const std::vector<TenantSpec>& catalog);

// Parses a {"tenants": [...]} document (as produced by TenantCatalogToJson)
// and validates the result. Throws JsonError/CheckError on malformed input.
std::vector<TenantSpec> ParseTenantCatalog(const JsonValue& doc);
std::vector<TenantSpec> ParseTenantCatalogText(std::string_view text);

// The reference 3-tenant mix behind configs/tenants_mixed.json (written by
// tools/dump_configs, round-tripped by tests/configs_test.cc): a
// high-weight interactive tier, a mid-weight standard tier, and a
// half-the-traffic batch tier with a relaxed SLO and a low floor.
std::vector<TenantSpec> MakeReferenceTenantCatalog();

}  // namespace pard

#endif  // PARD_PIPELINE_TENANT_SPEC_H_
