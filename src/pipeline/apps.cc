#include "pipeline/apps.h"

#include "common/check.h"

namespace pard {
namespace {

ModuleSpec Chain(int id, const char* model, int num_modules) {
  ModuleSpec m;
  m.id = id;
  m.model = model;
  if (id > 0) {
    m.pres.push_back(id - 1);
  }
  if (id < num_modules - 1) {
    m.subs.push_back(id + 1);
  }
  return m;
}

}  // namespace

PipelineSpec MakeTrafficMonitoring() {
  std::vector<ModuleSpec> modules = {
      Chain(0, "object_detection", 3),
      Chain(1, "face_recognition", 3),
      Chain(2, "text_recognition", 3),
  };
  return PipelineSpec("tm", MsToUs(400), std::move(modules));
}

PipelineSpec MakeLiveVideo() {
  std::vector<ModuleSpec> modules = {
      Chain(0, "person_detection", 5),
      Chain(1, "face_recognition", 5),
      Chain(2, "expression_recognition", 5),
      Chain(3, "eye_tracking", 5),
      Chain(4, "pose_recognition", 5),
  };
  return PipelineSpec("lv", MsToUs(500), std::move(modules));
}

PipelineSpec MakeGameAnalysis() {
  std::vector<ModuleSpec> modules = {
      Chain(0, "object_detection", 5),
      Chain(1, "kill_count_detection", 5),
      Chain(2, "alive_player_recognition", 5),
      Chain(3, "health_value_recognition", 5),
      Chain(4, "icon_recognition", 5),
  };
  return PipelineSpec("gm", MsToUs(600), std::move(modules));
}

PipelineSpec MakeDagLiveVideo() {
  // person detection -> {pose recognition, face recognition} -> expression
  // recognition (merge) -> eye tracking (sink), per §5.1 and §5.2.
  ModuleSpec person;
  person.id = 0;
  person.model = "person_detection";
  person.subs = {1, 2};

  ModuleSpec pose;
  pose.id = 1;
  pose.model = "pose_recognition";
  pose.pres = {0};
  pose.subs = {3};

  ModuleSpec face;
  face.id = 2;
  face.model = "face_recognition";
  face.pres = {0};
  face.subs = {3};

  ModuleSpec expression;
  expression.id = 3;
  expression.model = "expression_recognition";
  expression.pres = {1, 2};
  expression.subs = {4};

  ModuleSpec eye;
  eye.id = 4;
  eye.model = "eye_tracking";
  eye.pres = {3};

  return PipelineSpec("da", MsToUs(420), {person, pose, face, expression, eye});
}

PipelineSpec MakeHeteroLiveVideo() {
  PipelineSpec lv = MakeLiveVideo();
  // A mixed fleet: full-speed baseline cards round-robined with half-speed
  // ones that load models slowly and are disproportionately bad at face
  // recognition — the GoodServe-style heterogeneity regime.
  BackendProfile fast;
  fast.name = "a100";
  BackendProfile slow;
  slow.name = "t4";
  slow.speed_grade = 0.5;
  slow.cold_start = 4 * kUsPerSec;
  slow.module_scale = {{"face_recognition", 1.25}};
  PipelineSpec spec("lvhet", lv.slo(), lv.modules());
  spec.set_backends({fast, slow});
  return spec;
}

PipelineSpec MakeApp(const std::string& name) {
  if (name == "tm") {
    return MakeTrafficMonitoring();
  }
  if (name == "lv") {
    return MakeLiveVideo();
  }
  if (name == "gm") {
    return MakeGameAnalysis();
  }
  if (name == "da") {
    return MakeDagLiveVideo();
  }
  if (name == "lvhet") {
    return MakeHeteroLiveVideo();
  }
  PARD_CHECK_MSG(false, "unknown app: " << name);
}

std::vector<std::string> AppNames() { return {"lv", "tm", "gm", "da"}; }

}  // namespace pard
