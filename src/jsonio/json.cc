#include "jsonio/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pard {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& msg) const {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << msg;
    throw JsonError(os.str());
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char Next() {
    const char c = Peek();
    ++pos_;
    return c;
  }

  void Expect(char c) {
    if (Next() != c) {
      --pos_;
      Fail(std::string("expected '") + c + "'");
    }
  }

  void ExpectLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      Fail(std::string("expected literal '") + std::string(lit) + "'");
    }
    pos_ += lit.size();
  }

  JsonValue ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue(ParseString());
      case 't':
        ExpectLiteral("true");
        return JsonValue(true);
      case 'f':
        ExpectLiteral("false");
        return JsonValue(false);
      case 'n':
        ExpectLiteral("null");
        return JsonValue(nullptr);
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject obj;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      obj[std::move(key)] = ParseValue();
      SkipWs();
      const char c = Next();
      if (c == '}') {
        return JsonValue(std::move(obj));
      }
      if (c != ',') {
        --pos_;
        Fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray arr;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(ParseValue());
      SkipWs();
      const char c = Next();
      if (c == ']') {
        return JsonValue(std::move(arr));
      }
      if (c != ',') {
        --pos_;
        Fail("expected ',' or ']' in array");
      }
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          Fail("unterminated escape");
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                Fail("invalid hex digit in \\u escape");
              }
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            Fail("invalid escape character");
        }
      } else {
        out += c;
      }
    }
  }

  static void AppendUtf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::stod(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void DumpValue(const JsonValue& v, std::ostringstream& os, int indent, int depth);

void Indent(std::ostringstream& os, int indent, int depth) {
  if (indent >= 0) {
    os << '\n';
    for (int i = 0; i < indent * depth; ++i) {
      os << ' ';
    }
  }
}

void DumpString(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void DumpNumber(double d, std::ostringstream& os) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os << buf;
  }
}

void DumpValue(const JsonValue& v, std::ostringstream& os, int indent, int depth) {
  if (v.IsNull()) {
    os << "null";
  } else if (v.IsBool()) {
    os << (v.AsBool() ? "true" : "false");
  } else if (v.IsNumber()) {
    DumpNumber(v.AsDouble(), os);
  } else if (v.IsString()) {
    DumpString(v.AsString(), os);
  } else if (v.IsArray()) {
    const JsonArray& arr = v.AsArray();
    os << '[';
    bool first = true;
    for (const JsonValue& e : arr) {
      if (!first) {
        os << ',';
        if (indent >= 0) {
          os << ' ';
        }
      }
      first = false;
      DumpValue(e, os, -1, depth + 1);  // Arrays stay on one line.
    }
    os << ']';
  } else {
    const JsonObject& obj = v.AsObject();
    os << '{';
    bool first = true;
    for (const auto& [key, val] : obj) {
      if (!first) {
        os << ',';
      }
      first = false;
      Indent(os, indent, depth + 1);
      DumpString(key, os);
      os << ':';
      if (indent >= 0) {
        os << ' ';
      }
      DumpValue(val, os, indent, depth + 1);
    }
    if (!obj.empty()) {
      Indent(os, indent, depth);
    }
    os << '}';
  }
}

}  // namespace

bool JsonValue::AsBool() const {
  if (!IsBool()) {
    throw JsonError("not a bool");
  }
  return std::get<bool>(value_);
}

double JsonValue::AsDouble() const {
  if (!IsNumber()) {
    throw JsonError("not a number");
  }
  return std::get<double>(value_);
}

std::int64_t JsonValue::AsInt() const {
  const double d = AsDouble();
  if (d != std::floor(d)) {
    throw JsonError("number is not an integer");
  }
  return static_cast<std::int64_t>(d);
}

const std::string& JsonValue::AsString() const {
  if (!IsString()) {
    throw JsonError("not a string");
  }
  return std::get<std::string>(value_);
}

const JsonArray& JsonValue::AsArray() const {
  if (!IsArray()) {
    throw JsonError("not an array");
  }
  return std::get<JsonArray>(value_);
}

const JsonObject& JsonValue::AsObject() const {
  if (!IsObject()) {
    throw JsonError("not an object");
  }
  return std::get<JsonObject>(value_);
}

JsonArray& JsonValue::AsArray() {
  if (!IsArray()) {
    throw JsonError("not an array");
  }
  return std::get<JsonArray>(value_);
}

JsonObject& JsonValue::AsObject() {
  if (!IsObject()) {
    throw JsonError("not an object");
  }
  return std::get<JsonObject>(value_);
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    throw JsonError("missing key: " + key);
  }
  return *v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) {
    return nullptr;
  }
  const JsonObject& obj = std::get<JsonObject>(value_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump(int indent) const {
  std::ostringstream os;
  DumpValue(*this, os, indent, 0);
  return os.str();
}

JsonValue ParseJson(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace pard
