// Minimal JSON parser/serializer.
//
// The paper (§5.1) defines inference pipelines via JSON files of module
// configurations (name, id, pres, subs); this module is the self-contained
// substrate that loads and emits those files. It supports the full JSON
// grammar except for \u surrogate pairs outside the BMP (sufficient for
// configuration data).
#ifndef PARD_JSONIO_JSON_H_
#define PARD_JSONIO_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pard {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// std::map keeps key order deterministic for serialization.
using JsonObject = std::map<std::string, JsonValue>;

// Thrown on malformed input (with byte offset) or type mismatches.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}                 // NOLINT(runtime/explicit)
  JsonValue(bool b) : value_(b) {}                               // NOLINT(runtime/explicit)
  JsonValue(double d) : value_(d) {}                             // NOLINT(runtime/explicit)
  JsonValue(int i) : value_(static_cast<double>(i)) {}           // NOLINT(runtime/explicit)
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  JsonValue(const char* s) : value_(std::string(s)) {}           // NOLINT(runtime/explicit)
  JsonValue(std::string s) : value_(std::move(s)) {}             // NOLINT(runtime/explicit)
  JsonValue(JsonArray a) : value_(std::move(a)) {}               // NOLINT(runtime/explicit)
  JsonValue(JsonObject o) : value_(std::move(o)) {}              // NOLINT(runtime/explicit)

  bool IsNull() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool IsBool() const { return std::holds_alternative<bool>(value_); }
  bool IsNumber() const { return std::holds_alternative<double>(value_); }
  bool IsString() const { return std::holds_alternative<std::string>(value_); }
  bool IsArray() const { return std::holds_alternative<JsonArray>(value_); }
  bool IsObject() const { return std::holds_alternative<JsonObject>(value_); }

  // Typed accessors; throw JsonError on mismatch.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  const JsonObject& AsObject() const;
  JsonArray& AsArray();
  JsonObject& AsObject();

  // Object field access; throws if not an object or key missing.
  const JsonValue& At(const std::string& key) const;
  // Returns nullptr when the key is absent (or this is not an object).
  const JsonValue* Find(const std::string& key) const;

  // Serializes. indent < 0 emits compact JSON; otherwise pretty-prints with
  // the given indentation width.
  std::string Dump(int indent = -1) const;

  bool operator==(const JsonValue& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> value_;
};

// Parses a complete JSON document; trailing non-whitespace is an error.
JsonValue ParseJson(std::string_view text);

}  // namespace pard

#endif  // PARD_JSONIO_JSON_H_
