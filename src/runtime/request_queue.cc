#include "runtime/request_queue.h"

#include <utility>

namespace pard {

void RequestQueue::Push(RequestPtr req) {
  const std::uint64_t seq = next_seq_++;
  Entry entry{req->deadline, seq, std::move(req)};
  live_.insert(seq);
  fifo_.push_back(entry);
  heap_.Push(std::move(entry));
}

SimTime RequestQueue::MinDeadline() {
  while (!heap_.Empty() && live_.count(heap_.Min().seq) == 0) {
    heap_.PopMin();  // Lazily discard entries consumed through the FIFO view.
  }
  return heap_.Empty() ? kSimTimeMax : heap_.Min().deadline;
}

RequestPtr RequestQueue::Pop(PopSide side) {
  while (!live_.empty()) {
    Entry entry;
    if (side == PopSide::kOldest) {
      if (fifo_.empty()) {
        break;
      }
      entry = std::move(fifo_.front());
      fifo_.pop_front();
    } else if (side == PopSide::kMinBudget) {
      if (heap_.Empty()) {
        break;
      }
      entry = heap_.PopMin();
    } else {
      if (heap_.Empty()) {
        break;
      }
      entry = heap_.PopMax();
    }
    const auto it = live_.find(entry.seq);
    if (it == live_.end()) {
      continue;  // Already consumed through the other view.
    }
    live_.erase(it);
    return std::move(entry.req);
  }
  return nullptr;
}

}  // namespace pard
