#include "runtime/request_queue.h"

#include <utility>

namespace pard {

void RequestQueue::Push(RequestPtr req) {
  const std::uint64_t seq = next_seq_++;
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  const SimTime deadline = req->deadline;
  slot.seq = seq;
  slot.live = true;
  slot.req = std::move(req);
  heap_.Push(HeapRef{deadline, seq, index});
  fifo_.push_back(FifoRef{seq, index});
  ++live_;
}

RequestPtr RequestQueue::Retire(std::uint32_t index) {
  Slot& slot = slots_[index];
  RequestPtr out = std::move(slot.req);
  slot.req = nullptr;
  slot.live = false;
  free_.push_back(index);
  --live_;
  MaybeCompact();
  return out;
}

SimTime RequestQueue::MinDeadline() {
  while (!heap_.Empty() && Stale(heap_.Min().seq, heap_.Min().index)) {
    heap_.PopMin();  // Lazily discard entries consumed through the FIFO view.
  }
  return heap_.Empty() ? kSimTimeMax : heap_.Min().deadline;
}

RequestPtr RequestQueue::Pop(PopSide side) {
  while (live_ > 0) {
    if (side == PopSide::kOldest) {
      if (fifo_.empty()) {
        break;
      }
      const FifoRef ref = fifo_.front();
      fifo_.pop_front();
      if (Stale(ref.seq, ref.index)) {
        continue;  // Already consumed through the heap view.
      }
      return Retire(ref.index);
    }
    if (heap_.Empty()) {
      break;
    }
    const HeapRef ref = side == PopSide::kMinBudget ? heap_.PopMin() : heap_.PopMax();
    if (Stale(ref.seq, ref.index)) {
      continue;  // Already consumed through the FIFO view.
    }
    return Retire(ref.index);
  }
  return nullptr;
}

void RequestQueue::MaybeCompact() {
  // Under single-view consumption (a long HBF/LBF phase, or pure FIFO) the
  // untouched view accumulates stale references indefinitely; rebuild a view
  // once its dead entries outnumber its live ones so footprint stays O(live).
  if (fifo_.size() > 64 && fifo_.size() > 2 * live_) {
    std::deque<FifoRef> kept;
    for (const FifoRef& ref : fifo_) {
      if (!Stale(ref.seq, ref.index)) {
        kept.push_back(ref);
      }
    }
    fifo_.swap(kept);
  }
  if (heap_.Size() > 64 && heap_.Size() > 2 * live_) {
    heap_.EraseIf([this](const HeapRef& ref) { return Stale(ref.seq, ref.index); });
  }
}

}  // namespace pard
