#include "runtime/batch_planner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "models/registry.h"

namespace pard {

std::vector<int> PlanBatchSizes(const PipelineSpec& spec) {
  const int n = spec.NumModules();
  // Module shares proportional to single-sample durations.
  Duration total_d1 = 0;
  for (const ModuleSpec& m : spec.modules()) {
    total_d1 += ProfileRegistry::Get(m.model).BatchDuration(1);
  }
  PARD_CHECK(total_d1 > 0);
  std::vector<int> batches(static_cast<std::size_t>(n), 1);
  for (const ModuleSpec& m : spec.modules()) {
    const ModelProfile& profile = ProfileRegistry::Get(m.model);
    const double share = static_cast<double>(profile.BatchDuration(1)) /
                         static_cast<double>(total_d1);
    const Duration budget =
        static_cast<Duration>(share * static_cast<double>(spec.slo()));
    batches[static_cast<std::size_t>(m.id)] = profile.LargestFeasibleBatch(budget);
  }
  return batches;
}

std::vector<int> PlanWorkers(const PipelineSpec& spec, const std::vector<int>& batch_sizes,
                             double rate, double headroom, int max_per_module, int total_gpus) {
  PARD_CHECK(rate > 0.0);
  PARD_CHECK(headroom > 0.0);
  const int n = spec.NumModules();
  PARD_CHECK(static_cast<int>(batch_sizes.size()) == n);
  std::vector<int> workers(static_cast<std::size_t>(n), 1);
  int total = 0;
  for (const ModuleSpec& m : spec.modules()) {
    const ModelProfile& profile = ProfileRegistry::Get(m.model);
    const double tput = profile.Throughput(batch_sizes[static_cast<std::size_t>(m.id)]);
    const int need = static_cast<int>(std::ceil(rate * headroom / tput));
    workers[static_cast<std::size_t>(m.id)] = std::clamp(need, 1, max_per_module);
    total += workers[static_cast<std::size_t>(m.id)];
  }
  if (total > total_gpus) {
    const double scale = static_cast<double>(total_gpus) / static_cast<double>(total);
    for (int& w : workers) {
      w = std::max(1, static_cast<int>(std::floor(w * scale)));
    }
  }
  return workers;
}

namespace {

// Longest (source->module inclusive) path weight per module, where each
// module's own weight is given by `weight`.
std::vector<double> LongestPrefixWeights(const PipelineSpec& spec,
                                         const std::vector<double>& weight) {
  const int n = spec.NumModules();
  std::vector<double> prefix(static_cast<std::size_t>(n), 0.0);
  for (int id : spec.TopoOrder()) {
    double best_pre = 0.0;
    for (int p : spec.Module(id).pres) {
      best_pre = std::max(best_pre, prefix[static_cast<std::size_t>(p)]);
    }
    prefix[static_cast<std::size_t>(id)] = best_pre + weight[static_cast<std::size_t>(id)];
  }
  return prefix;
}

}  // namespace

std::vector<Duration> CumulativeBudgetsFromWeights(const PipelineSpec& spec,
                                                   const std::vector<double>& weights,
                                                   Duration slo) {
  const int n = spec.NumModules();
  PARD_CHECK(static_cast<int>(weights.size()) == n);
  for (double w : weights) {
    PARD_CHECK_MSG(w > 0.0, "split weights must be positive");
  }
  const std::vector<double> prefix = LongestPrefixWeights(spec, weights);
  const double total = prefix[static_cast<std::size_t>(spec.SinkModule())];
  PARD_CHECK(total > 0.0);
  std::vector<Duration> budgets(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    budgets[static_cast<std::size_t>(i)] = static_cast<Duration>(
        static_cast<double>(slo) * prefix[static_cast<std::size_t>(i)] / total);
  }
  return budgets;
}

std::vector<Duration> CumulativeSplitBudgets(const PipelineSpec& spec,
                                             const std::vector<int>& batch_sizes) {
  const int n = spec.NumModules();
  PARD_CHECK(static_cast<int>(batch_sizes.size()) == n);
  std::vector<double> weights(static_cast<std::size_t>(n), 0.0);
  for (const ModuleSpec& m : spec.modules()) {
    const ModelProfile& profile = ProfileRegistry::Get(m.model);
    weights[static_cast<std::size_t>(m.id)] = static_cast<double>(
        profile.BatchDuration(batch_sizes[static_cast<std::size_t>(m.id)]));
  }
  return CumulativeBudgetsFromWeights(spec, weights, spec.slo());
}

}  // namespace pard
