#include "runtime/module_runtime.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "runtime/pipeline_runtime.h"

namespace pard {

ModuleRuntime::ModuleRuntime(Simulation* sim, PipelineRuntime* pipeline, BackendFleet* fleet,
                             const ModuleSpec& spec, const ModelProfile& profile, int batch_size,
                             int initial_workers, const RuntimeOptions& options,
                             DropPolicy* policy)
    : sim_(sim),
      pipeline_(pipeline),
      fleet_(fleet),
      spec_(spec),
      profile_(profile),
      batch_size_(batch_size),
      options_(options),
      policy_(policy),
      jitter_rng_(Rng(options.seed).Fork("jitter:" + std::to_string(spec.id))),
      queue_delay_window_(options.stats_window),
      stage_latency_window_(options.stats_window),
      wait_reservoir_(static_cast<std::size_t>(options.reservoir_capacity)),
      rate_monitor_(options.stats_window) {
  PARD_CHECK(batch_size_ >= 1);
  PARD_CHECK(initial_workers >= 1);
  PARD_CHECK(fleet_ != nullptr);
  for (int i = 0; i < initial_workers; ++i) {
    auto worker =
        std::make_shared<Worker>(sim_, this, fleet_, fleet_->Provision(spec_.id, sim_->Now()));
    worker->Activate();  // Initial fleet starts warm.
    workers_.push_back(std::move(worker));
  }
  if (options_.metrics != nullptr) {
    const std::string prefix = "module.m" + std::to_string(spec_.id) + ".";
    admitted_counter_ = options_.metrics->GetCounter(prefix + "admitted");
    executed_counter_ = options_.metrics->GetCounter(prefix + "executed");
    batch_size_hist_ = options_.metrics->GetHistogram(
        prefix + "batch_size", 0.0, static_cast<double>(batch_size_) + 1.0,
        static_cast<std::size_t>(batch_size_) + 1);
  }
}

int ModuleRuntime::ActiveWorkers() const { return fleet_->ActiveCount(spec_.id); }

int ModuleRuntime::ProvisionedWorkers() const { return fleet_->ProvisionedCount(spec_.id); }

double ModuleRuntime::ProvisionedUnits() const { return fleet_->ProvisionedUnits(spec_.id); }

Duration ModuleRuntime::SampleExecDuration(int batch, double exec_scale) {
  Duration d = ScaleBatchDuration(profile_.BatchDuration(batch), exec_scale);
  if (sim_->Now() < slow_until_) {
    // Chaos slowdown: transient interference scales this batch's execution.
    d = static_cast<Duration>(static_cast<double>(d) * slow_factor_);
  }
  if (options_.exec_jitter <= 0.0) {
    return d;
  }
  const double factor = std::max(0.5, jitter_rng_.Normal(1.0, options_.exec_jitter));
  return static_cast<Duration>(static_cast<double>(d) * factor);
}

Worker* ModuleRuntime::ChooseWorker() {
  // Least-loaded among dispatchable workers; round-robin tie-break so equal
  // loads spread deterministically.
  Worker* best = nullptr;
  std::size_t best_load = 0;
  const std::size_t n = workers_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Worker* w = workers_[(rr_cursor_ + i) % n].get();
    if (!w->Dispatchable()) {
      continue;
    }
    const std::size_t load = w->Load();
    if (best == nullptr || load < best_load) {
      best = w;
      best_load = load;
    }
  }
  rr_cursor_ = (rr_cursor_ + 1) % std::max<std::size_t>(n, 1);
  return best;
}

void ModuleRuntime::Receive(RequestPtr req) {
  const SimTime now = sim_->Now();
  rate_monitor_.Bump(now);
  if (req->Terminal()) {
    return;  // Dropped on another branch before delivery.
  }
  if (!policy_->AdmitAtModule(*req, spec_.id, now)) {
    req->hops[static_cast<std::size_t>(spec_.id)].arrive = now;
    OnPolicyDrop(std::move(req), DropReason::kProactiveAdmission);
    return;
  }
  Worker* worker = ChooseWorker();
  if (worker == nullptr) {
    // No dispatchable worker (all cold / draining): treat as a policy-
    // independent infrastructure drop so the request does not dangle.
    req->hops[static_cast<std::size_t>(spec_.id)].arrive = now;
    OnPolicyDrop(std::move(req), DropReason::kFaultKilled);
    return;
  }
  if (admitted_counter_ != nullptr) {
    admitted_counter_->Add();
  }
  if (TraceRecorder* trace = pipeline_->trace(); trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kAdmit;
    ev.module = spec_.id;
    ev.request_id = req->id;
    ev.ts = now;
    trace->EmitSampled(ev);
  }
  worker->Enqueue(std::move(req));
}

void ModuleRuntime::OnExecuted(RequestPtr req) { pipeline_->OnModuleDone(std::move(req), spec_.id); }

void ModuleRuntime::OnPolicyDrop(RequestPtr req, DropReason reason) {
  pipeline_->Drop(std::move(req), spec_.id, reason);
}

void ModuleRuntime::RecordQueueDelay(SimTime now, Duration q_delay) {
  queue_delay_window_.Add(now, static_cast<double>(q_delay));
}

void ModuleRuntime::RecordBatchWait(SimTime now, Duration wait) {
  (void)now;
  wait_reservoir_.Add(static_cast<double>(wait));
}

void ModuleRuntime::RecordStageLatency(SimTime now, Duration stage_latency) {
  stage_latency_window_.Add(now, static_cast<double>(stage_latency));
}

double ModuleRuntime::SmoothedInputRate(SimTime now) { return rate_monitor_.Smoothed(now); }

void ModuleRuntime::Sync(SimTime now, StateBoard* board) {
  ReapRetired();
  ModuleState state;
  state.module_id = spec_.id;
  state.updated_at = now;
  state.avg_queue_delay = queue_delay_window_.LinearWeightedMean(now, 0.0);
  state.worst_stage_latency = stage_latency_window_.Max(
      now, static_cast<double>(profile_.BatchDuration(batch_size_)));
  state.batch_size = batch_size_;
  state.batch_duration = profile_.BatchDuration(batch_size_);
  const double capacity = fleet_->PublishCapacity(spec_.id, PerWorkerThroughput(), state);
  state.input_rate = rate_monitor_.Raw(now);
  state.smoothed_rate = rate_monitor_.Smoothed(now);
  state.load_factor = capacity > 0.0 ? state.smoothed_rate / capacity : 0.0;
  state.burstiness = rate_monitor_.Burstiness(now);
  state.wait_samples = wait_reservoir_.values();
  std::sort(state.wait_samples.begin(), state.wait_samples.end());
  board->Publish(std::move(state));
}

double ModuleRuntime::ProvisionColdWorker() {
  const BackendSlot slot = fleet_->Provision(spec_.id, sim_->Now());
  auto worker = std::make_shared<Worker>(sim_, this, fleet_, slot);
  std::weak_ptr<Worker> weak = worker;
  workers_.push_back(std::move(worker));
  // Model cold start: the worker accepts traffic only after the delay (the
  // slot's backend profile decides how long the model load takes).
  sim_->ScheduleAfter(slot.cold_start, [weak] {
    if (auto w = weak.lock(); w != nullptr && w->state() == Worker::State::kColdStarting) {
      w->Activate();
    }
  });
  return slot.speed;
}

void ModuleRuntime::SetTargetUnits(double target_units) {
  target_units =
      std::clamp(target_units, 1.0, static_cast<double>(options_.max_workers_per_module));
  ReapRetired();
  double provisioned = ProvisionedUnits();
  // The per-module worker cap bounds the roster even when slow backends
  // contribute less than one unit each.
  while (provisioned < target_units && ProvisionedWorkers() < options_.max_workers_per_module) {
    provisioned += ProvisionColdWorker();
  }
  // Drain the highest-id (most recently added) workers first, as long as
  // the remaining capacity still covers the target.
  for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
    if ((*it)->state() == Worker::State::kActive ||
        (*it)->state() == Worker::State::kColdStarting) {
      const double speed = (*it)->slot().speed;
      if (provisioned - speed < target_units) {
        continue;
      }
      (*it)->BeginDraining();
      provisioned -= speed;
    }
  }
}

void ModuleRuntime::AddWorkers(int count) {
  ReapRetired();
  // The per-module cap binds recovery events exactly like scaling.
  count = std::min(count, options_.max_workers_per_module - ProvisionedWorkers());
  for (int i = 0; i < count; ++i) {
    ProvisionColdWorker();
  }
}

void ModuleRuntime::HangWorkers(int count, Duration duration) {
  for (auto& worker : workers_) {
    if (count <= 0) {
      break;
    }
    if (!worker->Dispatchable()) {
      continue;
    }
    worker->Hang(duration);
    if (duration > 0) {
      // Self-clearing hang; weak_ptr so a drained-and-reaped worker no-ops.
      std::weak_ptr<Worker> weak = worker;
      sim_->ScheduleAfter(duration, [weak] {
        if (auto w = weak.lock()) {
          w->Unhang();
        }
      });
    }
    --count;
  }
}

void ModuleRuntime::SetSlowdown(double factor, SimTime until) {
  PARD_CHECK(factor > 0.0);
  slow_factor_ = factor;
  slow_until_ = until;
}

void ModuleRuntime::RetryOrDrop(RequestPtr req) {
  if (req->Terminal()) {
    return;  // Resolved on another branch; nothing left to rescue.
  }
  const SimTime now = sim_->Now();
  const ResilienceOptions& res = options_.resilience;
  if (res.max_retries > 0) {
    if (req->retry_count >= res.max_retries) {
      OnPolicyDrop(std::move(req), DropReason::kRetryExhausted);
      return;
    }
    // Deadline-aware: re-enqueue only when the remaining budget could still
    // cover this stage's batch duration.
    if (req->RemainingBudget(now) > profile_.BatchDuration(batch_size_)) {
      Worker* worker = ChooseWorker();
      if (worker != nullptr) {
        ++req->retry_count;
        pipeline_->NoteRetry(*req, spec_.id, now);
        worker->Enqueue(std::move(req));
        return;
      }
      // No surviving dispatchable worker: the failure consumed the request.
    }
  }
  OnPolicyDrop(std::move(req), DropReason::kWorkerFailure);
}

void ModuleRuntime::FailWorkers(int count) {
  for (auto& worker : workers_) {
    if (count <= 0) {
      break;
    }
    if (worker->state() == Worker::State::kActive) {
      worker->Fail();
      --count;
    }
  }
  ReapRetired();
}

void ModuleRuntime::ReapRetired() {
  workers_.erase(std::remove_if(workers_.begin(), workers_.end(),
                                [](const std::shared_ptr<Worker>& w) {
                                  return w->state() == Worker::State::kRetired;
                                }),
                 workers_.end());
}

}  // namespace pard
