// Per-worker request queue: PARD's DEPQ plus FIFO access.
//
// The Request Broker pops requests by remaining latency budget — smallest
// (LBF) or largest (HBF) — while reactive baselines pop in arrival order.
// All three orders are exposed by maintaining a min-max heap keyed by
// deadline alongside an arrival deque. Entries live in a slab indexed by
// both views; consuming through one view retires the slab slot in O(1) (no
// hash lookups) and the other view skips the stale reference when it reaches
// it. Stale references are additionally compacted away whenever dead entries
// outnumber live ones, so a queue driven through a single view (e.g. a long
// HBF/LBF phase never touching the FIFO) stays bounded by its live size
// instead of by its history.
//
// Concurrency contract: the queue is NOT internally synchronized — both
// views mutate shared slab state on every Push/Pop/MinDeadline (lazy
// invalidation and compaction make even "read" paths writes). Single
// ownership in the simulator serializes access for free; the serving
// runtime shares one queue among N worker threads and guards every call
// with the owning ServeModule's mutex (see src/serve/serve_module.h). The
// serve test suite runs under TSan to pin this contract.
#ifndef PARD_RUNTIME_REQUEST_QUEUE_H_
#define PARD_RUNTIME_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/request.h"
#include "stats/minmax_heap.h"

namespace pard {

// Which end of the queue the broker should consume next.
enum class PopSide {
  kOldest,     // FIFO / arrival order (reactive baselines, PARD-FCFS).
  kMinBudget,  // Smallest remaining budget first (LBF).
  kMaxBudget,  // Largest remaining budget first (HBF).
};

class RequestQueue {
 public:
  RequestQueue() = default;

  void Push(RequestPtr req);

  // Pops the next live entry from the requested side; returns nullptr when
  // empty. O(log n) amortized.
  RequestPtr Pop(PopSide side);

  // Earliest deadline among queued requests; kSimTimeMax when empty. Lets
  // the broker purge requests that are already unservable regardless of
  // policy (deadline passed while queued).
  SimTime MinDeadline();

  std::size_t Size() const { return live_; }
  bool Empty() const { return live_ == 0; }

  // Internal-view footprints (live + stale references), exposed so the
  // bounded-memory regression test can assert compaction keeps them O(live).
  std::size_t HeapFootprint() const { return heap_.Size(); }
  std::size_t FifoFootprint() const { return fifo_.size(); }
  std::size_t SlabFootprint() const { return slots_.size(); }

 private:
  // Slab slot: `seq` is the entry's unique arrival sequence number; a view
  // reference is live iff its seq still matches the slot's (slots are reused
  // with fresh seqs, so stale references can never alias a new entry). The
  // deadline lives in the HeapRef, not here.
  struct Slot {
    std::uint64_t seq = 0;
    bool live = false;
    RequestPtr req;
  };
  struct HeapRef {
    SimTime deadline;
    std::uint64_t seq;
    std::uint32_t index;
  };
  struct FifoRef {
    std::uint64_t seq;
    std::uint32_t index;
  };
  struct HeapRefLess {
    bool operator()(const HeapRef& a, const HeapRef& b) const {
      // Deadline is the remaining-budget priority (now is common to all
      // queued requests); seq breaks ties deterministically.
      return a.deadline != b.deadline ? a.deadline < b.deadline : a.seq < b.seq;
    }
  };

  bool Stale(std::uint64_t seq, std::uint32_t index) const {
    const Slot& slot = slots_[index];
    return !slot.live || slot.seq != seq;
  }
  RequestPtr Retire(std::uint32_t index);
  void MaybeCompact();

  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  MinMaxHeap<HeapRef, HeapRefLess> heap_;
  std::deque<FifoRef> fifo_;
};

}  // namespace pard

#endif  // PARD_RUNTIME_REQUEST_QUEUE_H_
