// Per-worker request queue: PARD's DEPQ plus FIFO access.
//
// The Request Broker pops requests by remaining latency budget — smallest
// (LBF) or largest (HBF) — while reactive baselines pop in arrival order.
// All three orders are exposed by maintaining a min-max heap keyed by
// deadline alongside an arrival deque, with lazy invalidation: an entry
// popped through one view is skipped when encountered through the other.
#ifndef PARD_RUNTIME_REQUEST_QUEUE_H_
#define PARD_RUNTIME_REQUEST_QUEUE_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "runtime/request.h"
#include "stats/minmax_heap.h"

namespace pard {

// Which end of the queue the broker should consume next.
enum class PopSide {
  kOldest,     // FIFO / arrival order (reactive baselines, PARD-FCFS).
  kMinBudget,  // Smallest remaining budget first (LBF).
  kMaxBudget,  // Largest remaining budget first (HBF).
};

class RequestQueue {
 public:
  RequestQueue() = default;

  void Push(RequestPtr req);

  // Pops the next live entry from the requested side; returns nullptr when
  // empty. O(log n) amortized.
  RequestPtr Pop(PopSide side);

  // Earliest deadline among queued requests; kSimTimeMax when empty. Lets
  // the broker purge requests that are already unservable regardless of
  // policy (deadline passed while queued).
  SimTime MinDeadline();

  std::size_t Size() const { return live_.size(); }
  bool Empty() const { return live_.empty(); }

 private:
  struct Entry {
    SimTime deadline;
    std::uint64_t seq;
    RequestPtr req;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      // Deadline is the remaining-budget priority (now is common to all
      // queued requests); seq breaks ties deterministically.
      return a.deadline != b.deadline ? a.deadline < b.deadline : a.seq < b.seq;
    }
  };

  std::uint64_t next_seq_ = 1;
  MinMaxHeap<Entry, EntryLess> heap_;
  std::deque<Entry> fifo_;
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace pard

#endif  // PARD_RUNTIME_REQUEST_QUEUE_H_
