// Simulated GPU worker.
//
// A worker serves one module on one (virtual) GPU. It implements the
// batching discipline of the paper's Fig. 3b: while a batch executes, the
// next batch is formed from the queue; requests admitted to the forming
// batch at t_b start executing at t_e (the running batch's end), giving each
// request a batch wait W = t_e - t_b in [0, d]. An idle worker launches
// immediately (W = 0). The drop decision (Request Broker) happens exactly at
// admission time, when t_e and d_k are known.
//
// Each worker occupies one BackendFleet slot: its backend profile scales
// profiled batch durations (slot.exec_scale) and sets its cold-start delay,
// and every state change is mirrored to the fleet so capacity accounting
// and the transition log are shared with the serving substrate.
#ifndef PARD_RUNTIME_WORKER_H_
#define PARD_RUNTIME_WORKER_H_

#include <vector>

#include "runtime/backend_fleet.h"
#include "runtime/drop_policy.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "sim/simulation.h"

namespace pard {

class ModuleRuntime;

class Worker {
 public:
  enum class State {
    kColdStarting,  // Provisioned but still loading the model.
    kActive,
    kDraining,  // Excluded from dispatch; finishes its backlog then retires.
    kRetired,
  };

  Worker(Simulation* sim, ModuleRuntime* module, BackendFleet* fleet, const BackendSlot& slot);

  // Dispatcher entry point: enqueue and, if capacity allows, immediately
  // pull into the forming batch / start executing.
  void Enqueue(RequestPtr req);

  // Load metric used by the dispatcher (queued + forming + executing).
  std::size_t Load() const;

  int worker_id() const { return slot_.worker_id; }
  const BackendSlot& slot() const { return slot_; }
  State state() const { return state_; }
  bool Dispatchable() const { return state_ == State::kActive && !hung_; }
  bool hung() const { return hung_; }
  bool Idle() const { return !executing_ && forming_.empty() && queue_.Empty(); }

  // Scaling transitions.
  void Activate();                 // Cold start finished.
  void BeginDraining();            // Stop receiving work; retire when empty.

  // Hard failure: the GPU dies. The worker retires immediately; every
  // queued, forming and executing request is routed through the module's
  // deadline-aware retry path (re-enqueued on a surviving worker, or dropped
  // kWorkerFailure / kRetryExhausted).
  void Fail();

  // Chaos hang: the worker freezes without dying — it stops accepting
  // dispatch and, if executing, its batch stalls. A finite hang (`duration`
  // > 0) delays the in-flight batch by the hang window and clears via
  // Unhang(); an indefinite hang (0) freezes the batch until Fail() or the
  // end-of-run sweep (the simulator has no watchdog — serve does).
  void Hang(Duration duration);
  void Unhang();

 private:
  friend class ModuleRuntime;

  // Pulls queued requests into the forming batch, applying the drop policy
  // per request.
  void FillFormingBatch();

  // Launches the forming batch if the GPU is free.
  void MaybeLaunch();

  void OnBatchComplete();

  Simulation* sim_;
  ModuleRuntime* module_;
  BackendFleet* fleet_;
  BackendSlot slot_;
  State state_ = State::kColdStarting;
  bool hung_ = false;  // Excluded from dispatch and launch while set.

  RequestQueue queue_;
  std::vector<RequestPtr> forming_;
  bool executing_ = false;
  SimTime exec_end_ = 0;
  std::vector<RequestPtr> executing_batch_;
  SimTime exec_start_ = 0;
  EventId exec_event_ = 0;
};

}  // namespace pard

#endif  // PARD_RUNTIME_WORKER_H_
