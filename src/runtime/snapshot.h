// RCU-style snapshot cell with epoch-based reclamation.
//
// Single writer, many readers. The writer publishes immutable versions of T;
// readers pin the current version wait-free (one CAS on a private slot) and
// read it without any lock. C++17 has no std::atomic<std::shared_ptr>, so
// the grace period is tracked explicitly:
//
//   - The cell keeps a monotone epoch counter, starting at 1, bumped on
//     every Publish().
//   - A reader claims one of kSlots reader slots by CAS'ing 0 -> e, where e
//     is the epoch it observed at claim time, then loads the current
//     pointer. The slot stays claimed (and the version pinned) until the
//     returned ReadRef is destroyed.
//   - The writer never frees a replaced version immediately: it goes onto a
//     writer-private retired list tagged with the epoch at which it was
//     replaced. A retired version is freed only once every claimed slot
//     holds an epoch strictly greater than its retire epoch.
//
// Why that is safe (all critical accesses are seq_cst, so they have one
// total order): a reader's slot-store S precedes its pointer-load L. If L
// returned a version v that the writer later replaced with exchange X, then
// L < X in the total order (otherwise L would have seen the replacement),
// hence S < X < the writer's subsequent slot scan. The scan therefore sees
// the reader's claimed epoch e, and e <= retire_epoch(v) because the epoch
// counter had not yet passed v's replacement when S executed. The reclaim
// condition retire_epoch < min(claimed epochs) thus cannot fire while any
// reader can still dereference v. Claimed epochs lag (a reader may observe
// a stale epoch before claiming), but staleness only lowers e — strictly
// more conservative.
//
// Costs: Read() is one CAS + one load on the hot path (no contention unless
// two threads hash to the same slot); Publish() is O(kSlots + retired) and
// is meant for a once-per-sync cadence. Debug builds additionally check the
// single-writer contract and epoch monotonicity (PARD_CHECK -> CheckError).
//
// The destructor frees the current and all retired versions; the caller
// must guarantee no reader or writer is active by then (the serve runtime
// joins every thread before tearing down the control plane).
#ifndef PARD_RUNTIME_SNAPSHOT_H_
#define PARD_RUNTIME_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.h"

namespace pard {

template <typename T>
class SnapshotCell {
 public:
  // Pins one published version for the guard's lifetime. Move-only.
  class ReadRef {
   public:
    ReadRef(ReadRef&& other) noexcept
        : value_(other.value_), slot_(other.slot_), epoch_(other.epoch_) {
      other.slot_ = nullptr;
    }
    ReadRef(const ReadRef&) = delete;
    ReadRef& operator=(const ReadRef&) = delete;
    ReadRef& operator=(ReadRef&&) = delete;

    ~ReadRef() {
      if (slot_ != nullptr) {
        slot_->store(0, std::memory_order_release);
      }
    }

    const T& operator*() const { return *value_; }
    const T* operator->() const { return value_; }
    // Epoch observed at claim time (for the monotonicity invariant tests).
    std::uint64_t epoch() const { return epoch_; }

   private:
    friend class SnapshotCell;
    ReadRef(const T* value, std::atomic<std::uint64_t>* slot, std::uint64_t epoch)
        : value_(value), slot_(slot), epoch_(epoch) {}

    const T* value_;
    std::atomic<std::uint64_t>* slot_;
    std::uint64_t epoch_;
  };

  explicit SnapshotCell(std::unique_ptr<const T> initial)
      : current_(initial.release()) {
    PARD_CHECK(current_.load(std::memory_order_relaxed) != nullptr);
  }

  ~SnapshotCell() {
    delete current_.load(std::memory_order_relaxed);
    for (const Retired& r : retired_) {
      delete r.value;
    }
  }

  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  // Lock-free reader pin. Spins (with yield) only in the pathological case
  // of > kSlots simultaneous readers.
  ReadRef Read() const {
    const std::size_t start = SlotHint();
    for (;;) {
      const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
      for (std::size_t i = 0; i < kSlots; ++i) {
        std::atomic<std::uint64_t>& slot = slots_[(start + i) % kSlots].epoch;
        std::uint64_t expected = 0;
        if (slot.compare_exchange_strong(expected, e, std::memory_order_seq_cst)) {
          const T* value = current_.load(std::memory_order_seq_cst);
          return ReadRef(value, &slot, e);
        }
      }
      std::this_thread::yield();
    }
  }

  // Single-writer publish: installs `next`, retires the previous version,
  // and reclaims every retired version no reader can still hold.
  void Publish(std::unique_ptr<const T> next) {
    PARD_CHECK(next != nullptr);
#ifndef NDEBUG
    PARD_CHECK_MSG(!publishing_.exchange(true),
                   "SnapshotCell: concurrent Publish violates the single-writer contract");
#endif
    const T* replaced = current_.exchange(next.release(), std::memory_order_seq_cst);
    const std::uint64_t retire_epoch = epoch_.load(std::memory_order_relaxed);
#ifndef NDEBUG
    PARD_CHECK_MSG(retired_.empty() || retired_.back().epoch < retire_epoch,
                   "SnapshotCell: retire epochs must be strictly increasing");
#endif
    epoch_.store(retire_epoch + 1, std::memory_order_seq_cst);
    retired_.push_back(Retired{replaced, retire_epoch});
    Reclaim();
#ifndef NDEBUG
    publishing_.store(false);
#endif
  }

  // Current epoch; starts at 1, +1 per Publish. Monotone by construction.
  std::uint64_t Epoch() const { return epoch_.load(std::memory_order_seq_cst); }

  // Writer-side stats for the reclamation tests: versions awaiting a grace
  // period, and versions freed so far.
  std::size_t RetiredCount() const { return retired_.size(); }
  std::uint64_t ReclaimedCount() const { return reclaimed_.load(std::memory_order_relaxed); }

 private:
  struct Retired {
    const T* value;
    std::uint64_t epoch;  // Epoch during which this version was replaced.
  };

  // One cache line per slot so concurrent readers do not false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};  // 0 = free.
  };

  static constexpr std::size_t kSlots = 64;

  // Spreads threads across slots; claims fall back to a linear scan.
  static std::size_t SlotHint() {
    thread_local const std::size_t hint =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
    return hint;
  }

  // Writer only. Frees retired versions older than every claimed epoch.
  void Reclaim() {
    std::uint64_t min_claimed = ~std::uint64_t{0};
    for (const Slot& slot : slots_) {
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e != 0 && e < min_claimed) {
        min_claimed = e;
      }
    }
    std::size_t freed = 0;
    while (freed < retired_.size() && retired_[freed].epoch < min_claimed) {
      delete retired_[freed].value;
      ++freed;
    }
    if (freed > 0) {
      retired_.erase(retired_.begin(), retired_.begin() + static_cast<std::ptrdiff_t>(freed));
      reclaimed_.fetch_add(freed, std::memory_order_relaxed);
    }
  }

  std::atomic<const T*> current_;
  std::atomic<std::uint64_t> epoch_{1};
  mutable Slot slots_[kSlots];
  std::vector<Retired> retired_;  // Writer-private; oldest first.
  std::atomic<std::uint64_t> reclaimed_{0};
#ifndef NDEBUG
  std::atomic<bool> publishing_{false};
#endif
};

}  // namespace pard

#endif  // PARD_RUNTIME_SNAPSHOT_H_
