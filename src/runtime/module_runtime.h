// Per-module controller: dispatching, state collection and publication.
//
// Plays the paper's controller role for one module — the State Planner's
// monitoring half lives here (queue-delay window, rate tracking, batch-wait
// reservoir, load factor, burstiness) and is published to the StateBoard on
// every sync tick; the estimation half (w_k, L_sub) lives in src/core and
// reads the board.
#ifndef PARD_RUNTIME_MODULE_RUNTIME_H_
#define PARD_RUNTIME_MODULE_RUNTIME_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "models/model_profile.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "runtime/drop_policy.h"
#include "runtime/rate_monitor.h"
#include "runtime/request.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "runtime/worker.h"
#include "sim/simulation.h"
#include "stats/reservoir.h"
#include "stats/sliding_window.h"

namespace pard {

class PipelineRuntime;
class Counter;          // obs/metrics.h
class AtomicHistogram;  // obs/metrics.h

class ModuleRuntime {
 public:
  ModuleRuntime(Simulation* sim, PipelineRuntime* pipeline, BackendFleet* fleet,
                const ModuleSpec& spec, const ModelProfile& profile, int batch_size,
                int initial_workers, const RuntimeOptions& options, DropPolicy* policy);

  // Delivery from the dispatcher (or pipeline ingress).
  void Receive(RequestPtr req);

  // Computes and publishes this module's ModuleState.
  void Sync(SimTime now, StateBoard* board);

  // Scaling: adjusts the active+warming pool toward `target_units` of
  // capacity in baseline-worker units (Σ backend speed). For a homogeneous
  // grade-1.0 fleet this is exactly the historical integer worker target.
  void SetTargetUnits(double target_units);
  // Backwards-compatible integer form.
  void SetTargetWorkers(int target) { SetTargetUnits(static_cast<double>(target)); }

  // Failure injection: kills up to `count` active workers. Their queued and
  // in-flight requests go through the deadline-aware retry path (RetryOrDrop)
  // instead of being silently lost.
  void FailWorkers(int count);

  // Recovery / explicit scale-up: provisions `count` new workers that join
  // the fleet after their backend profile's cold start.
  void AddWorkers(int count);

  // Chaos injection: hangs up to `count` dispatchable workers for `duration`
  // (0 = indefinitely; see Worker::Hang). Finite hangs self-clear via a
  // scheduled Unhang.
  void HangWorkers(int count, Duration duration);
  // Chaos injection: scales every sampled exec duration by `factor` until
  // virtual time `until`. Later calls override earlier ones.
  void SetSlowdown(double factor, SimTime until);

  // Deadline-aware retry for a failed worker's request: re-enqueue on a
  // surviving worker (bounded by options.resilience.max_retries and the
  // remaining deadline budget vs this stage's batch duration), else drop
  // kRetryExhausted / kWorkerFailure. Mirrors ServeRuntime::RetryOrDrop —
  // the serve analogue of a direct enqueue is ServeModule::Receive, so both
  // substrates skip re-admission on the retry path.
  void RetryOrDrop(RequestPtr req);

  int module_id() const { return spec_.id; }
  int batch_size() const { return batch_size_; }
  const ModelProfile& profile() const { return profile_; }
  DropPolicy* policy() const { return policy_; }
  PipelineRuntime* pipeline() const { return pipeline_; }
  Simulation* sim() const { return sim_; }
  const RuntimeOptions& options() const { return options_; }

  int ActiveWorkers() const;
  int ProvisionedWorkers() const;  // Active + cold-starting.
  double ProvisionedUnits() const;
  // Baseline-grade throughput; heterogeneous capacity is this times the
  // fleet's effective units.
  double PerWorkerThroughput() const { return profile_.Throughput(batch_size_); }
  double SmoothedInputRate(SimTime now);

  // True execution duration for a batch on a backend with the given
  // duration multiplier: the profiled d(batch), scaled, with the configured
  // multiplicative jitter applied (exec_scale == 1.0 leaves the profiled
  // value untouched).
  Duration SampleExecDuration(int batch, double exec_scale);

  // --- Hooks invoked by workers -------------------------------------------
  void RecordQueueDelay(SimTime now, Duration q_delay);
  void RecordBatchWait(SimTime now, Duration wait);
  void RecordStageLatency(SimTime now, Duration stage_latency);
  void OnExecuted(RequestPtr req);          // Forward downstream.
  // Drop with attribution (policy sites pass kProactiveAdmission /
  // kBrokerCandidate / kPurgeExpired; infrastructure sites kFaultKilled).
  void OnPolicyDrop(RequestPtr req, DropReason reason);
  // Per-module executed tally + batch-size histogram (null when metrics
  // are disabled).
  Counter* executed_counter() const { return executed_counter_; }
  AtomicHistogram* batch_size_hist() const { return batch_size_hist_; }

 private:
  friend class Worker;

  Worker* ChooseWorker();
  void ReapRetired();
  // Provisions one cold worker from the fleet and schedules its activation
  // after the slot's cold start; returns the slot's capacity units.
  double ProvisionColdWorker();

  Simulation* sim_;
  PipelineRuntime* pipeline_;
  BackendFleet* fleet_;
  ModuleSpec spec_;
  const ModelProfile& profile_;
  int batch_size_;
  RuntimeOptions options_;
  DropPolicy* policy_;
  Rng jitter_rng_;

  // shared_ptr so deferred cold-start events can hold weak references and
  // safely no-op if the worker was drained and reaped in the meantime.
  // Worker ids are assigned by the fleet (dense, provisioning order).
  std::vector<std::shared_ptr<Worker>> workers_;
  std::size_t rr_cursor_ = 0;

  // State-planner monitoring.
  SlidingWindow queue_delay_window_;
  SlidingWindow stage_latency_window_;
  RecentReservoir wait_reservoir_;
  // Per-second arrival bins for input rate / burstiness (covers the stats
  // window; shared arithmetic with the serving runtime's modules).
  RateMonitor rate_monitor_;

  // Chaos slowdown window (SetSlowdown); inert at the defaults, so no-chaos
  // runs stay bit-identical.
  double slow_factor_ = 1.0;
  SimTime slow_until_ = 0;

  // Pre-resolved instruments (null when options_.metrics is null).
  Counter* admitted_counter_ = nullptr;
  Counter* executed_counter_ = nullptr;
  AtomicHistogram* batch_size_hist_ = nullptr;
};

}  // namespace pard

#endif  // PARD_RUNTIME_MODULE_RUNTIME_H_
