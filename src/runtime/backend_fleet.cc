#include "runtime/backend_fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {

const char* BackendStateName(BackendState s) {
  switch (s) {
    case BackendState::kColdStarting:
      return "cold-starting";
    case BackendState::kActive:
      return "active";
    case BackendState::kDraining:
      return "draining";
    case BackendState::kRetired:
      return "retired";
    case BackendState::kFailed:
      return "failed";
  }
  return "?";
}

BackendFleet::BackendFleet(const PipelineSpec& spec, Duration default_cold_start,
                           bool cost_aware) {
  cost_aware_ = cost_aware;
  catalog_ = spec.backends();
  if (catalog_.empty()) {
    catalog_.push_back(BackendProfile{});  // Homogeneous baseline fleet.
  }
  cold_starts_.reserve(catalog_.size());
  for (const BackendProfile& profile : catalog_) {
    profile.Validate();
    cold_starts_.push_back(profile.cold_start >= 0 ? profile.cold_start : default_cold_start);
  }
  const int n = spec.NumModules();
  exec_scales_.resize(static_cast<std::size_t>(n));
  rosters_.resize(static_cast<std::size_t>(n));
  for (const ModuleSpec& m : spec.modules()) {
    auto& scales = exec_scales_[static_cast<std::size_t>(m.id)];
    scales.reserve(catalog_.size());
    for (const BackendProfile& profile : catalog_) {
      scales.push_back(profile.ExecScaleFor(m.model));
    }
  }
}

BackendSlot BackendFleet::Provision(int module_id, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  auto& roster = rosters_[static_cast<std::size_t>(module_id)];
  Entry entry;
  entry.slot.module_id = module_id;
  entry.slot.worker_id = static_cast<int>(roster.size());
  if (cost_aware_) {
    // $/goodput objective: provision the grade with the best capacity per
    // dollar at THIS module (speeds are per-(module, profile) — a card that
    // is disproportionately bad at one model loses here). Ties keep the
    // lowest catalog index, so a homogeneous-cost catalog picks the fastest
    // grade deterministically.
    const auto& scales = exec_scales_[static_cast<std::size_t>(module_id)];
    int best = 0;
    double best_value = -1.0;
    for (int p = 0; p < static_cast<int>(catalog_.size()); ++p) {
      const double speed = 1.0 / scales[static_cast<std::size_t>(p)];
      const double value = speed / catalog_[static_cast<std::size_t>(p)].cost_per_s;
      if (value > best_value) {
        best_value = value;
        best = p;
      }
    }
    entry.slot.profile_index = best;
  } else {
    entry.slot.profile_index = entry.slot.worker_id % static_cast<int>(catalog_.size());
  }
  const double scale = exec_scales_[static_cast<std::size_t>(module_id)]
                                   [static_cast<std::size_t>(entry.slot.profile_index)];
  entry.slot.exec_scale = scale;
  entry.slot.speed = 1.0 / scale;
  entry.slot.cold_start = cold_starts_[static_cast<std::size_t>(entry.slot.profile_index)];
  entry.state = BackendState::kColdStarting;
  entry.provisioned_at = now;
  transitions_.push_back(
      FleetTransition{now, module_id, entry.slot.worker_id, BackendState::kColdStarting});
  roster.push_back(entry);
  return roster.back().slot;
}

BackendFleet::Entry& BackendFleet::Find(int module_id, int worker_id) {
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  auto& roster = rosters_[static_cast<std::size_t>(module_id)];
  PARD_CHECK_MSG(worker_id >= 0 && worker_id < static_cast<int>(roster.size()),
                 "module " << module_id << " has no worker slot " << worker_id);
  return roster[static_cast<std::size_t>(worker_id)];
}

const BackendFleet::Entry& BackendFleet::Find(int module_id, int worker_id) const {
  return const_cast<BackendFleet*>(this)->Find(module_id, worker_id);
}

void BackendFleet::SetState(int module_id, int worker_id, BackendState to, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = Find(module_id, worker_id);
  if (entry.state == to) {
    return;
  }
  // Terminal states are sticky: a failed worker cannot drain or re-activate.
  PARD_CHECK_MSG(entry.state != BackendState::kFailed && entry.state != BackendState::kRetired,
                 "worker " << worker_id << " of module " << module_id << " is already "
                           << BackendStateName(entry.state) << "; cannot become "
                           << BackendStateName(to));
  entry.state = to;
  if (to == BackendState::kRetired || to == BackendState::kFailed) {
    entry.ended_at = now;  // Terminal: the slot stops accruing cost.
  }
  transitions_.push_back(FleetTransition{now, module_id, worker_id, to});
}

BackendState BackendFleet::State(int module_id, int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Find(module_id, worker_id).state;
}

BackendSlot BackendFleet::Slot(int module_id, int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Find(module_id, worker_id).slot;
}

int BackendFleet::ActiveCount(int module_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  int n = 0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    n += e.state == BackendState::kActive ? 1 : 0;
  }
  return n;
}

int BackendFleet::ProvisionedCount(int module_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  int n = 0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    n += (e.state == BackendState::kActive || e.state == BackendState::kColdStarting) ? 1 : 0;
  }
  return n;
}

int BackendFleet::TotalProvisioned() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& roster : rosters_) {
    for (const Entry& e : roster) {
      n += (e.state == BackendState::kActive || e.state == BackendState::kColdStarting) ? 1 : 0;
    }
  }
  return n;
}

double BackendFleet::ActiveUnits(int module_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  double units = 0.0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    if (e.state == BackendState::kActive) {
      units += e.slot.speed;
    }
  }
  return units;
}

double BackendFleet::ProvisionedUnits(int module_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  double units = 0.0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    if (e.state == BackendState::kActive || e.state == BackendState::kColdStarting) {
      units += e.slot.speed;
    }
  }
  return units;
}

double BackendFleet::MeanActiveSpeed(int module_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  double units = 0.0;
  int count = 0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    if (e.state == BackendState::kActive) {
      units += e.slot.speed;
      ++count;
    }
  }
  return count > 0 ? units / static_cast<double>(count) : 1.0;
}

std::vector<int> BackendFleet::WorkersInState(int module_id, BackendState state) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  std::vector<int> ids;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    if (e.state == state) {
      ids.push_back(e.slot.worker_id);
    }
  }
  return ids;
}

double BackendFleet::PublishCapacity(int module_id, double per_worker_throughput,
                                     ModuleState& state) const {
  std::lock_guard<std::mutex> lock(mu_);
  PARD_CHECK(module_id >= 0 && module_id < static_cast<int>(rosters_.size()));
  int active = 0;
  double units = 0.0;
  for (const Entry& e : rosters_[static_cast<std::size_t>(module_id)]) {
    if (e.state == BackendState::kActive) {
      ++active;
      units += e.slot.speed;
    }
  }
  state.num_workers = std::max(1, active);
  // The no-active floor mirrors the historical max(1, active) worker floor.
  state.effective_units = active > 0 ? units : static_cast<double>(state.num_workers);
  state.mean_speed = state.effective_units / static_cast<double>(state.num_workers);
  state.per_worker_throughput = per_worker_throughput;
  return per_worker_throughput * state.effective_units;
}

double BackendFleet::AccumulatedCost(SimTime now) const {
  std::lock_guard<std::mutex> lock(mu_);
  double cost = 0.0;
  for (const auto& roster : rosters_) {
    for (const Entry& e : roster) {
      const SimTime end = e.ended_at >= 0 ? e.ended_at : now;
      if (end > e.provisioned_at) {
        cost += catalog_[static_cast<std::size_t>(e.slot.profile_index)].cost_per_s *
                UsToSec(end - e.provisioned_at);
      }
    }
  }
  return cost;
}

const BackendProfile& BackendFleet::Profile(int index) const {
  PARD_CHECK(index >= 0 && index < CatalogSize());
  return catalog_[static_cast<std::size_t>(index)];
}

std::vector<FleetTransition> BackendFleet::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

std::vector<FleetEvent> ParseFaultSchedule(const std::string& text) {
  std::vector<FleetEvent> events;
  std::size_t index = 0;
  for (const std::string& part : Split(text, ',')) {
    const std::string entry(Trim(part));
    if (entry.empty()) {
      continue;
    }
    ++index;
    const std::vector<std::string> fields = Split(entry, ':');
    PARD_CHECK_MSG(fields.size() == 4,
                   "fault event " << index << " (\"" << entry << "\") has " << fields.size()
                                  << " fields, expected <at_s>:<module>:<kill|add>:<count>");
    FleetEvent event;
    char* end = nullptr;
    const double at_s = std::strtod(fields[0].c_str(), &end);
    PARD_CHECK_MSG(end != fields[0].c_str() && *end == '\0' && std::isfinite(at_s) && at_s >= 0.0,
                   "fault event " << index << " (\"" << entry << "\"): field 1 (\"" << fields[0]
                                  << "\") is not a valid non-negative time in seconds");
    event.at = SecToUs(at_s);
    const long module_id = std::strtol(fields[1].c_str(), &end, 10);
    PARD_CHECK_MSG(end != fields[1].c_str() && *end == '\0' && module_id >= 0,
                   "fault event " << index << " (\"" << entry << "\"): field 2 (\"" << fields[1]
                                  << "\") is not a valid module id");
    event.module_id = static_cast<int>(module_id);
    if (fields[2] == "kill") {
      event.kind = FleetEvent::Kind::kKill;
    } else if (fields[2] == "add") {
      event.kind = FleetEvent::Kind::kAdd;
    } else {
      PARD_CHECK_MSG(false, "fault event " << index << " (\"" << entry << "\"): field 3 (\""
                                           << fields[2] << "\") is not kill|add");
    }
    const long count = std::strtol(fields[3].c_str(), &end, 10);
    PARD_CHECK_MSG(end != fields[3].c_str() && *end == '\0' && count >= 1 && count <= 4096,
                   "fault event " << index << " (\"" << entry << "\"): field 4 (\"" << fields[3]
                                  << "\") is not a valid count in [1, 4096]");
    event.count = static_cast<int>(count);
    events.push_back(event);
  }
  PARD_CHECK_MSG(!events.empty(), "fault schedule \"" << text << "\" names no events");
  std::stable_sort(events.begin(), events.end(),
                   [](const FleetEvent& a, const FleetEvent& b) { return a.at < b.at; });
  return events;
}

}  // namespace pard
