// Shared runtime-state board.
//
// Each module's controller (State Planner role) publishes a compact state
// snapshot once per sync period (default 1 s, matching the paper's state
// synchronization); policies read the latest snapshots of *other* modules to
// estimate downstream latency. Snapshots are therefore up to one period
// stale, exactly like the gRPC state exchange in the real system.
//
// Concurrency contract: not internally synchronized. Publish() replaces a
// snapshot and bumps the version counter that estimator epoch caches key
// on, so readers racing a publish could observe a torn (state, version)
// pair. The simulator's event loop serializes everything. The serving
// runtime never lets worker threads touch this object at all: only the
// control thread publishes (under the ControlPlane's control lock, once per
// sync period), and after each publish the ControlPlane copies the board
// into an immutable ControlSnapshot released through an RCU-style cell
// (src/serve/control_plane.h, src/runtime/snapshot.h). Brokers read that
// snapshot — a consistent (states, version, policy view) triple — without
// locking; they can be up to one sync period stale, exactly like the gRPC
// state exchange in the real system.
#ifndef PARD_RUNTIME_STATE_BOARD_H_
#define PARD_RUNTIME_STATE_BOARD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time_types.h"

namespace pard {

struct ModuleState {
  int module_id = -1;
  SimTime updated_at = 0;

  // Recent average queueing delay q_i (5 s linear-weighted window), in us.
  double avg_queue_delay = 0.0;
  // Worst observed stage latency Q+W+D in the window (PARD-WCL ablation).
  double worst_stage_latency = 0.0;

  // Current batching plan.
  int batch_size = 1;
  Duration batch_duration = 1;  // d_i at batch_size, us.

  // Capacity and load. `per_worker_throughput` is the baseline grade's
  // req/s; heterogeneous fleets report their effective capacity via
  // `effective_units` (Σ speed over active workers, in baseline-worker
  // units) and `mean_speed` (effective_units / active count). Both are
  // exactly num_workers and 1.0 for a homogeneous grade-1.0 fleet, so
  // every downstream formula degenerates to the historical arithmetic.
  int num_workers = 1;
  double per_worker_throughput = 0.0;  // req/s at the baseline grade.
  double effective_units = 1.0;        // Fleet capacity, baseline units.
  double mean_speed = 1.0;             // Mean active-worker speed grade.
  double input_rate = 0.0;             // Recent arrivals, req/s.
  double smoothed_rate = 0.0;          // Window-smoothed arrivals, req/s.
  double load_factor = 0.0;            // mu = T_in / (T_m * units).
  double burstiness = 0.0;             // eps = sum|T_in - T_s| / sum T_in.

  // Sorted snapshot of recent per-request batch waits (us). Empty until the
  // module has observed traffic; estimators fall back to the uniform [0, d]
  // model in that case.
  std::vector<double> wait_samples;
};

// Expected execution duration of a batch on the module's current fleet mix:
// the profiled d(b) stretched by the mean active speed (a fleet averaging
// half the baseline speed executes batches twice as slowly). The exact-1.0
// guard keeps homogeneous fleets on the untouched table value, preserving
// bit-identity with the pre-heterogeneity kernel.
inline Duration EffectiveBatchDuration(const ModuleState& state) {
  if (state.mean_speed == 1.0 || state.mean_speed <= 0.0) {
    return state.batch_duration;
  }
  return static_cast<Duration>(
      std::llround(static_cast<double>(state.batch_duration) / state.mean_speed));
}

// True when `next` differs from `prev` in any field the latency estimator
// actually reads: the queue-delay term, the effective batch duration
// (batch_duration stretched by mean_speed) and the wait reservoir. The
// vector compare early-exits on the first differing sample, so a module
// with live traffic (whose reservoir shifts every sync) costs O(1) here;
// the full O(M) compare is only paid by idle modules — exactly the ones
// whose unchanged verdict lets the estimator skip an O(mc_samples) redraw.
inline bool EstimatorInputsChanged(const ModuleState& prev, const ModuleState& next) {
  return prev.avg_queue_delay != next.avg_queue_delay ||
         prev.batch_duration != next.batch_duration ||
         prev.mean_speed != next.mean_speed ||
         prev.wait_samples != next.wait_samples;
}

class StateBoard {
 public:
  explicit StateBoard(int num_modules)
      : states_(static_cast<std::size_t>(num_modules)),
        module_versions_(static_cast<std::size_t>(num_modules), 0) {
    for (int i = 0; i < num_modules; ++i) {
      states_[static_cast<std::size_t>(i)].module_id = i;
    }
  }

  int NumModules() const { return static_cast<int>(states_.size()); }

  const ModuleState& Get(int module_id) const {
    PARD_CHECK(module_id >= 0 && module_id < NumModules());
    return states_[static_cast<std::size_t>(module_id)];
  }

  void Publish(ModuleState state) {
    PARD_CHECK(state.module_id >= 0 && state.module_id < NumModules());
    const std::size_t i = static_cast<std::size_t>(state.module_id);
    ++version_;
    if (EstimatorInputsChanged(states_[i], state)) {
      module_versions_[i] = version_;
    }
    states_[i] = std::move(state);
  }

  // Monotone counter bumped on every publish; estimator caches key on it.
  std::uint64_t Version() const { return version_; }

  // Per-module dirty epoch: the global version at which this module's
  // estimator-relevant inputs last changed (see EstimatorInputsChanged).
  // A republish of identical inputs bumps Version() but not this, so
  // incremental refreshes (LatencyEstimator::RefreshAll) can tell "a sync
  // happened" apart from "this module actually moved".
  std::uint64_t ModuleVersion(int module_id) const {
    PARD_CHECK(module_id >= 0 && module_id < NumModules());
    return module_versions_[static_cast<std::size_t>(module_id)];
  }

 private:
  std::vector<ModuleState> states_;
  std::vector<std::uint64_t> module_versions_;
  std::uint64_t version_ = 0;
};

}  // namespace pard

#endif  // PARD_RUNTIME_STATE_BOARD_H_
