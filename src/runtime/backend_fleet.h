// Backend fleet: the shared worker-roster abstraction of both substrates.
//
// The simulator's ModuleRuntime/Worker and the serving runtime's ServeModule
// used to keep their own ad-hoc notion of "N identical workers". The fleet
// centralizes everything both need to agree on:
//
//   * profile assignment — worker slots draw BackendProfiles from the
//     pipeline's catalog round-robin (an empty catalog is the homogeneous
//     baseline), with the per-(module, profile) execution scale and
//     cold-start delay precomputed into the slot;
//   * roster state — cold-starting / active / draining / retired / failed
//     per worker, with a timestamped transition log for post-run analysis;
//   * capacity accounting — ActiveUnits() is the fleet's effective service
//     rate in baseline-worker units (Σ speed over active workers), which is
//     what the estimator and the scaling engine reason about instead of
//     `worker count × uniform profile`.
//
// The execution vehicles stay substrate-specific (sim Workers are event-loop
// objects, serve workers are OS threads); they report every state change
// here so that capacity queries, scaling decisions and the transition log
// are substrate-independent.
//
// Concurrency: internally synchronized (one mutex) — the serving runtime
// calls in from worker threads and the control thread concurrently; the
// simulator's single-threaded calls pay an uncontended lock on non-hot
// paths only (provision/transition/sync, never per-request dispatch).
#ifndef PARD_RUNTIME_BACKEND_FLEET_H_
#define PARD_RUNTIME_BACKEND_FLEET_H_

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"

namespace pard {

enum class BackendState {
  kColdStarting,  // Provisioned, still loading the model.
  kActive,
  kDraining,  // Excluded from new work; retires when its backlog is done.
  kRetired,   // Gone (drained out or reaped).
  kFailed,    // Killed by fault injection; never dispatched again.
};

const char* BackendStateName(BackendState s);

// Immutable description of one provisioned worker slot.
struct BackendSlot {
  int module_id = 0;
  int worker_id = 0;       // Dense per-module id, in provisioning order.
  int profile_index = 0;   // Into the catalog (0 for the baseline fleet).
  double exec_scale = 1.0; // Multiplier on profiled batch durations.
  double speed = 1.0;      // 1 / exec_scale: capacity in baseline units.
  Duration cold_start = 0; // Effective model-load delay for this slot.
};

struct FleetTransition {
  SimTime at = 0;
  int module_id = 0;
  int worker_id = 0;
  BackendState to = BackendState::kColdStarting;
};

// Worker-count history sample recorded at each scaling epoch: (time, active
// workers per module). Shared by both substrates' scaling engines.
struct FleetSample {
  SimTime t = 0;
  std::vector<int> workers;
};

class BackendFleet {
 public:
  // Builds the catalog from spec.backends() (a single baseline profile when
  // empty); `default_cold_start` fills profiles without an override. With
  // `cost_aware` set, Provision() picks the catalog grade maximizing
  // speed / cost_per_s for the module instead of round-robin — the
  // $/goodput objective of RuntimeOptions::cost_aware_provisioning.
  BackendFleet(const PipelineSpec& spec, Duration default_cold_start, bool cost_aware = false);

  BackendFleet(const BackendFleet&) = delete;
  BackendFleet& operator=(const BackendFleet&) = delete;

  // Registers the next worker slot for a module (state kColdStarting) and
  // returns its immutable description.
  BackendSlot Provision(int module_id, SimTime now);

  void SetState(int module_id, int worker_id, BackendState to, SimTime now);
  BackendState State(int module_id, int worker_id) const;
  BackendSlot Slot(int module_id, int worker_id) const;

  int ActiveCount(int module_id) const;
  int ProvisionedCount(int module_id) const;  // Active + cold-starting.
  int TotalProvisioned() const;               // Across all modules.

  // Effective capacity of the module's live fleet, in baseline-worker
  // units: Σ slot.speed over kActive workers. Equals the active count for a
  // homogeneous grade-1.0 fleet (exactly — sums of 1.0 are exact doubles).
  double ActiveUnits(int module_id) const;
  double ProvisionedUnits(int module_id) const;
  // ActiveUnits / ActiveCount; 1.0 when no worker is active (the estimator
  // then falls back to the baseline profile, matching the num_workers >= 1
  // floor both substrates always applied).
  double MeanActiveSpeed(int module_id) const;

  // Worker ids currently in `state`, ascending (provisioning order).
  std::vector<int> WorkersInState(int module_id, BackendState state) const;

  // Publishes the fleet's capacity view into a ModuleState under ONE lock
  // acquisition (count and units from the same roster snapshot): sets
  // num_workers (max(1, active) — the historical floor), effective_units
  // (active units, falling back to num_workers when nothing is active),
  // mean_speed and per_worker_throughput; returns the effective capacity
  // (per_worker_throughput * effective_units) for the caller's load_factor.
  // Both substrates' state publishers go through here so the estimator can
  // assume definitionally identical fields.
  double PublishCapacity(int module_id, double per_worker_throughput, ModuleState& state) const;

  int CatalogSize() const { return static_cast<int>(catalog_.size()); }
  const BackendProfile& Profile(int index) const;

  // Total fleet spend up to `now`, in $ (profile cost_per_s integrated over
  // each slot's provisioned lifetime — provision to retire/fail, still
  // accruing for live slots). With the default 1.0 $/s catalog this is
  // exactly provisioned worker-seconds, so goodput-per-dollar degenerates
  // to goodput-per-worker-second.
  double AccumulatedCost(SimTime now) const;

  // Timestamped roster changes since construction (copy; thread-safe).
  std::vector<FleetTransition> transitions() const;

 private:
  struct Entry {
    BackendSlot slot;
    BackendState state = BackendState::kColdStarting;
    SimTime provisioned_at = 0;  // Cost accrues from here...
    SimTime ended_at = -1;       // ...to here (terminal transition; -1 = live).
  };

  Entry& Find(int module_id, int worker_id);
  const Entry& Find(int module_id, int worker_id) const;

  std::vector<BackendProfile> catalog_;
  bool cost_aware_ = false;
  // exec_scales_[module][profile]: catalog profile's duration multiplier at
  // that module's model, precomputed so slots are plain numbers.
  std::vector<std::vector<double>> exec_scales_;
  std::vector<Duration> cold_starts_;  // Per profile, default applied.

  mutable std::mutex mu_;
  std::vector<std::vector<Entry>> rosters_;  // Per module, dense worker ids.
  std::vector<FleetTransition> transitions_;
};

// A profiled batch duration scaled to one slot's backend — THE definition
// both substrates execute with (sim Worker batches and serve thread
// sleeps). Identity for the baseline scale, so homogeneous runs keep the
// untouched profile-table value.
inline Duration ScaleBatchDuration(Duration d, double exec_scale) {
  if (exec_scale == 1.0) {
    return d;
  }
  return std::max<Duration>(1, static_cast<Duration>(static_cast<double>(d) * exec_scale));
}

// Parses the --fault-schedule format: comma-separated events
// "<at_s>:<module>:<kill|add>:<count>", e.g. "60:1:kill:2,80:1:add:2"
// kills 2 of module 1's workers at t=60 s and provisions 2 replacements
// (cold-starting) at t=80 s. Throws CheckError on malformed entries.
std::vector<FleetEvent> ParseFaultSchedule(const std::string& text);

}  // namespace pard

#endif  // PARD_RUNTIME_BACKEND_FLEET_H_
