// Drop-policy interface.
//
// A policy plugs into the serving runtime at three points:
//   1. ShouldDrop()    — the Request Broker decision at batch-entry time t_b
//                        (Fig. 5), when t_e and d_k are known exactly.
//   2. ChoosePopSide() — which end of the per-worker DEPQ the broker
//                        consumes next (arrival order vs LBF vs HBF).
//   3. AdmitAtModule() — enqueue-time admission (used by the DAGOR-style
//                        overload-control baseline to shed at ingress).
// OnSync() fires after every state-board refresh so policies can update
// derived state (adaptive priority mode, dynamic budget splits).
#ifndef PARD_RUNTIME_DROP_POLICY_H_
#define PARD_RUNTIME_DROP_POLICY_H_

#include <string>

#include "common/time_types.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/state_board.h"

namespace pard {

// Everything the Request Broker knows when deciding on one request.
struct AdmissionContext {
  const Request* request = nullptr;
  int module_id = -1;
  SimTime now = 0;            // == t_b, the moment of the decision.
  SimTime batch_start = 0;    // Expected t_e of the batch being formed.
  Duration batch_duration = 0;  // d_k at the module's planned batch size.
  int batch_size = 1;
};

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;

  // Called once by the runtime before any traffic; gives the policy read
  // access to the pipeline structure and the shared state board.
  virtual void Bind(const PipelineSpec* spec, const StateBoard* board) {
    spec_ = spec;
    board_ = board;
  }

  // Request Broker decision: true = drop the request now (it never enters
  // the forming batch and consumes no GPU time at this module).
  virtual bool ShouldDrop(const AdmissionContext& ctx) = 0;

  // Queue-order decision for the module's workers.
  virtual PopSide ChoosePopSide(int module_id, SimTime now) {
    (void)module_id;
    (void)now;
    return PopSide::kOldest;
  }

  // Enqueue-time admission; false = shed before queueing.
  virtual bool AdmitAtModule(const Request& request, int module_id, SimTime now) {
    (void)request;
    (void)module_id;
    (void)now;
    return true;
  }

  // Whether the broker may evict queued requests whose deadline has already
  // passed (they are unservable under any decision). Every dropping policy
  // wants this; the naive baseline — which never drops — returns false.
  virtual bool PurgeExpired() const { return true; }

  // Invoked right after every state-board sync.
  virtual void OnSync(SimTime now) { (void)now; }

  virtual std::string Name() const = 0;

 protected:
  const PipelineSpec* spec_ = nullptr;
  const StateBoard* board_ = nullptr;
};

}  // namespace pard

#endif  // PARD_RUNTIME_DROP_POLICY_H_
