// Drop-policy interface.
//
// A policy plugs into the serving runtime at three points:
//   1. ShouldDrop()    — the Request Broker decision at batch-entry time t_b
//                        (Fig. 5), when t_e and d_k are known exactly.
//   2. ChoosePopSide() — which end of the per-worker DEPQ the broker
//                        consumes next (arrival order vs LBF vs HBF).
//   3. AdmitAtModule() — enqueue-time admission (used by the DAGOR-style
//                        overload-control baseline to shed at ingress).
// OnSync() fires after every state-board refresh so policies can update
// derived state (adaptive priority mode, dynamic budget splits).
#ifndef PARD_RUNTIME_DROP_POLICY_H_
#define PARD_RUNTIME_DROP_POLICY_H_

#include <memory>
#include <string>

#include "common/time_types.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/state_board.h"

namespace pard {

class Rng;
class ThreadPool;

// What a policy's estimator refresh actually did (see
// DropPolicy::RefreshEstimates); surfaced as control.refresh_* metrics.
struct PolicyRefreshStats {
  int refreshed = 0;
  int skipped = 0;
};

// Everything the Request Broker knows when deciding on one request.
struct AdmissionContext {
  const Request* request = nullptr;
  int module_id = -1;
  SimTime now = 0;            // == t_b, the moment of the decision.
  SimTime batch_start = 0;    // Expected t_e of the batch being formed.
  Duration batch_duration = 0;  // d_k at the module's planned batch size.
  int batch_size = 1;
};

// Immutable decision snapshot of a policy, valid for one sync interval.
//
// The serving control plane asks the policy for a fresh view after every
// OnSync() (under the control lock) and publishes it through an RCU-style
// snapshot cell; between syncs broker threads call the view's const methods
// with NO lock held. A view must therefore be self-contained: every decision
// input (estimates, budgets, priority sides, overload flags) is copied out
// of the policy at build time, and the const methods may not touch mutable
// policy or board state.
//
// Randomized admission (the DAGOR-style baseline's Bernoulli shed) cannot be
// lock-free with a shared RNG, so a view declares NeedsAdmissionRng() and
// the control plane hands AdmitAtModule() an exclusively-held RNG from its
// striped admission shards — contention spreads across shards instead of
// serializing on one mutex.
class PolicyView {
 public:
  virtual ~PolicyView() = default;

  // Request Broker predicate; same semantics as DropPolicy::ShouldDrop.
  virtual bool ShouldDrop(const AdmissionContext& ctx) const = 0;

  // Queue-order decision; fixed per module until the next sync.
  virtual PopSide ChoosePopSide(int module_id, SimTime now) const {
    (void)module_id;
    (void)now;
    return PopSide::kOldest;
  }

  // Enqueue-time admission. `rng` is non-null iff NeedsAdmissionRng(): the
  // control plane's per-shard RNG, exclusively held for this call.
  virtual bool AdmitAtModule(const Request& request, int module_id, SimTime now,
                             Rng* rng) const {
    (void)request;
    (void)module_id;
    (void)now;
    (void)rng;
    return true;
  }

  virtual bool NeedsAdmissionRng() const { return false; }
};

class DropPolicy {
 public:
  virtual ~DropPolicy() = default;

  // Called once by the runtime before any traffic; gives the policy read
  // access to the pipeline structure and the shared state board.
  virtual void Bind(const PipelineSpec* spec, const StateBoard* board) {
    spec_ = spec;
    board_ = board;
  }

  // Request Broker decision: true = drop the request now (it never enters
  // the forming batch and consumes no GPU time at this module).
  virtual bool ShouldDrop(const AdmissionContext& ctx) = 0;

  // Queue-order decision for the module's workers.
  virtual PopSide ChoosePopSide(int module_id, SimTime now) {
    (void)module_id;
    (void)now;
    return PopSide::kOldest;
  }

  // Enqueue-time admission; false = shed before queueing.
  virtual bool AdmitAtModule(const Request& request, int module_id, SimTime now) {
    (void)request;
    (void)module_id;
    (void)now;
    return true;
  }

  // Whether the broker may evict queued requests whose deadline has already
  // passed (they are unservable under any decision). Every dropping policy
  // wants this; the naive baseline — which never drops — returns false.
  virtual bool PurgeExpired() const { return true; }

  // Invoked right after every state-board sync.
  virtual void OnSync(SimTime now) { (void)now; }

  // Serve-mode estimator refresh, invoked by the control plane between
  // OnSync() and MakeView() on its lock-free sync path. Policies with an
  // epoch-cached estimator refresh it incrementally here (PARD fans
  // dirty-module work across `pool`; nullptr = run inline) so the following
  // MakeView() is pure cache reads. The default no-op keeps out-of-tree
  // policies on the lazy refresh-inside-MakeView behavior. Never called by
  // the simulator or the locked fallback path — results there must stay
  // bit-identical to the lazy shared-stream draws.
  virtual PolicyRefreshStats RefreshEstimates(ThreadPool* pool) {
    (void)pool;
    return {};
  }

  // Builds an immutable decision snapshot of this policy's current state
  // (see PolicyView). The serving control plane calls this under its lock
  // right after OnSync(); the returned view is then read lock-free by every
  // broker until the next sync replaces it. Returning nullptr (the default)
  // opts the policy out of snapshotting: the control plane falls back to
  // serializing every decision behind its mutex, which is always correct.
  virtual std::shared_ptr<const PolicyView> MakeView() { return nullptr; }

  virtual std::string Name() const = 0;

 protected:
  const PipelineSpec* spec_ = nullptr;
  const StateBoard* board_ = nullptr;
};

}  // namespace pard

#endif  // PARD_RUNTIME_DROP_POLICY_H_
