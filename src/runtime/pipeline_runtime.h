// Pipeline runtime: the full serving engine for one application.
//
// Owns the simulation kernel, one ModuleRuntime (controller + workers) per
// pipeline module, the shared StateBoard, the ingress dispatcher, DAG
// split/merge bookkeeping, the periodic state-sync tick and the optional
// resource-scaling engine. A run injects a trace of client arrivals and
// leaves behind the full set of Request records for offline analysis.
#ifndef PARD_RUNTIME_PIPELINE_RUNTIME_H_
#define PARD_RUNTIME_PIPELINE_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/tenant_governor.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "runtime/drop_policy.h"
#include "runtime/module_runtime.h"
#include "runtime/request.h"
#include "runtime/request_arena.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "sim/simulation.h"

namespace pard {

class Counter;  // obs/metrics.h

class PipelineRuntime {
 public:
  // `policy` must outlive the runtime. Worker provisioning uses
  // options.fixed_workers if set, otherwise `expected_rate` with the
  // configured headroom.
  PipelineRuntime(const PipelineSpec& spec, const RuntimeOptions& options, DropPolicy* policy,
                  double expected_rate);

  // Runs the complete trace (sorted client send timestamps) plus drain time.
  void RunTrace(const std::vector<SimTime>& arrivals);

  // Lower-level API: schedule one client request at time t (must be called
  // before Run()).
  void ScheduleArrival(SimTime t);
  // Runs until `until` (and processes everything scheduled before it).
  void Run(SimTime until);

  Simulation& sim() { return sim_; }
  const PipelineSpec& spec() const { return spec_; }
  const StateBoard& board() const { return board_; }
  // Shared worker-roster layer: backend profiles, per-worker states and the
  // timestamped transition log (see runtime/backend_fleet.h).
  const BackendFleet& fleet() const { return fleet_; }
  ModuleRuntime& module(int id);
  const std::vector<int>& batch_sizes() const { return batch_sizes_; }

  // All requests injected so far (terminal after RunTrace); the metrics
  // library analyzes these.
  const std::vector<RequestPtr>& requests() const { return requests_; }

  // Worker-count history per module: (time, active workers), recorded at
  // each scaling epoch. Used by the cold-start analysis bench.
  using WorkerSample = FleetSample;
  const std::vector<WorkerSample>& worker_history() const { return worker_history_; }

  // --- Internal transitions (called by ModuleRuntime/Worker) --------------
  void OnModuleDone(RequestPtr req, int module_id);
  void Drop(RequestPtr req, int module_id, DropReason reason);
  // Accounting hook for ModuleRuntime::RetryOrDrop: bumps the retry tally,
  // metric and trace instant. The caller already incremented req.retry_count.
  void NoteRetry(const Request& req, int module_id, SimTime now);

  // Total successful re-enqueues after worker failures (resilience path).
  std::uint64_t retries() const { return retries_; }

  // Observability (null when disabled via RuntimeOptions).
  TraceRecorder* trace() { return options_.trace; }
  MetricsRegistry* metrics() { return options_.metrics; }

  // Multi-tenant governor; null for untenanted runs (empty
  // RuntimeOptions::tenants — the bit-identical historical path).
  const TenantGovernor* governor() const { return governor_.get(); }

 private:
  void Inject();
  void AssignDynamicPath(Request& req);
  void SyncTick();
  void ScalingTick();
  void Deliver(RequestPtr req, int module_id);
  void Complete(RequestPtr req);

  PipelineSpec spec_;
  RuntimeOptions options_;
  DropPolicy* policy_;
  Simulation sim_;
  StateBoard board_;
  Rng rng_;
  // Requests live until the analysis is done with them; the arena keeps them
  // (and their control blocks) in bump-allocated slabs, and allocator copies
  // inside the control blocks keep the arena alive past this runtime.
  std::shared_ptr<RequestArena> arena_ = std::make_shared<RequestArena>();
  std::vector<int> batch_sizes_;
  BackendFleet fleet_;
  std::vector<std::unique_ptr<ModuleRuntime>> modules_;
  std::vector<RequestPtr> requests_;
  std::vector<WorkerSample> worker_history_;
  std::uint64_t next_request_id_ = 1;
  SimTime last_arrival_ = 0;
  // Pre-resolved instruments (null when options_.metrics is null): fate
  // tallies by outcome/reason, bumped on the single simulator thread.
  Counter* completed_counter_ = nullptr;
  Counter* drop_reason_counters_[kNumDropReasons] = {};
  Counter* retry_counter_ = nullptr;
  // Tenant-keyed fate tallies ("tenant.<name>.completed|dropped"), indexed
  // by tenant; empty when untenanted or metrics are disabled.
  std::vector<Counter*> tenant_completed_;
  std::vector<Counter*> tenant_dropped_;
  // Weighted ingress governor (null when options_.tenants is empty).
  std::unique_ptr<TenantGovernor> governor_;
  std::int64_t sync_count_ = 0;
  std::uint64_t retries_ = 0;
  // Chaos stall-sync window: SyncTick keeps rescheduling but skips the
  // publish while now < stall_until_, so policies read a stale board exactly
  // like serve readers see a stale snapshot.
  SimTime stall_until_ = 0;
};

}  // namespace pard

#endif  // PARD_RUNTIME_PIPELINE_RUNTIME_H_
