#include "runtime/pipeline_runtime.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "resilience/chaos.h"
#include "runtime/batch_planner.h"

namespace pard {

namespace {
// Shared metric names with the serving runtime so dashboards read the same
// keys regardless of substrate.
std::string DropCounterName(DropReason reason) {
  return std::string("fate.dropped.") + DropReasonName(reason);
}
}  // namespace

PipelineRuntime::PipelineRuntime(const PipelineSpec& spec, const RuntimeOptions& options,
                                 DropPolicy* policy, double expected_rate)
    : spec_(spec),
      options_(options),
      policy_(policy),
      board_(spec.NumModules()),
      rng_(options.seed),
      batch_sizes_(PlanBatchSizes(spec)),
      fleet_(spec_, options_.cold_start, options_.cost_aware_provisioning) {
  PARD_CHECK(policy_ != nullptr);
  if (!options_.tenants.empty()) {
    governor_ = std::make_unique<TenantGovernor>(options_.tenants, options_.seed);
  }
  std::vector<int> workers;
  if (!options_.fixed_workers.empty()) {
    PARD_CHECK_MSG(static_cast<int>(options_.fixed_workers.size()) == spec_.NumModules(),
                   "fixed_workers size must match module count");
    workers = options_.fixed_workers;
  } else {
    workers = PlanWorkers(spec_, batch_sizes_, expected_rate, options_.provision_headroom,
                          options_.max_workers_per_module, options_.total_gpus);
  }
  policy_->Bind(&spec_, &board_);
  for (const ModuleSpec& m : spec_.modules()) {
    modules_.push_back(std::make_unique<ModuleRuntime>(
        &sim_, this, &fleet_, m, ProfileRegistry::Get(m.model),
        batch_sizes_[static_cast<std::size_t>(m.id)], workers[static_cast<std::size_t>(m.id)],
        options_, policy_));
  }
  if (options_.metrics != nullptr) {
    completed_counter_ = options_.metrics->GetCounter("fate.completed");
    for (int r = 1; r < kNumDropReasons; ++r) {
      drop_reason_counters_[r] = options_.metrics->GetCounter(
          DropCounterName(static_cast<DropReason>(r)));
    }
    retry_counter_ = options_.metrics->GetCounter("resilience.retries");
    if (governor_ != nullptr) {
      for (const TenantSpec& tenant : options_.tenants) {
        tenant_completed_.push_back(
            options_.metrics->GetCounter("tenant." + tenant.name + ".completed"));
        tenant_dropped_.push_back(
            options_.metrics->GetCounter("tenant." + tenant.name + ".dropped"));
      }
    }
  }
  // Periodic control-plane ticks.
  sim_.ScheduleAfter(options_.sync_period, [this] { SyncTick(); });
  if (options_.enable_scaling) {
    sim_.ScheduleAfter(options_.scaling_epoch, [this] { ScalingTick(); });
  }
  // Injected machine failures.
  for (const RuntimeOptions::FailureEvent& failure : options_.failures) {
    PARD_CHECK(failure.module_id >= 0 && failure.module_id < spec_.NumModules());
    sim_.ScheduleAt(failure.at, [this, failure] {
      modules_[static_cast<std::size_t>(failure.module_id)]->FailWorkers(failure.workers);
    });
  }
  // Deterministic kill/recover fleet schedule (the serving runtime applies
  // the identical schedule from its control thread).
  for (const FleetEvent& event : options_.fleet_events) {
    PARD_CHECK(event.module_id >= 0 && event.module_id < spec_.NumModules());
    PARD_CHECK(event.count >= 1);
    sim_.ScheduleAt(event.at, [this, event] {
      ModuleRuntime& m = *modules_[static_cast<std::size_t>(event.module_id)];
      if (event.kind == FleetEvent::Kind::kKill) {
        m.FailWorkers(event.count);
      } else {
        m.AddWorkers(event.count);
      }
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kFleet;
        ev.module = event.module_id;
        ev.ts = sim_.Now();
        ev.arg0 = event.kind == FleetEvent::Kind::kKill ? 0 : 1;
        ev.arg1 = event.count;
        options_.trace->Emit(ev);
      }
    });
  }
  // Chaos schedule: probabilistic entries are expanded into concrete events
  // from the run seed up front, so sim and serve apply an identical timeline.
  PARD_CHECK(options_.resilience.max_retries >= 0);
  for (const ChaosEvent& event :
       ExpandChaosSchedule(options_.resilience.chaos, options_.seed)) {
    if (event.kind != ChaosKind::kStallSync) {
      PARD_CHECK_MSG(event.module_id >= 0 && event.module_id < spec_.NumModules(),
                     "chaos event targets module " << event.module_id
                                                   << " but the pipeline has "
                                                   << spec_.NumModules() << " modules");
    }
    sim_.ScheduleAt(event.at, [this, event] {
      const SimTime now = sim_.Now();
      switch (event.kind) {
        case ChaosKind::kHang:
          modules_[static_cast<std::size_t>(event.module_id)]->HangWorkers(event.count,
                                                                           event.duration);
          break;
        case ChaosKind::kSlow:
          modules_[static_cast<std::size_t>(event.module_id)]->SetSlowdown(
              event.factor, now + event.duration);
          break;
        case ChaosKind::kStallSync:
          stall_until_ = std::max(stall_until_, now + event.duration);
          break;
      }
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kChaos;
        ev.module = event.module_id;
        ev.ts = now;
        ev.arg0 = static_cast<std::int64_t>(event.kind);
        ev.arg1 = event.kind == ChaosKind::kHang ? event.count
                                                 : static_cast<std::int64_t>(event.duration);
        options_.trace->Emit(ev);
      }
    });
  }
}

ModuleRuntime& PipelineRuntime::module(int id) {
  PARD_CHECK(id >= 0 && id < static_cast<int>(modules_.size()));
  return *modules_[static_cast<std::size_t>(id)];
}

void PipelineRuntime::ScheduleArrival(SimTime t) {
  last_arrival_ = std::max(last_arrival_, t);
  sim_.ScheduleAt(t, [this] { Inject(); });
}

void PipelineRuntime::Inject() {
  RequestPtr req = std::allocate_shared<Request>(ArenaAllocator<Request>(arena_));
  req->id = next_request_id_++;
  req->sent = sim_.Now();
  req->slo = spec_.slo();
  if (governor_ != nullptr) {
    // Tenant identity is a pure hash of the request id — no RNG draw, so
    // arrivals and every downstream stream match the untenanted run.
    req->tenant = governor_->TenantOf(req->id);
    const TenantSpec& tenant = governor_->Tenant(req->tenant);
    req->weight = tenant.weight;
    req->slo = static_cast<Duration>(
        std::llround(static_cast<double>(req->slo) * tenant.slo_scale));
  }
  req->deadline = req->sent + req->slo;
  req->hops.resize(static_cast<std::size_t>(spec_.NumModules()));
  req->merge_arrivals.assign(static_cast<std::size_t>(spec_.NumModules()), 0);
  if (options_.dynamic_paths) {
    AssignDynamicPath(*req);
  }
  requests_.push_back(req);
  if (governor_ != nullptr && !governor_->AdmitAtIngress(req->id, req->tenant)) {
    // Weighted ingress shed: recorded (conservation) but never delivered.
    Drop(std::move(req), spec_.SourceModule(), DropReason::kTenantShed);
    return;
  }
  Deliver(std::move(req), spec_.SourceModule());
}

void PipelineRuntime::AssignDynamicPath(Request& req) {
  const int n = spec_.NumModules();
  req.branch_choice.assign(static_cast<std::size_t>(n), -1);
  req.expected_arrivals.assign(static_cast<std::size_t>(n), 0);
  // Draw the branch taken at every fork, then propagate reachability so each
  // merge knows how many deliveries to expect for this request.
  std::vector<bool> active(static_cast<std::size_t>(n), false);
  active[static_cast<std::size_t>(spec_.SourceModule())] = true;
  for (int id : spec_.TopoOrder()) {
    if (!active[static_cast<std::size_t>(id)]) {
      continue;
    }
    const ModuleSpec& m = spec_.Module(id);
    if (m.subs.size() > 1) {
      const int pick = static_cast<int>(
          rng_.UniformInt(0, static_cast<std::int64_t>(m.subs.size()) - 1));
      const int chosen = m.subs[static_cast<std::size_t>(pick)];
      req.branch_choice[static_cast<std::size_t>(id)] = chosen;
      active[static_cast<std::size_t>(chosen)] = true;
      ++req.expected_arrivals[static_cast<std::size_t>(chosen)];
    } else {
      for (int s : m.subs) {
        active[static_cast<std::size_t>(s)] = true;
        ++req.expected_arrivals[static_cast<std::size_t>(s)];
      }
    }
  }
}

void PipelineRuntime::Deliver(RequestPtr req, int module_id) {
  // Network hop between client/module and module.
  RequestPtr captured = std::move(req);
  sim_.ScheduleAfter(options_.network_delay, [this, captured, module_id]() mutable {
    const ModuleSpec& m = spec_.Module(module_id);
    if (m.pres.size() > 1) {
      // DAG merge: enqueue only once all expected branches delivered (all
      // pres for static routing; possibly fewer under dynamic paths).
      int& arrived = captured->merge_arrivals[static_cast<std::size_t>(module_id)];
      ++arrived;
      if (captured->Terminal()) {
        return;  // A sibling branch was dropped; nothing to merge.
      }
      const int expected =
          captured->HasDynamicPath()
              ? captured->expected_arrivals[static_cast<std::size_t>(module_id)]
              : static_cast<int>(m.pres.size());
      if (arrived < expected) {
        return;
      }
    }
    modules_[static_cast<std::size_t>(module_id)]->Receive(std::move(captured));
  });
}

void PipelineRuntime::OnModuleDone(RequestPtr req, int module_id) {
  if (req->Terminal()) {
    return;  // Dropped on a parallel branch while this one executed.
  }
  const ModuleSpec& m = spec_.Module(module_id);
  if (m.subs.empty()) {
    Complete(std::move(req));
    return;
  }
  if (req->HasDynamicPath() && m.subs.size() > 1) {
    Deliver(req, req->branch_choice[static_cast<std::size_t>(module_id)]);
    return;
  }
  for (int sub : m.subs) {
    Deliver(req, sub);
  }
}

void PipelineRuntime::Drop(RequestPtr req, int module_id, DropReason reason) {
  if (req->Terminal()) {
    return;
  }
  req->fate = RequestFate::kDropped;
  req->drop_module = module_id;
  req->finish = sim_.Now();
  req->drop_reason = reason;
  if (drop_reason_counters_[static_cast<int>(reason)] != nullptr) {
    drop_reason_counters_[static_cast<int>(reason)]->Add();
  }
  if (req->tenant >= 0 && !tenant_dropped_.empty()) {
    tenant_dropped_[static_cast<std::size_t>(req->tenant)]->Add();
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFate;
    ev.module = module_id;
    ev.request_id = req->id;
    ev.ts = req->finish;
    ev.arg0 = static_cast<std::int64_t>(req->fate);
    ev.arg1 = static_cast<std::int64_t>(reason);
    options_.trace->EmitSampled(ev);
  }
}

void PipelineRuntime::Complete(RequestPtr req) {
  req->finish = sim_.Now();
  req->fate = req->finish <= req->deadline ? RequestFate::kCompleted : RequestFate::kLate;
  if (req->fate == RequestFate::kLate) {
    req->drop_reason = DropReason::kSloLate;
  }
  if (options_.metrics != nullptr) {
    if (req->fate == RequestFate::kCompleted) {
      completed_counter_->Add();
    } else {
      drop_reason_counters_[static_cast<int>(DropReason::kSloLate)]->Add();
    }
    if (req->tenant >= 0 && !tenant_completed_.empty()) {
      (req->fate == RequestFate::kCompleted
           ? tenant_completed_[static_cast<std::size_t>(req->tenant)]
           : tenant_dropped_[static_cast<std::size_t>(req->tenant)])
          ->Add();
    }
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFate;
    ev.module = -1;
    ev.request_id = req->id;
    ev.ts = req->finish;
    ev.arg0 = static_cast<std::int64_t>(req->fate);
    ev.arg1 = static_cast<std::int64_t>(req->drop_reason);
    options_.trace->EmitSampled(ev);
  }
}

void PipelineRuntime::NoteRetry(const Request& req, int module_id, SimTime now) {
  ++retries_;
  if (retry_counter_ != nullptr) {
    retry_counter_->Add();
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kRetry;
    ev.module = module_id;
    ev.request_id = req.id;
    ev.ts = now;
    ev.arg0 = req.retry_count;
    options_.trace->EmitSampled(ev);
  }
}

void PipelineRuntime::SyncTick() {
  const SimTime now = sim_.Now();
  if (now < stall_until_) {
    // Chaos stall-sync: skip the publish entirely (board and policy keep the
    // previous epoch's view) but keep the tick alive so syncing resumes.
    if (now <= last_arrival_ + options_.drain) {
      sim_.ScheduleAfter(options_.sync_period, [this] { SyncTick(); });
    }
    return;
  }
  for (auto& m : modules_) {
    m->Sync(now, &board_);
  }
  policy_->OnSync(now);
  if (governor_ != nullptr) {
    // Recompute the weighted shed plan from the states just published —
    // same staleness as every other control-plane consumer.
    governor_->ResyncFromBoard(board_);
  }
  ++sync_count_;
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kEpochSync;
    ev.module = -1;
    ev.ts = now;
    ev.arg0 = sync_count_;
    options_.trace->Emit(ev);
  }
  // Sim-mode metrics sampling happens here — at sim-event granularity on the
  // single simulator thread — so the exported series is a deterministic
  // function of the seed (no wall-clock sampler involved).
  if (options_.metrics != nullptr) {
    options_.metrics->GetGauge("control.sync_epoch")->Set(sync_count_);
    options_.metrics->Sample(now);
  }
  if (now <= last_arrival_ + options_.drain) {
    sim_.ScheduleAfter(options_.sync_period, [this] { SyncTick(); });
  }
}

void PipelineRuntime::ScalingTick() {
  const SimTime now = sim_.Now();
  WorkerSample sample;
  sample.t = now;
  for (auto& m : modules_) {
    const double rate = m->SmoothedInputRate(now);
    const double per_worker = m->PerWorkerThroughput();
    // Target capacity in baseline-worker units: heterogeneous fleets keep
    // provisioning until Σ speed covers the demand, which for a homogeneous
    // grade-1.0 fleet lands on exactly the historical ceil() worker count.
    double target_units = m->ProvisionedUnits();
    if (rate > 0.0 && per_worker > 0.0) {
      target_units = rate * options_.provision_headroom / per_worker;
    }
    m->SetTargetUnits(target_units);
    sample.workers.push_back(m->ActiveWorkers());
  }
  worker_history_.push_back(std::move(sample));
  if (now <= last_arrival_ + options_.drain) {
    sim_.ScheduleAfter(options_.scaling_epoch, [this] { ScalingTick(); });
  }
}

void PipelineRuntime::Run(SimTime until) { sim_.Run(until); }

void PipelineRuntime::RunTrace(const std::vector<SimTime>& arrivals) {
  PARD_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival timestamps must be sorted");
  for (SimTime t : arrivals) {
    ScheduleArrival(t);
  }
  sim_.Run();
  // Any request still in flight after the queues fully drain is abandoned
  // (can only happen via infrastructure corner cases); account it as late so
  // conservation holds.
  for (const RequestPtr& req : requests_) {
    if (!req->Terminal()) {
      req->fate = RequestFate::kLate;
      req->finish = sim_.Now();
      req->drop_reason = DropReason::kDrainAbandoned;
      if (drop_reason_counters_[static_cast<int>(DropReason::kDrainAbandoned)] !=
          nullptr) {
        drop_reason_counters_[static_cast<int>(DropReason::kDrainAbandoned)]
            ->Add();
      }
      if (req->tenant >= 0 && !tenant_dropped_.empty()) {
        tenant_dropped_[static_cast<std::size_t>(req->tenant)]->Add();
      }
    }
  }
}

}  // namespace pard
