// Configuration shared by both runtimes.
//
// Every option below documents its default, its unit, and which substrate
// honors it: [sim] = discrete-event simulator (runtime/pipeline_runtime.h),
// [serve] = wall-clock serving runtime (serve/serve_runtime.h),
// [both] = identical semantics on both. Serve-only knobs (speedup, arrival
// process, broker threads) live in serve/serve_options.h.
#ifndef PARD_RUNTIME_RUNTIME_OPTIONS_H_
#define PARD_RUNTIME_RUNTIME_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "pipeline/tenant_spec.h"
#include "resilience/resilience_options.h"

namespace pard {

// One deterministic fleet disturbance: kill or (re-)provision workers of a
// module at a virtual instant. Honored by both substrates — the simulator
// schedules them on the event loop, the serving runtime applies them from
// its control thread. Parsed from the pardsim --fault-schedule string by
// ParseFaultSchedule (runtime/backend_fleet.h).
struct FleetEvent {
  SimTime at = 0;
  int module_id = 0;
  enum class Kind { kKill, kAdd } kind = Kind::kKill;
  int count = 1;
};

class TraceRecorder;   // obs/trace_recorder.h
class MetricsRegistry;  // obs/metrics.h

struct RuntimeOptions {
  // [both] Root seed for every stochastic element (arrivals, jitter,
  // admission randomness, dynamic-path branching, tenant hashing). Streams
  // are forked per role so substreams stay decoupled. Default 42.
  std::uint64_t seed = 42;

  // [both] Observability (obs/). Both pointers are borrowed — the harness
  // (or test) owns the recorder/registry and must outlive the runtime.
  // Null (default) = disabled; every instrumentation site then reduces to a
  // single pointer test, and simulator runs stay bit-identical to the
  // uninstrumented kernel.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  // [serve] Sampler period for MetricsRegistry::Sample, virtual us.
  // Default 1 s. The simulator instead samples deterministically at every
  // sync tick and ignores this.
  Duration metrics_interval = 1 * kUsPerSec;

  // [both] Controller state-sync period, virtual us (paper: once per
  // second). Default 1 s.
  Duration sync_period = 1 * kUsPerSec;
  // [both] Sliding-window length for queue-delay smoothing and rate
  // tracking, virtual us (paper default: 5 s linear-weighted).
  Duration stats_window = 5 * kUsPerSec;
  // [both] Capacity of the per-module batch-wait reservoir (paper:
  // M = 10 000 samples).
  int reservoir_capacity = 10000;

  // [both] Per-hop transfer latency between modules (data-plane network),
  // virtual us. Default 500 us.
  Duration network_delay = 500;

  // [sim] Multiplicative execution-time jitter: each batch executes for
  // d(batch) * N(1, exec_jitter), floored at half the profiled duration.
  // 0 (default) = deterministic. Models the gap between offline profiles
  // and real GPU behaviour; stresses the estimator's D terms. The serving
  // runtime gets real jitter from the OS scheduler instead.
  double exec_jitter = 0.0;

  // [both] Provisioning. When `fixed_workers` is non-empty it gives the
  // worker count per module and scaling is disabled; otherwise workers are
  // provisioned from the trace rate with `provision_headroom` (default
  // 1.15x), and the scaling engine (if enabled) adjusts them at runtime
  // every `scaling_epoch` (default 10 s virtual). New workers become active
  // after `cold_start` (default 2 s virtual) unless their backend profile
  // overrides it. Worker counts clamp to `max_workers_per_module` (default
  // 32) and the cluster-wide `total_gpus` budget (default 64, the paper's
  // testbed size).
  std::vector<int> fixed_workers;
  double provision_headroom = 1.15;
  bool enable_scaling = false;
  Duration scaling_epoch = 10 * kUsPerSec;
  Duration cold_start = 2 * kUsPerSec;  // Model cold start on scale-up.
  int max_workers_per_module = 32;
  int total_gpus = 64;  // Cluster size (paper testbed: 64 GPU containers).

  // [both] Cost-aware provisioning (off by default): instead of assigning
  // backend-catalog profiles to new worker slots round-robin, each
  // Provision() picks the grade maximizing speed / cost_per_s for that
  // module — the $/goodput objective. Requires a heterogeneous catalog to
  // differ from the default; fleet cost accrues per provisioned-second
  // either way (BackendFleet::AccumulatedCost).
  bool cost_aware_provisioning = false;

  // [both] Virtual time to keep draining after the last arrival so
  // in-flight requests resolve. Default 5 s. (The serving runtime's drain
  // budget lives in ServeOptions::drain; this one bounds the simulator.)
  Duration drain = 5 * kUsPerSec;

  // [sim] Dynamic request paths (§5.2's "request-specific dynamic paths"):
  // at each fork module the request probabilistically takes exactly ONE
  // branch (chosen from intermediate results in the real system; sampled
  // uniformly here). Amplifies latency uncertainty and degrades estimation
  // accuracy unless the policy uses path prediction. Default off.
  bool dynamic_paths = false;

  // [sim] Failure injection: at `at` (virtual us), `workers` GPUs serving
  // `module_id` fail. In-flight and queued requests on the failed workers
  // are lost, and the scaling engine (if enabled) replaces capacity after a
  // cold start — the paper's "machine failure" disturbance (§1, §2).
  // Superseded by `fleet_events`, which both substrates honor.
  struct FailureEvent {
    SimTime at = 0;
    int module_id = 0;
    int workers = 1;
  };
  std::vector<FailureEvent> failures;

  // [both] Deterministic fleet fault schedule: kKill mirrors `failures`
  // (kill `count` active workers of `module_id` at `at`), kAdd provisions
  // `count` replacement workers that become active after their backend
  // profile's cold start. Default empty.
  std::vector<FleetEvent> fleet_events;

  // [both] Multi-tenant catalog (pipeline/tenant_spec.h). Empty (default) =
  // the historical single-tenant behaviour, bit-identical to untenanted
  // goldens. Non-empty: requests are hash-assigned to tenants at injection
  // (share-weighted), stamped with the tenant's scaled SLO and weight, and
  // the TenantGovernor (core/tenant_governor.h) sheds lowest-weight traffic
  // at ingress under overload, bounded by each tenant's admit_floor.
  std::vector<TenantSpec> tenants;

  // [both] Chaos injection + self-healing (resilience/). All defaults are
  // inert: empty chaos schedule, retries/watchdog/staleness disabled.
  ResilienceOptions resilience;
};

}  // namespace pard

#endif  // PARD_RUNTIME_RUNTIME_OPTIONS_H_
