// Configuration for the serving runtime.
#ifndef PARD_RUNTIME_RUNTIME_OPTIONS_H_
#define PARD_RUNTIME_RUNTIME_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "resilience/resilience_options.h"

namespace pard {

// One deterministic fleet disturbance: kill or (re-)provision workers of a
// module at a virtual instant. Honored by both substrates — the simulator
// schedules them on the event loop, the serving runtime applies them from
// its control thread. Parsed from the pardsim --fault-schedule string by
// ParseFaultSchedule (runtime/backend_fleet.h).
struct FleetEvent {
  SimTime at = 0;
  int module_id = 0;
  enum class Kind { kKill, kAdd } kind = Kind::kKill;
  int count = 1;
};

class TraceRecorder;   // obs/trace_recorder.h
class MetricsRegistry;  // obs/metrics.h

struct RuntimeOptions {
  std::uint64_t seed = 42;

  // Observability (obs/). Both pointers are borrowed — the harness (or test)
  // owns the recorder/registry and must outlive the runtime. Null = disabled;
  // every instrumentation site then reduces to a single pointer test, and
  // simulator runs stay bit-identical to the uninstrumented kernel.
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  // Serve-mode sampler period (virtual time) for MetricsRegistry::Sample.
  // The simulator instead samples deterministically at every sync tick.
  Duration metrics_interval = 1 * kUsPerSec;

  // Controller state-sync period (paper: once per second).
  Duration sync_period = 1 * kUsPerSec;
  // Sliding-window length for queue-delay smoothing and rate tracking
  // (paper default: 5 s linear-weighted).
  Duration stats_window = 5 * kUsPerSec;
  // Capacity of the per-module batch-wait reservoir (paper: M = 10 000).
  int reservoir_capacity = 10000;

  // Per-hop transfer latency between modules (data-plane network).
  Duration network_delay = 500;

  // Multiplicative execution-time jitter: each batch executes for
  // d(batch) * N(1, exec_jitter), floored at half the profiled duration.
  // 0 = deterministic (default). Models the gap between offline profiles
  // and real GPU behaviour; stresses the estimator's D terms.
  double exec_jitter = 0.0;

  // Provisioning. When `fixed_workers` is non-empty it gives the worker
  // count per module and scaling is disabled; otherwise workers are
  // provisioned from the trace rate with `provision_headroom`, and the
  // scaling engine (if enabled) adjusts them at runtime.
  std::vector<int> fixed_workers;
  double provision_headroom = 1.15;
  bool enable_scaling = false;
  Duration scaling_epoch = 10 * kUsPerSec;
  Duration cold_start = 2 * kUsPerSec;  // Model cold start on scale-up.
  int max_workers_per_module = 32;
  int total_gpus = 64;  // Cluster size (paper testbed: 64 GPU containers).

  // Virtual time to keep draining after the last arrival so in-flight
  // requests resolve.
  Duration drain = 5 * kUsPerSec;

  // Dynamic request paths (§5.2's "request-specific dynamic paths"): at each
  // fork module the request probabilistically takes exactly ONE branch
  // (chosen from intermediate results in the real system; sampled uniformly
  // here). Amplifies latency uncertainty and degrades estimation accuracy
  // unless the policy uses path prediction.
  bool dynamic_paths = false;

  // Failure injection: at `at`, `workers` GPUs serving `module_id` fail.
  // In-flight and queued requests on the failed workers are lost, and the
  // scaling engine (if enabled) replaces capacity after a cold start — the
  // paper's "machine failure" disturbance (§1, §2).
  struct FailureEvent {
    SimTime at = 0;
    int module_id = 0;
    int workers = 1;
  };
  std::vector<FailureEvent> failures;

  // Deterministic fleet fault schedule (both substrates): kKill mirrors
  // `failures` (kill `count` active workers of `module_id` at `at`), kAdd
  // provisions `count` replacement workers that become active after their
  // backend profile's cold start.
  std::vector<FleetEvent> fleet_events;

  // Chaos injection + self-healing (resilience/). All defaults are inert:
  // empty chaos schedule, retries/watchdog/staleness disabled.
  ResilienceOptions resilience;
};

}  // namespace pard

#endif  // PARD_RUNTIME_RUNTIME_OPTIONS_H_
