// Per-second arrival binning shared by the simulated and serving module
// controllers.
//
// The State Planner derives three quantities from recent arrival counts over
// the stats window: the raw (last-bin) input rate, the window-smoothed rate,
// and the paper's burstiness measure eps = sum|T_in - T_mean| / sum T_in.
// Both ModuleRuntime (discrete-event) and ServeModule (wall-clock) feed the
// same arithmetic so the estimator sees identically-defined ModuleState
// inputs on either substrate.
//
// Concurrency: not synchronized; each owner guards it with its own lock
// (ServeModule) or event-loop serialization (ModuleRuntime).
#ifndef PARD_RUNTIME_RATE_MONITOR_H_
#define PARD_RUNTIME_RATE_MONITOR_H_

#include <deque>

#include "common/time_types.h"

namespace pard {

class RateMonitor {
 public:
  // `window` is the stats-window span the bins cover (> 0).
  explicit RateMonitor(Duration window);

  // Records one arrival at `now`.
  void Bump(SimTime now);

  // Most recent complete view: the last bin scaled by its coverage.
  double Raw(SimTime now);

  // Total in-window arrivals over the covered span (floored at 1 s so a
  // window's first moments are not over-extrapolated).
  double Smoothed(SimTime now);

  // eps = sum|count - mean| / sum count over in-window bins; 0 with < 2 bins.
  double Burstiness(SimTime now);

  // Sums another monitor's bins into this one. Bins align on absolute
  // 1-second boundaries, so merging N per-shard monitors reproduces the
  // exact counts one monitor would have observed — ServeModule's snapshot
  // merges its queue shards' monitors through a scratch instance this way.
  // Both monitors should share the same window length.
  void Merge(const RateMonitor& other);

 private:
  void Evict(SimTime now);

  struct Bin {
    SimTime start;
    int count;
  };

  Duration window_;
  std::deque<Bin> bins_;
};

}  // namespace pard

#endif  // PARD_RUNTIME_RATE_MONITOR_H_
