#include "runtime/rate_monitor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace pard {

RateMonitor::RateMonitor(Duration window) : window_(window) { PARD_CHECK(window > 0); }

void RateMonitor::Bump(SimTime now) {
  Evict(now);
  const SimTime bin_start = (now / kUsPerSec) * kUsPerSec;
  if (bins_.empty() || bins_.back().start != bin_start) {
    bins_.push_back(Bin{bin_start, 0});
  }
  ++bins_.back().count;
}

void RateMonitor::Merge(const RateMonitor& other) {
  std::deque<Bin> merged;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < bins_.size() || b < other.bins_.size()) {
    if (b >= other.bins_.size() ||
        (a < bins_.size() && bins_[a].start < other.bins_[b].start)) {
      merged.push_back(bins_[a++]);
    } else if (a >= bins_.size() || other.bins_[b].start < bins_[a].start) {
      merged.push_back(other.bins_[b++]);
    } else {
      merged.push_back(Bin{bins_[a].start, bins_[a].count + other.bins_[b].count});
      ++a;
      ++b;
    }
  }
  bins_ = std::move(merged);
}

void RateMonitor::Evict(SimTime now) {
  const SimTime horizon = now - window_;
  while (!bins_.empty() && bins_.front().start + kUsPerSec <= horizon) {
    bins_.pop_front();
  }
}

double RateMonitor::Raw(SimTime now) {
  Evict(now);
  if (bins_.empty()) {
    return 0.0;
  }
  const Bin& last = bins_.back();
  const double coverage = std::clamp(UsToSec(now - last.start), 0.1, 1.0);
  return static_cast<double>(last.count) / coverage;
}

double RateMonitor::Smoothed(SimTime now) {
  Evict(now);
  if (bins_.empty()) {
    return 0.0;
  }
  int total = 0;
  for (const Bin& b : bins_) {
    total += b.count;
  }
  // Floor the clamp bounds so a sub-second stats window cannot invert them
  // (std::clamp with lo > hi is UB).
  const double window_s = std::max(1.0, UsToSec(window_));
  const double covered = std::clamp(UsToSec(now - bins_.front().start), 1.0, window_s);
  return static_cast<double>(total) / covered;
}

double RateMonitor::Burstiness(SimTime now) {
  Evict(now);
  if (bins_.size() < 2) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Bin& b : bins_) {
    sum += static_cast<double>(b.count);
  }
  if (sum <= 0.0) {
    return 0.0;
  }
  const double mean = sum / static_cast<double>(bins_.size());
  double dev = 0.0;
  for (const Bin& b : bins_) {
    dev += std::abs(static_cast<double>(b.count) - mean);
  }
  return dev / sum;
}

}  // namespace pard
