#include "runtime/worker.h"

#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "runtime/module_runtime.h"
#include "runtime/pipeline_runtime.h"

namespace pard {

Worker::Worker(Simulation* sim, ModuleRuntime* module, BackendFleet* fleet,
               const BackendSlot& slot)
    : sim_(sim), module_(module), fleet_(fleet), slot_(slot) {}

std::size_t Worker::Load() const {
  return queue_.Size() + forming_.size() + executing_batch_.size();
}

void Worker::Activate() {
  PARD_CHECK(state_ == State::kColdStarting);
  state_ = State::kActive;
  fleet_->SetState(slot_.module_id, slot_.worker_id, BackendState::kActive, sim_->Now());
  // Work may have been queued while warming (dispatch avoids cold workers,
  // but keep the invariant that an active worker drains its queue).
  FillFormingBatch();
  MaybeLaunch();
}

void Worker::BeginDraining() {
  if (state_ == State::kActive || state_ == State::kColdStarting) {
    state_ = State::kDraining;
    fleet_->SetState(slot_.module_id, slot_.worker_id, BackendState::kDraining, sim_->Now());
    if (Idle()) {
      state_ = State::kRetired;
      fleet_->SetState(slot_.module_id, slot_.worker_id, BackendState::kRetired, sim_->Now());
    }
  }
}

void Worker::Enqueue(RequestPtr req) {
  PARD_CHECK(state_ == State::kActive);
  HopRecord& hop = req->hops[static_cast<std::size_t>(module_->module_id())];
  hop.arrive = sim_->Now();
  queue_.Push(std::move(req));
  FillFormingBatch();
  MaybeLaunch();
}

void Worker::FillFormingBatch() {
  DropPolicy* policy = module_->policy();
  const int batch_size = module_->batch_size();
  if (policy->PurgeExpired()) {
    // Requests whose deadline passed while queued are unservable under any
    // policy; evict them from the min end of the DEPQ so backlogs stay
    // bounded by the deadline horizon.
    while (queue_.MinDeadline() < sim_->Now()) {
      RequestPtr expired = queue_.Pop(PopSide::kMinBudget);
      if (expired == nullptr) {
        break;
      }
      if (!expired->Terminal()) {
        expired->hops[static_cast<std::size_t>(module_->module_id())].batch_entry = sim_->Now();
        module_->OnPolicyDrop(std::move(expired), DropReason::kPurgeExpired);
      }
    }
  }
  while (static_cast<int>(forming_.size()) < batch_size && !queue_.Empty()) {
    const PopSide side = policy->ChoosePopSide(module_->module_id(), sim_->Now());
    RequestPtr req = queue_.Pop(side);
    if (req == nullptr) {
      break;
    }
    if (req->Terminal()) {
      // Dropped on another DAG branch while queued here; discard silently —
      // no GPU time was spent at this module.
      continue;
    }
    const SimTime now = sim_->Now();
    AdmissionContext ctx;
    ctx.request = req.get();
    ctx.module_id = module_->module_id();
    ctx.now = now;
    ctx.batch_start = executing_ ? exec_end_ : now;
    ctx.batch_duration = module_->profile().BatchDuration(batch_size);
    ctx.batch_size = batch_size;
    HopRecord& hop = req->hops[static_cast<std::size_t>(module_->module_id())];
    if (policy->ShouldDrop(ctx)) {
      hop.batch_entry = now;
      module_->OnPolicyDrop(std::move(req), DropReason::kBrokerCandidate);
      continue;
    }
    hop.batch_entry = now;
    module_->RecordQueueDelay(now, hop.QueueDelay());
    forming_.push_back(std::move(req));
  }
}

void Worker::MaybeLaunch() {
  if (executing_ || forming_.empty() || hung_) {
    return;
  }
  if (state_ != State::kActive && state_ != State::kDraining) {
    return;
  }
  const SimTime now = sim_->Now();
  executing_batch_ = std::move(forming_);
  forming_.clear();
  const int count = static_cast<int>(executing_batch_.size());
  const Duration d = module_->SampleExecDuration(count, slot_.exec_scale);
  executing_ = true;
  exec_start_ = now;
  exec_end_ = now + d;
  const int module_id = module_->module_id();
  for (const RequestPtr& req : executing_batch_) {
    HopRecord& hop = req->hops[static_cast<std::size_t>(module_id)];
    hop.exec_start = now;
    module_->RecordBatchWait(now, hop.BatchWait());
  }
  exec_event_ = sim_->ScheduleAt(exec_end_, [this] { OnBatchComplete(); });
}

void Worker::Fail() {
  if (state_ == State::kRetired) {
    return;
  }
  // Retire FIRST: the retry path below redistributes this worker's requests
  // through ChooseWorker, which must never re-select the dying worker.
  state_ = State::kRetired;
  fleet_->SetState(slot_.module_id, slot_.worker_id, BackendState::kFailed, sim_->Now());
  const int module_id = module_->module_id();
  // Executing batch is lost mid-flight; its GPU time so far is wasted but
  // unattributed (the batch never completed). Every request gets a
  // deadline-aware second chance on a surviving worker.
  if (executing_) {
    sim_->Cancel(exec_event_);
    executing_ = false;
    std::vector<RequestPtr> lost = std::move(executing_batch_);
    executing_batch_.clear();
    for (RequestPtr& req : lost) {
      module_->RetryOrDrop(std::move(req));
    }
  }
  std::vector<RequestPtr> forming = std::move(forming_);
  forming_.clear();
  for (RequestPtr& req : forming) {
    module_->RetryOrDrop(std::move(req));
  }
  while (!queue_.Empty()) {
    RequestPtr req = queue_.Pop(PopSide::kOldest);
    if (req != nullptr && !req->Terminal()) {
      req->hops[static_cast<std::size_t>(module_id)].batch_entry = sim_->Now();
      module_->RetryOrDrop(std::move(req));
    }
  }
}

void Worker::Hang(Duration duration) {
  if (state_ != State::kActive || hung_) {
    return;
  }
  hung_ = true;
  if (executing_) {
    sim_->Cancel(exec_event_);
    if (duration > 0) {
      // Finite hang: the in-flight batch completes late by the hang window.
      exec_end_ += duration;
      exec_event_ = sim_->ScheduleAt(exec_end_, [this] { OnBatchComplete(); });
    }
    // Indefinite hang: the batch freezes until Fail() rescues it or the
    // end-of-run sweep accounts it (the simulator has no watchdog).
  }
}

void Worker::Unhang() {
  if (!hung_) {
    return;
  }
  hung_ = false;
  if (state_ == State::kActive) {
    FillFormingBatch();
    MaybeLaunch();
  }
}

void Worker::OnBatchComplete() {
  const SimTime now = sim_->Now();
  PARD_CHECK(executing_);
  const int count = static_cast<int>(executing_batch_.size());
  const Duration d = now - exec_start_;
  const Duration gpu_share = d / count;
  const int module_id = module_->module_id();
  std::vector<RequestPtr> done = std::move(executing_batch_);
  executing_batch_.clear();
  executing_ = false;
  if (module_->executed_counter() != nullptr) {
    module_->executed_counter()->Add(count);
    module_->batch_size_hist()->Observe(static_cast<double>(count));
  }
  TraceRecorder* trace = module_->pipeline()->trace();
  if (trace != nullptr) {
    TraceEvent batch_ev;
    batch_ev.kind = TraceEventKind::kBatchExec;
    batch_ev.module = module_id;
    batch_ev.ts = exec_start_;
    batch_ev.dur = d;
    batch_ev.arg0 = count;
    trace->Emit(batch_ev);
  }
  for (RequestPtr& req : done) {
    HopRecord& hop = req->hops[static_cast<std::size_t>(module_id)];
    hop.exec_end = now;
    hop.gpu_time = gpu_share;
    hop.executed = true;
    if (trace != nullptr && trace->Sampled(req->id)) {
      TraceEvent queue_ev;
      queue_ev.kind = TraceEventKind::kQueueSpan;
      queue_ev.module = module_id;
      queue_ev.request_id = req->id;
      queue_ev.ts = hop.arrive;
      queue_ev.dur = hop.batch_entry - hop.arrive;
      trace->Emit(queue_ev);
      TraceEvent exec_ev;
      exec_ev.kind = TraceEventKind::kExecSpan;
      exec_ev.module = module_id;
      exec_ev.request_id = req->id;
      exec_ev.ts = hop.exec_start;
      exec_ev.dur = hop.ExecDuration();
      trace->Emit(exec_ev);
    }
    module_->RecordStageLatency(now, now - hop.arrive);
    module_->OnExecuted(std::move(req));
  }
  // Top up the forming batch with any backlog and go again back-to-back.
  FillFormingBatch();
  MaybeLaunch();
  if (state_ == State::kDraining && Idle()) {
    state_ = State::kRetired;
    fleet_->SetState(slot_.module_id, slot_.worker_id, BackendState::kRetired, sim_->Now());
  }
}

}  // namespace pard
