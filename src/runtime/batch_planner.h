// Dynamic-batching and provisioning plans.
//
// Mirrors the Nexus-style planning the paper adopts (§5.1): split the SLO
// proportionally to per-sample model cost, pick the largest batch size whose
// double duration fits the module share (a request can wait up to one batch
// duration before executing), and provision workers from the expected rate.
#ifndef PARD_RUNTIME_BATCH_PLANNER_H_
#define PARD_RUNTIME_BATCH_PLANNER_H_

#include <vector>

#include "models/model_profile.h"
#include "pipeline/pipeline_spec.h"

namespace pard {

// Per-module batch sizes for the pipeline under its SLO.
std::vector<int> PlanBatchSizes(const PipelineSpec& spec);

// Per-module worker counts to sustain `rate` req/s with the given batch
// plan and headroom factor, clamped to [1, max_per_module] and globally to
// `total_gpus` (proportional scale-down when exceeded).
std::vector<int> PlanWorkers(const PipelineSpec& spec, const std::vector<int>& batch_sizes,
                             double rate, double headroom, int max_per_module, int total_gpus);

// Cumulative per-module latency budgets from proportional SLO splitting
// (Clipper++/PARD-split). For DAGs the proportion uses the longest-path
// weight through each module; cumulative budget of module k is the SLO
// fraction consumed by the heaviest source->k prefix (inclusive).
std::vector<Duration> CumulativeSplitBudgets(const PipelineSpec& spec,
                                             const std::vector<int>& batch_sizes);

// Same splitting rule but driven by arbitrary per-module weights (used by
// PARD-WCL with runtime worst-case latencies). `weights` must be positive.
std::vector<Duration> CumulativeBudgetsFromWeights(const PipelineSpec& spec,
                                                   const std::vector<double>& weights,
                                                   Duration slo);

}  // namespace pard

#endif  // PARD_RUNTIME_BATCH_PLANNER_H_
