// Block arena for Request allocation.
//
// Every injected request lives until the end of the run (the runtime's
// request log and the post-run analysis both hold it), so per-request
// make_shared traffic is pure overhead: one malloc per arrival on the
// ingress hot path. The arena hands out bump-pointer storage in 64 KiB
// blocks instead, and ArenaAllocator plugs it into std::allocate_shared so
// the Request and its shared_ptr control block land in one contiguous slab.
//
// Lifetime: each allocator copy keeps a shared_ptr to the arena, and
// allocate_shared stores an allocator copy inside the control block — the
// arena therefore outlives the last surviving RequestPtr automatically, even
// when the analysis outlives the runtime that injected the requests.
// Deallocation is a no-op (memory returns when the arena dies), which
// matches the requests' run-long lifetime. Not thread-safe: one arena per
// (single-threaded) runtime; sharded runs use one arena per shard.
#ifndef PARD_RUNTIME_REQUEST_ARENA_H_
#define PARD_RUNTIME_REQUEST_ARENA_H_

#include <cstddef>
#include <memory>
#include <vector>

namespace pard {

class RequestArena {
 public:
  void* Allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (bytes > kBlockBytes) {
      // Oversized one-off: give it a dedicated block, keep the current one.
      blocks_.push_back(std::make_unique<unsigned char[]>(bytes));
      return blocks_.back().get();
    }
    if (offset_ + bytes > kBlockBytes || blocks_.empty()) {
      blocks_.push_back(std::make_unique<unsigned char[]>(kBlockBytes));
      current_ = blocks_.back().get();
      offset_ = 0;
    }
    void* out = current_ + offset_;
    offset_ += bytes;
    return out;
  }

  std::size_t BlockCount() const { return blocks_.size(); }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
  unsigned char* current_ = nullptr;
  std::size_t offset_ = kBlockBytes;
};

template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<RequestArena> arena) : arena_(std::move(arena)) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return static_cast<T*>(arena_->Allocate(n * sizeof(T))); }
  void deallocate(T*, std::size_t) {}  // Freed wholesale with the arena.

  const std::shared_ptr<RequestArena>& arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  std::shared_ptr<RequestArena> arena_;
};

}  // namespace pard

#endif  // PARD_RUNTIME_REQUEST_ARENA_H_
