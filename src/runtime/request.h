// Request model.
//
// A request is injected by a (simulated) client at `sent`, traverses the
// pipeline DAG, and terminates in one of three fates. Per-module HopRecords
// capture the full latency decomposition of the paper's Fig. 5 — arrival
// (t_r), batch entry (t_b), execution start (t_e) and end — plus the GPU time
// attributed to the request, from which every evaluation metric (goodput,
// drop rate, invalid rate, per-module drop placement, budget consumption) is
// derived after the run.
//
// Concurrency contract (serving runtime): identity fields (id, sent, slo,
// deadline, branch_choice, expected_arrivals) are immutable after injection.
// Each hops[k] is written only by module k's worker threads, which never
// race each other on one request (a request is in at most one batch at k).
// The terminal fields (fate, drop_module, finish) and merge_arrivals flip
// under ServeRuntime's state mutex — cross-branch readers must go through
// ServeRuntime::IsTerminal rather than reading `fate` directly while a run
// is live. The single-threaded simulator needs none of this.
#ifndef PARD_RUNTIME_REQUEST_H_
#define PARD_RUNTIME_REQUEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time_types.h"
#include "obs/drop_reason.h"

namespace pard {

enum class RequestFate {
  kInFlight,   // Still traversing the pipeline.
  kCompleted,  // Finished within the SLO — contributes to goodput.
  kLate,       // Finished but violated the SLO — counted as dropped (§5.1).
  kDropped,    // Dropped by policy at some module.
};

struct HopRecord {
  SimTime arrive = -1;       // t_r: delivered to the module (enters DEPQ).
  SimTime batch_entry = -1;  // t_b: pulled into a forming batch.
  SimTime exec_start = -1;   // t_e: batch began executing.
  SimTime exec_end = -1;
  Duration gpu_time = 0;     // d(batch)/batch attributed to this request.
  bool executed = false;

  Duration QueueDelay() const { return batch_entry - arrive; }
  Duration BatchWait() const { return exec_start - batch_entry; }
  Duration ExecDuration() const { return exec_end - exec_start; }
  bool Visited() const { return arrive >= 0; }
};

struct Request {
  std::uint64_t id = 0;
  SimTime sent = 0;
  Duration slo = 0;
  SimTime deadline = 0;

  // Multi-tenant identity (immutable after injection, like id/sent/slo):
  // index into RuntimeOptions::tenants, or -1 for untenanted runs. `weight`
  // is the tenant's goodput value per completed request (1.0 untenanted) —
  // weighted goodput sums it over good requests (metrics/analysis.h).
  int tenant = -1;
  double weight = 1.0;

  RequestFate fate = RequestFate::kInFlight;
  int drop_module = -1;   // Module where the policy dropped it (-1 otherwise).
  SimTime finish = -1;    // Completion or drop time.
  // Why the request counts as dropped (kNone iff fate is kCompleted or
  // kInFlight). Written with `fate` under the same synchronization.
  DropReason drop_reason = DropReason::kNone;

  // Times this request was re-enqueued after a worker failure/hang
  // (resilience retry path). Written only by the thread that owned the failed
  // batch; re-delivery through the queue shard's mutex provides the
  // happens-before edge to the next reader.
  int retry_count = 0;

  // Indexed by module id; unvisited modules keep arrive == -1.
  std::vector<HopRecord> hops;

  // DAG merge bookkeeping: deliveries seen so far per module.
  std::vector<int> merge_arrivals;

  // Dynamic-path pipelines (§5.2): at a fork module the request takes only
  // one branch. `branch_choice[f]` is the chosen sub of fork f (-1 when not
  // a fork or static routing); `expected_arrivals[m]` is how many deliveries
  // module m will actually see for this request (pres count under static
  // routing, possibly 1 at merges under dynamic routing). Both are empty for
  // static pipelines.
  std::vector<int> branch_choice;
  std::vector<int> expected_arrivals;

  bool HasDynamicPath() const { return !branch_choice.empty(); }

  bool Terminal() const { return fate != RequestFate::kInFlight; }
  bool Good() const { return fate == RequestFate::kCompleted; }
  // Paper accounting: completed-but-late counts as dropped.
  bool CountsDropped() const {
    return fate == RequestFate::kDropped || fate == RequestFate::kLate;
  }
  Duration RemainingBudget(SimTime now) const { return deadline - now; }

  Duration TotalGpuTime() const {
    Duration total = 0;
    for (const HopRecord& h : hops) {
      total += h.gpu_time;
    }
    return total;
  }
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace pard

#endif  // PARD_RUNTIME_REQUEST_H_
