#include "core/adaptive_priority.h"

#include <algorithm>

namespace pard {

AdaptivePriority::AdaptivePriority(AdaptivePriorityOptions options)
    : options_(options), mode_(options.initial) {}

void AdaptivePriority::Update(double load_factor, double burstiness) {
  double eps = std::clamp(burstiness, options_.min_epsilon, options_.max_epsilon);
  if (!options_.delayed_transition) {
    eps = 0.0;
  }
  const double th_hbf = 1.0 + eps;
  const double th_lbf = 1.0 - eps;
  PriorityMode next = mode_;
  if (load_factor > th_hbf) {
    next = PriorityMode::kHbf;
  } else if (load_factor < th_lbf) {
    next = PriorityMode::kLbf;
  }
  if (next != mode_) {
    mode_ = next;
    ++transitions_;
  }
}

}  // namespace pard
