#include "core/irwin_hall.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pard {

double IrwinHallCdf(int n, double x) {
  PARD_CHECK(n >= 1);
  if (x <= 0.0) {
    return 0.0;
  }
  if (x >= static_cast<double>(n)) {
    return 1.0;
  }
  // F(x) = 1/n! * sum_{k=0..floor(x)} (-1)^k C(n,k) (x-k)^n
  double sum = 0.0;
  double binom = 1.0;  // C(n, 0)
  double sign = 1.0;
  const int kmax = static_cast<int>(std::floor(x));
  for (int k = 0; k <= kmax; ++k) {
    sum += sign * binom * std::pow(x - k, n);
    sign = -sign;
    binom = binom * static_cast<double>(n - k) / static_cast<double>(k + 1);
  }
  double factorial = 1.0;
  for (int i = 2; i <= n; ++i) {
    factorial *= i;
  }
  return std::clamp(sum / factorial, 0.0, 1.0);
}

double IrwinHallQuantile(int n, double q) {
  PARD_CHECK(n >= 1);
  q = std::clamp(q, 0.0, 1.0);
  double lo = 0.0;
  double hi = static_cast<double>(n);
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (IrwinHallCdf(n, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace pard
