// Tenant governor: weighted cross-tenant admission at ingress.
//
// PARD's broker predicate maximizes goodput for one SLO class. With a
// tenant catalog (pipeline/tenant_spec.h) the objective becomes *weighted
// global* goodput: under overload, capacity freed by shedding a low-weight
// tenant's request completes higher-weight ones instead. The governor is
// the ingress half of that decision; the per-request half rides on the
// existing broker path for free, because each request's SLO is stamped
// per-tenant at injection (slo_scale × pipeline SLO) and PardPolicy's
// predicate reads `req.slo`.
//
// Mechanism. Each sync tick the governor reads the freshly published
// ModuleStates and computes the fleet's worst load factor mu. When mu > 1
// the fleet cannot serve everything, so a fraction f = 1 - 1/mu of the
// offered stream must go; the governor assigns that shed budget greedily to
// the LOWEST-weight tenants first, never pushing a tenant's admit
// probability below its admit_floor (the fairness bound pinned by
// tests/tenant_test.cc). The per-tenant admit probabilities are published
// as atomic thresholds.
//
// Determinism + bit-identity. Tenant assignment and the admit draw are pure
// splitmix64 hashes of (request id, seed) — no RNG stream is consumed, so
// arrivals, routing and every downstream random draw are identical to an
// untenanted run. A runtime with an empty catalog constructs no governor at
// all, which is what keeps no-tenant runs bit-identical to the PR 8
// goldens.
//
// Concurrency (serving runtime): TenantOf/AdmitAtIngress are lock-free —
// they read one atomic threshold and bump two relaxed counters, safe from
// the load-generator and broker threads. Resync is called only by the
// control thread (or the simulator's sync tick). The governor takes no
// locks and is deliberately outside the lock-rank hierarchy.
#ifndef PARD_CORE_TENANT_GOVERNOR_H_
#define PARD_CORE_TENANT_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "pipeline/tenant_spec.h"
#include "runtime/state_board.h"

namespace pard {

class TenantGovernor {
 public:
  // Validates the catalog. `seed` decorrelates the assignment/admission
  // hashes across runs while keeping them deterministic per run.
  TenantGovernor(std::vector<TenantSpec> catalog, std::uint64_t seed);

  int NumTenants() const { return static_cast<int>(catalog_.size()); }
  const TenantSpec& Tenant(int t) const { return catalog_[static_cast<std::size_t>(t)]; }
  const std::vector<TenantSpec>& catalog() const { return catalog_; }

  // Deterministic tenant assignment: a splitmix64 hash of the request id
  // mapped through the cumulative share distribution. Pure function of
  // (id, seed, catalog) — stable across substrates and replays.
  int TenantOf(std::uint64_t request_id) const;

  // Lock-free ingress decision. False = shed (DropReason::kTenantShed).
  // Uses an independent hash of the request id against the tenant's
  // published admit threshold, so the shed set is deterministic too.
  bool AdmitAtIngress(std::uint64_t request_id, int tenant);

  // Recomputes the shed plan from the worst module load factor. Call once
  // per sync tick with the states just published to the board/snapshot.
  void Resync(const std::vector<ModuleState>& states);
  void ResyncFromBoard(const StateBoard& board);

  // Introspection (relaxed reads; exact once the run has quiesced).
  double AdmitProbability(int tenant) const;
  std::uint64_t OfferedCount(int tenant) const;
  std::uint64_t ShedCount(int tenant) const;
  double LastLoadFactor() const { return last_load_.load(std::memory_order_relaxed); }

 private:
  void ApplyLoad(double load);

  struct alignas(64) TenantState {
    // Admit iff hash <= threshold; UINT64_MAX = admit everything.
    std::atomic<std::uint64_t> threshold{~std::uint64_t{0}};
    std::atomic<std::uint64_t> offered{0};
    std::atomic<std::uint64_t> shed{0};
  };

  std::vector<TenantSpec> catalog_;
  std::vector<double> cumulative_share_;  // cumulative_share_[t] = Σ share[0..t].
  std::vector<int> by_weight_;            // Tenant indices, ascending weight.
  std::uint64_t seed_;
  std::unique_ptr<TenantState[]> state_;
  std::atomic<double> last_load_{0.0};
};

}  // namespace pard

#endif  // PARD_CORE_TENANT_GOVERNOR_H_
