#include "core/pard_policy.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "runtime/batch_planner.h"

namespace pard {

namespace {

// The frozen decision inputs of one sync interval (see PardPolicy::MakeView).
class PardView final : public PolicyView {
 public:
  bool ShouldDrop(const AdmissionContext& ctx) const override {
    const Request& req = *ctx.request;
    const Duration through_current = (ctx.batch_start - req.sent) + ctx.batch_duration;
    if (split_scope) {
      return through_current > cumulative_budgets[static_cast<std::size_t>(ctx.module_id)];
    }
    Duration sub = 0;
    if (!backward_only) {
      sub = path_prediction && req.HasDynamicPath()
                ? PathConsistentEstimate(ctx.module_id, req)
                : sub_max[static_cast<std::size_t>(ctx.module_id)];
    }
    return through_current + sub > req.slo;
  }

  PopSide ChoosePopSide(int module_id, SimTime now) const override {
    (void)now;
    return sides[static_cast<std::size_t>(module_id)];
  }

  // Same path-consistency walk as EstimateSubsequentForRequest, over the
  // per-path estimates frozen at sync time.
  Duration PathConsistentEstimate(int module_id, const Request& request) const {
    const auto& paths = spec->DownstreamPaths(module_id);
    const auto& estimates = per_path[static_cast<std::size_t>(module_id)];
    Duration best = 0;
    bool any = false;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      int prev = module_id;
      bool consistent = true;
      for (int id : paths[i]) {
        const int choice = request.branch_choice[static_cast<std::size_t>(prev)];
        if (spec->Module(prev).subs.size() > 1 && choice != id) {
          consistent = false;
          break;
        }
        prev = id;
      }
      if (consistent) {
        best = std::max(best, estimates[i]);
        any = true;
      }
    }
    return any ? best : sub_max[static_cast<std::size_t>(module_id)];
  }

  const PipelineSpec* spec = nullptr;
  bool split_scope = false;
  bool backward_only = false;
  bool path_prediction = false;
  std::vector<Duration> cumulative_budgets;        // Split scopes only.
  std::vector<Duration> sub_max;                   // Max L_sub per module.
  std::vector<std::vector<Duration>> per_path;     // Path prediction only.
  std::vector<PopSide> sides;                      // Frozen priority sides.
};

}  // namespace

PardPolicy::PardPolicy(PardOptions options) : options_(options) {}

void PardPolicy::Bind(const PipelineSpec* spec, const StateBoard* board) {
  DropPolicy::Bind(spec, board);
  estimator_ = std::make_unique<LatencyEstimator>(spec, board, options_.estimator,
                                                  Rng(options_.seed).Fork("estimator"));
  AdaptivePriorityOptions prio;
  prio.delayed_transition = options_.order != PardOptions::Order::kInstant;
  priorities_.assign(static_cast<std::size_t>(spec->NumModules()), AdaptivePriority(prio));
  if (options_.budget_scope != PardOptions::BudgetScope::kEndToEnd) {
    cumulative_budgets_ = CumulativeSplitBudgets(*spec, PlanBatchSizes(*spec));
  }
}

Duration PardPolicy::CumulativeBudget(int module_id) const {
  PARD_CHECK(!cumulative_budgets_.empty());
  return cumulative_budgets_[static_cast<std::size_t>(module_id)];
}

bool PardPolicy::ShouldDrop(const AdmissionContext& ctx) {
  const Request& req = *ctx.request;
  // Backward + current components are exact at t_b (Fig. 5).
  const Duration through_current = (ctx.batch_start - req.sent) + ctx.batch_duration;
  if (options_.budget_scope != PardOptions::BudgetScope::kEndToEnd) {
    // Split scopes: the request must clear module k within the cumulative
    // budget of the source..k prefix.
    return through_current > CumulativeBudget(ctx.module_id);
  }
  Duration sub = 0;
  if (!options_.backward_only) {
    sub = options_.path_prediction
              ? estimator_->EstimateSubsequentForRequest(ctx.module_id, req)
              : estimator_->EstimateSubsequent(ctx.module_id);
  }
  return through_current + sub > req.slo;
}

PopSide PardPolicy::ChoosePopSide(int module_id, SimTime now) {
  (void)now;
  switch (options_.order) {
    case PardOptions::Order::kFcfs:
      return PopSide::kOldest;
    case PardOptions::Order::kHbf:
      return PopSide::kMaxBudget;
    case PardOptions::Order::kLbf:
      return PopSide::kMinBudget;
    case PardOptions::Order::kAdaptive:
    case PardOptions::Order::kInstant:
      return priorities_[static_cast<std::size_t>(module_id)].side();
  }
  return PopSide::kOldest;
}

void PardPolicy::OnSync(SimTime now) {
  if (options_.order == PardOptions::Order::kAdaptive ||
      options_.order == PardOptions::Order::kInstant) {
    for (int id = 0; id < board_->NumModules(); ++id) {
      const ModuleState& state = board_->Get(id);
      AdaptivePriority& prio = priorities_[static_cast<std::size_t>(id)];
      const PriorityMode before = prio.mode();
      prio.Update(state.load_factor, state.burstiness);
      if (prio.mode() != before || transition_log_.empty()) {
        transition_log_.push_back(TransitionSample{now, id, prio.mode(), state.load_factor});
      }
    }
  }
  if (options_.budget_scope == PardOptions::BudgetScope::kWclSplit) {
    // Re-split the SLO by each module's runtime worst-case stage latency.
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(board_->NumModules()));
    for (int id = 0; id < board_->NumModules(); ++id) {
      weights.push_back(std::max(1.0, board_->Get(id).worst_stage_latency));
    }
    cumulative_budgets_ = CumulativeBudgetsFromWeights(*spec_, weights, spec_->slo());
  }
}

PolicyRefreshStats PardPolicy::RefreshEstimates(ThreadPool* pool) {
  if (options_.budget_scope != PardOptions::BudgetScope::kEndToEnd || options_.backward_only) {
    return {};
  }
  const LatencyEstimator::RefreshStats stats = estimator_->RefreshAll(pool);
  return {stats.refreshed, stats.skipped};
}

std::shared_ptr<const PolicyView> PardPolicy::MakeView() {
  PARD_CHECK(spec_ != nullptr);
  auto view = std::make_shared<PardView>();
  view->spec = spec_;
  view->split_scope = options_.budget_scope != PardOptions::BudgetScope::kEndToEnd;
  view->backward_only = options_.backward_only;
  view->path_prediction = options_.path_prediction;
  if (view->split_scope) {
    view->cumulative_budgets = cumulative_budgets_;
  }
  const std::size_t n = static_cast<std::size_t>(spec_->NumModules());
  view->sub_max.resize(n, 0);
  view->sides.resize(n, PopSide::kOldest);
  if (view->path_prediction) {
    view->per_path.resize(n);
  }
  for (int id = 0; id < spec_->NumModules(); ++id) {
    view->sides[static_cast<std::size_t>(id)] = ChoosePopSide(id, 0);
    // Split scopes and PARD-back never consult the estimator; skipping the
    // refresh keeps their views as cheap as their decisions.
    if (!view->split_scope && !view->backward_only) {
      view->sub_max[static_cast<std::size_t>(id)] = estimator_->EstimateSubsequent(id);
      if (view->path_prediction) {
        view->per_path[static_cast<std::size_t>(id)] = estimator_->PathEstimates(id);
      }
    }
  }
  return view;
}

const AdaptivePriority& PardPolicy::priority(int module_id) const {
  return priorities_[static_cast<std::size_t>(module_id)];
}

std::string PardPolicy::Name() const {
  if (options_.backward_only) {
    return "pard-back";
  }
  if (options_.path_prediction) {
    return "pard-path";
  }
  if (!options_.estimator.include_queue && !options_.estimator.include_wait) {
    return "pard-sf";
  }
  switch (options_.budget_scope) {
    case PardOptions::BudgetScope::kStaticSplit:
      return "pard-split";
    case PardOptions::BudgetScope::kWclSplit:
      return "pard-wcl";
    case PardOptions::BudgetScope::kEndToEnd:
      break;
  }
  switch (options_.estimator.wait_mode) {
    case EstimatorOptions::WaitMode::kLower:
      return "pard-lower";
    case EstimatorOptions::WaitMode::kUpper:
      return "pard-upper";
    case EstimatorOptions::WaitMode::kSweetSpot:
      break;
  }
  switch (options_.order) {
    case PardOptions::Order::kFcfs:
      return "pard-fcfs";
    case PardOptions::Order::kHbf:
      return "pard-hbf";
    case PardOptions::Order::kLbf:
      return "pard-lbf";
    case PardOptions::Order::kInstant:
      return "pard-instant";
    case PardOptions::Order::kAdaptive:
      break;
  }
  return "pard";
}

}  // namespace pard
