#include "core/pard_policy.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "runtime/batch_planner.h"

namespace pard {

PardPolicy::PardPolicy(PardOptions options) : options_(options) {}

void PardPolicy::Bind(const PipelineSpec* spec, const StateBoard* board) {
  DropPolicy::Bind(spec, board);
  estimator_ = std::make_unique<LatencyEstimator>(spec, board, options_.estimator,
                                                  Rng(options_.seed).Fork("estimator"));
  AdaptivePriorityOptions prio;
  prio.delayed_transition = options_.order != PardOptions::Order::kInstant;
  priorities_.assign(static_cast<std::size_t>(spec->NumModules()), AdaptivePriority(prio));
  if (options_.budget_scope != PardOptions::BudgetScope::kEndToEnd) {
    cumulative_budgets_ = CumulativeSplitBudgets(*spec, PlanBatchSizes(*spec));
  }
}

Duration PardPolicy::CumulativeBudget(int module_id) const {
  PARD_CHECK(!cumulative_budgets_.empty());
  return cumulative_budgets_[static_cast<std::size_t>(module_id)];
}

bool PardPolicy::ShouldDrop(const AdmissionContext& ctx) {
  const Request& req = *ctx.request;
  // Backward + current components are exact at t_b (Fig. 5).
  const Duration through_current = (ctx.batch_start - req.sent) + ctx.batch_duration;
  if (options_.budget_scope != PardOptions::BudgetScope::kEndToEnd) {
    // Split scopes: the request must clear module k within the cumulative
    // budget of the source..k prefix.
    return through_current > CumulativeBudget(ctx.module_id);
  }
  Duration sub = 0;
  if (!options_.backward_only) {
    sub = options_.path_prediction
              ? estimator_->EstimateSubsequentForRequest(ctx.module_id, req)
              : estimator_->EstimateSubsequent(ctx.module_id);
  }
  return through_current + sub > req.slo;
}

PopSide PardPolicy::ChoosePopSide(int module_id, SimTime now) {
  (void)now;
  switch (options_.order) {
    case PardOptions::Order::kFcfs:
      return PopSide::kOldest;
    case PardOptions::Order::kHbf:
      return PopSide::kMaxBudget;
    case PardOptions::Order::kLbf:
      return PopSide::kMinBudget;
    case PardOptions::Order::kAdaptive:
    case PardOptions::Order::kInstant:
      return priorities_[static_cast<std::size_t>(module_id)].side();
  }
  return PopSide::kOldest;
}

void PardPolicy::OnSync(SimTime now) {
  if (options_.order == PardOptions::Order::kAdaptive ||
      options_.order == PardOptions::Order::kInstant) {
    for (int id = 0; id < board_->NumModules(); ++id) {
      const ModuleState& state = board_->Get(id);
      AdaptivePriority& prio = priorities_[static_cast<std::size_t>(id)];
      const PriorityMode before = prio.mode();
      prio.Update(state.load_factor, state.burstiness);
      if (prio.mode() != before || transition_log_.empty()) {
        transition_log_.push_back(TransitionSample{now, id, prio.mode(), state.load_factor});
      }
    }
  }
  if (options_.budget_scope == PardOptions::BudgetScope::kWclSplit) {
    // Re-split the SLO by each module's runtime worst-case stage latency.
    std::vector<double> weights;
    weights.reserve(static_cast<std::size_t>(board_->NumModules()));
    for (int id = 0; id < board_->NumModules(); ++id) {
      weights.push_back(std::max(1.0, board_->Get(id).worst_stage_latency));
    }
    cumulative_budgets_ = CumulativeBudgetsFromWeights(*spec_, weights, spec_->slo());
  }
}

const AdaptivePriority& PardPolicy::priority(int module_id) const {
  return priorities_[static_cast<std::size_t>(module_id)];
}

std::string PardPolicy::Name() const {
  if (options_.backward_only) {
    return "pard-back";
  }
  if (options_.path_prediction) {
    return "pard-path";
  }
  if (!options_.estimator.include_queue && !options_.estimator.include_wait) {
    return "pard-sf";
  }
  switch (options_.budget_scope) {
    case PardOptions::BudgetScope::kStaticSplit:
      return "pard-split";
    case PardOptions::BudgetScope::kWclSplit:
      return "pard-wcl";
    case PardOptions::BudgetScope::kEndToEnd:
      break;
  }
  switch (options_.estimator.wait_mode) {
    case EstimatorOptions::WaitMode::kLower:
      return "pard-lower";
    case EstimatorOptions::WaitMode::kUpper:
      return "pard-upper";
    case EstimatorOptions::WaitMode::kSweetSpot:
      break;
  }
  switch (options_.order) {
    case PardOptions::Order::kFcfs:
      return "pard-fcfs";
    case PardOptions::Order::kHbf:
      return "pard-hbf";
    case PardOptions::Order::kLbf:
      return "pard-lbf";
    case PardOptions::Order::kInstant:
      return "pard-instant";
    case PardOptions::Order::kAdaptive:
      break;
  }
  return "pard";
}

}  // namespace pard
