// The PARD drop policy: proactive request dropping + adaptive priority.
//
// Request Broker predicate (Eq. 3): at batch-entry time t_b with known batch
// start t_e, drop iff
//
//   L = (t_e - t_s) + d_k + L_sub(k)  >  SLO
//
// where L_sub comes from the bi-directional LatencyEstimator. Queue order is
// chosen per module by the AdaptivePriority controller fed with (mu, eps)
// from the State Planner sync. Configuration knobs expose every ablation in
// the paper's Table 1 that shares PARD's machinery (back/sf, lower/upper,
// split/WCL, FCFS/HBF/LBF/instant); the remaining baselines live in
// src/baselines.
#ifndef PARD_CORE_PARD_POLICY_H_
#define PARD_CORE_PARD_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_priority.h"
#include "core/latency_estimator.h"
#include "runtime/drop_policy.h"

namespace pard {

struct PardOptions {
  EstimatorOptions estimator;

  enum class Order {
    kAdaptive,  // PARD: HBF/LBF with delayed transition.
    kInstant,   // PARD-instant: adaptive without hysteresis.
    kHbf,       // PARD-HBF: always high budget first.
    kLbf,       // PARD-LBF: always low budget first (SHEPHERD-style).
    kFcfs,      // PARD-FCFS: arrival order.
  };
  Order order = Order::kAdaptive;

  enum class BudgetScope {
    kEndToEnd,     // PARD: compare L against the full SLO.
    kStaticSplit,  // PARD-split: fixed per-module cumulative budgets.
    kWclSplit,     // PARD-WCL: budgets re-derived from runtime worst-case
                   // stage latencies at every sync.
  };
  BudgetScope budget_scope = BudgetScope::kEndToEnd;

  // Disable the forward component entirely (PARD-back): L_sub = 0.
  bool backward_only = false;

  // Request-path prediction for dynamic-path DAGs (§5.2 future work): when
  // the request carries branch choices, estimate L_sub along its actual
  // path instead of the conservative max over all branches.
  bool path_prediction = false;

  std::uint64_t seed = 1234;
};

class PardPolicy : public DropPolicy {
 public:
  explicit PardPolicy(PardOptions options = {});

  void Bind(const PipelineSpec* spec, const StateBoard* board) override;
  bool ShouldDrop(const AdmissionContext& ctx) override;
  PopSide ChoosePopSide(int module_id, SimTime now) override;
  void OnSync(SimTime now) override;
  // Incremental serve-mode refresh (LatencyEstimator::RefreshAll): only
  // modules whose published inputs moved are re-drawn, from per-module
  // forked streams, optionally fanned across `pool`. Split scopes and
  // PARD-back never consult the estimator, so they report all-skipped.
  PolicyRefreshStats RefreshEstimates(ThreadPool* pool) override;
  // Immutable decision snapshot for the serving control plane: per-module
  // L_sub (max and per-path) from the estimator's freshly-refreshed epoch
  // cache, the current priority sides and split budgets. Broker decisions
  // against the view are pure arithmetic — no estimator, RNG or board
  // access — so they run lock-free between syncs.
  std::shared_ptr<const PolicyView> MakeView() override;
  std::string Name() const override;

  // Introspection for tests and the Fig. 13 bench.
  const AdaptivePriority& priority(int module_id) const;
  LatencyEstimator* estimator() { return estimator_.get(); }

  // Mode-transition log: (time, module, mode). Fig. 13 plots module 0.
  struct TransitionSample {
    SimTime t;
    int module_id;
    PriorityMode mode;
    double load_factor;
  };
  const std::vector<TransitionSample>& transition_log() const { return transition_log_; }

 private:
  Duration CumulativeBudget(int module_id) const;

  PardOptions options_;
  std::unique_ptr<LatencyEstimator> estimator_;
  std::vector<AdaptivePriority> priorities_;
  std::vector<Duration> cumulative_budgets_;  // For split scopes.
  std::vector<TransitionSample> transition_log_;
};

}  // namespace pard

#endif  // PARD_CORE_PARD_POLICY_H_
