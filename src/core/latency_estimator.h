// Bi-directional end-to-end latency estimation (paper §4.2).
//
// At decision time t_b the Request Broker knows (backward) the request's
// cumulative latency t_e - t_s through the current batch start, and
// (current) the profiled execution duration d_k. This estimator supplies the
// forward component for the subsequent modules:
//
//   L_sub = sum q_i  +  sum d_i  +  w_k,     i in k+1..N
//
// where q_i are the synchronized recent queueing delays, d_i the profiled
// durations at the synchronized batch sizes, and w_k = F^-1_{k+1..N}(lambda)
// the "sweet spot" quantile of the aggregated batch-wait distribution.
//
// Heterogeneous fleets: the estimator reasons against each module's
// *effective* service rate rather than `workers × uniform profile`. Every
// d_i term (the exec sum, the PARD-upper bound, and the uniform [0, d]
// wait fallback) uses EffectiveBatchDuration(state) — the profiled duration
// stretched by the fleet's mean active backend speed as published by the
// BackendFleet through ModuleState::mean_speed — and the per-module wait
// reservoirs already observe the true heterogeneous waits empirically. A
// homogeneous grade-1.0 fleet publishes mean_speed == 1.0 exactly, keeping
// estimates (and the Monte-Carlo RNG sequence) bit-identical to the
// pre-heterogeneity kernel. The
// distribution is built by Monte-Carlo over each module's recent-wait
// reservoir (the paper keeps M = 10 000 samples per module; see
// RuntimeOptions::reservoir_capacity), falling back to the uniform [0, d_i]
// model for modules without observations. For DAG pipelines the estimate is
// the maximum over all downstream paths.
//
// All Monte-Carlo work is epoch-cached: results are memoized per
// (module/path, StateBoard version) and recomputed only when a state sync
// publishes a new epoch, matching the paper's asynchronous-update cost model
// (§5.4) — between syncs a broker decision is a cache read.
//
// Two refresh modes share the epoch cache:
//
//   LAZY (simulator, locked serve fallback): the first Estimate* call after
//   a board publish recomputes the touched module from the shared RNG
//   stream, module-major/sample-minor — the exact historical draw order, so
//   homogeneous sim goldens stay bit-identical. The Monte-Carlo kernel is
//   vectorized (batched per-module draws into reused scratch, nth_element
//   quantile selection, zero steady-state allocations) but reproduces the
//   old sort-based interpolation bit-for-bit (estimator_test parity grid).
//
//   INCREMENTAL (serve mode): RefreshAll() re-derives the whole cache from
//   per-module sample buffers, each drawn from its own forked RNG stream
//   (Fork("est:<module>")) and re-drawn only when that module's estimator
//   inputs actually changed since the last call (StateBoard::ModuleVersion).
//   A path's Monte-Carlo samples become element-wise sums of its modules'
//   buffers — common random numbers across entries, independent streams
//   across modules — so a sync where 2 of 16 modules moved pays 2 modules
//   of draws plus cheap vector adds. Results depend only on each module's
//   dirty-event count, never on thread interleaving, so fanning the work
//   across a ThreadPool is run-to-run deterministic at any thread count.
//   Entries refreshed this way are stamped with the board version, so later
//   lazy reads are warm hits; the shared RNG stream is never consumed. The
//   incremental estimates differ numerically from the lazy ones (different
//   streams) — statistically equivalent, which is why sim never calls this.
//
// Concurrency contract: NOT internally synchronized — every Estimate* call
// may mutate the epoch cache and advances the Monte-Carlo RNG, and a board
// publish invalidates entries mid-flight. In the simulator one event loop
// serializes everything. In the serving runtime the estimator is touched
// from exactly one place: the control thread's Sync() — off the control
// lock on the snapshot path, since brokers only ever read the immutable
// PolicyView copies published through ControlPlane's snapshot cell and
// never call into the estimator at all. RefreshAll's internal ParallelFor
// phases touch disjoint per-module buffers, then disjoint per-entry cache
// slots (with a barrier between the phases), so the fan-out needs no locks
// either. (A policy that opts out of snapshotting is still safe:
// ControlPlane's locked fallback path serializes its estimator use behind
// the control mutex, the pre-snapshot contract.)
#ifndef PARD_CORE_LATENCY_ESTIMATOR_H_
#define PARD_CORE_LATENCY_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/request.h"
#include "runtime/state_board.h"
#include "stats/empirical_distribution.h"

namespace pard {

class ThreadPool;

// Default Monte-Carlo draw count — the single source of truth for
// EstimatorOptions, PolicyParams and the pardsim --mc-samples flag.
inline constexpr int kDefaultMcSamples = 512;

struct EstimatorOptions {
  // Quantile lambda for the batch-wait sweet spot (paper default 0.1).
  double lambda = 0.1;
  // Monte-Carlo draw count for the aggregated wait distribution. Distinct
  // from the paper's M = 10 000, which is the per-module reservoir SIZE the
  // draws sample from (RuntimeOptions::reservoir_capacity keeps that
  // default). 512 draws put the lambda = 0.1 quantile within a couple of
  // percent of the converged value (see estimator_test's Irwin–Hall checks)
  // at ~1/20th the per-epoch refresh cost; raise it (pardsim --mc-samples,
  // PolicyParams::mc_samples) when reproducing the paper's exact overhead
  // numbers or probing tail quantiles.
  int mc_samples = kDefaultMcSamples;

  // Ablation knobs. The full PARD estimator has all three enabled with
  // kSweetSpot wait handling.
  enum class WaitMode {
    kSweetSpot,  // w_k = F^-1(lambda)               (PARD)
    kLower,      // w_k = 0                          (PARD-lower)
    kUpper,      // w_k = sum d_i                    (PARD-upper)
  };
  WaitMode wait_mode = WaitMode::kSweetSpot;
  bool include_queue = true;  // false: drop the sum q_i term (PARD-sf).
  bool include_exec = true;   // false: drop the sum d_i term.
  bool include_wait = true;   // false: drop the w_k term   (PARD-sf).
};

class LatencyEstimator {
 public:
  LatencyEstimator(const PipelineSpec* spec, const StateBoard* board, EstimatorOptions options,
                   Rng rng);

  // L_sub from module k (exclusive) to the sink; max over DAG paths.
  Duration EstimateSubsequent(int module_id);

  // Incremental whole-cache refresh from per-module forked sample buffers
  // (see the header comment's INCREMENTAL mode). Re-draws only the buffers
  // of modules whose estimator inputs changed since the last call, then
  // recomputes only the cache entries whose downstream modules moved;
  // every entry (recomputed or skipped) leaves stamped at the current board
  // version, so subsequent Estimate*/PathEstimates reads are warm hits.
  // `pool` fans both phases across its threads; nullptr runs them inline.
  // The result is identical at any thread count. Serve-mode only: the
  // forked streams diverge from the lazy path's shared-RNG draws.
  struct RefreshStats {
    int refreshed = 0;  // cache entries recomputed
    int skipped = 0;    // cache entries reused (no downstream input moved)
  };
  RefreshStats RefreshAll(ThreadPool* pool);

  // Request-aware variant for dynamic-path pipelines (§5.2 future work):
  // when the request carries branch choices (path prediction), only the DAG
  // paths consistent with its chosen branches are considered, eliminating
  // the conservative cross-branch maximum. Falls back to
  // EstimateSubsequent() for static requests.
  Duration EstimateSubsequentForRequest(int module_id, const Request& request);

  // The aggregated batch-wait quantile for an explicit module path — exposed
  // for tests and the Fig. 6 bench. Memoized per (path, lambda, board
  // epoch): repeat calls between state syncs are cache reads and re-draw the
  // Monte-Carlo aggregation only after the next publish.
  Duration AggregateWaitQuantile(const std::vector<int>& path, double lambda);

  // Full aggregated-wait distribution for a path (Fig. 6 PDFs).
  EmpiricalDistribution AggregateWaitDistribution(const std::vector<int>& path);

  // Per-path downstream estimates for module_id, aligned index-for-index
  // with spec->DownstreamPaths(module_id), at the current board epoch
  // (refreshes the epoch cache if stale). Policy MakeView() implementations
  // copy these into their immutable snapshot at sync time; the reference is
  // invalidated by the next board publish or Estimate*/PathEstimates call.
  const std::vector<Duration>& PathEstimates(int module_id) {
    return Refresh(module_id).per_path;
  }

  const EstimatorOptions& options() const { return options_; }

 private:
  Duration EstimatePath(const std::vector<int>& path);

  // Uncached quantile computation. EstimatePath (already deduplicated per
  // module/epoch by Refresh) calls this directly so the memo layer cannot
  // perturb its RNG draw sequence — runs stay bit-identical to the
  // pre-memoization kernel. Vectorized: per-module draws are batched into
  // the reused scratch_sums_ buffer in the exact historical order
  // (module-major, sample-minor) and the quantile is selected with
  // nth_element instead of a full sort — bit-identical by construction
  // (estimator_test's VectorizedQuantileParityGrid pins it).
  Duration ComputeWaitQuantile(const std::vector<int>& path, double lambda);

  const PipelineSpec* spec_;
  const StateBoard* board_;
  EstimatorOptions options_;
  Rng rng_;

  // Per-module cache of per-path downstream estimates, invalidated on board
  // publish: between sync ticks every admission reuses the same values, so
  // the O(mc_samples * path length) work runs once per module per second —
  // the asynchronous-update cost model of the paper's §5.4.
  struct CacheEntry {
    std::uint64_t board_version = ~0ULL;
    std::vector<Duration> per_path;
    Duration max_value = 0;
    // --- RefreshAll (incremental mode) state ---
    // Union of modules on this entry's downstream paths, resolved once.
    std::vector<int> dep_modules;
    // Sum of the dep modules' StateBoard::ModuleVersion at the last
    // incremental recompute. Versions are monotone, so the sum moves iff
    // any dependency moved; ~0 forces the first recompute.
    std::uint64_t dep_signature = ~0ULL;
    // Reused per-entry path-sum scratch; entries refresh on different pool
    // threads, so the scratch lives here rather than on the estimator.
    std::vector<double> scratch;
  };
  const CacheEntry& Refresh(int module_id);
  void RefreshEntryFromBuffers(int module_id);
  std::vector<CacheEntry> cache_;

  // Per-module Monte-Carlo sample buffer for the incremental mode: mc_samples
  // draws from the module's wait distribution, re-drawn from the module's own
  // forked stream only when its estimator inputs change.
  struct ModuleBuffer {
    Rng rng{1};
    std::uint64_t input_version = ~0ULL;
    std::vector<double> draws;
  };
  void EnsureRefreshState();
  std::vector<ModuleBuffer> buffers_;  // Empty until the first RefreshAll.

  // Reused mode-A scratch: path sums for the vectorized lazy kernel. Not
  // touched by RefreshAll, whose per-entry scratch lives in CacheEntry.
  std::vector<double> scratch_sums_;

  // Warm-epoch memo for explicit-path quantile queries. Linear scan: the
  // distinct (path, lambda) pairs in play per epoch are the pipeline's
  // downstream paths, a handful at most.
  struct QuantileMemo {
    std::vector<int> path;
    double lambda = 0.0;
    std::uint64_t board_version = ~0ULL;
    Duration value = 0;
  };
  std::vector<QuantileMemo> quantile_memo_;
};

}  // namespace pard

#endif  // PARD_CORE_LATENCY_ESTIMATOR_H_
