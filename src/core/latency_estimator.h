// Bi-directional end-to-end latency estimation (paper §4.2).
//
// At decision time t_b the Request Broker knows (backward) the request's
// cumulative latency t_e - t_s through the current batch start, and
// (current) the profiled execution duration d_k. This estimator supplies the
// forward component for the subsequent modules:
//
//   L_sub = sum q_i  +  sum d_i  +  w_k,     i in k+1..N
//
// where q_i are the synchronized recent queueing delays, d_i the profiled
// durations at the synchronized batch sizes, and w_k = F^-1_{k+1..N}(lambda)
// the "sweet spot" quantile of the aggregated batch-wait distribution.
//
// Heterogeneous fleets: the estimator reasons against each module's
// *effective* service rate rather than `workers × uniform profile`. Every
// d_i term (the exec sum, the PARD-upper bound, and the uniform [0, d]
// wait fallback) uses EffectiveBatchDuration(state) — the profiled duration
// stretched by the fleet's mean active backend speed as published by the
// BackendFleet through ModuleState::mean_speed — and the per-module wait
// reservoirs already observe the true heterogeneous waits empirically. A
// homogeneous grade-1.0 fleet publishes mean_speed == 1.0 exactly, keeping
// estimates (and the Monte-Carlo RNG sequence) bit-identical to the
// pre-heterogeneity kernel. The
// distribution is built by Monte-Carlo over each module's recent-wait
// reservoir (the paper keeps M = 10 000 samples per module; see
// RuntimeOptions::reservoir_capacity), falling back to the uniform [0, d_i]
// model for modules without observations. For DAG pipelines the estimate is
// the maximum over all downstream paths.
//
// All Monte-Carlo work is epoch-cached: results are memoized per
// (module/path, StateBoard version) and recomputed only when a state sync
// publishes a new epoch, matching the paper's asynchronous-update cost model
// (§5.4) — between syncs a broker decision is a cache read.
//
// Concurrency contract: NOT internally synchronized — every Estimate* call
// may mutate the epoch cache and advances the Monte-Carlo RNG, and a board
// publish invalidates entries mid-flight. In the simulator one event loop
// serializes everything. In the serving runtime the estimator is touched
// from exactly one place: the control thread's Sync(), under the control
// lock, where the policy refreshes the epoch cache (EstimateSubsequent /
// PathEstimates) and copies the per-module estimates into the immutable
// PolicyView it hands to ControlPlane's snapshot cell. Broker threads then
// read those COPIES lock-free for the whole sync interval and never call
// into the estimator at all. (A policy that opts out of snapshotting is
// still safe: ControlPlane's locked fallback path serializes its estimator
// use behind the control mutex, the pre-snapshot contract.)
#ifndef PARD_CORE_LATENCY_ESTIMATOR_H_
#define PARD_CORE_LATENCY_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/request.h"
#include "runtime/state_board.h"
#include "stats/empirical_distribution.h"

namespace pard {

// Default Monte-Carlo draw count — the single source of truth for
// EstimatorOptions, PolicyParams and the pardsim --mc-samples flag.
inline constexpr int kDefaultMcSamples = 512;

struct EstimatorOptions {
  // Quantile lambda for the batch-wait sweet spot (paper default 0.1).
  double lambda = 0.1;
  // Monte-Carlo draw count for the aggregated wait distribution. Distinct
  // from the paper's M = 10 000, which is the per-module reservoir SIZE the
  // draws sample from (RuntimeOptions::reservoir_capacity keeps that
  // default). 512 draws put the lambda = 0.1 quantile within a couple of
  // percent of the converged value (see estimator_test's Irwin–Hall checks)
  // at ~1/20th the per-epoch refresh cost; raise it (pardsim --mc-samples,
  // PolicyParams::mc_samples) when reproducing the paper's exact overhead
  // numbers or probing tail quantiles.
  int mc_samples = kDefaultMcSamples;

  // Ablation knobs. The full PARD estimator has all three enabled with
  // kSweetSpot wait handling.
  enum class WaitMode {
    kSweetSpot,  // w_k = F^-1(lambda)               (PARD)
    kLower,      // w_k = 0                          (PARD-lower)
    kUpper,      // w_k = sum d_i                    (PARD-upper)
  };
  WaitMode wait_mode = WaitMode::kSweetSpot;
  bool include_queue = true;  // false: drop the sum q_i term (PARD-sf).
  bool include_exec = true;   // false: drop the sum d_i term.
  bool include_wait = true;   // false: drop the w_k term   (PARD-sf).
};

class LatencyEstimator {
 public:
  LatencyEstimator(const PipelineSpec* spec, const StateBoard* board, EstimatorOptions options,
                   Rng rng);

  // L_sub from module k (exclusive) to the sink; max over DAG paths.
  Duration EstimateSubsequent(int module_id);

  // Request-aware variant for dynamic-path pipelines (§5.2 future work):
  // when the request carries branch choices (path prediction), only the DAG
  // paths consistent with its chosen branches are considered, eliminating
  // the conservative cross-branch maximum. Falls back to
  // EstimateSubsequent() for static requests.
  Duration EstimateSubsequentForRequest(int module_id, const Request& request);

  // The aggregated batch-wait quantile for an explicit module path — exposed
  // for tests and the Fig. 6 bench. Memoized per (path, lambda, board
  // epoch): repeat calls between state syncs are cache reads and re-draw the
  // Monte-Carlo aggregation only after the next publish.
  Duration AggregateWaitQuantile(const std::vector<int>& path, double lambda);

  // Full aggregated-wait distribution for a path (Fig. 6 PDFs).
  EmpiricalDistribution AggregateWaitDistribution(const std::vector<int>& path);

  // Per-path downstream estimates for module_id, aligned index-for-index
  // with spec->DownstreamPaths(module_id), at the current board epoch
  // (refreshes the epoch cache if stale). Policy MakeView() implementations
  // copy these into their immutable snapshot at sync time; the reference is
  // invalidated by the next board publish or Estimate*/PathEstimates call.
  const std::vector<Duration>& PathEstimates(int module_id) {
    return Refresh(module_id).per_path;
  }

  const EstimatorOptions& options() const { return options_; }

 private:
  Duration EstimatePath(const std::vector<int>& path);

  // Uncached quantile computation. EstimatePath (already deduplicated per
  // module/epoch by Refresh) calls this directly so the memo layer cannot
  // perturb its RNG draw sequence — runs stay bit-identical to the
  // pre-memoization kernel.
  Duration ComputeWaitQuantile(const std::vector<int>& path, double lambda);

  const PipelineSpec* spec_;
  const StateBoard* board_;
  EstimatorOptions options_;
  Rng rng_;

  // Per-module cache of per-path downstream estimates, invalidated on board
  // publish: between sync ticks every admission reuses the same values, so
  // the O(mc_samples * path length) work runs once per module per second —
  // the asynchronous-update cost model of the paper's §5.4.
  struct CacheEntry {
    std::uint64_t board_version = ~0ULL;
    std::vector<Duration> per_path;
    Duration max_value = 0;
  };
  const CacheEntry& Refresh(int module_id);
  std::vector<CacheEntry> cache_;

  // Warm-epoch memo for explicit-path quantile queries. Linear scan: the
  // distinct (path, lambda) pairs in play per epoch are the pipeline's
  // downstream paths, a handful at most.
  struct QuantileMemo {
    std::vector<int> path;
    double lambda = 0.0;
    std::uint64_t board_version = ~0ULL;
    Duration value = 0;
  };
  std::vector<QuantileMemo> quantile_memo_;
};

}  // namespace pard

#endif  // PARD_CORE_LATENCY_ESTIMATOR_H_
