#include "core/latency_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pard {

LatencyEstimator::LatencyEstimator(const PipelineSpec* spec, const StateBoard* board,
                                   EstimatorOptions options, Rng rng)
    : spec_(spec), board_(board), options_(options), rng_(rng) {
  PARD_CHECK(spec_ != nullptr);
  PARD_CHECK(board_ != nullptr);
  PARD_CHECK(options_.lambda >= 0.0 && options_.lambda <= 1.0);
  PARD_CHECK(options_.mc_samples > 0);
  cache_.resize(static_cast<std::size_t>(spec_->NumModules()));
}

EmpiricalDistribution LatencyEstimator::AggregateWaitDistribution(const std::vector<int>& path) {
  std::vector<double> sums(static_cast<std::size_t>(options_.mc_samples), 0.0);
  for (int id : path) {
    const ModuleState& state = board_->Get(id);
    if (state.wait_samples.empty()) {
      // Uniform [0, d_i] fallback (the Fig. 3b model), at the fleet's
      // effective duration — a half-speed fleet waits twice as long.
      const double d = static_cast<double>(EffectiveBatchDuration(state));
      for (double& s : sums) {
        s += rng_.Uniform(0.0, d);
      }
    } else {
      const auto n = static_cast<std::int64_t>(state.wait_samples.size());
      for (double& s : sums) {
        s += state.wait_samples[static_cast<std::size_t>(rng_.UniformInt(0, n - 1))];
      }
    }
  }
  return EmpiricalDistribution(std::move(sums));
}

Duration LatencyEstimator::AggregateWaitQuantile(const std::vector<int>& path, double lambda) {
  if (path.empty()) {
    return 0;
  }
  // Warm-epoch memo: between state syncs the inputs cannot change, so the
  // Monte-Carlo runs at most once per (path, lambda) per epoch.
  for (QuantileMemo& memo : quantile_memo_) {
    if (memo.lambda == lambda && memo.path == path) {
      if (memo.board_version != board_->Version()) {
        memo.value = ComputeWaitQuantile(path, lambda);
        memo.board_version = board_->Version();
      }
      return memo.value;
    }
  }
  QuantileMemo memo;
  memo.path = path;
  memo.lambda = lambda;
  memo.board_version = board_->Version();
  memo.value = ComputeWaitQuantile(path, lambda);
  quantile_memo_.push_back(std::move(memo));
  return quantile_memo_.back().value;
}

Duration LatencyEstimator::ComputeWaitQuantile(const std::vector<int>& path, double lambda) {
  if (path.empty()) {
    return 0;
  }
  switch (options_.wait_mode) {
    case EstimatorOptions::WaitMode::kLower:
      return 0;
    case EstimatorOptions::WaitMode::kUpper: {
      Duration total = 0;
      for (int id : path) {
        total += EffectiveBatchDuration(board_->Get(id));
      }
      return total;
    }
    case EstimatorOptions::WaitMode::kSweetSpot:
      break;
  }
  const EmpiricalDistribution dist = AggregateWaitDistribution(path);
  return static_cast<Duration>(std::llround(dist.Quantile(lambda)));
}

Duration LatencyEstimator::EstimatePath(const std::vector<int>& path) {
  Duration estimate = 0;
  if (options_.include_queue) {
    for (int id : path) {
      estimate += static_cast<Duration>(std::llround(board_->Get(id).avg_queue_delay));
    }
  }
  if (options_.include_exec) {
    // d_i at the fleet's effective service rate: the profiled duration
    // stretched by the module's mean active backend speed (exactly the
    // profiled table for a homogeneous grade-1.0 fleet).
    for (int id : path) {
      estimate += EffectiveBatchDuration(board_->Get(id));
    }
  }
  if (options_.include_wait) {
    estimate += ComputeWaitQuantile(path, options_.lambda);
  }
  return estimate;
}

const LatencyEstimator::CacheEntry& LatencyEstimator::Refresh(int module_id) {
  PARD_CHECK(module_id >= 0 && module_id < spec_->NumModules());
  CacheEntry& entry = cache_[static_cast<std::size_t>(module_id)];
  if (entry.board_version == board_->Version()) {
    return entry;
  }
  const auto& paths = spec_->DownstreamPaths(module_id);
  entry.per_path.clear();
  entry.per_path.reserve(paths.size());
  Duration best = 0;
  for (const std::vector<int>& path : paths) {
    const Duration estimate = EstimatePath(path);
    entry.per_path.push_back(estimate);
    best = std::max(best, estimate);
  }
  entry.board_version = board_->Version();
  entry.max_value = best;
  return entry;
}

Duration LatencyEstimator::EstimateSubsequent(int module_id) {
  return Refresh(module_id).max_value;
}

Duration LatencyEstimator::EstimateSubsequentForRequest(int module_id, const Request& request) {
  if (!request.HasDynamicPath()) {
    return EstimateSubsequent(module_id);
  }
  const CacheEntry& entry = Refresh(module_id);
  const auto& paths = spec_->DownstreamPaths(module_id);
  Duration best = 0;
  bool any = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // A path is consistent when every fork along it forwards to the path's
    // next hop under this request's branch choices.
    int prev = module_id;
    bool consistent = true;
    for (int id : paths[i]) {
      const int choice = request.branch_choice[static_cast<std::size_t>(prev)];
      if (spec_->Module(prev).subs.size() > 1 && choice != id) {
        consistent = false;
        break;
      }
      prev = id;
    }
    if (consistent) {
      best = std::max(best, entry.per_path[i]);
      any = true;
    }
  }
  // A request can only be at modules on its active path, so a consistent
  // path always exists; keep the conservative maximum as a safety net.
  return any ? best : entry.max_value;
}

}  // namespace pard
