#include "core/latency_estimator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/check.h"
#include "exec/thread_pool.h"

namespace pard {

namespace {

// Selects the interpolated q-quantile of the (unsorted) samples in `v`,
// destructively, reproducing EmpiricalDistribution::Quantile bit-for-bit:
// same clamp/position arithmetic, same interpolation operands. nth_element
// places the lo-th order statistic; the (lo+1)-th is the minimum of the
// suffix partition it leaves above — two O(n) passes instead of a sort.
double QuantileInPlace(std::vector<double>& v, double q) {
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(lo), v.end());
  const double v_lo = v[lo];
  const double v_hi =
      hi == lo ? v_lo : *std::min_element(v.begin() + static_cast<std::ptrdiff_t>(lo + 1), v.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

// Overwrites `out` with `mc` draws from one module's wait distribution —
// the reservoir when it has observations, the uniform [0, d] fallback
// otherwise. Same per-sample draw kernel as the lazy path, but from the
// caller's (per-module, forked) stream.
void DrawWaitSamples(const ModuleState& state, int mc, Rng& rng, std::vector<double>& out) {
  out.resize(static_cast<std::size_t>(mc));
  if (state.wait_samples.empty()) {
    const double d = static_cast<double>(EffectiveBatchDuration(state));
    for (double& x : out) {
      x = rng.Uniform(0.0, d);
    }
  } else {
    const auto n = static_cast<std::int64_t>(state.wait_samples.size());
    for (double& x : out) {
      x = state.wait_samples[static_cast<std::size_t>(rng.UniformInt(0, n - 1))];
    }
  }
}

}  // namespace

LatencyEstimator::LatencyEstimator(const PipelineSpec* spec, const StateBoard* board,
                                   EstimatorOptions options, Rng rng)
    : spec_(spec), board_(board), options_(options), rng_(rng) {
  PARD_CHECK(spec_ != nullptr);
  PARD_CHECK(board_ != nullptr);
  PARD_CHECK(options_.lambda >= 0.0 && options_.lambda <= 1.0);
  PARD_CHECK(options_.mc_samples > 0);
  cache_.resize(static_cast<std::size_t>(spec_->NumModules()));
}

EmpiricalDistribution LatencyEstimator::AggregateWaitDistribution(const std::vector<int>& path) {
  std::vector<double> sums(static_cast<std::size_t>(options_.mc_samples), 0.0);
  for (int id : path) {
    const ModuleState& state = board_->Get(id);
    if (state.wait_samples.empty()) {
      // Uniform [0, d_i] fallback (the Fig. 3b model), at the fleet's
      // effective duration — a half-speed fleet waits twice as long.
      const double d = static_cast<double>(EffectiveBatchDuration(state));
      for (double& s : sums) {
        s += rng_.Uniform(0.0, d);
      }
    } else {
      const auto n = static_cast<std::int64_t>(state.wait_samples.size());
      for (double& s : sums) {
        s += state.wait_samples[static_cast<std::size_t>(rng_.UniformInt(0, n - 1))];
      }
    }
  }
  return EmpiricalDistribution(std::move(sums));
}

Duration LatencyEstimator::AggregateWaitQuantile(const std::vector<int>& path, double lambda) {
  if (path.empty()) {
    return 0;
  }
  // Warm-epoch memo: between state syncs the inputs cannot change, so the
  // Monte-Carlo runs at most once per (path, lambda) per epoch.
  for (QuantileMemo& memo : quantile_memo_) {
    if (memo.lambda == lambda && memo.path == path) {
      if (memo.board_version != board_->Version()) {
        memo.value = ComputeWaitQuantile(path, lambda);
        memo.board_version = board_->Version();
      }
      return memo.value;
    }
  }
  QuantileMemo memo;
  memo.path = path;
  memo.lambda = lambda;
  memo.board_version = board_->Version();
  memo.value = ComputeWaitQuantile(path, lambda);
  quantile_memo_.push_back(std::move(memo));
  return quantile_memo_.back().value;
}

Duration LatencyEstimator::ComputeWaitQuantile(const std::vector<int>& path, double lambda) {
  if (path.empty()) {
    return 0;
  }
  switch (options_.wait_mode) {
    case EstimatorOptions::WaitMode::kLower:
      return 0;
    case EstimatorOptions::WaitMode::kUpper: {
      Duration total = 0;
      for (int id : path) {
        total += EffectiveBatchDuration(board_->Get(id));
      }
      return total;
    }
    case EstimatorOptions::WaitMode::kSweetSpot:
      break;
  }
  // Vectorized sweet-spot kernel: one batched draw loop per module into the
  // reused scratch, in the exact order the pre-vectorization code drew
  // (module-major, sample-minor, from the shared stream), then nth_element
  // selection — no allocation, no full sort, bit-identical result.
  scratch_sums_.assign(static_cast<std::size_t>(options_.mc_samples), 0.0);
  for (int id : path) {
    const ModuleState& state = board_->Get(id);
    if (state.wait_samples.empty()) {
      const double d = static_cast<double>(EffectiveBatchDuration(state));
      for (double& s : scratch_sums_) {
        s += rng_.Uniform(0.0, d);
      }
    } else {
      const auto n = static_cast<std::int64_t>(state.wait_samples.size());
      for (double& s : scratch_sums_) {
        s += state.wait_samples[static_cast<std::size_t>(rng_.UniformInt(0, n - 1))];
      }
    }
  }
  return static_cast<Duration>(std::llround(QuantileInPlace(scratch_sums_, lambda)));
}

Duration LatencyEstimator::EstimatePath(const std::vector<int>& path) {
  Duration estimate = 0;
  if (options_.include_queue) {
    for (int id : path) {
      estimate += static_cast<Duration>(std::llround(board_->Get(id).avg_queue_delay));
    }
  }
  if (options_.include_exec) {
    // d_i at the fleet's effective service rate: the profiled duration
    // stretched by the module's mean active backend speed (exactly the
    // profiled table for a homogeneous grade-1.0 fleet).
    for (int id : path) {
      estimate += EffectiveBatchDuration(board_->Get(id));
    }
  }
  if (options_.include_wait) {
    estimate += ComputeWaitQuantile(path, options_.lambda);
  }
  return estimate;
}

const LatencyEstimator::CacheEntry& LatencyEstimator::Refresh(int module_id) {
  PARD_CHECK(module_id >= 0 && module_id < spec_->NumModules());
  CacheEntry& entry = cache_[static_cast<std::size_t>(module_id)];
  if (entry.board_version == board_->Version()) {
    return entry;
  }
  const auto& paths = spec_->DownstreamPaths(module_id);
  entry.per_path.clear();
  entry.per_path.reserve(paths.size());
  Duration best = 0;
  for (const std::vector<int>& path : paths) {
    const Duration estimate = EstimatePath(path);
    entry.per_path.push_back(estimate);
    best = std::max(best, estimate);
  }
  entry.board_version = board_->Version();
  entry.max_value = best;
  return entry;
}

Duration LatencyEstimator::EstimateSubsequent(int module_id) {
  return Refresh(module_id).max_value;
}

void LatencyEstimator::EnsureRefreshState() {
  if (!buffers_.empty()) {
    return;
  }
  const int n = spec_->NumModules();
  buffers_.resize(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    // One stream per module, derived from the estimator seed alone (Fork
    // ignores how far the shared stream has advanced), so buffer contents
    // depend only on this module's dirty-event count — the determinism the
    // parallel fan-out rests on.
    buffers_[static_cast<std::size_t>(m)].rng = rng_.Fork("est:" + std::to_string(m));
  }
  for (int k = 0; k < n; ++k) {
    CacheEntry& entry = cache_[static_cast<std::size_t>(k)];
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (const std::vector<int>& path : spec_->DownstreamPaths(k)) {
      for (int id : path) {
        seen[static_cast<std::size_t>(id)] = true;
      }
    }
    for (int m = 0; m < n; ++m) {
      if (seen[static_cast<std::size_t>(m)]) {
        entry.dep_modules.push_back(m);
      }
    }
  }
}

void LatencyEstimator::RefreshEntryFromBuffers(int module_id) {
  CacheEntry& entry = cache_[static_cast<std::size_t>(module_id)];
  const auto& paths = spec_->DownstreamPaths(module_id);
  entry.per_path.clear();
  entry.per_path.reserve(paths.size());
  Duration best = 0;
  for (const std::vector<int>& path : paths) {
    Duration estimate = 0;
    if (options_.include_queue) {
      for (int id : path) {
        estimate += static_cast<Duration>(std::llround(board_->Get(id).avg_queue_delay));
      }
    }
    if (options_.include_exec) {
      for (int id : path) {
        estimate += EffectiveBatchDuration(board_->Get(id));
      }
    }
    if (options_.include_wait && !path.empty()) {
      switch (options_.wait_mode) {
        case EstimatorOptions::WaitMode::kLower:
          break;
        case EstimatorOptions::WaitMode::kUpper:
          for (int id : path) {
            estimate += EffectiveBatchDuration(board_->Get(id));
          }
          break;
        case EstimatorOptions::WaitMode::kSweetSpot: {
          // Path samples are element-wise sums of the modules' buffers: each
          // sample i sums independent draws (one stream per module), so the
          // quantile is a valid Monte-Carlo estimate of the aggregate wait —
          // no RNG on this path, just adds and one selection.
          entry.scratch.assign(static_cast<std::size_t>(options_.mc_samples), 0.0);
          for (int id : path) {
            const std::vector<double>& draws = buffers_[static_cast<std::size_t>(id)].draws;
            for (std::size_t i = 0; i < entry.scratch.size(); ++i) {
              entry.scratch[i] += draws[i];
            }
          }
          estimate += static_cast<Duration>(
              std::llround(QuantileInPlace(entry.scratch, options_.lambda)));
          break;
        }
      }
    }
    entry.per_path.push_back(estimate);
    best = std::max(best, estimate);
  }
  entry.max_value = best;
}

LatencyEstimator::RefreshStats LatencyEstimator::RefreshAll(ThreadPool* pool) {
  EnsureRefreshState();
  const int n = spec_->NumModules();
  // Phase 1: re-draw the sample buffers of modules whose estimator inputs
  // moved. Disjoint per-module state, so the fan-out needs no locks.
  std::vector<int> dirty;
  for (int m = 0; m < n; ++m) {
    if (buffers_[static_cast<std::size_t>(m)].input_version != board_->ModuleVersion(m)) {
      dirty.push_back(m);
    }
  }
  const auto redraw = [&](std::size_t i) {
    const int m = dirty[i];
    ModuleBuffer& buf = buffers_[static_cast<std::size_t>(m)];
    DrawWaitSamples(board_->Get(m), options_.mc_samples, buf.rng, buf.draws);
    buf.input_version = board_->ModuleVersion(m);
  };
  // A single-worker pool adds a handoff without adding parallelism (common
  // on small machines via refresh_threads=0): run inline instead.
  const bool fan_out = pool != nullptr && pool->thread_count() > 1;
  if (fan_out && dirty.size() > 1) {
    ParallelFor(*pool, dirty.size(), redraw);
  } else {
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      redraw(i);
    }
  }
  // Phase 2: recompute only the entries whose downstream dependency set
  // moved (sum of monotone per-module versions — changes iff any changed).
  // Skipped entries are still stamped current so lazy reads stay warm.
  const std::uint64_t board_version = board_->Version();
  RefreshStats stats;
  std::vector<int> stale;
  for (int k = 0; k < n; ++k) {
    CacheEntry& entry = cache_[static_cast<std::size_t>(k)];
    std::uint64_t signature = 0;
    for (int m : entry.dep_modules) {
      signature += board_->ModuleVersion(m);
    }
    if (entry.dep_signature == signature) {
      entry.board_version = board_version;
      ++stats.skipped;
      continue;
    }
    entry.dep_signature = signature;
    stale.push_back(k);
  }
  const auto recompute = [&](std::size_t i) { RefreshEntryFromBuffers(stale[i]); };
  if (fan_out && stale.size() > 1) {
    ParallelFor(*pool, stale.size(), recompute);
  } else {
    for (std::size_t i = 0; i < stale.size(); ++i) {
      recompute(i);
    }
  }
  for (int k : stale) {
    cache_[static_cast<std::size_t>(k)].board_version = board_version;
  }
  stats.refreshed = static_cast<int>(stale.size());
  return stats;
}

Duration LatencyEstimator::EstimateSubsequentForRequest(int module_id, const Request& request) {
  if (!request.HasDynamicPath()) {
    return EstimateSubsequent(module_id);
  }
  const CacheEntry& entry = Refresh(module_id);
  const auto& paths = spec_->DownstreamPaths(module_id);
  Duration best = 0;
  bool any = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    // A path is consistent when every fork along it forwards to the path's
    // next hop under this request's branch choices.
    int prev = module_id;
    bool consistent = true;
    for (int id : paths[i]) {
      const int choice = request.branch_choice[static_cast<std::size_t>(prev)];
      if (spec_->Module(prev).subs.size() > 1 && choice != id) {
        consistent = false;
        break;
      }
      prev = id;
    }
    if (consistent) {
      best = std::max(best, entry.per_path[i]);
      any = true;
    }
  }
  // A request can only be at modules on its active path, so a consistent
  // path always exists; keep the conservative maximum as a safety net.
  return any ? best : entry.max_value;
}

}  // namespace pard
