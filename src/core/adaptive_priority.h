// Adaptive request priority with delayed transition (paper §4.3).
//
// Each module orders its DEPQ by remaining latency budget. Under overload
// (load factor mu > 1) PARD pops the *largest* budget first (HBF) so later
// stages keep slack; under steady load it pops the *smallest* first (LBF) so
// tight requests are not starved by batch-wait uncertainty. To avoid
// thrashing near mu = 1, transitions are hysteretic: switch to HBF only when
// mu > 1 + eps, to LBF only when mu < 1 - eps, where eps is the workload
// burstiness sum|T_in - T_s| / sum T_in.
#ifndef PARD_CORE_ADAPTIVE_PRIORITY_H_
#define PARD_CORE_ADAPTIVE_PRIORITY_H_

#include "runtime/request_queue.h"

namespace pard {

enum class PriorityMode {
  kHbf,  // High Budget First.
  kLbf,  // Low Budget First.
};

struct AdaptivePriorityOptions {
  // false = PARD-instant ablation: thresholds collapse to mu = 1.
  bool delayed_transition = true;
  // Floor/ceiling on eps so a pathological burstiness estimate cannot pin
  // the controller.
  double min_epsilon = 0.0;
  double max_epsilon = 0.5;
  PriorityMode initial = PriorityMode::kLbf;
};

class AdaptivePriority {
 public:
  explicit AdaptivePriority(AdaptivePriorityOptions options = {});

  // Feeds a fresh (mu, eps) sample from the State Planner sync.
  void Update(double load_factor, double burstiness);

  PriorityMode mode() const { return mode_; }
  PopSide side() const {
    return mode_ == PriorityMode::kHbf ? PopSide::kMaxBudget : PopSide::kMinBudget;
  }
  int transitions() const { return transitions_; }

 private:
  AdaptivePriorityOptions options_;
  PriorityMode mode_;
  int transitions_ = 0;
};

}  // namespace pard

#endif  // PARD_CORE_ADAPTIVE_PRIORITY_H_
