// Irwin–Hall distribution (sum of n independent U[0,1] variables).
//
// When a module has not yet observed batch-wait samples, the aggregated
// batch-wait distribution of the n downstream modules is modeled as a sum of
// independent uniforms on [0, d_i] (the paper's Fig. 6 model); for equal d
// this is a scaled Irwin–Hall. The analytic quantile is the reference the
// Monte-Carlo estimator is tested against, and reproduces the paper's worked
// example: at lambda = 0.1,
//   n=4 -> 0.311*sum(d), n=3 -> 0.281*sum(d), n=2 -> 0.224*sum(d),
//   n=1 -> 0.100*sum(d).
#ifndef PARD_CORE_IRWIN_HALL_H_
#define PARD_CORE_IRWIN_HALL_H_

namespace pard {

// CDF of the Irwin–Hall distribution at x in [0, n].
double IrwinHallCdf(int n, double x);

// Quantile: the x with IrwinHallCdf(n, x) == q, via bisection.
// q is clamped to [0, 1].
double IrwinHallQuantile(int n, double q);

}  // namespace pard

#endif  // PARD_CORE_IRWIN_HALL_H_
