#include "core/tenant_governor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pard {

namespace {

// Standalone splitmix64 — the same finalizer common/rng.h seeds xoshiro
// with, reimplemented here so tenant hashing never touches (or forks) the
// run's RNG streams: consuming a draw would perturb arrivals and break
// bit-identity with untenanted runs.
inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Distinct stream tags so the assignment draw and the admission draw of the
// same request are independent.
constexpr std::uint64_t kAssignTag = 0x74702d61737369ULL;  // "tp-assi"
constexpr std::uint64_t kAdmitTag = 0x74702d61646d69ULL;   // "tp-admi"

inline double ToUnit(std::uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace

TenantGovernor::TenantGovernor(std::vector<TenantSpec> catalog, std::uint64_t seed)
    : catalog_(std::move(catalog)), seed_(seed) {
  ValidateTenantCatalog(catalog_);
  cumulative_share_.reserve(catalog_.size());
  double acc = 0.0;
  for (const TenantSpec& tenant : catalog_) {
    acc += tenant.share;
    cumulative_share_.push_back(acc);
  }
  cumulative_share_.back() = 1.0;  // Absorb float drift; the last bucket is a catch-all.
  by_weight_.resize(catalog_.size());
  for (std::size_t t = 0; t < catalog_.size(); ++t) {
    by_weight_[t] = static_cast<int>(t);
  }
  std::stable_sort(by_weight_.begin(), by_weight_.end(), [this](int a, int b) {
    return catalog_[static_cast<std::size_t>(a)].weight <
           catalog_[static_cast<std::size_t>(b)].weight;
  });
  state_ = std::make_unique<TenantState[]>(catalog_.size());
}

int TenantGovernor::TenantOf(std::uint64_t request_id) const {
  const double u = ToUnit(SplitMix64(request_id ^ seed_ ^ kAssignTag));
  for (std::size_t t = 0; t + 1 < cumulative_share_.size(); ++t) {
    if (u < cumulative_share_[t]) {
      return static_cast<int>(t);
    }
  }
  return static_cast<int>(cumulative_share_.size()) - 1;
}

bool TenantGovernor::AdmitAtIngress(std::uint64_t request_id, int tenant) {
  TenantState& state = state_[static_cast<std::size_t>(tenant)];
  state.offered.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t draw = SplitMix64(request_id ^ seed_ ^ kAdmitTag);
  if (draw <= state.threshold.load(std::memory_order_relaxed)) {
    return true;
  }
  state.shed.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TenantGovernor::Resync(const std::vector<ModuleState>& states) {
  double load = 0.0;
  for (const ModuleState& state : states) {
    load = std::max(load, state.load_factor);
  }
  ApplyLoad(load);
}

void TenantGovernor::ResyncFromBoard(const StateBoard& board) {
  double load = 0.0;
  for (int m = 0; m < board.NumModules(); ++m) {
    load = std::max(load, board.Get(m).load_factor);
  }
  ApplyLoad(load);
}

void TenantGovernor::ApplyLoad(double load) {
  last_load_.store(load, std::memory_order_relaxed);
  const std::size_t n = catalog_.size();
  std::vector<double> probs(n, 1.0);
  if (std::isfinite(load) && load > 1.0) {
    // The fleet serves at most 1/load of the offered stream; shed the
    // excess from the lowest-weight tenants first, clamped at each
    // tenant's fairness floor. Any residual (all floors binding) is left
    // to the broker's per-request predicate.
    double remaining = 1.0 - 1.0 / load;
    for (int t : by_weight_) {
      if (remaining <= 0.0) {
        break;
      }
      const TenantSpec& tenant = catalog_[static_cast<std::size_t>(t)];
      const double sheddable = tenant.share * (1.0 - tenant.admit_floor);
      const double taken = std::min(remaining, sheddable);
      probs[static_cast<std::size_t>(t)] = 1.0 - taken / tenant.share;
      remaining -= taken;
    }
  }
  for (std::size_t t = 0; t < n; ++t) {
    std::uint64_t threshold;
    if (probs[t] >= 1.0) {
      threshold = ~std::uint64_t{0};
    } else if (probs[t] <= 0.0) {
      threshold = 0;
    } else {
      threshold = static_cast<std::uint64_t>(
          probs[t] * 0x1.0p64);  // Rounds down; exact 2^64 is caught above.
    }
    state_[t].threshold.store(threshold, std::memory_order_relaxed);
  }
}

double TenantGovernor::AdmitProbability(int tenant) const {
  const std::uint64_t threshold =
      state_[static_cast<std::size_t>(tenant)].threshold.load(std::memory_order_relaxed);
  if (threshold == ~std::uint64_t{0}) {
    return 1.0;
  }
  return static_cast<double>(threshold) * 0x1.0p-64;
}

std::uint64_t TenantGovernor::OfferedCount(int tenant) const {
  return state_[static_cast<std::size_t>(tenant)].offered.load(std::memory_order_relaxed);
}

std::uint64_t TenantGovernor::ShedCount(int tenant) const {
  return state_[static_cast<std::size_t>(tenant)].shed.load(std::memory_order_relaxed);
}

}  // namespace pard
