#include "rag/rag_workflow.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/check.h"
#include "sim/simulation.h"
#include "stats/sliding_window.h"

namespace pard {
namespace {

struct RagRequest {
  std::uint64_t id = 0;
  SimTime sent = 0;
  SimTime deadline = 0;
  int input_tokens = 0;
  int rewrite_out_tokens = 0;  // Ground truth; policies other than predict
                               // cannot read it.
  bool dropped = false;
  bool branch_retrieve_done = false;
  bool branch_search_done = false;
  SimTime ttft = -1;
};

using RagRequestPtr = std::shared_ptr<RagRequest>;

// The full simulation for one policy run.
class RagSim {
 public:
  RagSim(RagPolicy policy, const RagOptions& options)
      : policy_(policy),
        options_(options),
        rng_(Rng(options.seed).Fork("rag")),
        rewrite_window_(5 * kUsPerSec),
        search_window_(5 * kUsPerSec) {}

  RagResult Run() {
    ScheduleArrivals();
    sim_.Run();
    RagResult result;
    result.total = requests_.size();
    for (const RagRequestPtr& r : requests_) {
      const bool good = !r->dropped && r->ttft >= 0 && r->ttft <= r->deadline;
      result.good += good ? 1 : 0;
      result.dropped += good ? 0 : 1;
    }
    result.stages.push_back({"rewrite", EmpiricalDistribution(std::move(rewrite_samples_))});
    result.stages.push_back({"retrieve", EmpiricalDistribution(std::move(retrieve_samples_))});
    result.stages.push_back({"search", EmpiricalDistribution(std::move(search_samples_))});
    result.stages.push_back({"generate", EmpiricalDistribution(std::move(generate_samples_))});
    return result;
  }

 private:
  // ---- Workload -----------------------------------------------------------
  void ScheduleArrivals() {
    double t = 0.0;
    const double end = options_.duration_s;
    // Azure-style bursty arrivals: Poisson baseline with occasional 3x bursts.
    double burst_until = -1.0;
    while (true) {
      double rate = options_.arrival_rate;
      if (t > burst_until && rng_.Bernoulli(0.002)) {
        burst_until = t + rng_.Uniform(3.0, 10.0);
      }
      if (t <= burst_until) {
        rate *= 3.0;
      }
      t += rng_.Exponential(1.0 / rate);
      if (t >= end) {
        break;
      }
      auto req = std::make_shared<RagRequest>();
      req->id = requests_.size() + 1;
      req->sent = SecToUs(t);
      req->deadline = req->sent + options_.ttft_slo;
      req->input_tokens =
          static_cast<int>(rng_.UniformInt(options_.input_tokens_min, options_.input_tokens_max));
      req->rewrite_out_tokens = std::max<int>(
          4, static_cast<int>(rng_.LogNormal(options_.rewrite_out_mu, options_.rewrite_out_sigma)));
      requests_.push_back(req);
      sim_.ScheduleAt(req->sent, [this, req] { EnterRewrite(req); });
    }
  }

  // ---- Cost models --------------------------------------------------------
  Duration RewriteServiceTime(const RagRequest& r) const {
    return options_.prefill_per_token * r.input_tokens +
           options_.decode_per_token * r.rewrite_out_tokens;
  }
  Duration GenerateServiceTime() const {
    return options_.prefill_per_token * options_.context_tokens;
  }

  // ---- Policy -------------------------------------------------------------
  // Estimated latency still ahead of the request, given the stage it is
  // about to enter (0=rewrite, 1=retrieve/search, 2=generate).
  Duration EstimateRemaining(const RagRequest& r, int stage) {
    Duration remaining = 0;
    const SimTime now = sim_.Now();
    if (stage <= 0) {
      if (policy_ == RagPolicy::kPredict) {
        // Oracle output length -> exact rewrite service time.
        remaining += RewriteServiceTime(r);
      } else {
        remaining += static_cast<Duration>(
            rewrite_window_.Mean(now, static_cast<double>(options_.decode_per_token * 32)));
      }
    }
    if (stage <= 1) {
      // Parallel branches: the slower of retrieve (batching model) and
      // search (recent mean).
      const Duration retrieve_est = options_.retrieve_window / 2 + options_.retrieve_base +
                                    options_.retrieve_per_item * options_.retrieve_batch / 2;
      const Duration search_est = static_cast<Duration>(
          search_window_.Mean(now, 300.0 * kUsPerMs));
      remaining += std::max(retrieve_est, search_est);
    }
    remaining += GenerateServiceTime();
    return remaining;
  }

  // True = drop now.
  bool PolicyDrop(const RagRequest& r, int stage) {
    const SimTime now = sim_.Now();
    if (policy_ == RagPolicy::kReactive) {
      return now > r.deadline;  // Only after the SLO is already violated.
    }
    return now + EstimateRemaining(r, stage) > r.deadline;
  }

  void Drop(const RagRequestPtr& r) { r->dropped = true; }

  // ---- rewrite: continuous batching LLM -----------------------------------
  void EnterRewrite(RagRequestPtr r) {
    if (PolicyDrop(*r, 0)) {
      Drop(r);
      return;
    }
    rewrite_queue_.push_back(std::move(r));
    PumpRewrite();
  }

  void PumpRewrite() {
    while (rewrite_busy_ < options_.rewrite_slots && !rewrite_queue_.empty()) {
      RagRequestPtr r = std::move(rewrite_queue_.front());
      rewrite_queue_.pop_front();
      if (r->dropped) {
        continue;
      }
      // Re-check at service start: queueing may have burned the budget.
      if (PolicyDrop(*r, 0)) {
        Drop(r);
        continue;
      }
      ++rewrite_busy_;
      const SimTime start = sim_.Now();
      const Duration service = RewriteServiceTime(*r);
      sim_.ScheduleAfter(service, [this, r, start] {
        --rewrite_busy_;
        rewrite_samples_.push_back(static_cast<double>(sim_.Now() - start));
        rewrite_window_.Add(sim_.Now(), static_cast<double>(sim_.Now() - start));
        ForkBranches(r);
        PumpRewrite();
      });
    }
  }

  // ---- retrieve + search in parallel --------------------------------------
  void ForkBranches(const RagRequestPtr& r) {
    if (r->dropped) {
      return;
    }
    if (PolicyDrop(*r, 1)) {
      Drop(r);
      return;
    }
    EnterRetrieve(r);
    EnterSearch(r);
  }

  void EnterRetrieve(RagRequestPtr r) {
    retrieve_queue_.push_back(std::move(r));
    if (static_cast<int>(retrieve_queue_.size()) >= options_.retrieve_batch) {
      FlushRetrieve();
      return;
    }
    if (!retrieve_timer_armed_) {
      retrieve_timer_armed_ = true;
      sim_.ScheduleAfter(options_.retrieve_window, [this] {
        retrieve_timer_armed_ = false;
        FlushRetrieve();
      });
    }
  }

  void FlushRetrieve() {
    if (retrieve_queue_.empty()) {
      return;
    }
    std::vector<RagRequestPtr> batch;
    while (!retrieve_queue_.empty() &&
           static_cast<int>(batch.size()) < options_.retrieve_batch) {
      batch.push_back(std::move(retrieve_queue_.front()));
      retrieve_queue_.pop_front();
    }
    const Duration service =
        options_.retrieve_base + options_.retrieve_per_item * static_cast<Duration>(batch.size());
    const SimTime start = sim_.Now();
    sim_.ScheduleAfter(service, [this, batch = std::move(batch), start] {
      for (const RagRequestPtr& r : batch) {
        retrieve_samples_.push_back(static_cast<double>(sim_.Now() - start));
        if (r->dropped) {
          continue;
        }
        r->branch_retrieve_done = true;
        MaybeJoin(r);
      }
    });
  }

  void EnterSearch(RagRequestPtr r) {
    if (search_busy_ >= options_.search_threads) {
      // Thread pool exhausted: queue FIFO.
      search_queue_.push_back(std::move(r));
      return;
    }
    StartSearch(std::move(r));
  }

  void StartSearch(RagRequestPtr r) {
    ++search_busy_;
    Duration latency;
    if (rng_.Bernoulli(options_.search_tail_prob)) {
      latency = static_cast<Duration>(rng_.LogNormal(options_.search_tail_mu,
                                                     options_.search_tail_sigma));
    } else {
      latency = static_cast<Duration>(rng_.LogNormal(options_.search_mu, options_.search_sigma));
    }
    const SimTime start = sim_.Now();
    sim_.ScheduleAfter(latency, [this, r = std::move(r), start] {
      --search_busy_;
      search_samples_.push_back(static_cast<double>(sim_.Now() - start));
      search_window_.Add(sim_.Now(), static_cast<double>(sim_.Now() - start));
      if (!r->dropped) {
        r->branch_search_done = true;
        MaybeJoin(r);
      }
      if (!search_queue_.empty()) {
        RagRequestPtr next = std::move(search_queue_.front());
        search_queue_.pop_front();
        StartSearch(std::move(next));
      }
    });
  }

  void MaybeJoin(const RagRequestPtr& r) {
    if (r->branch_retrieve_done && r->branch_search_done) {
      EnterGenerate(r);
    }
  }

  // ---- generate: prefill (TTFT) -------------------------------------------
  void EnterGenerate(RagRequestPtr r) {
    if (PolicyDrop(*r, 2)) {
      Drop(r);
      return;
    }
    generate_queue_.push_back(std::move(r));
    PumpGenerate();
  }

  void PumpGenerate() {
    while (generate_busy_ < options_.generate_slots && !generate_queue_.empty()) {
      RagRequestPtr r = std::move(generate_queue_.front());
      generate_queue_.pop_front();
      if (r->dropped) {
        continue;
      }
      if (PolicyDrop(*r, 2)) {
        Drop(r);
        continue;
      }
      ++generate_busy_;
      const SimTime start = sim_.Now();
      sim_.ScheduleAfter(GenerateServiceTime(), [this, r, start] {
        --generate_busy_;
        generate_samples_.push_back(static_cast<double>(sim_.Now() - start));
        r->ttft = sim_.Now();
        PumpGenerate();
      });
    }
  }

  RagPolicy policy_;
  RagOptions options_;
  Simulation sim_;
  Rng rng_;
  std::vector<RagRequestPtr> requests_;

  std::deque<RagRequestPtr> rewrite_queue_;
  int rewrite_busy_ = 0;
  std::deque<RagRequestPtr> retrieve_queue_;
  bool retrieve_timer_armed_ = false;
  std::deque<RagRequestPtr> search_queue_;
  int search_busy_ = 0;
  std::deque<RagRequestPtr> generate_queue_;
  int generate_busy_ = 0;

  SlidingWindow rewrite_window_;
  SlidingWindow search_window_;

  std::vector<double> rewrite_samples_;
  std::vector<double> retrieve_samples_;
  std::vector<double> search_samples_;
  std::vector<double> generate_samples_;
};

}  // namespace

std::string RagPolicyName(RagPolicy policy) {
  switch (policy) {
    case RagPolicy::kReactive:
      return "reactive";
    case RagPolicy::kProactive:
      return "proactive";
    case RagPolicy::kPredict:
      return "predict";
  }
  return "unknown";
}

RagResult RunRagWorkflow(RagPolicy policy, const RagOptions& options) {
  PARD_CHECK(options.arrival_rate > 0.0);
  PARD_CHECK(options.duration_s > 0.0);
  return RagSim(policy, options).Run();
}

}  // namespace pard
