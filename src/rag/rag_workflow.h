// RAG workflow case study (paper §7, Table 2 / Fig. 15).
//
// Simulates the paper's four-stage retrieval-augmented-generation pipeline:
//
//   rewrite  — Llama-3-8B with continuous batching: no batch wait, but
//              latency depends on the (unknown ahead of time) output length.
//   retrieve — FAISS vector store with batched execution.
//   search   — web search API on a thread pool with long-tail network
//              latency. retrieve and search run in parallel (DAG).
//   generate — Llama-3-8B prefill; TTFT is reached when prefill completes.
//
// Three dropping policies are compared under a TTFT SLO:
//   reactive  — drop only once the TTFT SLO is already violated.
//   proactive — PARD-style: estimate remaining latency per stage (recent
//               means for rewrite/search, batching model for retrieve,
//               length-proportional prefill model for generate) and drop
//               when the estimated TTFT exceeds the SLO.
//   predict   — proactive plus an oracle for rewrite output length
//               (the paper's upper bound via output-length prediction).
#ifndef PARD_RAG_RAG_WORKFLOW_H_
#define PARD_RAG_RAG_WORKFLOW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "stats/empirical_distribution.h"

namespace pard {

enum class RagPolicy {
  kReactive,
  kProactive,
  kPredict,
};

std::string RagPolicyName(RagPolicy policy);

struct RagOptions {
  // Offered load (queries/s) and run length.
  double arrival_rate = 48.0;
  double duration_s = 120.0;
  Duration ttft_slo = 5 * kUsPerSec;
  std::uint64_t seed = 2024;

  // rewrite/generate LLM cost model (continuous batching). The rewrite
  // replica is the pipeline bottleneck (decode-bound, §7); generate is
  // prefill-only and batches wider.
  int rewrite_slots = 16;               // Concurrent sequences, rewrite LLM.
  int generate_slots = 48;              // Concurrent prefills, generate LLM.
  Duration prefill_per_token = 350;     // us per input token.
  Duration decode_per_token = 28 * kUsPerMs / 10;  // 2.8 ms per output token.
  // Output-length distribution: heavy-tailed (median ~30 tokens, p99 in the
  // several-hundreds), the §7 estimation challenge — recent-mean estimators
  // badly underestimate long-output rewrites, which only the `predict`
  // oracle avoids.
  double rewrite_out_mu = 3.4;
  double rewrite_out_sigma = 1.1;
  int input_tokens_min = 24;
  int input_tokens_max = 160;
  int context_tokens = 900;             // Retrieved context fed to generate.

  // retrieve (FAISS) batching.
  int retrieve_batch = 32;
  Duration retrieve_window = 10 * kUsPerMs;
  Duration retrieve_base = 18 * kUsPerMs;
  Duration retrieve_per_item = 600;

  // search (web API) long-tail latency.
  int search_threads = 256;
  double search_mu = 12.6;   // LogNormal us — median ~300 ms.
  double search_sigma = 0.85;
  double search_tail_prob = 0.04;  // Occasional multi-second stalls.
  double search_tail_mu = 15.2;    // ~4 s median stall.
  double search_tail_sigma = 0.35;
};

struct RagStageStats {
  std::string name;
  EmpiricalDistribution latency;  // us, completed executions of the stage.
};

struct RagResult {
  std::size_t total = 0;
  std::size_t good = 0;       // TTFT within SLO.
  std::size_t dropped = 0;    // Policy drops + TTFT violations.
  double DropRate() const {
    return total > 0 ? static_cast<double>(dropped) / static_cast<double>(total) : 0.0;
  }
  double NormalizedGoodput() const {
    return total > 0 ? static_cast<double>(good) / static_cast<double>(total) : 0.0;
  }
  std::vector<RagStageStats> stages;  // rewrite, retrieve, search, generate.
};

// Runs the workflow under one policy. Identical seeds see identical query
// streams across policies.
RagResult RunRagWorkflow(RagPolicy policy, const RagOptions& options = {});

}  // namespace pard

#endif  // PARD_RAG_RAG_WORKFLOW_H_
