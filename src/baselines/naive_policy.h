// Naive baseline: no dropping at all. Under overload requests accumulate and
// most complete past the SLO (counted as dropped per §5.1), giving the worst
// goodput in the paper's Fig. 8/10.
#ifndef PARD_BASELINES_NAIVE_POLICY_H_
#define PARD_BASELINES_NAIVE_POLICY_H_

#include <memory>
#include <string>

#include "runtime/drop_policy.h"

namespace pard {

class NaivePolicy : public DropPolicy {
 public:
  bool ShouldDrop(const AdmissionContext& ctx) override {
    (void)ctx;
    return false;
  }
  bool PurgeExpired() const override { return false; }
  // Stateless: the view is the policy.
  std::shared_ptr<const PolicyView> MakeView() override {
    struct View final : PolicyView {
      bool ShouldDrop(const AdmissionContext&) const override { return false; }
    };
    return std::make_shared<View>();
  }
  std::string Name() const override { return "naive"; }
};

}  // namespace pard

#endif  // PARD_BASELINES_NAIVE_POLICY_H_
