// Nexus baseline (paper §5.1).
//
// Nexus scans the FIFO queue in arrival order with a sliding window equal to
// the batch size, dropping every request before the first window position
// where all requests can meet the current module's latency budget. Within a
// single batch-formation round all candidates share the same expected batch
// start t_e and duration d_k, so the window condition reduces to the
// per-request reactive predicate
//
//   keep  iff  (t_e - t_s) + d_k <= SLO
//
// evaluated in arrival order — which is how it is implemented here (see
// DESIGN.md §4.5). The key property the paper analyzes is preserved: only
// latency through the *current* module is considered, never the budget
// needs of downstream modules.
#ifndef PARD_BASELINES_NEXUS_POLICY_H_
#define PARD_BASELINES_NEXUS_POLICY_H_

#include <memory>
#include <string>

#include "runtime/drop_policy.h"

namespace pard {

class NexusPolicy : public DropPolicy {
 public:
  bool ShouldDrop(const AdmissionContext& ctx) override {
    const Duration through_current =
        (ctx.batch_start - ctx.request->sent) + ctx.batch_duration;
    return through_current > ctx.request->slo;
  }

  PopSide ChoosePopSide(int module_id, SimTime now) override {
    (void)module_id;
    (void)now;
    return PopSide::kOldest;
  }

  // Pure context arithmetic: snapshot-safe as-is.
  std::shared_ptr<const PolicyView> MakeView() override {
    struct View final : PolicyView {
      bool ShouldDrop(const AdmissionContext& ctx) const override {
        return (ctx.batch_start - ctx.request->sent) + ctx.batch_duration >
               ctx.request->slo;
      }
    };
    return std::make_shared<View>();
  }

  std::string Name() const override { return "nexus"; }
};

}  // namespace pard

#endif  // PARD_BASELINES_NEXUS_POLICY_H_
