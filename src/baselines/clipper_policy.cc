#include "baselines/clipper_policy.h"

#include "runtime/batch_planner.h"

namespace pard {

void ClipperPlusPolicy::Bind(const PipelineSpec* spec, const StateBoard* board) {
  DropPolicy::Bind(spec, board);
  cumulative_budgets_ = CumulativeSplitBudgets(*spec, PlanBatchSizes(*spec));
}

bool ClipperPlusPolicy::ShouldDrop(const AdmissionContext& ctx) {
  // Reactive: only the latency already accumulated counts. The request is
  // dropped when it has burned past the cumulative budget through this
  // module before inference even starts.
  const Duration elapsed = ctx.now - ctx.request->sent;
  return elapsed > cumulative_budgets_[static_cast<std::size_t>(ctx.module_id)];
}

std::shared_ptr<const PolicyView> ClipperPlusPolicy::MakeView() {
  struct View final : PolicyView {
    bool ShouldDrop(const AdmissionContext& ctx) const override {
      return ctx.now - ctx.request->sent >
             budgets[static_cast<std::size_t>(ctx.module_id)];
    }
    std::vector<Duration> budgets;
  };
  auto view = std::make_shared<View>();
  view->budgets = cumulative_budgets_;
  return view;
}

}  // namespace pard
