#include "baselines/policy_factory.h"

#include <functional>

#include "baselines/clipper_policy.h"
#include "baselines/naive_policy.h"
#include "baselines/nexus_policy.h"
#include "baselines/overload_control_policy.h"
#include "common/check.h"
#include "core/pard_policy.h"

namespace pard {
namespace {

std::unique_ptr<PardPolicy> MakePard(const PolicyParams& params,
                                     const std::function<void(PardOptions&)>& tweak) {
  PardOptions options;
  options.estimator.lambda = params.lambda;
  options.estimator.mc_samples = params.mc_samples;
  options.seed = params.seed;
  tweak(options);
  return std::make_unique<PardPolicy>(options);
}

}  // namespace

std::unique_ptr<DropPolicy> MakePolicy(const std::string& name, const PolicyParams& params) {
  if (name == "naive") {
    return std::make_unique<NaivePolicy>();
  }
  if (name == "nexus") {
    return std::make_unique<NexusPolicy>();
  }
  if (name == "clipper++") {
    return std::make_unique<ClipperPlusPolicy>();
  }
  if (name == "pard-oc") {
    OverloadControlOptions oc;
    oc.queue_threshold = params.oc_threshold;
    oc.alpha = params.oc_alpha;
    oc.seed = params.seed;
    return std::make_unique<OverloadControlPolicy>(oc);
  }
  if (name == "pard") {
    return MakePard(params, [](PardOptions&) {});
  }
  if (name == "pard-path") {
    return MakePard(params, [](PardOptions& o) { o.path_prediction = true; });
  }
  if (name == "pard-back") {
    return MakePard(params, [](PardOptions& o) { o.backward_only = true; });
  }
  if (name == "pard-sf") {
    return MakePard(params, [](PardOptions& o) {
      o.estimator.include_queue = false;
      o.estimator.include_wait = false;
    });
  }
  if (name == "pard-split") {
    return MakePard(params,
                    [](PardOptions& o) { o.budget_scope = PardOptions::BudgetScope::kStaticSplit; });
  }
  if (name == "pard-wcl") {
    return MakePard(params,
                    [](PardOptions& o) { o.budget_scope = PardOptions::BudgetScope::kWclSplit; });
  }
  if (name == "pard-lower") {
    return MakePard(params,
                    [](PardOptions& o) { o.estimator.wait_mode = EstimatorOptions::WaitMode::kLower; });
  }
  if (name == "pard-upper") {
    return MakePard(params,
                    [](PardOptions& o) { o.estimator.wait_mode = EstimatorOptions::WaitMode::kUpper; });
  }
  if (name == "pard-fcfs") {
    return MakePard(params, [](PardOptions& o) { o.order = PardOptions::Order::kFcfs; });
  }
  if (name == "pard-hbf") {
    return MakePard(params, [](PardOptions& o) { o.order = PardOptions::Order::kHbf; });
  }
  if (name == "pard-lbf") {
    return MakePard(params, [](PardOptions& o) { o.order = PardOptions::Order::kLbf; });
  }
  if (name == "pard-instant") {
    return MakePard(params, [](PardOptions& o) { o.order = PardOptions::Order::kInstant; });
  }
  PARD_CHECK_MSG(false, "unknown policy: " << name);
}

std::vector<std::string> AllPolicyNames() {
  return {"pard",       "nexus",      "clipper++",  "naive",      "pard-back",
          "pard-sf",    "pard-oc",    "pard-split", "pard-wcl",   "pard-lower",
          "pard-upper", "pard-fcfs",  "pard-hbf",   "pard-lbf",   "pard-instant",
          "pard-path"};
}

std::vector<std::string> AblationPolicyNames() {
  return {"pard",       "pard-back",  "pard-sf",   "pard-oc",   "pard-split",
          "pard-wcl",   "pard-upper", "pard-lower", "pard-instant", "pard-hbf",
          "pard-lbf",   "pard-fcfs"};
}

}  // namespace pard
