// PARD-oc: DAGOR-style overload control (Table 1, from WeChat's microservice
// overload controller).
//
// A module is overloaded when its recent average queueing delay exceeds a
// threshold T. While any module is overloaded, the system sheds load: the
// overloaded module itself (and the pipeline ingress, which it "notifies")
// admits only (1 - alpha) of incoming requests, dropped probabilistically at
// enqueue time. No per-request latency estimation is performed — the
// coarse-grained design the paper contrasts with PARD in §5.3.
#ifndef PARD_BASELINES_OVERLOAD_CONTROL_POLICY_H_
#define PARD_BASELINES_OVERLOAD_CONTROL_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/drop_policy.h"

namespace pard {

struct OverloadControlOptions {
  // Queueing-delay threshold T (paper tunes 20-25 ms per trace).
  Duration queue_threshold = 20 * kUsPerMs;
  // Shed fraction alpha (paper: 0.4).
  double alpha = 0.4;
  std::uint64_t seed = 99;
};

class OverloadControlPolicy : public DropPolicy {
 public:
  explicit OverloadControlPolicy(OverloadControlOptions options = {})
      : options_(options), rng_(Rng(options.seed).Fork("oc")) {}

  bool ShouldDrop(const AdmissionContext& ctx) override {
    (void)ctx;
    return false;  // All shedding happens at admission.
  }

  bool AdmitAtModule(const Request& request, int module_id, SimTime now) override {
    (void)request;
    (void)now;
    if (board_ == nullptr) {
      return true;
    }
    const bool here_overloaded = Overloaded(module_id);
    // Ingress sheds on behalf of any overloaded downstream module
    // ("notifies preceding modules").
    const bool ingress_shedding = module_id == spec_->SourceModule() && AnyOverloaded();
    if (here_overloaded || ingress_shedding) {
      return !rng_.Bernoulli(options_.alpha);
    }
    return true;
  }

  // Overload is a per-sync property (avg_queue_delay changes only when the
  // board publishes), so the view precomputes the per-module flags; only the
  // Bernoulli draw needs entropy, supplied by the control plane's striped
  // admission RNGs.
  std::shared_ptr<const PolicyView> MakeView() override {
    struct View final : PolicyView {
      bool ShouldDrop(const AdmissionContext&) const override { return false; }
      bool NeedsAdmissionRng() const override { return true; }
      bool AdmitAtModule(const Request& request, int module_id, SimTime now,
                         Rng* rng) const override {
        (void)request;
        (void)now;
        const bool here = overloaded[static_cast<std::size_t>(module_id)];
        const bool ingress_shedding = module_id == source && any_overloaded;
        if (here || ingress_shedding) {
          return !rng->Bernoulli(alpha);
        }
        return true;
      }
      std::vector<bool> overloaded;
      bool any_overloaded = false;
      int source = 0;
      double alpha = 0.0;
    };
    auto view = std::make_shared<View>();
    view->source = spec_->SourceModule();
    view->alpha = options_.alpha;
    view->overloaded.resize(static_cast<std::size_t>(board_->NumModules()), false);
    for (int id = 0; id < board_->NumModules(); ++id) {
      const bool over = Overloaded(id);
      view->overloaded[static_cast<std::size_t>(id)] = over;
      view->any_overloaded = view->any_overloaded || over;
    }
    return view;
  }

  std::string Name() const override { return "pard-oc"; }

 private:
  bool Overloaded(int module_id) const {
    return board_->Get(module_id).avg_queue_delay >
           static_cast<double>(options_.queue_threshold);
  }
  bool AnyOverloaded() const {
    for (int id = 0; id < board_->NumModules(); ++id) {
      if (Overloaded(id)) {
        return true;
      }
    }
    return false;
  }

  OverloadControlOptions options_;
  Rng rng_;
};

}  // namespace pard

#endif  // PARD_BASELINES_OVERLOAD_CONTROL_POLICY_H_
