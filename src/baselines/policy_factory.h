// Policy factory: constructs any of the paper's systems or ablations by
// name. The names match Table 1 and §5.1 exactly:
//
//   pard, nexus, clipper++, naive,
//   pard-back, pard-sf, pard-oc, pard-split, pard-wcl,
//   pard-lower, pard-upper, pard-fcfs, pard-hbf, pard-lbf, pard-instant
#ifndef PARD_BASELINES_POLICY_FACTORY_H_
#define PARD_BASELINES_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/latency_estimator.h"
#include "runtime/drop_policy.h"

namespace pard {

struct PolicyParams {
  double lambda = 0.1;                       // Batch-wait quantile.
  int mc_samples = kDefaultMcSamples;        // Estimator Monte-Carlo draws
                                             // (see EstimatorOptions).
  Duration oc_threshold = 20 * kUsPerMs;     // PARD-oc queue threshold T.
  double oc_alpha = 0.4;                     // PARD-oc shed fraction.
  std::uint64_t seed = 1234;
};

// Throws CheckError for unknown names.
std::unique_ptr<DropPolicy> MakePolicy(const std::string& name, const PolicyParams& params = {});

// All policy names the factory accepts (Table 1 + primary systems).
std::vector<std::string> AllPolicyNames();

// The ablation subset used in Fig. 11 (everything but nexus/clipper++/naive).
std::vector<std::string> AblationPolicyNames();

}  // namespace pard

#endif  // PARD_BASELINES_POLICY_FACTORY_H_
