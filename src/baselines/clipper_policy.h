// Clipper++ baseline (paper §5.1).
//
// Clipper serves single-model applications and drops a request only when it
// has *already* exceeded the latency objective before inference. The paper
// extends it to pipelines by splitting the end-to-end SLO proportionally to
// module cost: SLO_k = SLO * d_k / sum d_i. At module k the request is
// dropped iff its elapsed time at decision already exceeds the cumulative
// split budget through module k — a purely reactive, arrival-order design.
#ifndef PARD_BASELINES_CLIPPER_POLICY_H_
#define PARD_BASELINES_CLIPPER_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/drop_policy.h"

namespace pard {

class ClipperPlusPolicy : public DropPolicy {
 public:
  void Bind(const PipelineSpec* spec, const StateBoard* board) override;

  bool ShouldDrop(const AdmissionContext& ctx) override;

  // Budgets are fixed at Bind(); the view copies them once.
  std::shared_ptr<const PolicyView> MakeView() override;

  PopSide ChoosePopSide(int module_id, SimTime now) override {
    (void)module_id;
    (void)now;
    return PopSide::kOldest;  // FIFO, like Clipper.
  }

  std::string Name() const override { return "clipper++"; }

 private:
  std::vector<Duration> cumulative_budgets_;
};

}  // namespace pard

#endif  // PARD_BASELINES_CLIPPER_POLICY_H_
