// Fixed-size worker pool for running independent simulation tasks.
//
// The simulator kernel itself stays single-threaded and deterministic; this
// pool parallelizes *across* runs — sweep grids, replicated seeds and trace
// shards — each of which owns its whole object graph (policy, runtime,
// request records) and therefore needs no locking beyond the work queue.
//
// Exceptions thrown by a task are captured and re-thrown from Wait() /
// ParallelFor() on the submitting thread (first one wins; later ones are
// swallowed), so a failing experiment surfaces exactly like it does when run
// serially instead of calling std::terminate inside a worker.
#ifndef PARD_EXEC_THREAD_POOL_H_
#define PARD_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pard {

class ThreadPool {
 public:
  // Spawns `threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int threads);

  // Graceful shutdown: runs everything already submitted, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues one task. Must not be called after/while the destructor runs.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then re-throws the first
  // captured task exception (if any). Safe to call repeatedly.
  void Wait();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Resolves a jobs knob: values >= 1 pass through; anything else means
  // "one per hardware thread" (with a floor of 1 when the runtime cannot
  // tell, per std::thread::hardware_concurrency()).
  static int ResolveJobs(int jobs);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0..n-1) on the pool and blocks until all indices finish. Every
// index is executed exactly once regardless of scheduling; if any call
// throws, the first exception is re-thrown here after the loop drains.
void ParallelFor(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

// One-shot convenience: ParallelFor on a temporary pool of `jobs` threads
// (ResolveJobs semantics). jobs == 1 runs inline on the caller's thread.
void ParallelFor(int jobs, std::size_t n, const std::function<void(std::size_t)>& fn);

// A group of long-running threads, as opposed to ThreadPool's queue of
// short tasks. The serving runtime (src/serve/) uses one group per module:
// each GPU worker is a thread that lives for the whole run, blocking on the
// module's condition variable — work that would wedge a shared task queue.
//
// Join() (or the destructor) joins every spawned thread and then re-throws
// the first exception any of them ended with (later ones are swallowed), so
// a crashed worker surfaces on the owning thread exactly like ThreadPool's
// Wait() contract.
class WorkerGroup {
 public:
  WorkerGroup() = default;
  ~WorkerGroup() noexcept;

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  // Starts one thread running `body`. Must not race with Join().
  void Spawn(std::function<void()> body);

  // Joins every thread, then re-throws the first captured exception (if
  // any). Safe to call repeatedly; later calls are no-ops.
  void Join();

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  std::mutex mu_;  // Guards first_error_ only.
  std::exception_ptr first_error_;
  std::vector<std::thread> threads_;
};

}  // namespace pard

#endif  // PARD_EXEC_THREAD_POOL_H_
