#include "exec/sharded_trace.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pard {

ShardedTrace::ShardedTrace(const std::vector<SimTime>& arrivals, SimTime begin, SimTime end,
                           const ShardOptions& options) {
  PARD_CHECK_MSG(begin <= end, "sharded trace has negative span");
  const int count = std::max(1, options.shards);
  const Duration warmup = std::max<Duration>(0, options.warmup);
  shards_.resize(static_cast<std::size_t>(count));

  // Equal-width time partition. Integer arithmetic keeps shard edges exact:
  // shard i covers [begin + i*width, begin + (i+1)*width), the last shard
  // absorbing the remainder up to `end`.
  const Duration span = end - begin;
  const Duration width = span / count;
  for (int i = 0; i < count; ++i) {
    Shard& shard = shards_[static_cast<std::size_t>(i)];
    shard.begin = begin + width * i;
    shard.end = (i == count - 1) ? end : begin + width * (i + 1);
  }

  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    const SimTime warm_begin =
        (i == 0) ? shard.begin : std::max(begin, shard.begin - warmup);
    const auto first =
        std::lower_bound(arrivals.begin(), arrivals.end(), warm_begin);
    const auto core_first =
        std::lower_bound(arrivals.begin(), arrivals.end(), shard.begin);
    // The last shard is closed on the right: SecToUs rounding can land an
    // arrival exactly on `end`, and it must not fall out of every shard.
    const auto last = (i + 1 == shards_.size())
                          ? arrivals.end()
                          : std::lower_bound(arrivals.begin(), arrivals.end(), shard.end);
    shard.arrivals.assign(first, last);
    shard.warmup_count = static_cast<std::size_t>(core_first - first);
  }
}

std::vector<RequestPtr> MergeShardRecords(const ShardedTrace& trace,
                                          std::vector<std::vector<RequestPtr>> shard_requests) {
  PARD_CHECK_MSG(shard_requests.size() == trace.size(),
                 "record sets do not match shard count");
  std::vector<RequestPtr> merged;
  for (std::size_t i = 0; i < shard_requests.size(); ++i) {
    const ShardedTrace::Shard& shard = trace.shards()[i];
    const bool last_shard = (i + 1 == shard_requests.size());
    for (RequestPtr& req : shard_requests[i]) {
      // Warm-up replays belong to the previous shard's records; core-interval
      // requests are kept in arrival order (runtimes inject in send order).
      // The last shard's interval is closed on the right, matching the
      // partition above.
      if (req->sent >= shard.begin &&
          (req->sent < shard.end || (last_shard && req->sent == shard.end))) {
        merged.push_back(std::move(req));
      }
    }
  }
  return merged;
}

}  // namespace pard
