// Concurrent execution of experiment grids.
//
// Every sweep-shaped bench (policy x rate, ablation x knob, ...) is a list
// of independent ExperimentConfigs; SweepRunner executes such a grid on a
// thread pool. Each task builds its own policy + PipelineRuntime, so tasks
// share nothing mutable, and results land at the index of their config —
// output is bit-identical regardless of job count or completion order.
//
// With derive_task_seeds set, task i runs under the decorrelated seed
// Rng(config.seed).Fork("task:<i>") instead of config.seed verbatim. Leave
// it off (the default) when grid points must share one arrival stream for
// apples-to-apples policy comparison; turn it on for replica-style sweeps
// where each point should see an independent workload.
#ifndef PARD_EXEC_SWEEP_RUNNER_H_
#define PARD_EXEC_SWEEP_RUNNER_H_

#include <cstdint>
#include <vector>

#include "harness/experiment.h"

namespace pard {

// The seed task i runs under when derive_task_seeds is set.
std::uint64_t TaskSeed(std::uint64_t base_seed, std::size_t task_index);

struct SweepOptions {
  // Worker threads; < 1 means one per hardware thread.
  int jobs = 0;
  // Stamp each config with TaskSeed(config.seed, index) before running.
  bool derive_task_seeds = false;
};

class SweepRunner {
 public:
  explicit SweepRunner(const SweepOptions& options = SweepOptions()) : options_(options) {}

  // Runs every config (position i of the result corresponds to configs[i]).
  // An exception from any experiment aborts the sweep after in-flight tasks
  // drain and is re-thrown here.
  std::vector<ExperimentResult> Run(const std::vector<ExperimentConfig>& configs) const;

  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
};

}  // namespace pard

#endif  // PARD_EXEC_SWEEP_RUNNER_H_
