#include "exec/sweep_runner.h"

#include <string>
#include <utility>

#include "common/rng.h"
#include "exec/thread_pool.h"

namespace pard {

std::uint64_t TaskSeed(std::uint64_t base_seed, std::size_t task_index) {
  return Rng(base_seed).Fork("task:" + std::to_string(task_index)).NextU64();
}

std::vector<ExperimentResult> SweepRunner::Run(
    const std::vector<ExperimentConfig>& configs) const {
  std::vector<ExperimentResult> results(configs.size());
  const bool derive = options_.derive_task_seeds;
  ParallelFor(options_.jobs, configs.size(), [&configs, &results, derive](std::size_t i) {
    ExperimentConfig config = configs[i];
    if (derive) {
      config.seed = TaskSeed(config.seed, i);
    }
    results[i] = RunExperiment(config);
  });
  return results;
}

}  // namespace pard
