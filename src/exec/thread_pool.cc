#include "exec/thread_pool.h"

#include <utility>

namespace pard {

ThreadPool::ThreadPool(int threads) {
  const int count = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

int ThreadPool::ResolveJobs(int jobs) {
  if (jobs >= 1) {
    return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting_down_ and nothing left to drain.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (err && !first_error_) {
        first_error_ = err;
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

WorkerGroup::~WorkerGroup() noexcept {
  // Destruction must not throw; a captured worker exception that was never
  // collected via Join() is dropped here (Join() is the reporting path).
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void WorkerGroup::Spawn(std::function<void()> body) {
  threads_.emplace_back([this, body = std::move(body)] {
    try {
      body();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
  });
}

void WorkerGroup::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ParallelFor(int jobs, std::size_t n, const std::function<void(std::size_t)>& fn) {
  const int resolved = ThreadPool::ResolveJobs(jobs);
  if (resolved == 1 || n <= 1) {
    // Inline keeps single-job runs trivially debuggable (no worker thread in
    // the backtrace) and exception propagation direct.
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool pool(static_cast<int>(n) < resolved ? static_cast<int>(n) : resolved);
  ParallelFor(pool, n, fn);
}

}  // namespace pard
