// Time-sharding of long arrival traces across cores.
//
// A paper-length (~1000 s) trace is one long serial simulation. To run it in
// seconds, the single deterministic arrival stream is split into contiguous
// time shards, each shard is served by its own independent PipelineRuntime,
// and the per-shard request records are merged for metrics analysis.
//
// Because pipeline state (queues, estimator windows, scaling level) does not
// carry across shard boundaries, every shard after the first replays a
// warm-up prefix of the preceding shard's arrivals before its own interval.
// Requests sent during warm-up prime queues and statistics but are excluded
// from the merged records, so no request is double-counted. Sharding is an
// approximation of the unsharded run that converges as warm-up grows; it is
// exact in its accounting (each arrival is attributed to exactly one shard).
//
// Determinism: the full stream is generated once up front, and the partition
// depends only on timestamps and the shard count — never on thread count or
// completion order.
#ifndef PARD_EXEC_SHARDED_TRACE_H_
#define PARD_EXEC_SHARDED_TRACE_H_

#include <cstddef>
#include <vector>

#include "common/time_types.h"
#include "runtime/request.h"

namespace pard {

struct ShardOptions {
  // Number of time shards (< 1 is clamped to 1).
  int shards = 1;
  // Warm-up overlap prepended to every shard after the first. The default of
  // 10 s covers two of the runtime's 5 s statistics windows.
  Duration warmup = 10 * kUsPerSec;
};

class ShardedTrace {
 public:
  struct Shard {
    // Core interval [begin, end): requests sent here belong to this shard.
    // The last shard is closed on the right ([begin, end]) so an arrival
    // rounded exactly onto the trace end still lands in a shard.
    SimTime begin = 0;
    SimTime end = 0;
    // Arrivals the shard actually simulates: [max(stream begin, begin -
    // warmup), end). Entries before `begin` are warm-up.
    std::vector<SimTime> arrivals;
    // How many leading entries of `arrivals` are warm-up replays.
    std::size_t warmup_count = 0;
  };

  // Partitions `arrivals` (sorted client send times) over [begin, end) into
  // equal-width time shards. Degenerates to one shard holding the whole
  // stream when options.shards == 1.
  ShardedTrace(const std::vector<SimTime>& arrivals, SimTime begin, SimTime end,
               const ShardOptions& options);

  const std::vector<Shard>& shards() const { return shards_; }
  std::size_t size() const { return shards_.size(); }

 private:
  std::vector<Shard> shards_;
};

// Merges per-shard request records into one stream ordered by send time.
// `shard_requests[i]` are the records left behind by shard i's runtime; only
// requests sent inside shard i's core interval survive (warm-up replays are
// dropped), so the result has exactly one record per original arrival.
std::vector<RequestPtr> MergeShardRecords(const ShardedTrace& trace,
                                          std::vector<std::vector<RequestPtr>> shard_requests);

}  // namespace pard

#endif  // PARD_EXEC_SHARDED_TRACE_H_
