#include "resilience/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace pard {

namespace {

// Parse helpers that name the event index (1-based), the entry, the field
// position, and the offending token — so `--chaos-schedule` typos point at
// the exact character range to fix.
double ParseDoubleField(int event_index, const std::string& entry,
                        const std::vector<std::string>& fields, int field,
                        const char* what, double min_value) {
  const std::string& token = fields[static_cast<std::size_t>(field)];
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  PARD_CHECK_MSG(end != token.c_str() && *end == '\0' && std::isfinite(value) &&
                     value >= min_value,
                 "chaos event " << event_index << " (\"" << entry
                                << "\"): field " << (field + 1) << " (\""
                                << token << "\") is not a valid " << what);
  return value;
}

long ParseLongField(int event_index, const std::string& entry,
                    const std::vector<std::string>& fields, int field,
                    const char* what, long min_value, long max_value) {
  const std::string& token = fields[static_cast<std::size_t>(field)];
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  PARD_CHECK_MSG(end != token.c_str() && *end == '\0' && value >= min_value &&
                     value <= max_value,
                 "chaos event " << event_index << " (\"" << entry
                                << "\"): field " << (field + 1) << " (\""
                                << token << "\") is not a valid " << what);
  return value;
}

}  // namespace

const char* ChaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kHang:
      return "hang";
    case ChaosKind::kSlow:
      return "slow";
    case ChaosKind::kStallSync:
      return "stall-sync";
  }
  return "unknown";
}

ChaosSchedule ParseChaosSchedule(std::string_view text) {
  ChaosSchedule schedule;
  int event_index = 0;
  for (const std::string& part : Split(text, ',')) {
    const std::string entry(Trim(part));
    if (entry.empty()) {
      continue;
    }
    ++event_index;
    const std::vector<std::string> fields = Split(entry, ':');
    ChaosEvent event;

    // stall-sync is control-plane scoped: <at_s>:stall-sync:<dur_s>.
    if (fields.size() == 3 && fields[1] == "stall-sync") {
      event.kind = ChaosKind::kStallSync;
      event.module_id = -1;
      event.at = SecToUs(ParseDoubleField(event_index, entry, fields, 0,
                                          "time (seconds)", 0.0));
      event.duration = SecToUs(ParseDoubleField(event_index, entry, fields, 2,
                                                "duration (seconds)", 0.0));
      PARD_CHECK_MSG(event.duration > 0,
                     "chaos event " << event_index << " (\"" << entry
                                    << "\"): field 3 (\"" << fields[2]
                                    << "\") must be a positive duration");
      schedule.events.push_back(event);
      continue;
    }

    PARD_CHECK_MSG(
        fields.size() >= 4,
        "chaos event "
            << event_index << " (\"" << entry << "\"): expected "
            << "<at_s>:<module>:hang:<count>[:<dur_s>], "
            << "<at_s>:<module>:slow:<factor>:<dur_s>, "
            << "<at_s>:stall-sync:<dur_s>, or "
            << "prob:<module>:hang:<rate_per_s>:<until_s>; got "
            << fields.size() << " ':'-separated fields");

    const bool probabilistic = fields[0] == "prob";
    if (!probabilistic) {
      event.at = SecToUs(ParseDoubleField(event_index, entry, fields, 0,
                                          "time (seconds)", 0.0));
    }
    event.module_id = static_cast<int>(ParseLongField(
        event_index, entry, fields, 1, "module id", 0, 1 << 20));

    const std::string& kind = fields[2];
    if (kind == "hang") {
      event.kind = ChaosKind::kHang;
      if (probabilistic) {
        PARD_CHECK_MSG(fields.size() == 5,
                       "chaos event " << event_index << " (\"" << entry
                                      << "\"): probabilistic hang is "
                                      << "prob:<module>:hang:<rate_per_s>:<until_s>, got "
                                      << fields.size() << " fields");
        event.rate_per_s = ParseDoubleField(event_index, entry, fields, 3,
                                            "rate (events/second)", 0.0);
        PARD_CHECK_MSG(event.rate_per_s > 0.0,
                       "chaos event " << event_index << " (\"" << entry
                                      << "\"): field 4 (\"" << fields[3]
                                      << "\") must be a positive rate");
        event.window_end = SecToUs(ParseDoubleField(
            event_index, entry, fields, 4, "window end (seconds)", 0.0));
      } else {
        PARD_CHECK_MSG(fields.size() <= 5,
                       "chaos event " << event_index << " (\"" << entry
                                      << "\"): hang takes at most 5 fields "
                                      << "(<at_s>:<module>:hang:<count>[:<dur_s>]), got "
                                      << fields.size());
        event.count = static_cast<int>(ParseLongField(
            event_index, entry, fields, 3, "worker count", 1, 4096));
        if (fields.size() == 5) {
          event.duration = SecToUs(ParseDoubleField(
              event_index, entry, fields, 4, "duration (seconds)", 0.0));
        }
      }
    } else if (kind == "slow") {
      PARD_CHECK_MSG(!probabilistic,
                     "chaos event " << event_index << " (\"" << entry
                                    << "\"): prob is only supported for hang");
      PARD_CHECK_MSG(fields.size() == 5,
                     "chaos event " << event_index << " (\"" << entry
                                    << "\"): slow is "
                                    << "<at_s>:<module>:slow:<factor>:<dur_s>, got "
                                    << fields.size() << " fields");
      event.kind = ChaosKind::kSlow;
      event.factor =
          ParseDoubleField(event_index, entry, fields, 3, "slow factor", 0.0);
      PARD_CHECK_MSG(event.factor > 0.0,
                     "chaos event " << event_index << " (\"" << entry
                                    << "\"): field 4 (\"" << fields[3]
                                    << "\") must be a positive factor");
      event.duration = SecToUs(ParseDoubleField(event_index, entry, fields, 4,
                                                "duration (seconds)", 0.0));
      PARD_CHECK_MSG(event.duration > 0,
                     "chaos event " << event_index << " (\"" << entry
                                    << "\"): field 5 (\"" << fields[4]
                                    << "\") must be a positive duration");
    } else {
      PARD_CHECK_MSG(false, "chaos event "
                                << event_index << " (\"" << entry
                                << "\"): field 3 (\"" << kind
                                << "\") is not hang|slow|stall-sync");
    }
    schedule.events.push_back(event);
  }
  PARD_CHECK_MSG(!schedule.events.empty(),
                 "chaos schedule \"" << text << "\" names no events");
  return schedule;
}

std::vector<ChaosEvent> ExpandChaosSchedule(const ChaosSchedule& schedule,
                                            std::uint64_t seed) {
  std::vector<ChaosEvent> expanded;
  expanded.reserve(schedule.events.size());
  for (const ChaosEvent& event : schedule.events) {
    if (event.kind != ChaosKind::kHang || event.rate_per_s <= 0.0) {
      expanded.push_back(event);
      continue;
    }
    // Poisson process over [at, window_end): exponential interarrivals from a
    // per-module fork of the run seed, so both substrates expand the same
    // (schedule, seed) to the same concrete hang times.
    Rng rng = Rng(seed).Fork("chaos:" + std::to_string(event.module_id));
    const double mean_gap_s = 1.0 / event.rate_per_s;
    double t_s = UsToSec(event.at);
    const double end_s = UsToSec(event.window_end);
    while (true) {
      t_s += rng.Exponential(mean_gap_s);
      if (t_s >= end_s) {
        break;
      }
      ChaosEvent concrete = event;
      concrete.at = SecToUs(t_s);
      concrete.rate_per_s = 0.0;
      concrete.window_end = 0;
      concrete.count = 1;
      expanded.push_back(concrete);
    }
  }
  std::stable_sort(expanded.begin(), expanded.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; });
  return expanded;
}

}  // namespace pard
