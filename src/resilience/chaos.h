// Chaos-injection schedule shared by both substrates (DES simulator and the
// wall-clock serve runtime). Extends the PR 5 `FleetEvent` kill/add grammar
// with failure modes that real fleets exhibit but clean kills don't model:
// workers that hang without dying, transient slowdowns from co-located
// interference, and a control plane whose published snapshots go stale.
//
// Grammar (comma-separated events):
//
//   <at_s>:<module>:hang:<count>[:<dur_s>]   hang `count` workers at t=at_s.
//                                            A hung worker stops mid-batch
//                                            without dying: it holds its
//                                            in-flight batch and stops
//                                            heartbeating. With `dur_s` the
//                                            hang clears by itself; without
//                                            it the worker hangs until the
//                                            watchdog force-fails it (serve)
//                                            or the run's end sweep (sim).
//   <at_s>:<module>:slow:<factor>:<dur_s>    scale the module's exec times by
//                                            `factor` (>1 = slower) for
//                                            `dur_s` seconds, modeling
//                                            interference from co-located
//                                            load.
//   <at_s>:stall-sync:<dur_s>                pause the control-plane sync for
//                                            `dur_s` seconds: no snapshot is
//                                            published, so lock-free readers
//                                            see an increasingly stale view.
//   prob:<module>:hang:<rate_per_s>:<until_s>
//                                            probabilistic variant: expand to
//                                            concrete hang events via a
//                                            Poisson process with the given
//                                            rate over [0, until_s), driven
//                                            by a deterministic fork of the
//                                            run seed so chaos runs replay
//                                            bit-identically.
//
// Parsing is strict: malformed events throw CheckError with a message naming
// the event index, the offending token, and its field position.
#ifndef PARD_RESILIENCE_CHAOS_H_
#define PARD_RESILIENCE_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time_types.h"

namespace pard {

enum class ChaosKind : std::uint8_t {
  kHang = 0,       // worker stops mid-exec without dying
  kSlow = 1,       // transient speed-grade degradation
  kStallSync = 2,  // control-plane sync pauses; snapshots go stale
};

const char* ChaosKindName(ChaosKind kind);

struct ChaosEvent {
  SimTime at = 0;
  int module_id = -1;  // -1 = control-plane scope (kStallSync)
  ChaosKind kind = ChaosKind::kHang;
  int count = 1;          // kHang: workers to hang
  double factor = 1.0;    // kSlow: exec-time multiplier (> 1 = slower)
  Duration duration = 0;  // kSlow/kStallSync window; kHang: 0 = indefinite

  // Probabilistic template (kHang only): when rate_per_s > 0 the event is a
  // Poisson process over [at, window_end) expanded by ExpandChaosSchedule.
  double rate_per_s = 0.0;
  SimTime window_end = 0;
};

struct ChaosSchedule {
  std::vector<ChaosEvent> events;

  bool empty() const { return events.empty(); }
};

// Parses the comma-separated grammar above. Throws CheckError naming the
// event index (1-based), the bad token, and its field position on malformed
// input. The returned schedule may still contain probabilistic templates;
// run it through ExpandChaosSchedule before scheduling.
ChaosSchedule ParseChaosSchedule(std::string_view text);

// Expands probabilistic templates into concrete events using exponential
// interarrivals from Rng(seed).Fork("chaos:<module>") and returns all events
// stably sorted by `at`. Deterministic: both substrates expand the same
// (schedule, seed) to the same concrete event list, so chaos runs replay
// bit-identically.
std::vector<ChaosEvent> ExpandChaosSchedule(const ChaosSchedule& schedule,
                                            std::uint64_t seed);

}  // namespace pard

#endif  // PARD_RESILIENCE_CHAOS_H_
