// Knobs for the chaos-injection + self-healing layer. All defaults are inert:
// with an empty chaos schedule, max_retries = 0, hang_budget = 0, and
// staleness_budget = 0 every resilience code path is a no-op and homogeneous
// no-chaos runs stay bit-identical to the pre-resilience kernel.
#ifndef PARD_RESILIENCE_RESILIENCE_OPTIONS_H_
#define PARD_RESILIENCE_RESILIENCE_OPTIONS_H_

#include "common/time_types.h"
#include "resilience/chaos.h"

namespace pard {

struct ResilienceOptions {
  // Chaos schedule injected alongside the fleet fault schedule. Probabilistic
  // templates are expanded deterministically from the run seed.
  ChaosSchedule chaos;

  // Deadline-aware retry: requests in a killed/hung worker's batch are
  // re-enqueued up to this many times, provided their remaining deadline
  // budget still covers the stage's planned batch duration. 0 disables retry
  // (in-flight work from a failed worker drops as kWorkerFailure).
  int max_retries = 0;

  // Watchdog (serve only): a busy worker whose heartbeat is older than this
  // is force-failed through the BackendFleet fail path and a replacement is
  // provisioned after cold start. 0 disables the watchdog.
  Duration hang_budget = 0;

  // Graceful degradation: when the published ControlSnapshot is older than
  // this, admission falls back to a conservative static drop rule instead of
  // trusting a dead estimator. 0 disables the staleness check.
  Duration staleness_budget = 0;
};

}  // namespace pard

#endif  // PARD_RESILIENCE_RESILIENCE_OPTIONS_H_
