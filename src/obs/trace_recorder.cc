#include "obs/trace_recorder.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {
namespace {

// splitmix64 finalizer: cheap, well-mixed, and stable across platforms —
// the sampling decision must not depend on std:: hashing implementation
// details or run-to-run state.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* EventName(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kAdmit:
      return "admit";
    case TraceEventKind::kQueueSpan:
      return "queue";
    case TraceEventKind::kExecSpan:
      return "exec";
    case TraceEventKind::kBatchExec:
      return "batch";
    case TraceEventKind::kSteal:
      return "steal";
    case TraceEventKind::kFate:
      // Keep in sync with runtime/request.h RequestFate ordering.
      switch (ev.arg0) {
        case 1:
          return "fate:completed";
        case 2:
          return "fate:late";
        case 3:
          return "fate:dropped";
        default:
          return "fate:in_flight";
      }
    case TraceEventKind::kEpochSync:
      return "sync_epoch";
    case TraceEventKind::kFleet:
      return ev.arg0 == 0 ? "fleet:kill" : "fleet:add";
    case TraceEventKind::kRetry:
      return "retry";
    case TraceEventKind::kChaos:
      // Keep in sync with resilience/chaos.h ChaosKind ordering.
      switch (ev.arg0) {
        case 0:
          return "chaos:hang";
        case 1:
          return "chaos:slow";
        case 2:
          return "chaos:stall_sync";
        default:
          return "chaos";
      }
    case TraceEventKind::kWatchdog:
      return "watchdog:kill";
    case TraceEventKind::kControlRefresh:
      return "control_refresh";
  }
  return "event";
}

bool IsSpan(TraceEventKind kind) {
  return kind == TraceEventKind::kQueueSpan ||
         kind == TraceEventKind::kExecSpan ||
         kind == TraceEventKind::kBatchExec ||
         kind == TraceEventKind::kControlRefresh;
}

// Exported pid for control-plane / fleet events that belong to no module.
constexpr int kControlPid = 1000000;

}  // namespace

TraceShard::TraceShard(int index, std::size_t capacity_pow2)
    : index_(index), mask_(capacity_pow2 - 1), ring_(capacity_pow2) {
  PARD_CHECK_MSG((capacity_pow2 & mask_) == 0 && capacity_pow2 >= 2,
                 "trace ring capacity must be a power of two, got "
                     << capacity_pow2);
}

void TraceShard::Push(const TraceEvent& ev) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail > mask_) {  // full: drop-newest, account for it
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring_[head & mask_] = ev;
  head_.store(head + 1, std::memory_order_release);
}

std::size_t TraceShard::Drain(std::vector<TraceEvent>* out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t n = static_cast<std::size_t>(head - tail);
  out->reserve(out->size() + n);
  for (; tail != head; ++tail) {
    out->push_back(ring_[tail & mask_]);
  }
  tail_.store(tail, std::memory_order_release);
  return n;
}

TraceRecorder::TraceRecorder(const Options& options)
    : options_(options),
      threshold_(options.sample_rate >= 1.0
                     ? ~0ull
                     : (options.sample_rate <= 0.0
                            ? 0ull
                            : static_cast<std::uint64_t>(
                                  options.sample_rate *
                                  static_cast<double>(~0ull)))),
      id_([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()) {
  PARD_CHECK_MSG(
      options.ring_capacity >= 2 &&
          (options.ring_capacity & (options.ring_capacity - 1)) == 0,
      "trace ring capacity must be a power of two >= 2, got "
          << options.ring_capacity);
}

bool TraceRecorder::Sampled(std::uint64_t request_id) const {
  if (threshold_ == ~0ull) return true;
  if (threshold_ == 0ull) return false;
  return Mix64(request_id ^ options_.seed) < threshold_;
}

TraceShard* TraceRecorder::ThisThreadShard() {
  thread_local std::uint64_t slot_owner = 0;  // No recorder has id 0.
  thread_local TraceShard* slot = nullptr;
  if (slot_owner != id_) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<TraceShard>(
        static_cast<int>(shards_.size()), options_.ring_capacity));
    slot = shards_.back().get();
    slot_owner = id_;
  }
  return slot;
}

std::uint64_t TraceRecorder::total_dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->dropped_events();
  return total;
}

std::size_t TraceRecorder::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::string TraceRecorder::ChromeTraceJson() {
  struct Tagged {
    TraceEvent ev;
    int tid;
  };
  std::vector<Tagged> events;
  std::uint64_t dropped = 0;
  int max_module = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      std::vector<TraceEvent> drained;
      shard->Drain(&drained);
      dropped += shard->dropped_events();
      for (const TraceEvent& ev : drained) {
        events.push_back({ev, shard->index()});
        max_module = std::max(max_module, static_cast<int>(ev.module));
      }
    }
  }
  // Stable sort: single-producer (simulator) traces keep emission order for
  // equal timestamps, so export is bit-deterministic per seed.
  std::stable_sort(events.begin(), events.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.ev.ts < b.ev.ts;
                   });

  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += StrFormat("%llu", static_cast<unsigned long long>(dropped));
  out += StrFormat(",\"shards\":%d},\"traceEvents\":[\n",
                   static_cast<int>(shard_count()));
  bool first = true;
  for (int m = 0; m <= max_module; ++m) {
    out += StrFormat(
        "%s{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{"
        "\"name\":\"module %d\"}}",
        first ? "" : ",\n", m, m);
    first = false;
  }
  out += StrFormat(
      "%s{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{"
      "\"name\":\"control-plane\"}}",
      first ? "" : ",\n", kControlPid);
  first = false;
  for (const Tagged& t : events) {
    const TraceEvent& ev = t.ev;
    const int pid = ev.module >= 0 ? ev.module : kControlPid;
    if (IsSpan(ev.kind)) {
      out += StrFormat(
          ",\n{\"ph\":\"X\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,"
          "\"ts\":%lld,\"dur\":%lld,\"args\":{\"req\":%llu,\"arg0\":%lld}}",
          EventName(ev), pid, t.tid, static_cast<long long>(ev.ts),
          static_cast<long long>(ev.dur),
          static_cast<unsigned long long>(ev.request_id),
          static_cast<long long>(ev.arg0));
    } else if (ev.kind == TraceEventKind::kFate) {
      out += StrFormat(
          ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"pid\":%d,"
          "\"tid\":%d,\"ts\":%lld,\"args\":{\"req\":%llu,\"reason\":\"%s\"}}",
          EventName(ev), pid, t.tid, static_cast<long long>(ev.ts),
          static_cast<unsigned long long>(ev.request_id),
          DropReasonName(static_cast<DropReason>(ev.arg1)));
    } else {
      out += StrFormat(
          ",\n{\"ph\":\"i\",\"s\":\"t\",\"name\":\"%s\",\"pid\":%d,"
          "\"tid\":%d,\"ts\":%lld,\"args\":{\"req\":%llu,\"arg0\":%lld,"
          "\"arg1\":%lld}}",
          EventName(ev), pid, t.tid, static_cast<long long>(ev.ts),
          static_cast<unsigned long long>(ev.request_id),
          static_cast<long long>(ev.arg0), static_cast<long long>(ev.arg1));
    }
  }
  out += "\n]}\n";
  return out;
}

void TraceRecorder::WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  PARD_CHECK_MSG(out.good(), "cannot open trace output file: " << path);
  out << ChromeTraceJson();
  PARD_CHECK_MSG(out.good(), "failed writing trace output file: " << path);
}

}  // namespace pard
