// Live metrics: striped counters, gauges and mergeable atomic histograms
// behind a name-keyed registry, periodically sampled into a time series and
// exported as JSON (`pardsim --metrics-out`).
//
// Concurrency contract
// --------------------
//   * Update paths (Counter::Add, Gauge::Set/Add, AtomicHistogram::Observe)
//     are lock-free: relaxed atomics only. Counters stripe across
//     cache-line-padded cells indexed by a thread-local stripe id, so
//     concurrent workers never contend on one line. Relaxed ordering is
//     sufficient — metrics are monotone tallies read after a quiesce or by
//     an asynchronous sampler that tolerates a small skew.
//   * Registration (GetCounter/GetGauge/GetHistogram) takes the registry
//     mutex and returns a pointer that stays valid for the registry's
//     lifetime; hot paths resolve instruments once at construction and
//     never touch the mutex again. The mutex is a leaf (unranked in
//     common/lock_order.h): it is never held while calling other code.
//   * Sample() takes the registry mutex, reads every instrument (a racy but
//     coherent snapshot), and appends a row to the in-memory series. In
//     serve mode a dedicated sampler thread drives it on the virtual clock
//     (`--metrics-interval-s`); in sim mode PipelineRuntime calls it at
//     sync ticks, so the series is a deterministic function of the seed.
//   * A null MetricsRegistry* in RuntimeOptions disables everything; the
//     instrumentation sites reduce to one pointer test.
#ifndef PARD_OBS_METRICS_H_
#define PARD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "jsonio/json.h"

namespace pard {

// Monotone counter striped across padded cells. Add() is wait-free; Value()
// sums the stripes (approximate while writers are live, exact after quiesce).
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void Add(std::int64_t delta = 1) {
    cells_[StripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  static std::size_t StripeIndex();
  Cell cells_[kStripes];
};

// Last-write-wins gauge (queue depth, snapshot epoch, ...). Add() supports
// up/down accounting from multiple threads.
class Gauge {
 public:
  void Set(std::int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-layout linear histogram with underflow/overflow buckets. Observe()
// is lock-free; Merge() requires an identical [lo, hi) x bucket layout and
// throws CheckError on mismatch (pinned by tests/obs_test.cc).
class AtomicHistogram {
 public:
  AtomicHistogram(double lo, double hi, std::size_t buckets);

  void Observe(double value);
  void Merge(const AtomicHistogram& other);

  std::int64_t Count() const;        // includes under/overflow
  std::int64_t UnderflowCount() const {
    return under_.load(std::memory_order_relaxed);
  }
  std::int64_t OverflowCount() const {
    return over_.load(std::memory_order_relaxed);
  }
  std::int64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bucket_count() const { return buckets_.size(); }

  JsonValue ToJson() const;

 private:
  const double lo_;
  const double hi_;
  const double inv_width_;
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> under_{0};
  std::atomic<std::int64_t> over_{0};
};

class MetricsRegistry {
 public:
  // Instruments are created on first use and live as long as the registry.
  // Requesting an existing name returns the same pointer; requesting an
  // existing histogram with a different layout throws CheckError.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  AtomicHistogram* GetHistogram(const std::string& name, double lo, double hi,
                                std::size_t buckets);

  // Snapshot every instrument into a timestamped series row.
  void Sample(SimTime now);

  std::size_t sample_count() const;

  // {"totals": {...}, "gauges": {...}, "histograms": {...},
  //  "samples": [{"t_s": ..., "counters": {...}, "gauges": {...}}, ...]}
  JsonValue ToJson() const;
  void WriteJson(const std::string& path) const;

 private:
  struct SampleRow {
    SimTime t = 0;
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<AtomicHistogram>> histograms_;
  std::vector<SampleRow> samples_;
};

}  // namespace pard

#endif  // PARD_OBS_METRICS_H_
