// Per-request lifecycle tracing with lock-free per-thread ring buffers,
// exported as Chrome trace-event JSON (load the file at https://ui.perfetto.dev
// or chrome://tracing).
//
// Concurrency contract
// --------------------
//   * Each emitting thread owns exactly one TraceShard: a bounded SPSC ring.
//     The owning thread is the only producer (relaxed stores + one release
//     store of `head_` per event); the exporting thread is the only consumer
//     and only runs after producers have quiesced (RunTrace returned /
//     Shutdown joined) or via the producer itself in the single-threaded
//     simulator. No locks, no CAS loops, no allocation on the emit path.
//   * Shard registration (`ThisThreadShard`) takes `mu_` once per thread;
//     after that the shard pointer is cached in a thread_local slot, so the
//     steady-state emit path never touches the mutex. The recorder is
//     unranked in the lock-rank hierarchy (common/lock_order.h): `mu_` is a
//     leaf held only around vector push_back, never while calling out.
//   * When a ring fills, the *newest* events are discarded and counted in
//     `dropped_events()`; the export embeds the total so a truncated trace
//     is self-describing rather than silently misleading.
//   * Sampling is deterministic: a request is traced iff
//     splitmix64(request_id ^ seed) < rate * 2^64. Same seed + same rate
//     => the same request set is traced, so a simulator run exports a
//     bit-identical trace on every replay (pinned by tests/obs_test.cc).
//   * With a null TraceRecorder* in RuntimeOptions every instrumentation
//     site is a single pointer test — goldens stay bit-identical.
#ifndef PARD_OBS_TRACE_RECORDER_H_
#define PARD_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "obs/drop_reason.h"

namespace pard {

enum class TraceEventKind : std::uint8_t {
  kAdmit = 0,      // instant: request admitted at a module's front door
  kQueueSpan = 1,  // span: enqueue -> batch entry (time spent queued)
  kExecSpan = 2,   // span: exec_start -> exec_end for one request
  kBatchExec = 3,  // span: one batch execution; arg0 = batch size
  kSteal = 4,      // instant: request stolen into a batch; arg0 = victim shard
  kFate = 5,       // instant: terminal fate; arg0 = RequestFate, arg1 = DropReason
  kEpochSync = 6,  // instant: control-plane snapshot published; arg0 = epoch
  kFleet = 7,      // instant: fleet event; arg0 = 0 kill / 1 add, arg1 = count
  kRetry = 8,      // instant: request re-enqueued after worker failure; arg0 = attempt
  kChaos = 9,      // instant: chaos event applied; arg0 = ChaosKind, arg1 = count|duration
  kWatchdog = 10,  // instant: watchdog force-failed hung workers; arg0 = count
  kControlRefresh = 11,  // span: control Sync incl. estimator refresh; dur =
                         // wall us, arg0 = entries refreshed, arg1 = skipped
};

// POD event record. `ts`/`dur` are virtual-time microseconds (Chrome trace
// ts unit is also microseconds, so export is a straight copy).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAdmit;
  std::int32_t module = -1;     // pid in the exported trace; -1 = control plane
  std::uint64_t request_id = 0;
  SimTime ts = 0;
  Duration dur = 0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

class TraceShard {
 public:
  TraceShard(int index, std::size_t capacity_pow2);

  // Producer side; owning thread only. Drop-newest on full.
  void Push(const TraceEvent& ev);

  // Consumer side; call only after the producer has quiesced.
  std::size_t Drain(std::vector<TraceEvent>* out);

  int index() const { return index_; }
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  const int index_;
  const std::size_t mask_;
  std::vector<TraceEvent> ring_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next write slot
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next read slot
  std::atomic<std::uint64_t> dropped_{0};
};

class TraceRecorder {
 public:
  struct Options {
    double sample_rate = 1.0;        // fraction of requests traced, [0, 1]
    std::uint64_t seed = 1;          // sampling hash seed
    std::size_t ring_capacity = 1u << 14;  // events per shard, power of two
  };

  explicit TraceRecorder(const Options& options);

  // Deterministic per-request sampling decision. Non-request events (epoch,
  // fleet, batch) are always recorded.
  bool Sampled(std::uint64_t request_id) const;

  // Emit into the calling thread's shard (registered lazily on first use).
  void Emit(const TraceEvent& ev) { ThisThreadShard()->Push(ev); }

  // Convenience: emit only if the request passes the sampling filter.
  void EmitSampled(const TraceEvent& ev) {
    if (Sampled(ev.request_id)) Emit(ev);
  }

  // Returns the calling thread's shard, registering one on first use. The
  // slot is keyed by a process-unique recorder id (NOT the address — a new
  // recorder can reuse a destroyed one's allocation), so a thread that
  // outlives one recorder and touches another re-registers instead of
  // writing freed memory.
  TraceShard* ThisThreadShard();

  // Consumer-side export; producers must have quiesced. Events are stably
  // sorted by timestamp (emission order breaks ties), so a single-producer
  // simulator run exports deterministically.
  std::string ChromeTraceJson();
  void WriteChromeTrace(const std::string& path);

  std::uint64_t total_dropped_events() const;
  std::size_t shard_count() const;

 private:
  const Options options_;
  const std::uint64_t threshold_;  // sample iff hash < threshold_
  const std::uint64_t id_;         // process-unique; keys thread_local slots
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<TraceShard>> shards_;
};

}  // namespace pard

#endif  // PARD_OBS_TRACE_RECORDER_H_
