#include "obs/metrics.h"

#include <cmath>
#include <fstream>

#include "common/check.h"

namespace pard {

std::size_t Counter::StripeIndex() {
  // Distinct threads land on distinct stripes round-robin; the id is cached
  // per thread so the hot path is a thread_local load and a masked add.
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

AtomicHistogram::AtomicHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      inv_width_(static_cast<double>(buckets) / (hi - lo)),
      buckets_(buckets) {
  PARD_CHECK_MSG(buckets >= 1 && hi > lo,
                 "histogram needs hi > lo and >= 1 bucket");
}

void AtomicHistogram::Observe(double value) {
  if (!(value >= lo_)) {  // also catches NaN
    under_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (value >= hi_) {
    over_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto idx = static_cast<std::size_t>((value - lo_) * inv_width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;  // fp edge
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

void AtomicHistogram::Merge(const AtomicHistogram& other) {
  PARD_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                     buckets_.size() == other.buckets_.size(),
                 "cannot merge histograms with different layouts: ["
                     << lo_ << "," << hi_ << ")x" << buckets_.size()
                     << " vs [" << other.lo_ << "," << other.hi_ << ")x"
                     << other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  under_.fetch_add(other.under_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  over_.fetch_add(other.over_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

std::int64_t AtomicHistogram::Count() const {
  std::int64_t total = under_.load(std::memory_order_relaxed) +
                       over_.load(std::memory_order_relaxed);
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

JsonValue AtomicHistogram::ToJson() const {
  JsonObject obj;
  obj["lo"] = JsonValue(lo_);
  obj["hi"] = JsonValue(hi_);
  obj["underflow"] = JsonValue(static_cast<double>(UnderflowCount()));
  obj["overflow"] = JsonValue(static_cast<double>(OverflowCount()));
  JsonArray counts;
  counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    counts.emplace_back(
        static_cast<double>(b.load(std::memory_order_relaxed)));
  }
  obj["counts"] = JsonValue(std::move(counts));
  return JsonValue(std::move(obj));
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

AtomicHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                               double lo, double hi,
                                               std::size_t buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<AtomicHistogram>(lo, hi, buckets);
  } else {
    PARD_CHECK_MSG(slot->lo() == lo && slot->hi() == hi &&
                       slot->bucket_count() == buckets,
                   "histogram '" << name
                                 << "' re-registered with a different layout");
  }
  return slot.get();
}

void MetricsRegistry::Sample(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  SampleRow row;
  row.t = now;
  row.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    row.counters.emplace_back(name, counter->Value());
  }
  row.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    row.gauges.emplace_back(name, gauge->Value());
  }
  samples_.push_back(std::move(row));
}

std::size_t MetricsRegistry::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

JsonValue MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonObject root;
  JsonObject totals;
  for (const auto& [name, counter] : counters_) {
    totals[name] = JsonValue(static_cast<double>(counter->Value()));
  }
  root["totals"] = JsonValue(std::move(totals));
  JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = JsonValue(static_cast<double>(gauge->Value()));
  }
  root["gauges"] = JsonValue(std::move(gauges));
  JsonObject hists;
  for (const auto& [name, hist] : histograms_) {
    hists[name] = hist->ToJson();
  }
  root["histograms"] = JsonValue(std::move(hists));
  JsonArray samples;
  samples.reserve(samples_.size());
  for (const SampleRow& row : samples_) {
    JsonObject sample;
    sample["t_s"] = JsonValue(UsToSec(row.t));
    JsonObject counters;
    for (const auto& [name, value] : row.counters) {
      counters[name] = JsonValue(static_cast<double>(value));
    }
    sample["counters"] = JsonValue(std::move(counters));
    JsonObject gauges_row;
    for (const auto& [name, value] : row.gauges) {
      gauges_row[name] = JsonValue(static_cast<double>(value));
    }
    sample["gauges"] = JsonValue(std::move(gauges_row));
    samples.emplace_back(std::move(sample));
  }
  root["samples"] = JsonValue(std::move(samples));
  return JsonValue(std::move(root));
}

void MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PARD_CHECK_MSG(out.good(), "cannot open metrics output file: " << path);
  out << ToJson().Dump(2) << "\n";
  PARD_CHECK_MSG(out.good(), "failed writing metrics output file: " << path);
}

}  // namespace pard
