// Drop-reason attribution.
//
// Every request that ends in RequestFate::kDropped or kLate carries exactly
// one DropReason naming the mechanism that killed it — without this the
// metrics can say *that* goodput was lost but never *why*. Reasons are
// assigned at the drop site (ModuleRuntime/Worker in the simulator,
// ServeRuntime/ServeModule in the serving runtime) and are conserved: the
// per-reason counts sum exactly to the run's total drop count (pinned by
// tests/serve_test.cc and tests/obs_test.cc).
//
// Glossary (see README "Observability" for the operator-facing version):
//   kProactiveAdmission — the enqueue-time admission check (the paper's
//       proactive drop) rejected the request before it entered any queue.
//   kBrokerCandidate    — the Request Broker predicate rejected the request
//       as a batch candidate (at batch formation, or at the serve runtime's
//       ingress front-end where delivery doubles as the hypothetical batch
//       start).
//   kPurgeExpired       — the deadline passed while the request sat in a
//       queue; it was evicted by the purge-expired sweep.
//   kDrainAbandoned     — the run's drain deadline hit with the request
//       still in flight (backlog abandoned at shutdown).
//   kFaultKilled        — no dispatchable worker existed at delivery time
//       (all cold / draining / failed), so the request had nowhere to go.
//   kSloLate            — the request finished execution but after its
//       deadline (completed-but-late counts as dropped, §5.1).
//   kWorkerFailure      — in-flight loss: the worker executing (or queueing)
//       the request was killed or hung, and the request could not be retried
//       (retries disabled, no surviving worker, or insufficient remaining
//       deadline budget).
//   kRetryExhausted     — the request was re-enqueued after worker failures
//       until it ran out of retry attempts (ResilienceOptions::max_retries).
//   kTenantShed         — the tenant governor shed the request at ingress to
//       protect weighted global goodput: the fleet is overloaded and this
//       tenant's weight puts it below the shed line (never below its
//       admit_floor — see core/tenant_governor.h). Only occurs in
//       multi-tenant runs.
#ifndef PARD_OBS_DROP_REASON_H_
#define PARD_OBS_DROP_REASON_H_

#include <cstdint>

namespace pard {

enum class DropReason : std::uint8_t {
  kNone = 0,  // Not dropped (or dropped without attribution — a bug).
  kProactiveAdmission = 1,
  kBrokerCandidate = 2,
  kPurgeExpired = 3,
  kDrainAbandoned = 4,
  kFaultKilled = 5,
  kSloLate = 6,
  kWorkerFailure = 7,
  kRetryExhausted = 8,
  kTenantShed = 9,
};

inline constexpr int kNumDropReasons = 10;  // Including kNone.

// Stable snake_case identifier, used as the metrics/report JSON key and the
// trace-event argument.
inline const char* DropReasonName(DropReason reason) {
  switch (reason) {
    case DropReason::kNone:
      return "none";
    case DropReason::kProactiveAdmission:
      return "proactive_admission";
    case DropReason::kBrokerCandidate:
      return "broker_candidate";
    case DropReason::kPurgeExpired:
      return "purge_expired";
    case DropReason::kDrainAbandoned:
      return "drain_abandoned";
    case DropReason::kFaultKilled:
      return "fault_killed";
    case DropReason::kSloLate:
      return "slo_late";
    case DropReason::kWorkerFailure:
      return "worker_failure";
    case DropReason::kRetryExhausted:
      return "retry_exhausted";
    case DropReason::kTenantShed:
      return "tenant_shed";
  }
  return "unknown";
}

}  // namespace pard

#endif  // PARD_OBS_DROP_REASON_H_
