// Deterministic random number generation.
//
// Every source of randomness in the simulator flows from a single master seed
// through named Fork()s, so experiments are reproducible bit-for-bit and two
// policies evaluated on "the same workload" really see identical arrivals.
//
// The generator is xoshiro256++ seeded via SplitMix64 — fast, high quality,
// and trivially embeddable (no <random> engine state-size or portability
// surprises across standard libraries).
#ifndef PARD_COMMON_RNG_H_
#define PARD_COMMON_RNG_H_

#include <cstdint>
#include <string_view>

namespace pard {

class Rng {
 public:
  // Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed);

  // Derives an independent child stream. The child depends on both this
  // generator's seed and `tag`, not on how many numbers were drawn, so
  // adding a consumer never perturbs unrelated streams.
  Rng Fork(std::string_view tag) const;

  // Raw 64 uniform bits.
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box–Muller (no cached spare; stateless per call pair).
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)) where mu/sigma are in log space.
  double LogNormal(double mu, double sigma);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  std::int64_t Poisson(double mean);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace pard

#endif  // PARD_COMMON_RNG_H_
