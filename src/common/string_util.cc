#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pard {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
    --e;
  }
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace pard
