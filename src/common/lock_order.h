// Debug-build lock-order enforcement for the serving runtime.
//
// The serve-side locks form a strict hierarchy; a thread may only acquire a
// lock whose rank is STRICTLY GREATER than every lock it already holds:
//
//   kModule (1)          ServeModule::mu_ — roster + worker sleep/wake.
//   kQueueShard (2)      ServeModule per-shard queue/monitor mutexes.
//   kAdmissionShard (3)  ControlPlane striped admission-RNG mutexes.
//   kControl (4)         ControlPlane::mu_ — sync + locked fallback path.
//   kFate (5)            ServeRuntime striped request-fate mutexes.
//
// (BackendFleet's internal mutex is a leaf: it never acquires another lock,
// so it is deliberately unranked.) Instantiate a LockOrderGuard immediately
// BEFORE acquiring the mutex it describes, so a violation throws while the
// offending thread still holds only the lower-ranked locks — an ordering
// bug surfaces as a CheckError in the debug/asan/tsan presets instead of a
// silent deadlock. Release builds compile the guard away entirely.
#ifndef PARD_COMMON_LOCK_ORDER_H_
#define PARD_COMMON_LOCK_ORDER_H_

#include "common/check.h"

namespace pard {

enum class LockRank : int {
  kModule = 1,
  kQueueShard = 2,
  kAdmissionShard = 3,
  kControl = 4,
  kFate = 5,
};

#ifndef NDEBUG

namespace lock_order_internal {
// Per-thread stack of held ranks. Depth 8 is far above the deepest legal
// chain (module -> shard -> control is 3).
inline constexpr int kMaxHeld = 8;
struct HeldRanks {
  int ranks[kMaxHeld];
  int depth = 0;
};
inline HeldRanks& Held() {
  thread_local HeldRanks held;
  return held;
}
}  // namespace lock_order_internal

class LockOrderGuard {
 public:
  explicit LockOrderGuard(LockRank rank) {
    auto& held = lock_order_internal::Held();
    PARD_CHECK_MSG(held.depth < lock_order_internal::kMaxHeld,
                   "lock-order stack overflow (rank " << static_cast<int>(rank) << ")");
    if (held.depth > 0) {
      const int top = held.ranks[held.depth - 1];
      PARD_CHECK_MSG(static_cast<int>(rank) > top,
                     "lock-order violation: acquiring rank "
                         << static_cast<int>(rank) << " while holding rank " << top);
    }
    held.ranks[held.depth++] = static_cast<int>(rank);
  }

  ~LockOrderGuard() {
    auto& held = lock_order_internal::Held();
    --held.depth;
  }

  LockOrderGuard(const LockOrderGuard&) = delete;
  LockOrderGuard& operator=(const LockOrderGuard&) = delete;
};

#else  // NDEBUG

class LockOrderGuard {
 public:
  explicit LockOrderGuard(LockRank rank) { (void)rank; }
};

#endif  // NDEBUG

}  // namespace pard

#endif  // PARD_COMMON_LOCK_ORDER_H_
