// Lightweight runtime assertion macros.
//
// PARD_CHECK is always on (simulation correctness depends on invariants that
// are cheap relative to event processing); failures throw so tests can assert
// on them and tools get a stack-unwound error message instead of an abort.
#ifndef PARD_COMMON_CHECK_H_
#define PARD_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace pard {

// Thrown when a PARD_CHECK fails or an API contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace pard

#define PARD_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::pard::detail::CheckFail(#expr, __FILE__, __LINE__, "");     \
    }                                                               \
  } while (0)

#define PARD_CHECK_MSG(expr, msg)                                   \
  do {                                                              \
    if (!(expr)) {                                                  \
      std::ostringstream pard_check_os_;                            \
      pard_check_os_ << msg;                                        \
      ::pard::detail::CheckFail(#expr, __FILE__, __LINE__,          \
                                pard_check_os_.str());              \
    }                                                               \
  } while (0)

#endif  // PARD_COMMON_CHECK_H_
