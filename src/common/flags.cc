#include "common/flags.h"

#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {

void FlagSet::AddString(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  f.default_text = default_value;
  flags_[name] = std::move(f);
}

void FlagSet::AddDouble(const std::string& name, double default_value, const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  f.default_text = StrFormat("%g", default_value);
  flags_[name] = std::move(f);
}

void FlagSet::AddInt(const std::string& name, std::int64_t default_value,
                     const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  f.default_text = std::to_string(default_value);
  flags_[name] = std::move(f);
}

void FlagSet::AddBool(const std::string& name, bool default_value, const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  f.default_text = default_value ? "true" : "false";
  flags_[name] = std::move(f);
}

void FlagSet::Set(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  PARD_CHECK_MSG(it != flags_.end(), "unknown flag: --" << name);
  Flag& f = it->second;
  switch (f.type) {
    case Type::kString:
      f.string_value = value;
      break;
    case Type::kDouble:
      try {
        std::size_t used = 0;
        f.double_value = std::stod(value, &used);
        PARD_CHECK_MSG(used == value.size(), "bad double for --" << name << ": " << value);
      } catch (const std::logic_error&) {
        PARD_CHECK_MSG(false, "bad double for --" << name << ": " << value);
      }
      break;
    case Type::kInt:
      try {
        std::size_t used = 0;
        f.int_value = std::stoll(value, &used);
        PARD_CHECK_MSG(used == value.size(), "bad integer for --" << name << ": " << value);
      } catch (const std::logic_error&) {
        PARD_CHECK_MSG(false, "bad integer for --" << name << ": " << value);
      }
      break;
    case Type::kBool: {
      const std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        f.bool_value = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        f.bool_value = false;
      } else {
        PARD_CHECK_MSG(false, "bad bool for --" << name << ": " << value);
      }
      break;
    }
  }
}

void FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      Set(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    const auto it = flags_.find(body);
    PARD_CHECK_MSG(it != flags_.end(), "unknown flag: --" << body);
    if (it->second.type == Type::kBool) {
      // Bare --flag means true unless the next token is an explicit value.
      if (i + 1 < argc && (std::string(argv[i + 1]) == "true" ||
                           std::string(argv[i + 1]) == "false")) {
        Set(body, argv[++i]);
      } else {
        it->second.bool_value = true;
      }
    } else {
      PARD_CHECK_MSG(i + 1 < argc, "flag --" << body << " expects a value");
      Set(body, argv[++i]);
    }
  }
}

const FlagSet::Flag& FlagSet::Get(const std::string& name, Type type) const {
  const auto it = flags_.find(name);
  PARD_CHECK_MSG(it != flags_.end(), "flag not registered: --" << name);
  PARD_CHECK_MSG(it->second.type == type, "flag type mismatch: --" << name);
  return it->second;
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Get(name, Type::kString).string_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  return Get(name, Type::kDouble).double_value;
}

std::int64_t FlagSet::GetInt(const std::string& name) const {
  return Get(name, Type::kInt).int_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  return Get(name, Type::kBool).bool_value;
}

std::string FlagSet::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_text << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace pard
