#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace pard {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a over the tag bytes, used to derive fork seeds.
std::uint64_t HashTag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::Fork(std::string_view tag) const {
  return Rng(seed_ ^ Rotl(HashTag(tag), 17));
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  PARD_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  PARD_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::Exponential(double mean) {
  PARD_CHECK(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

std::int64_t Rng::Poisson(double mean) {
  PARD_CHECK(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation, adequate for arrival-count sampling.
    const double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<std::int64_t>(std::llround(v));
  }
  const double l = std::exp(-mean);
  std::int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

}  // namespace pard
