// Small string helpers shared by the JSON layer, CLI benches and reports.
#ifndef PARD_COMMON_STRING_UTIL_H_
#define PARD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pard {

// Splits on a single-character delimiter. Empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pard

#endif  // PARD_COMMON_STRING_UTIL_H_
