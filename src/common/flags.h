// Tiny command-line flag parser for the pardsim tool and benches.
//
// Supports --name=value and --name value forms, plus bare --name for bools.
// Unknown flags are an error; positional arguments are collected in order.
#ifndef PARD_COMMON_FLAGS_H_
#define PARD_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pard {

class FlagSet {
 public:
  // Registers flags with defaults and help text. Registration must precede
  // Parse().
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddDouble(const std::string& name, double default_value, const std::string& help);
  void AddInt(const std::string& name, std::int64_t default_value, const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);

  // Parses argv (excluding argv[0]). Throws CheckError on unknown flags or
  // malformed values. "--help" sets HelpRequested() instead of throwing.
  void Parse(int argc, const char* const* argv);

  const std::string& GetString(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool HelpRequested() const { return help_requested_; }
  // Renders the flag table for --help.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kDouble, kInt, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string string_value;
    double double_value = 0.0;
    std::int64_t int_value = 0;
    bool bool_value = false;
    std::string default_text;
  };

  const Flag& Get(const std::string& name, Type type) const;
  void Set(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace pard

#endif  // PARD_COMMON_FLAGS_H_
