// Virtual time representation for the PARD simulator.
//
// All simulated time is carried as signed 64-bit microsecond ticks since the
// start of the simulation. Microseconds give sub-millisecond precision for
// batch-wait accounting (the paper reasons about waits in the 0..d_k range
// where d_k is tens of milliseconds) while keeping arithmetic exact.
#ifndef PARD_COMMON_TIME_TYPES_H_
#define PARD_COMMON_TIME_TYPES_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace pard {

// A point in virtual time, in microseconds since simulation start.
using SimTime = std::int64_t;
// A span of virtual time, in microseconds.
using Duration = std::int64_t;

inline constexpr SimTime kUsPerMs = 1000;
inline constexpr SimTime kUsPerSec = 1000 * 1000;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

// Conversions. The *ToUs functions round to the nearest tick.
inline Duration MsToUs(double ms) { return static_cast<Duration>(std::llround(ms * 1e3)); }
inline Duration SecToUs(double sec) { return static_cast<Duration>(std::llround(sec * 1e6)); }
inline double UsToMs(Duration us) { return static_cast<double>(us) / 1e3; }
inline double UsToSec(Duration us) { return static_cast<double>(us) / 1e6; }

}  // namespace pard

#endif  // PARD_COMMON_TIME_TYPES_H_
