// Small-buffer-optimized, move-only callback for the event kernel.
//
// std::function heap-allocates any capture beyond ~2 pointers, which makes
// every scheduled event a malloc/free pair. The runtime's event lambdas
// capture at most a shared_ptr + a couple of scalars (32 bytes), so a fixed
// 48-byte inline buffer holds every in-tree callable with zero allocations;
// larger callables transparently fall back to the heap (correct, just not
// allocation-free — the counting-allocator test pins the in-tree set).
#ifndef PARD_SIM_INLINE_CALLBACK_H_
#define PARD_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pard {

class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::ops;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(std::move(other)); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<D*>(p))(); }
    static void Relocate(void* dst, void* src) {
      D* s = static_cast<D*>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void Destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static void Invoke(void* p) { (**static_cast<D**>(p))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<D**>(dst) = *static_cast<D**>(src);
    }
    static void Destroy(void* p) { delete *static_cast<D**>(p); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace pard

#endif  // PARD_SIM_INLINE_CALLBACK_H_
