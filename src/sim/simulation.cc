#include "sim/simulation.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pard {

// Level = index of the highest byte in which t differs from `reference`
// (which is always <= t). Equal times live at level 0: the bottom level
// buckets single microsecond ticks.
int Simulation::LevelOf(SimTime t, SimTime reference) {
  const std::uint64_t diff =
      static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(reference);
  if (diff == 0) {
    return 0;
  }
#if defined(__GNUC__) || defined(__clang__)
  return (63 - __builtin_clzll(diff)) >> 3;
#else
  int bit = 0;
  for (std::uint64_t d = diff; d >>= 1;) {
    ++bit;
  }
  return bit >> 3;
#endif
}

void Simulation::LinkInto(std::uint32_t index) {
  Slot& slot = slots_[index];
  const int level = LevelOf(slot.t, now_);
  const std::uint32_t s =
      static_cast<std::uint32_t>(slot.t >> (kLevelBits * level)) & (kSlotsPerLevel - 1);
  Bucket& bucket = buckets_[level][s];
  slot.bucket = static_cast<std::uint32_t>(level) * kSlotsPerLevel + s;
  slot.prev = bucket.tail;
  slot.next = kNil;
  if (bucket.tail == kNil) {
    bucket.head = index;
    SetBit(level, s);
  } else {
    slots_[bucket.tail].next = index;
  }
  bucket.tail = index;
}

void Simulation::Unlink(std::uint32_t index) {
  Slot& slot = slots_[index];
  Bucket& bucket = buckets_[slot.bucket / kSlotsPerLevel][slot.bucket % kSlotsPerLevel];
  if (slot.prev == kNil) {
    bucket.head = slot.next;
  } else {
    slots_[slot.prev].next = slot.next;
  }
  if (slot.next == kNil) {
    bucket.tail = slot.prev;
  } else {
    slots_[slot.next].prev = slot.prev;
  }
  if (bucket.head == kNil) {
    ClearBit(static_cast<int>(slot.bucket / kSlotsPerLevel), slot.bucket % kSlotsPerLevel);
  }
}

void Simulation::FreeSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.cb.Reset();
  free_.push_back(index);
  --live_;
}

EventId Simulation::ScheduleAt(SimTime t, Callback cb) {
  PARD_CHECK_MSG(t >= now_, "cannot schedule into the past");
  PARD_CHECK_MSG(static_cast<bool>(cb), "cannot schedule an empty callback");
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    PARD_CHECK_MSG(slots_.size() < kIndexMask, "event slab exhausted");
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint64_t key = (next_seq_++ << kIndexBits) | index;
  Slot& slot = slots_[index];
  slot.key = key;
  slot.t = t;
  slot.live = true;
  slot.cb = std::move(cb);
  LinkInto(index);
  ++live_;
  return key;
}

EventId Simulation::ScheduleAfter(Duration delay, Callback cb) {
  PARD_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulation::Cancel(EventId id) {
  const std::uint32_t index = static_cast<std::uint32_t>(id & kIndexMask);
  if (index >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[index];
  if (!slot.live || slot.key != id) {
    return false;  // Already fired, already cancelled, or a stale id.
  }
  Unlink(index);
  FreeSlot(index);
  return true;
}

std::uint32_t Simulation::LowestBit(int level) const {
  for (std::uint32_t w = 0; w < kSlotsPerLevel / 64; ++w) {
    const std::uint64_t word = bits_[level][w];
    if (word != 0) {
#if defined(__GNUC__) || defined(__clang__)
      return w * 64 + static_cast<std::uint32_t>(__builtin_ctzll(word));
#else
      std::uint32_t b = 0;
      while (((word >> b) & 1) == 0) {
        ++b;
      }
      return w * 64 + b;
#endif
    }
  }
  return kNil;
}

// Re-buckets every event of (level, slot) one or more levels down. The walk
// preserves list order, so equal-time events keep their sequence order.
void Simulation::Cascade(int level, std::uint32_t slot) {
  Bucket& bucket = buckets_[level][slot];
  std::uint32_t index = bucket.head;
  bucket.head = kNil;
  bucket.tail = kNil;
  ClearBit(level, slot);
  while (index != kNil) {
    const std::uint32_t next = slots_[index].next;
    LinkInto(index);
    index = next;
  }
}

std::uint32_t Simulation::AdvanceToNext(SimTime bound) {
  while (live_ > 0) {
    // The global minimum lives in the lowest non-empty level's lowest slot:
    // every event of level l+1 exceeds every event of level l (it differs
    // from now in a strictly higher byte).
    const std::uint32_t s0 = LowestBit(0);
    if (s0 != kNil) {
      // Bottom-level buckets are exact microsecond ticks within the current
      // 256 us window.
      const SimTime tick =
          (now_ & ~static_cast<SimTime>(kSlotsPerLevel - 1)) | static_cast<SimTime>(s0);
      if (tick > bound) {
        return kNil;
      }
      return s0;
    }
    int level = 1;
    std::uint32_t s = kNil;
    for (; level < kLevels; ++level) {
      s = LowestBit(level);
      if (s != kNil) {
        break;
      }
    }
    if (s == kNil) {
      return kNil;  // live_ > 0 but nothing linked: unreachable.
    }
    const int shift = kLevelBits * level;
    std::uint64_t start = static_cast<std::uint64_t>(s) << shift;
    if (shift + kLevelBits < 64) {
      // Keep now_'s prefix above this level (the bucket shares it).
      start |= static_cast<std::uint64_t>(now_) &
               ~((static_cast<std::uint64_t>(1) << (shift + kLevelBits)) - 1);
    }
    const SimTime window_start = static_cast<SimTime>(start);
    if (window_start > bound) {
      return kNil;  // The next event starts beyond the horizon.
    }
    // Enter the bucket's window (the clock may already be inside it) and
    // split it into finer levels; re-scan from the bottom.
    now_ = std::max(now_, window_start);
    Cascade(level, s);
  }
  return kNil;
}

void Simulation::Fire(std::uint32_t tick_slot) {
  Bucket& bucket = buckets_[0][tick_slot];
  const std::uint32_t index = bucket.head;
  Slot& slot = slots_[index];
  now_ = slot.t;
  Unlink(index);
  // Move the callback out and retire the slot before invoking, so the
  // callback can freely schedule (possibly into this very slot) or probe
  // its own id.
  Callback cb = std::move(slot.cb);
  FreeSlot(index);
  ++executed_;
  cb();
}

bool Simulation::Step() {
  const std::uint32_t s0 = AdvanceToNext(kSimTimeMax);
  if (s0 == kNil) {
    return false;
  }
  Fire(s0);
  return true;
}

void Simulation::Run(SimTime until) {
  std::uint32_t s0;
  while ((s0 = AdvanceToNext(until)) != kNil) {
    Fire(s0);
  }
  if (now_ < until && until != kSimTimeMax) {
    now_ = until;
  }
}

}  // namespace pard
