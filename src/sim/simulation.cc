#include "sim/simulation.h"

#include <utility>

#include "common/check.h"

namespace pard {

EventId Simulation::ScheduleAt(SimTime t, Callback cb) {
  PARD_CHECK_MSG(t >= now_, "cannot schedule into the past");
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId Simulation::ScheduleAfter(Duration delay, Callback cb) {
  PARD_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulation::Cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto cancelled_it = cancelled_.find(top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    const auto cb_it = callbacks_.find(top.id);
    PARD_CHECK(cb_it != callbacks_.end());
    Callback cb = std::move(cb_it->second);
    callbacks_.erase(cb_it);
    now_ = top.t;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::Run(SimTime until) {
  while (!heap_.empty()) {
    // Skip leading cancelled entries so the peek below sees a live event.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().t > until) {
      break;
    }
    Step();
  }
  if (now_ < until && until != kSimTimeMax) {
    now_ = until;
  }
}

}  // namespace pard
