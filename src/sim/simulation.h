// Discrete-event simulation kernel.
//
// A single-threaded event loop over virtual time. Events scheduled for the
// same instant fire in scheduling order (monotone sequence number tie-break),
// which makes runs fully deterministic. Cancellation is lazy: a cancelled
// event stays in the heap but is skipped when popped.
#ifndef PARD_SIM_SIMULATION_H_
#define PARD_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time_types.h"

namespace pard {

using EventId = std::uint64_t;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time.
  SimTime Now() const { return now_; }

  // Schedules `cb` at absolute time `t` (must be >= Now()). Returns an id
  // usable with Cancel().
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules `cb` after `delay` (must be >= 0).
  EventId ScheduleAfter(Duration delay, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op and returns false.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or virtual time would exceed
  // `until`. Events exactly at `until` are executed.
  void Run(SimTime until = kSimTimeMax);

  // Executes the single next event. Returns false if the queue is empty.
  bool Step();

  // Pending (non-cancelled) event count.
  std::size_t PendingEvents() const { return heap_.size() - cancelled_.size(); }

  // Total events executed so far (diagnostics / perf counters).
  std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  struct Entry {
    SimTime t;
    EventId id;
    bool operator>(const Entry& other) const {
      return t != other.t ? t > other.t : id > other.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Callbacks are stored separately so the heap stays POD-light.
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace pard

#endif  // PARD_SIM_SIMULATION_H_
