// Discrete-event simulation kernel.
//
// A single-threaded event loop over virtual time. Events scheduled for the
// same instant fire in scheduling order (monotone sequence number tie-break),
// which makes runs fully deterministic.
//
// Storage is a slab of event slots addressed by index: scheduling takes a
// slot from the free list (no hashing, no per-event node allocation), and
// callbacks live inline in the slot (InlineCallback), so steady-state
// scheduling performs zero heap allocations once the slab reaches its
// high-water mark.
//
// The pending set is a hierarchical timer wheel over the 64-bit microsecond
// timeline: level l buckets events by byte l of their firing time, relative
// to the current time's prefix. Scheduling is O(1) (xor + clz picks the
// level, FIFO append into the bucket), cancellation is an O(1) true removal
// from the bucket's doubly-linked list (no tombstones, no lazy sweeps), and
// popping the next event is a bitmap scan plus amortized O(1) cascades of
// buckets into finer levels as time reaches them. Bottom-level buckets hold
// events of a single microsecond tick in append order, which IS sequence
// order, so the wheel reproduces the exact (time, sequence) total order of a
// comparison-based queue at a fraction of the per-event cost — and without
// the O(log n) depth penalty once millions of trace arrivals are pending.
//
// Determinism note: every bucket only ever holds events that share their
// firing time's bytes above the bucket's level with the CURRENT time. This
// holds at insert by construction, and stays true as time advances because
// the clock can only pass an event by firing it (Run horizons stop short of
// the next event). Cascades walk buckets in list order, so equal-time events
// keep their sequence order through every descent.
#ifndef PARD_SIM_SIMULATION_H_
#define PARD_SIM_SIMULATION_H_

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "sim/inline_callback.h"

namespace pard {

// Packs (sequence number << 24 | slot index); unique per scheduled event,
// never reused.
using EventId = std::uint64_t;

class Simulation {
 public:
  using Callback = InlineCallback;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current virtual time.
  SimTime Now() const { return now_; }

  // Schedules `cb` at absolute time `t` (must be >= Now()). Returns an id
  // usable with Cancel().
  EventId ScheduleAt(SimTime t, Callback cb);

  // Schedules `cb` after `delay` (must be >= 0).
  EventId ScheduleAfter(Duration delay, Callback cb);

  // Cancels a pending event in O(1). Cancelling an already-fired, already-
  // cancelled or unknown id is a no-op and returns false.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or virtual time would exceed
  // `until`. Events exactly at `until` are executed.
  void Run(SimTime until = kSimTimeMax);

  // Executes the single next event. Returns false if the queue is empty.
  bool Step();

  // Pending (non-cancelled) event count.
  std::size_t PendingEvents() const { return live_; }

  // Total events executed so far (diagnostics / perf counters).
  std::uint64_t ExecutedEvents() const { return executed_; }

 private:
  static constexpr int kLevels = 8;          // One per byte of SimTime.
  static constexpr int kLevelBits = 8;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr int kIndexBits = 24;
  static constexpr std::uint64_t kIndexMask = (1ULL << kIndexBits) - 1;
  static constexpr std::uint32_t kNil = 0xffffffffu;

  // One slab slot. `key` identifies the current occupant; EventIds snapshot
  // it, so a stale id can never touch a reused slot.
  struct Slot {
    std::uint64_t key = 0;
    SimTime t = 0;
    std::uint32_t prev = kNil;   // Bucket list links (slab indices).
    std::uint32_t next = kNil;
    std::uint32_t bucket = 0;    // level * kSlotsPerLevel + slot.
    bool live = false;
    Callback cb;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  static int LevelOf(SimTime t, SimTime reference);

  void LinkInto(std::uint32_t index);        // Places slots_[index] by its t.
  void Unlink(std::uint32_t index);          // Removes from its bucket.
  void FreeSlot(std::uint32_t index);
  void Cascade(int level, std::uint32_t slot);

  // Advances the clock toward the next pending event without passing
  // `bound`. Returns the bottom-level slot of the next event's tick, or
  // kNil if there is none with t <= bound (the clock is left <= bound).
  std::uint32_t AdvanceToNext(SimTime bound);

  // Fires the head event of the given bottom-level tick bucket.
  void Fire(std::uint32_t tick_slot);

  void SetBit(int level, std::uint32_t slot) {
    bits_[level][slot >> 6] |= 1ULL << (slot & 63);
  }
  void ClearBit(int level, std::uint32_t slot) {
    bits_[level][slot >> 6] &= ~(1ULL << (slot & 63));
  }
  // Lowest set slot of a level, or kNil.
  std::uint32_t LowestBit(int level) const;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // Scheduled and not yet fired/cancelled.

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // Indices of dead, reusable slots.
  Bucket buckets_[kLevels][kSlotsPerLevel];
  std::uint64_t bits_[kLevels][kSlotsPerLevel / 64] = {};
};

}  // namespace pard

#endif  // PARD_SIM_SIMULATION_H_
