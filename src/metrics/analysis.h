// Offline analysis of a finished run.
//
// Every evaluation quantity in the paper's §5 is a pure function of the
// per-request records left behind by PipelineRuntime; this module computes
// them: goodput (windowed, normalized, minimum-over-windows), drop rate
// (average, transient, maximum-over-windows), invalid rate (wasted GPU
// time), per-module drop placement, queueing-delay and budget-consumption
// series, and the sumQ/sumW/sumD distributions.
#ifndef PARD_METRICS_ANALYSIS_H_
#define PARD_METRICS_ANALYSIS_H_

#include <vector>

#include "pipeline/pipeline_spec.h"
#include "runtime/request.h"
#include "stats/empirical_distribution.h"

namespace pard {

struct SeriesPoint {
  SimTime t;
  double value;
};

// Per-tenant slice of a multi-tenant run's accounting (metrics/report.cc
// serializes it into the report's "tenants" block). `drop_reasons` has
// size kNumDropReasons and its non-zero entries sum to `dropped` — the
// same conservation invariant as the run-wide counts, pinned per tenant by
// tests/tenant_test.cc.
struct TenantBreakdown {
  std::size_t total = 0;
  std::size_t good = 0;
  std::size_t dropped = 0;
  double weight = 1.0;  // Stamped on the tenant's requests at injection.
  std::vector<std::size_t> drop_reasons;

  double NormalizedGoodput() const {
    return total == 0 ? 0.0 : static_cast<double>(good) / static_cast<double>(total);
  }
};

class RunAnalysis {
 public:
  RunAnalysis(std::vector<RequestPtr> requests, const PipelineSpec& spec);

  // --- Scalar summaries ----------------------------------------------------
  std::size_t Total() const { return requests_.size(); }
  std::size_t GoodCount() const;     // Completed within SLO.
  std::size_t DroppedCount() const;  // Policy drops + late completions (§5.1).
  // Dropped-request counts by attributed DropReason, indexed by the enum
  // value (size kNumDropReasons). Index 0 (kNone) counts dropped requests
  // that lost attribution — always 0 when the runtimes behave (conservation:
  // the non-zero indices sum exactly to DroppedCount()).
  std::vector<std::size_t> DropReasonCounts() const;

  // Fraction of requests counted as dropped.
  double DropRate() const;
  // GPU time attributed to dropped/late requests over total GPU time.
  double InvalidRate() const;
  // Goodput over the whole run, req/s.
  double MeanGoodput() const;
  // Mean goodput / mean input rate.
  double NormalizedGoodput() const;

  // --- Multi-tenant accounting ---------------------------------------------
  // One breakdown per tenant id (max tag + 1 entries); empty for untenanted
  // runs. Requests without a tag (tenant < 0) are excluded.
  std::vector<TenantBreakdown> PerTenant() const;
  // Σ request.weight over good requests / over all requests. Untenanted
  // requests carry weight 1.0, so these degenerate to the unweighted counts.
  double WeightedGoodCount() const;
  double WeightedTotal() const;
  // WeightedGoodCount / WeightedTotal — the weighted global objective the
  // tenant governor maximizes.
  double WeightedNormalizedGoodput() const;

  // Restrict analysis to requests *sent* within [begin, end] — used for the
  // burst-region panels of Fig. 10.
  RunAnalysis Slice(SimTime begin, SimTime end) const;

  // --- Windowed metrics (Fig. 2a/2b, Fig. 9) -------------------------------
  // Minimum over all sliding windows of size `window` of
  // (good completions in window) / (arrivals in window).
  double MinNormalizedGoodput(Duration window) const;
  // Maximum over all sliding windows of the window drop rate.
  double MaxWindowDropRate(Duration window) const;

  // --- Time series ----------------------------------------------------------
  // Goodput (req/s) binned by completion time.
  std::vector<SeriesPoint> GoodputSeries(Duration bin) const;
  // Input rate (req/s) binned by send time.
  std::vector<SeriesPoint> InputRateSeries(Duration bin) const;
  // Normalized goodput per bin: good(bin)/arrivals(bin), keyed by send time.
  std::vector<SeriesPoint> NormalizedGoodputSeries(Duration bin) const;
  // Transient drop rate per bin (drops keyed by send time) — Fig. 2d.
  std::vector<SeriesPoint> TransientDropRateSeries(Duration bin) const;

  // --- Structural metrics ---------------------------------------------------
  // Fraction of dropped requests dropped at each module (late completions
  // count at the sink). Sums to 1 when any request dropped.
  std::vector<double> PerModuleDropShare() const;
  // Mean queueing delay per module (us) over requests that entered a batch.
  std::vector<double> MeanQueueDelayPerModule() const;
  // Mean consumed latency budget per module (arrive..exec_end, us) for
  // SLO-compliant requests — Fig. 12a.
  std::vector<double> MeanConsumedBudgetPerModule() const;
  // Per-module mean queueing delay restricted to requests sent in
  // [begin, end] (Fig. 12c burst panels).
  std::vector<double> MeanQueueDelayPerModule(SimTime begin, SimTime end) const;

  // Distributions of per-request total queueing delay, batch wait and
  // execution duration over executed hops (Fig. 12b).
  EmpiricalDistribution SumQueueDistribution() const;
  EmpiricalDistribution SumWaitDistribution() const;
  EmpiricalDistribution SumExecDistribution() const;

  // Remaining latency budget (us) at batch entry of `module_id` for up to
  // `count` consecutive requests starting at arrival index `offset`
  // (Fig. 12d).
  std::vector<double> RemainingBudgetAt(int module_id, std::size_t count,
                                        std::size_t offset = 0) const;

  const std::vector<RequestPtr>& requests() const { return requests_; }

 private:
  SimTime SpanBegin() const;
  SimTime SpanEnd() const;

  std::vector<RequestPtr> requests_;
  PipelineSpec spec_;
};

}  // namespace pard

#endif  // PARD_METRICS_ANALYSIS_H_
