// Machine-readable run reports.
//
// Serializes a RunAnalysis into JSON so external tooling (plotting scripts,
// regression dashboards) can consume experiment results — the artifact the
// `pardsim --json` CLI emits.
#ifndef PARD_METRICS_REPORT_H_
#define PARD_METRICS_REPORT_H_

#include "jsonio/json.h"
#include "metrics/analysis.h"
#include "pipeline/tenant_spec.h"

namespace pard {

struct ReportOptions {
  // Bin width for the goodput/drop time series.
  Duration series_bin = 5 * kUsPerSec;
  // Include per-bin series (can be large); scalar summary is always present.
  bool include_series = true;
  // Quantiles reported for the sumQ/sumW/sumD distributions.
  std::vector<double> quantiles = {0.1, 0.25, 0.5, 0.75, 0.9, 0.99};
};

// Builds the full report. Layout:
// {
//   "summary":   {total, good, dropped, drop_rate, invalid_rate, ...},
//   "per_module":{drop_share, mean_queue_delay_ms, mean_consumed_budget_ms},
//   "latency":   {sum_queue_ms: {p10: ..}, sum_wait_ms: .., sum_exec_ms: ..},
//   "series":    {t_s: [...], normalized_goodput: [...], drop_rate: [...]}
// }
JsonValue BuildRunReport(const RunAnalysis& analysis, const ReportOptions& options = {});

// The per-tenant block pardsim injects as report["tenants"] for
// multi-tenant runs. Layout:
// {
//   "count": N,
//   "weighted_normalized_goodput": ...,
//   "per_tenant": [{name, weight, share, total, good, dropped,
//                   normalized_goodput, admit_rate, drop_reasons: {...}}]
// }
// `catalog` supplies names/shares; its order must match the tenant ids the
// requests were stamped with (RuntimeOptions::tenants order).
JsonValue BuildTenantReport(const RunAnalysis& analysis,
                            const std::vector<TenantSpec>& catalog);

}  // namespace pard

#endif  // PARD_METRICS_REPORT_H_
