#include "metrics/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pard {
namespace {

// Bins a set of timestamps into counts of width `bin` starting at `begin`.
std::vector<int> BinCounts(const std::vector<SimTime>& times, SimTime begin, SimTime end,
                           Duration bin) {
  const std::size_t n = static_cast<std::size_t>((end - begin) / bin) + 1;
  std::vector<int> counts(n, 0);
  for (SimTime t : times) {
    if (t < begin || t > end) {
      continue;
    }
    ++counts[static_cast<std::size_t>((t - begin) / bin)];
  }
  return counts;
}

}  // namespace

RunAnalysis::RunAnalysis(std::vector<RequestPtr> requests, const PipelineSpec& spec)
    : requests_(std::move(requests)), spec_(spec) {}

std::size_t RunAnalysis::GoodCount() const {
  std::size_t n = 0;
  for (const RequestPtr& r : requests_) {
    n += r->Good() ? 1 : 0;
  }
  return n;
}

std::size_t RunAnalysis::DroppedCount() const {
  std::size_t n = 0;
  for (const RequestPtr& r : requests_) {
    n += r->CountsDropped() ? 1 : 0;
  }
  return n;
}

std::vector<std::size_t> RunAnalysis::DropReasonCounts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(kNumDropReasons), 0);
  for (const RequestPtr& r : requests_) {
    if (r->CountsDropped()) {
      ++counts[static_cast<std::size_t>(r->drop_reason)];
    }
  }
  return counts;
}

double RunAnalysis::DropRate() const {
  if (requests_.empty()) {
    return 0.0;
  }
  return static_cast<double>(DroppedCount()) / static_cast<double>(requests_.size());
}

double RunAnalysis::InvalidRate() const {
  Duration total = 0;
  Duration invalid = 0;
  for (const RequestPtr& r : requests_) {
    const Duration gpu = r->TotalGpuTime();
    total += gpu;
    if (r->CountsDropped()) {
      invalid += gpu;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(invalid) / static_cast<double>(total);
}

SimTime RunAnalysis::SpanBegin() const {
  SimTime begin = kSimTimeMax;
  for (const RequestPtr& r : requests_) {
    begin = std::min(begin, r->sent);
  }
  return begin == kSimTimeMax ? 0 : begin;
}

SimTime RunAnalysis::SpanEnd() const {
  SimTime end = 0;
  for (const RequestPtr& r : requests_) {
    end = std::max(end, std::max(r->sent, r->finish));
  }
  return end;
}

double RunAnalysis::MeanGoodput() const {
  if (requests_.empty()) {
    return 0.0;
  }
  const double span = UsToSec(std::max<Duration>(SpanEnd() - SpanBegin(), 1));
  return static_cast<double>(GoodCount()) / span;
}

double RunAnalysis::NormalizedGoodput() const {
  if (requests_.empty()) {
    return 0.0;
  }
  return static_cast<double>(GoodCount()) / static_cast<double>(requests_.size());
}

std::vector<TenantBreakdown> RunAnalysis::PerTenant() const {
  int num_tenants = 0;
  for (const RequestPtr& r : requests_) {
    num_tenants = std::max(num_tenants, r->tenant + 1);
  }
  std::vector<TenantBreakdown> tenants(static_cast<std::size_t>(num_tenants));
  for (TenantBreakdown& t : tenants) {
    t.drop_reasons.assign(static_cast<std::size_t>(kNumDropReasons), 0);
  }
  for (const RequestPtr& r : requests_) {
    if (r->tenant < 0) {
      continue;
    }
    TenantBreakdown& t = tenants[static_cast<std::size_t>(r->tenant)];
    ++t.total;
    t.weight = r->weight;
    if (r->Good()) {
      ++t.good;
    } else if (r->CountsDropped()) {
      ++t.dropped;
      ++t.drop_reasons[static_cast<std::size_t>(r->drop_reason)];
    }
  }
  return tenants;
}

double RunAnalysis::WeightedGoodCount() const {
  double sum = 0.0;
  for (const RequestPtr& r : requests_) {
    if (r->Good()) {
      sum += r->weight;
    }
  }
  return sum;
}

double RunAnalysis::WeightedTotal() const {
  double sum = 0.0;
  for (const RequestPtr& r : requests_) {
    sum += r->weight;
  }
  return sum;
}

double RunAnalysis::WeightedNormalizedGoodput() const {
  const double total = WeightedTotal();
  return total == 0.0 ? 0.0 : WeightedGoodCount() / total;
}

RunAnalysis RunAnalysis::Slice(SimTime begin, SimTime end) const {
  std::vector<RequestPtr> slice;
  for (const RequestPtr& r : requests_) {
    if (r->sent >= begin && r->sent <= end) {
      slice.push_back(r);
    }
  }
  return RunAnalysis(std::move(slice), spec_);
}

double RunAnalysis::MinNormalizedGoodput(Duration window) const {
  PARD_CHECK(window > 0);
  if (requests_.empty()) {
    return 0.0;
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SimTime> sent;
  std::vector<SimTime> good_sent;
  sent.reserve(requests_.size());
  for (const RequestPtr& r : requests_) {
    sent.push_back(r->sent);
    if (r->Good()) {
      good_sent.push_back(r->sent);
    }
  }
  // Slide at half-window granularity over send times.
  const Duration step = std::max<Duration>(window / 2, 1);
  const std::vector<int> arrivals = BinCounts(sent, begin, end, step);
  const std::vector<int> good = BinCounts(good_sent, begin, end, step);
  // Windows wider than the run degenerate to the whole-span ratio.
  const std::size_t bins_per_window = std::min(
      arrivals.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(window / step)));
  double min_ratio = 1.0;
  for (std::size_t i = 0; i + bins_per_window <= arrivals.size(); ++i) {
    int a = 0;
    int g = 0;
    for (std::size_t j = i; j < i + bins_per_window; ++j) {
      a += arrivals[j];
      g += good[j];
    }
    if (a > 0) {
      min_ratio = std::min(min_ratio, static_cast<double>(g) / static_cast<double>(a));
    }
  }
  return min_ratio;
}

double RunAnalysis::MaxWindowDropRate(Duration window) const {
  PARD_CHECK(window > 0);
  if (requests_.empty()) {
    return 0.0;
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SimTime> sent;
  std::vector<SimTime> dropped_sent;
  for (const RequestPtr& r : requests_) {
    sent.push_back(r->sent);
    if (r->CountsDropped()) {
      dropped_sent.push_back(r->sent);
    }
  }
  const Duration step = std::max<Duration>(window / 2, 1);
  const std::vector<int> arrivals = BinCounts(sent, begin, end, step);
  const std::vector<int> dropped = BinCounts(dropped_sent, begin, end, step);
  const std::size_t bins_per_window = std::min(
      arrivals.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(window / step)));
  double max_ratio = 0.0;
  for (std::size_t i = 0; i + bins_per_window <= arrivals.size(); ++i) {
    int a = 0;
    int d = 0;
    for (std::size_t j = i; j < i + bins_per_window; ++j) {
      a += arrivals[j];
      d += dropped[j];
    }
    if (a > 0) {
      max_ratio = std::max(max_ratio, static_cast<double>(d) / static_cast<double>(a));
    }
  }
  return max_ratio;
}

std::vector<SeriesPoint> RunAnalysis::GoodputSeries(Duration bin) const {
  PARD_CHECK(bin > 0);
  std::vector<SimTime> finish;
  for (const RequestPtr& r : requests_) {
    if (r->Good()) {
      finish.push_back(r->finish);
    }
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SeriesPoint> out;
  if (requests_.empty()) {
    return out;
  }
  const std::vector<int> counts = BinCounts(finish, begin, end, bin);
  out.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.push_back(SeriesPoint{begin + static_cast<SimTime>(i) * bin,
                              static_cast<double>(counts[i]) / UsToSec(bin)});
  }
  return out;
}

std::vector<SeriesPoint> RunAnalysis::InputRateSeries(Duration bin) const {
  PARD_CHECK(bin > 0);
  std::vector<SimTime> sent;
  for (const RequestPtr& r : requests_) {
    sent.push_back(r->sent);
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SeriesPoint> out;
  if (requests_.empty()) {
    return out;
  }
  const std::vector<int> counts = BinCounts(sent, begin, end, bin);
  out.reserve(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out.push_back(SeriesPoint{begin + static_cast<SimTime>(i) * bin,
                              static_cast<double>(counts[i]) / UsToSec(bin)});
  }
  return out;
}

std::vector<SeriesPoint> RunAnalysis::NormalizedGoodputSeries(Duration bin) const {
  PARD_CHECK(bin > 0);
  if (requests_.empty()) {
    return {};
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SimTime> sent;
  std::vector<SimTime> good_sent;
  for (const RequestPtr& r : requests_) {
    sent.push_back(r->sent);
    if (r->Good()) {
      good_sent.push_back(r->sent);
    }
  }
  const std::vector<int> arrivals = BinCounts(sent, begin, end, bin);
  const std::vector<int> good = BinCounts(good_sent, begin, end, bin);
  std::vector<SeriesPoint> out;
  out.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double value =
        arrivals[i] > 0 ? static_cast<double>(good[i]) / static_cast<double>(arrivals[i]) : 1.0;
    out.push_back(SeriesPoint{begin + static_cast<SimTime>(i) * bin, value});
  }
  return out;
}

std::vector<SeriesPoint> RunAnalysis::TransientDropRateSeries(Duration bin) const {
  PARD_CHECK(bin > 0);
  if (requests_.empty()) {
    return {};
  }
  const SimTime begin = SpanBegin();
  const SimTime end = SpanEnd();
  std::vector<SimTime> sent;
  std::vector<SimTime> dropped_sent;
  for (const RequestPtr& r : requests_) {
    sent.push_back(r->sent);
    if (r->CountsDropped()) {
      dropped_sent.push_back(r->sent);
    }
  }
  const std::vector<int> arrivals = BinCounts(sent, begin, end, bin);
  const std::vector<int> dropped = BinCounts(dropped_sent, begin, end, bin);
  std::vector<SeriesPoint> out;
  out.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const double value =
        arrivals[i] > 0 ? static_cast<double>(dropped[i]) / static_cast<double>(arrivals[i]) : 0.0;
    out.push_back(SeriesPoint{begin + static_cast<SimTime>(i) * bin, value});
  }
  return out;
}

std::vector<double> RunAnalysis::PerModuleDropShare() const {
  const int n = spec_.NumModules();
  std::vector<double> share(static_cast<std::size_t>(n), 0.0);
  std::size_t total = 0;
  for (const RequestPtr& r : requests_) {
    if (!r->CountsDropped()) {
      continue;
    }
    ++total;
    const int module = r->fate == RequestFate::kDropped ? r->drop_module : spec_.SinkModule();
    share[static_cast<std::size_t>(module)] += 1.0;
  }
  if (total > 0) {
    for (double& s : share) {
      s /= static_cast<double>(total);
    }
  }
  return share;
}

std::vector<double> RunAnalysis::MeanQueueDelayPerModule() const {
  return MeanQueueDelayPerModule(0, kSimTimeMax);
}

std::vector<double> RunAnalysis::MeanQueueDelayPerModule(SimTime begin, SimTime end) const {
  const int n = spec_.NumModules();
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<std::size_t> count(static_cast<std::size_t>(n), 0);
  for (const RequestPtr& r : requests_) {
    if (r->sent < begin || r->sent > end) {
      continue;
    }
    for (int m = 0; m < n; ++m) {
      const HopRecord& hop = r->hops[static_cast<std::size_t>(m)];
      // Executed hops only: requests dropped at the pull point would skew
      // the congestion measure with their (unbounded) doomed waits.
      if (hop.executed) {
        sum[static_cast<std::size_t>(m)] += static_cast<double>(hop.QueueDelay());
        ++count[static_cast<std::size_t>(m)];
      }
    }
  }
  std::vector<double> mean(static_cast<std::size_t>(n), 0.0);
  for (int m = 0; m < n; ++m) {
    if (count[static_cast<std::size_t>(m)] > 0) {
      mean[static_cast<std::size_t>(m)] =
          sum[static_cast<std::size_t>(m)] / static_cast<double>(count[static_cast<std::size_t>(m)]);
    }
  }
  return mean;
}

std::vector<double> RunAnalysis::MeanConsumedBudgetPerModule() const {
  const int n = spec_.NumModules();
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<std::size_t> count(static_cast<std::size_t>(n), 0);
  for (const RequestPtr& r : requests_) {
    if (!r->Good()) {
      continue;
    }
    for (int m = 0; m < n; ++m) {
      const HopRecord& hop = r->hops[static_cast<std::size_t>(m)];
      if (hop.executed) {
        sum[static_cast<std::size_t>(m)] += static_cast<double>(hop.exec_end - hop.arrive);
        ++count[static_cast<std::size_t>(m)];
      }
    }
  }
  std::vector<double> mean(static_cast<std::size_t>(n), 0.0);
  for (int m = 0; m < n; ++m) {
    if (count[static_cast<std::size_t>(m)] > 0) {
      mean[static_cast<std::size_t>(m)] =
          sum[static_cast<std::size_t>(m)] / static_cast<double>(count[static_cast<std::size_t>(m)]);
    }
  }
  return mean;
}

EmpiricalDistribution RunAnalysis::SumQueueDistribution() const {
  std::vector<double> sums;
  for (const RequestPtr& r : requests_) {
    double total = 0.0;
    bool any = false;
    for (const HopRecord& hop : r->hops) {
      if (hop.executed) {
        total += static_cast<double>(hop.QueueDelay());
        any = true;
      }
    }
    if (any) {
      sums.push_back(total);
    }
  }
  return EmpiricalDistribution(std::move(sums));
}

EmpiricalDistribution RunAnalysis::SumWaitDistribution() const {
  std::vector<double> sums;
  for (const RequestPtr& r : requests_) {
    double total = 0.0;
    bool any = false;
    for (const HopRecord& hop : r->hops) {
      if (hop.executed) {
        total += static_cast<double>(hop.BatchWait());
        any = true;
      }
    }
    if (any) {
      sums.push_back(total);
    }
  }
  return EmpiricalDistribution(std::move(sums));
}

EmpiricalDistribution RunAnalysis::SumExecDistribution() const {
  std::vector<double> sums;
  for (const RequestPtr& r : requests_) {
    double total = 0.0;
    bool any = false;
    for (const HopRecord& hop : r->hops) {
      if (hop.executed) {
        total += static_cast<double>(hop.ExecDuration());
        any = true;
      }
    }
    if (any) {
      sums.push_back(total);
    }
  }
  return EmpiricalDistribution(std::move(sums));
}

std::vector<double> RunAnalysis::RemainingBudgetAt(int module_id, std::size_t count,
                                                   std::size_t offset) const {
  PARD_CHECK(module_id >= 0 && module_id < spec_.NumModules());
  // Order by batch entry at the module.
  std::vector<std::pair<SimTime, double>> entries;
  for (const RequestPtr& r : requests_) {
    const HopRecord& hop = r->hops[static_cast<std::size_t>(module_id)];
    if (hop.batch_entry >= 0) {
      entries.emplace_back(hop.batch_entry,
                           static_cast<double>(r->RemainingBudget(hop.batch_entry)));
    }
  }
  std::sort(entries.begin(), entries.end());
  std::vector<double> out;
  for (std::size_t i = offset; i < entries.size() && out.size() < count; ++i) {
    out.push_back(entries[i].second);
  }
  return out;
}

}  // namespace pard
