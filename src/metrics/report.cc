#include "metrics/report.h"

#include <utility>

#include "common/string_util.h"

namespace pard {
namespace {

JsonValue QuantileObject(const EmpiricalDistribution& dist, const std::vector<double>& qs) {
  JsonObject obj;
  for (double q : qs) {
    obj[StrFormat("p%g", q * 100.0)] = dist.Quantile(q) / 1000.0;  // -> ms
  }
  return JsonValue(std::move(obj));
}

}  // namespace

JsonValue BuildRunReport(const RunAnalysis& analysis, const ReportOptions& options) {
  JsonObject report;

  JsonObject summary;
  summary["total"] = static_cast<std::int64_t>(analysis.Total());
  summary["good"] = static_cast<std::int64_t>(analysis.GoodCount());
  summary["dropped"] = static_cast<std::int64_t>(analysis.DroppedCount());
  summary["drop_rate"] = analysis.DropRate();
  summary["invalid_rate"] = analysis.InvalidRate();
  summary["mean_goodput_rps"] = analysis.MeanGoodput();
  summary["normalized_goodput"] = analysis.NormalizedGoodput();
  // Drop-reason breakdown: per-reason counts that sum exactly to
  // summary.dropped (conservation; "none" flags unattributed drops — a bug).
  {
    const std::vector<std::size_t> reasons = analysis.DropReasonCounts();
    JsonObject breakdown;
    for (int r = 0; r < kNumDropReasons; ++r) {
      const std::size_t count = reasons[static_cast<std::size_t>(r)];
      if (r == 0 && count == 0) {
        continue;  // Omit the healthy "none: 0" entry.
      }
      breakdown[DropReasonName(static_cast<DropReason>(r))] =
          static_cast<std::int64_t>(count);
    }
    summary["drop_reasons"] = std::move(breakdown);
  }
  report["summary"] = std::move(summary);

  JsonObject per_module;
  JsonArray drop_share;
  for (double s : analysis.PerModuleDropShare()) {
    drop_share.emplace_back(s);
  }
  per_module["drop_share"] = std::move(drop_share);
  JsonArray queue_delay;
  for (double v : analysis.MeanQueueDelayPerModule()) {
    queue_delay.emplace_back(v / 1000.0);
  }
  per_module["mean_queue_delay_ms"] = std::move(queue_delay);
  JsonArray consumed;
  for (double v : analysis.MeanConsumedBudgetPerModule()) {
    consumed.emplace_back(v / 1000.0);
  }
  per_module["mean_consumed_budget_ms"] = std::move(consumed);
  report["per_module"] = std::move(per_module);

  JsonObject latency;
  const EmpiricalDistribution sum_q = analysis.SumQueueDistribution();
  const EmpiricalDistribution sum_w = analysis.SumWaitDistribution();
  const EmpiricalDistribution sum_d = analysis.SumExecDistribution();
  latency["sum_queue_ms"] = QuantileObject(sum_q, options.quantiles);
  latency["sum_wait_ms"] = QuantileObject(sum_w, options.quantiles);
  latency["sum_exec_ms"] = QuantileObject(sum_d, options.quantiles);
  report["latency"] = std::move(latency);

  if (options.include_series) {
    JsonObject series;
    JsonArray t_s;
    JsonArray goodput;
    JsonArray drop_rate;
    for (const SeriesPoint& p : analysis.NormalizedGoodputSeries(options.series_bin)) {
      t_s.emplace_back(UsToSec(p.t));
      goodput.emplace_back(p.value);
    }
    for (const SeriesPoint& p : analysis.TransientDropRateSeries(options.series_bin)) {
      drop_rate.emplace_back(p.value);
    }
    series["t_s"] = std::move(t_s);
    series["normalized_goodput"] = std::move(goodput);
    series["drop_rate"] = std::move(drop_rate);
    report["series"] = std::move(series);
  }

  return JsonValue(std::move(report));
}

JsonValue BuildTenantReport(const RunAnalysis& analysis,
                            const std::vector<TenantSpec>& catalog) {
  const std::vector<TenantBreakdown> tenants = analysis.PerTenant();
  JsonObject block;
  block["count"] = static_cast<std::int64_t>(catalog.size());
  block["weighted_normalized_goodput"] = analysis.WeightedNormalizedGoodput();
  JsonArray per_tenant;
  for (std::size_t t = 0; t < catalog.size(); ++t) {
    const TenantSpec& spec = catalog[t];
    // A tenant may legally see zero requests on a short run; PerTenant()
    // only sizes up to the highest tag actually seen.
    static const TenantBreakdown kEmpty{};
    const TenantBreakdown& b = t < tenants.size() ? tenants[t] : kEmpty;
    JsonObject row;
    row["name"] = spec.name;
    row["weight"] = spec.weight;
    row["share"] = spec.share;
    row["total"] = static_cast<std::int64_t>(b.total);
    row["good"] = static_cast<std::int64_t>(b.good);
    row["dropped"] = static_cast<std::int64_t>(b.dropped);
    row["normalized_goodput"] = b.NormalizedGoodput();
    // Fraction of this tenant's offered requests NOT shed at ingress — the
    // fairness-floor observable (>= admit_floor up to hash quantization).
    const std::size_t shed =
        b.drop_reasons.empty()
            ? 0
            : b.drop_reasons[static_cast<std::size_t>(DropReason::kTenantShed)];
    row["admit_rate"] =
        b.total == 0 ? 1.0
                     : 1.0 - static_cast<double>(shed) / static_cast<double>(b.total);
    JsonObject breakdown;
    for (int r = 0; r < kNumDropReasons && !b.drop_reasons.empty(); ++r) {
      const std::size_t count = b.drop_reasons[static_cast<std::size_t>(r)];
      if (count == 0) {
        continue;  // Per-tenant rows omit zero reasons to stay compact.
      }
      breakdown[DropReasonName(static_cast<DropReason>(r))] =
          static_cast<std::int64_t>(count);
    }
    row["drop_reasons"] = std::move(breakdown);
    per_tenant.push_back(JsonValue(std::move(row)));
  }
  block["per_tenant"] = std::move(per_tenant);
  return JsonValue(std::move(block));
}

}  // namespace pard
