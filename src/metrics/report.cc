#include "metrics/report.h"

#include <utility>

#include "common/string_util.h"

namespace pard {
namespace {

JsonValue QuantileObject(const EmpiricalDistribution& dist, const std::vector<double>& qs) {
  JsonObject obj;
  for (double q : qs) {
    obj[StrFormat("p%g", q * 100.0)] = dist.Quantile(q) / 1000.0;  // -> ms
  }
  return JsonValue(std::move(obj));
}

}  // namespace

JsonValue BuildRunReport(const RunAnalysis& analysis, const ReportOptions& options) {
  JsonObject report;

  JsonObject summary;
  summary["total"] = static_cast<std::int64_t>(analysis.Total());
  summary["good"] = static_cast<std::int64_t>(analysis.GoodCount());
  summary["dropped"] = static_cast<std::int64_t>(analysis.DroppedCount());
  summary["drop_rate"] = analysis.DropRate();
  summary["invalid_rate"] = analysis.InvalidRate();
  summary["mean_goodput_rps"] = analysis.MeanGoodput();
  summary["normalized_goodput"] = analysis.NormalizedGoodput();
  // Drop-reason breakdown: per-reason counts that sum exactly to
  // summary.dropped (conservation; "none" flags unattributed drops — a bug).
  {
    const std::vector<std::size_t> reasons = analysis.DropReasonCounts();
    JsonObject breakdown;
    for (int r = 0; r < kNumDropReasons; ++r) {
      const std::size_t count = reasons[static_cast<std::size_t>(r)];
      if (r == 0 && count == 0) {
        continue;  // Omit the healthy "none: 0" entry.
      }
      breakdown[DropReasonName(static_cast<DropReason>(r))] =
          static_cast<std::int64_t>(count);
    }
    summary["drop_reasons"] = std::move(breakdown);
  }
  report["summary"] = std::move(summary);

  JsonObject per_module;
  JsonArray drop_share;
  for (double s : analysis.PerModuleDropShare()) {
    drop_share.emplace_back(s);
  }
  per_module["drop_share"] = std::move(drop_share);
  JsonArray queue_delay;
  for (double v : analysis.MeanQueueDelayPerModule()) {
    queue_delay.emplace_back(v / 1000.0);
  }
  per_module["mean_queue_delay_ms"] = std::move(queue_delay);
  JsonArray consumed;
  for (double v : analysis.MeanConsumedBudgetPerModule()) {
    consumed.emplace_back(v / 1000.0);
  }
  per_module["mean_consumed_budget_ms"] = std::move(consumed);
  report["per_module"] = std::move(per_module);

  JsonObject latency;
  const EmpiricalDistribution sum_q = analysis.SumQueueDistribution();
  const EmpiricalDistribution sum_w = analysis.SumWaitDistribution();
  const EmpiricalDistribution sum_d = analysis.SumExecDistribution();
  latency["sum_queue_ms"] = QuantileObject(sum_q, options.quantiles);
  latency["sum_wait_ms"] = QuantileObject(sum_w, options.quantiles);
  latency["sum_exec_ms"] = QuantileObject(sum_d, options.quantiles);
  report["latency"] = std::move(latency);

  if (options.include_series) {
    JsonObject series;
    JsonArray t_s;
    JsonArray goodput;
    JsonArray drop_rate;
    for (const SeriesPoint& p : analysis.NormalizedGoodputSeries(options.series_bin)) {
      t_s.emplace_back(UsToSec(p.t));
      goodput.emplace_back(p.value);
    }
    for (const SeriesPoint& p : analysis.TransientDropRateSeries(options.series_bin)) {
      drop_rate.emplace_back(p.value);
    }
    series["t_s"] = std::move(t_s);
    series["normalized_goodput"] = std::move(goodput);
    series["drop_rate"] = std::move(drop_rate);
    report["series"] = std::move(series);
  }

  return JsonValue(std::move(report));
}

}  // namespace pard
