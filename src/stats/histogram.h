// Fixed-width bucket histogram for latency reporting (CDF panels in the
// paper's Fig. 12b and Fig. 15b).
#ifndef PARD_STATS_HISTOGRAM_H_
#define PARD_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pard {

class Histogram {
 public:
  // Buckets cover [lo, hi) in `buckets` equal slices, plus underflow and
  // overflow buckets.
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double value);

  std::int64_t Count() const { return total_; }
  // Fraction of samples <= x (bucket-resolution approximation).
  double CdfAt(double x) const;
  // Approximate quantile from bucket midpoints.
  double Quantile(double q) const;

  // Renders "value cdf%" rows, one per non-empty bucket edge — handy for
  // text-mode CDF plots in the benches.
  std::string CdfRows(int max_rows = 20) const;

 private:
  std::size_t BucketOf(double value) const;

  double lo_;
  double hi_;
  double width_;
  std::vector<std::int64_t> counts_;  // [0]=underflow, [n+1]=overflow
  std::int64_t total_ = 0;
};

}  // namespace pard

#endif  // PARD_STATS_HISTOGRAM_H_
