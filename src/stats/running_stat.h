// Welford online mean/variance accumulator plus min/max tracking.
#ifndef PARD_STATS_RUNNING_STAT_H_
#define PARD_STATS_RUNNING_STAT_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace pard {

class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }

  void Reset() { *this = RunningStat(); }

  std::int64_t Count() const { return n_; }
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }
  double Variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double Stddev() const { return std::sqrt(Variance()); }
  double Min() const { return n_ > 0 ? min_ : 0.0; }
  double Max() const { return n_ > 0 ? max_ : 0.0; }
  // Coefficient of variation; 0 when the mean is 0.
  double Cv() const { return Mean() != 0.0 ? Stddev() / Mean() : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace pard

#endif  // PARD_STATS_RUNNING_STAT_H_
