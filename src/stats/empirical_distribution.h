// Empirical distribution with inverse-CDF (quantile) lookup.
//
// Used for the aggregated batch-wait distribution F_{k+1..N}: the State
// Planner materializes Monte-Carlo sums into an EmpiricalDistribution and the
// Request Broker reads w_k = F^-1(lambda) from it (paper §4.2).
#ifndef PARD_STATS_EMPIRICAL_DISTRIBUTION_H_
#define PARD_STATS_EMPIRICAL_DISTRIBUTION_H_

#include <vector>

namespace pard {

class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  // Takes ownership of samples; they need not be sorted.
  explicit EmpiricalDistribution(std::vector<double> samples);

  void Assign(std::vector<double> samples);
  void Add(double sample);

  bool Empty() const { return samples_.size() == 0; }
  std::size_t Size() const { return samples_.size(); }

  // Inverse CDF. q is clamped to [0, 1]; q=0 returns the minimum, q=1 the
  // maximum; interior quantiles use linear interpolation between order
  // statistics. Returns `fallback` when empty.
  double Quantile(double q, double fallback = 0.0) const;

  // Empirical CDF value P(X <= x). Returns 0 when empty.
  double Cdf(double x) const;

  double Mean() const;
  double Min() const;
  double Max() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace pard

#endif  // PARD_STATS_EMPIRICAL_DISTRIBUTION_H_
