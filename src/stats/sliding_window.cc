#include "stats/sliding_window.h"

#include <algorithm>

#include "common/check.h"

namespace pard {

SlidingWindow::SlidingWindow(Duration length) : length_(length) {
  PARD_CHECK(length > 0);
}

void SlidingWindow::Add(SimTime t, double value) {
  PARD_CHECK_MSG(entries_.empty() || t >= entries_.back().t,
                 "sliding window timestamps must be non-decreasing");
  if (first_add_ < 0) {
    first_add_ = t;
  }
  entries_.push_back(Entry{t, value});
}

void SlidingWindow::Evict(SimTime now) {
  const SimTime horizon = now - length_;
  while (!entries_.empty() && entries_.front().t < horizon) {
    entries_.pop_front();
  }
}

double SlidingWindow::Mean(SimTime now, double fallback) {
  Evict(now);
  if (entries_.empty()) {
    return fallback;
  }
  double sum = 0.0;
  for (const Entry& e : entries_) {
    sum += e.value;
  }
  return sum / static_cast<double>(entries_.size());
}

double SlidingWindow::LinearWeightedMean(SimTime now, double fallback) {
  Evict(now);
  if (entries_.empty()) {
    return fallback;
  }
  double weighted = 0.0;
  double total_weight = 0.0;
  const double len = static_cast<double>(length_);
  for (const Entry& e : entries_) {
    const double age = static_cast<double>(now - e.t);
    const double w = std::max(0.0, (len - age) / len);
    weighted += w * e.value;
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    return fallback;
  }
  return weighted / total_weight;
}

void SlidingWindow::AccumulateLinearWeighted(SimTime now, double* weighted_sum,
                                             double* weight_sum) {
  Evict(now);
  const double len = static_cast<double>(length_);
  for (const Entry& e : entries_) {
    const double age = static_cast<double>(now - e.t);
    const double w = std::max(0.0, (len - age) / len);
    *weighted_sum += w * e.value;
    *weight_sum += w;
  }
}

double SlidingWindow::Max(SimTime now, double fallback) {
  Evict(now);
  if (entries_.empty()) {
    return fallback;
  }
  double best = entries_.front().value;
  for (const Entry& e : entries_) {
    best = std::max(best, e.value);
  }
  return best;
}

double SlidingWindow::RatePerSec(SimTime now) {
  Evict(now);
  if (entries_.empty() || first_add_ < 0) {
    return 0.0;
  }
  const Duration covered = std::min<Duration>(length_, std::max<Duration>(now - first_add_, 1));
  return static_cast<double>(entries_.size()) / UsToSec(covered);
}

}  // namespace pard
