// Recent-sample reservoir.
//
// The State Planner keeps the most recent M (default 10 000, paper footnote 6)
// batch-wait observations per module and randomly samples them to build the
// aggregated batch-wait distribution F_{k+1..N}. A ring buffer of the most
// recent M values implements "random sampling on recent arrivals" — it tracks
// workload drift instead of mixing in stale samples as a classic reservoir
// would.
#ifndef PARD_STATS_RESERVOIR_H_
#define PARD_STATS_RESERVOIR_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pard {

class RecentReservoir {
 public:
  explicit RecentReservoir(std::size_t capacity) : capacity_(capacity) {
    PARD_CHECK(capacity > 0);
    values_.reserve(capacity);
  }

  void Add(double v) {
    if (values_.size() < capacity_) {
      values_.push_back(v);
    } else {
      values_[next_] = v;
      next_ = (next_ + 1) % capacity_;
    }
  }

  std::size_t Size() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }
  std::size_t capacity() const { return capacity_; }

  // Uniformly random element. Requires non-empty.
  double Sample(Rng& rng) const {
    PARD_CHECK(!values_.empty());
    return values_[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(values_.size()) - 1))];
  }

  const std::vector<double>& values() const { return values_; }

  void Clear() {
    values_.clear();
    next_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<double> values_;
};

}  // namespace pard

#endif  // PARD_STATS_RESERVOIR_H_
