#include "stats/empirical_distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pard {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalDistribution::Assign(std::vector<double> samples) {
  samples_ = std::move(samples);
  sorted_ = false;
}

void EmpiricalDistribution::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void EmpiricalDistribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::Quantile(double q, double fallback) const {
  if (samples_.empty()) {
    return fallback;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::Cdf(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : samples_) {
    sum += v;
  }
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::Min() const {
  PARD_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double EmpiricalDistribution::Max() const {
  PARD_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

}  // namespace pard
