#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pard {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  PARD_CHECK(hi > lo);
  PARD_CHECK(buckets > 0);
  counts_.assign(buckets + 2, 0);
}

std::size_t Histogram::BucketOf(double value) const {
  if (value < lo_) {
    return 0;
  }
  if (value >= hi_) {
    return counts_.size() - 1;
  }
  const std::size_t idx = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(idx + 1, counts_.size() - 2);
}

void Histogram::Add(double value) {
  ++counts_[BucketOf(value)];
  ++total_;
}

double Histogram::CdfAt(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  std::int64_t acc = 0;
  const std::size_t target = BucketOf(x);
  for (std::size_t i = 0; i <= target; ++i) {
    acc += counts_[i];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]);
    if (acc >= target) {
      if (i == 0) {
        return lo_;
      }
      if (i == counts_.size() - 1) {
        return hi_;
      }
      return lo_ + (static_cast<double>(i - 1) + 0.5) * width_;
    }
  }
  return hi_;
}

std::string Histogram::CdfRows(int max_rows) const {
  std::ostringstream os;
  if (total_ == 0) {
    return "(empty)\n";
  }
  const std::size_t inner = counts_.size() - 2;
  const std::size_t step = std::max<std::size_t>(1, inner / static_cast<std::size_t>(max_rows));
  std::int64_t acc = counts_[0];
  for (std::size_t i = 0; i < inner; ++i) {
    acc += counts_[i + 1];
    if (i % step == step - 1 || i == inner - 1) {
      const double edge = lo_ + static_cast<double>(i + 1) * width_;
      const double cdf = static_cast<double>(acc) / static_cast<double>(total_);
      os << edge << "\t" << cdf * 100.0 << "%\n";
    }
  }
  return os.str();
}

}  // namespace pard
