// Time-based sliding windows over (timestamp, value) observations.
//
// The PARD State Planner smooths recent queueing delays with a 5 s
// *linear-weighted* window (paper §4.2, footnote 4): an observation aged `a`
// within a window of length `L` contributes weight (L - a) / L. The same
// structure also provides plain means, maxima (for the PARD-WCL ablation) and
// event rates (for module load factors).
#ifndef PARD_STATS_SLIDING_WINDOW_H_
#define PARD_STATS_SLIDING_WINDOW_H_

#include <deque>

#include "common/time_types.h"

namespace pard {

class SlidingWindow {
 public:
  // `length` is the window span in microseconds; must be positive.
  explicit SlidingWindow(Duration length);

  // Records an observation. Timestamps must be non-decreasing.
  void Add(SimTime t, double value);

  // Drops observations older than `now - length`.
  void Evict(SimTime now);

  // Unweighted mean of in-window values; `fallback` when empty.
  double Mean(SimTime now, double fallback = 0.0);

  // Linear-weighted mean: weight of an observation at age a is (L - a) / L.
  double LinearWeightedMean(SimTime now, double fallback = 0.0);

  // Accumulates the linear-weighted numerator and denominator (Σ w·v, Σ w)
  // into the given sums after evicting. Sharded owners (ServeModule keeps
  // one window per queue shard) merge shards exactly this way: the merged
  // Σ w·v / Σ w is arithmetically identical to one window holding all
  // observations.
  void AccumulateLinearWeighted(SimTime now, double* weighted_sum, double* weight_sum);

  // Maximum in-window value; `fallback` when empty.
  double Max(SimTime now, double fallback = 0.0);

  // Number of in-window observations per second of window actually covered.
  // Uses the full window length as denominator once the window has been
  // running for at least one length (steady state), otherwise the elapsed
  // time, so early-run rates are not underestimated.
  double RatePerSec(SimTime now);

  std::size_t Size() const { return entries_.size(); }
  Duration length() const { return length_; }
  void set_length(Duration length) { length_ = length; }

 private:
  struct Entry {
    SimTime t;
    double value;
  };

  Duration length_;
  std::deque<Entry> entries_;
  SimTime first_add_ = -1;
};

}  // namespace pard

#endif  // PARD_STATS_SLIDING_WINDOW_H_
