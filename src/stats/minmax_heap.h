// Min–max heap: a complete binary heap supporting O(1) access and O(log n)
// removal of BOTH the minimum and maximum element.
//
// This is the substrate of PARD's DEPQ (double-ended priority queue): the
// Request Broker pops the request with the smallest remaining latency budget
// under LBF and the largest under HBF (paper §4.3, "implements both
// prioritization strategies using a DEPQ ... using a min-max heap").
//
// Layout: array-backed complete tree where even levels (root = level 0) obey
// the min property and odd levels the max property [Atkinson et al., 1986].
#ifndef PARD_STATS_MINMAX_HEAP_H_
#define PARD_STATS_MINMAX_HEAP_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace pard {

template <typename T, typename Less = std::less<T>>
class MinMaxHeap {
 public:
  explicit MinMaxHeap(Less less = Less()) : less_(std::move(less)) {}

  bool Empty() const { return data_.empty(); }
  std::size_t Size() const { return data_.size(); }
  void Clear() { data_.clear(); }

  void Push(T value) {
    data_.push_back(std::move(value));
    BubbleUp(data_.size() - 1);
  }

  // Removes every element matching `pred` and restores the heap invariant.
  // O(n log n); used for periodic compaction of lazily-invalidated entries.
  template <typename Pred>
  void EraseIf(Pred pred) {
    std::vector<T> kept;
    kept.reserve(data_.size());
    for (T& v : data_) {
      if (!pred(v)) {
        kept.push_back(std::move(v));
      }
    }
    data_.clear();
    for (T& v : kept) {
      Push(std::move(v));
    }
  }

  // Smallest element. Requires non-empty.
  const T& Min() const {
    PARD_CHECK(!data_.empty());
    return data_[0];
  }

  // Largest element. Requires non-empty.
  const T& Max() const {
    PARD_CHECK(!data_.empty());
    return data_[MaxIndex()];
  }

  T PopMin() {
    PARD_CHECK(!data_.empty());
    return PopAt(0);
  }

  T PopMax() {
    PARD_CHECK(!data_.empty());
    return PopAt(MaxIndex());
  }

  // Validates the min-max heap invariant over the whole array. Test-only
  // helper; O(n log n).
  bool Validate() const {
    for (std::size_t i = 1; i < data_.size(); ++i) {
      for (std::size_t a = Parent(i); ; a = Parent(a)) {
        if (IsMinLevel(a)) {
          if (less_(data_[i], data_[a])) {
            return false;
          }
        } else {
          if (less_(data_[a], data_[i])) {
            return false;
          }
        }
        if (a == 0) {
          break;
        }
      }
    }
    return true;
  }

 private:
  static std::size_t Parent(std::size_t i) { return (i - 1) / 2; }
  static std::size_t Left(std::size_t i) { return 2 * i + 1; }

  static bool IsMinLevel(std::size_t i) {
    // Level of node i is floor(log2(i + 1)); even levels are min levels.
    int level = 0;
    std::size_t n = i + 1;
    while (n >>= 1) {
      ++level;
    }
    return (level % 2) == 0;
  }

  std::size_t MaxIndex() const {
    if (data_.size() == 1) {
      return 0;
    }
    if (data_.size() == 2) {
      return 1;
    }
    return less_(data_[1], data_[2]) ? 2 : 1;
  }

  T PopAt(std::size_t i) {
    T out = std::move(data_[i]);
    const std::size_t last = data_.size() - 1;
    if (i != last) {
      data_[i] = std::move(data_[last]);
      data_.pop_back();
      // The moved element may violate either direction.
      TrickleDown(i);
      BubbleUp(i);
    } else {
      data_.pop_back();
    }
    return out;
  }

  void BubbleUp(std::size_t i) {
    if (i == 0) {
      return;
    }
    const std::size_t parent = Parent(i);
    if (IsMinLevel(i)) {
      if (less_(data_[parent], data_[i])) {
        std::swap(data_[i], data_[parent]);
        BubbleUpDir(parent, /*min_dir=*/false);
      } else {
        BubbleUpDir(i, /*min_dir=*/true);
      }
    } else {
      if (less_(data_[i], data_[parent])) {
        std::swap(data_[i], data_[parent]);
        BubbleUpDir(parent, /*min_dir=*/true);
      } else {
        BubbleUpDir(i, /*min_dir=*/false);
      }
    }
  }

  // Bubbles node i up through grandparents along one direction.
  void BubbleUpDir(std::size_t i, bool min_dir) {
    while (i > 2) {
      const std::size_t gp = Parent(Parent(i));
      const bool out_of_order =
          min_dir ? less_(data_[i], data_[gp]) : less_(data_[gp], data_[i]);
      if (!out_of_order) {
        return;
      }
      std::swap(data_[i], data_[gp]);
      i = gp;
    }
  }

  void TrickleDown(std::size_t i) {
    if (IsMinLevel(i)) {
      TrickleDownDir(i, /*min_dir=*/true);
    } else {
      TrickleDownDir(i, /*min_dir=*/false);
    }
  }

  void TrickleDownDir(std::size_t i, bool min_dir) {
    const std::size_t n = data_.size();
    while (true) {
      // Find extreme among children and grandchildren.
      std::size_t m = i;
      bool m_is_grandchild = false;
      const std::size_t first_child = Left(i);
      for (std::size_t c = first_child; c < n && c <= first_child + 1; ++c) {
        if (Extreme(c, m, min_dir)) {
          m = c;
          m_is_grandchild = false;
        }
        const std::size_t first_gc = Left(c);
        for (std::size_t g = first_gc; g < n && g <= first_gc + 1; ++g) {
          if (Extreme(g, m, min_dir)) {
            m = g;
            m_is_grandchild = true;
          }
        }
      }
      if (m == i) {
        return;
      }
      std::swap(data_[i], data_[m]);
      if (!m_is_grandchild) {
        return;
      }
      // After swapping with a grandchild, the parent of m may now be out of
      // order relative to m (opposite level).
      const std::size_t p = Parent(m);
      const bool parent_wrong =
          min_dir ? less_(data_[p], data_[m]) : less_(data_[m], data_[p]);
      if (parent_wrong) {
        std::swap(data_[m], data_[p]);
      }
      i = m;
    }
  }

  bool Extreme(std::size_t a, std::size_t b, bool min_dir) const {
    return min_dir ? less_(data_[a], data_[b]) : less_(data_[b], data_[a]);
  }

  Less less_;
  std::vector<T> data_;
};

}  // namespace pard

#endif  // PARD_STATS_MINMAX_HEAP_H_
