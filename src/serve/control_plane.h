// Thread-safe facade over the drop policy, latency estimator and StateBoard.
//
// None of the decision-time machinery is internally synchronized: the
// estimator's epoch cache and RNG mutate on every ShouldDrop(), the adaptive
// priority controllers mutate on OnSync(), and StateBoard::Publish bumps the
// version counter the caches key on. In the simulator a single event loop
// serializes all of it for free; in the serving runtime many module workers
// decide concurrently, so every policy/board touch goes through this facade
// and its single mutex.
//
// One lock for the whole control plane is deliberate (and cheap): between
// state syncs a PARD broker decision is an epoch-cache read — nanoseconds
// under the lock — and syncs are once per virtual second. TSan-cleanliness
// of the serve suite pins the contract.
//
// Lock ordering: module mutex → control mutex is the only permitted nesting
// (workers decide while holding their module's lock). The sync path
// therefore snapshots module state FIRST (module locks, one at a time) and
// publishes SECOND (control lock), never holding both.
#ifndef PARD_SERVE_CONTROL_PLANE_H_
#define PARD_SERVE_CONTROL_PLANE_H_

#include <mutex>
#include <vector>

#include "runtime/drop_policy.h"
#include "runtime/state_board.h"

namespace pard {

class ControlPlane {
 public:
  // `policy` and `board` must outlive the control plane. Binds the policy to
  // the spec/board like PipelineRuntime does.
  ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board);

  // Request Broker decision (workers, batch formation / ingress admission).
  bool ShouldDrop(const AdmissionContext& ctx);
  PopSide ChoosePopSide(int module_id, SimTime now);
  bool AdmitAtModule(const Request& request, int module_id, SimTime now);
  // Lock-free: a fixed per-policy property, cached at construction so every
  // batch formation does not take the global mutex just to re-read it.
  bool PurgeExpired() const { return purge_expired_; }

  // State sync: publishes every snapshot, then lets the policy react —
  // exactly PipelineRuntime::SyncTick under one lock acquisition.
  void Sync(std::vector<ModuleState> states, SimTime now);

 private:
  mutable std::mutex mu_;
  DropPolicy* policy_;
  StateBoard* board_;
  bool purge_expired_;
};

}  // namespace pard

#endif  // PARD_SERVE_CONTROL_PLANE_H_
