// The serve-side control plane: lock-free broker reads over RCU snapshots.
//
// None of the decision-time machinery is internally synchronized: the
// estimator's epoch cache and RNG mutate on every estimate, the adaptive
// priority controllers mutate on OnSync(), and StateBoard::Publish bumps the
// version counter the caches key on. The simulator's single event loop
// serializes all of it for free; in the serving runtime many broker threads
// (module workers forming batches plus ingress admission threads) decide
// concurrently. PR 4's answer was one mutex around everything — correct,
// but every decision serialized. This control plane splits the problem by
// write frequency instead:
//
//   READ PATH (hot, every request): ShouldDrop / ChoosePopSide /
//   AdmitAtModule pin the current ControlSnapshot through an epoch-based
//   SnapshotCell (runtime/snapshot.h) — one CAS, no mutex — and decide
//   against the policy's immutable PolicyView. Decisions within one pin are
//   mutually consistent: they all see the same sync's state.
//
//   WRITE PATH (cold, once per sync period): Sync() takes the control
//   mutex, publishes the module states to the StateBoard, runs the policy's
//   OnSync(), asks it for a fresh PolicyView (PARD refreshes its estimator
//   epoch cache here — the Monte-Carlo work moves from first-decision-after-
//   sync to the sync itself), and publishes the assembled snapshot. Retired
//   snapshots are reclaimed once no reader pins them.
//
//   SHARDED RESIDUE: policies whose admission needs randomness (the DAGOR
//   baseline's Bernoulli shed) draw from per-shard RNGs behind striped
//   mutexes picked by request id, so admission entropy scales with shards
//   instead of serializing globally.
//
// Policies that return no view (MakeView() == nullptr, the default for
// out-of-tree policies) fall back to the single-mutex path — the exact
// PR 4 behavior, also selectable via Options::force_locked as the baseline
// leg of the bench/micro_overhead.cc admission benchmark.
//
// Lock ordering (enforced in debug builds by common/lock_order.h): a worker
// may take the control mutex (fallback path) or an admission-shard mutex
// while holding its module's queue-shard lock, never the reverse. The sync
// path snapshots module state FIRST (module-side locks, one at a time) and
// publishes SECOND (control lock), never holding both. TSan-cleanliness of
// the serve suite pins the whole contract.
#ifndef PARD_SERVE_CONTROL_PLANE_H_
#define PARD_SERVE_CONTROL_PLANE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "runtime/drop_policy.h"
#include "runtime/snapshot.h"
#include "runtime/state_board.h"

namespace pard {

// One sync interval's frozen control state: the board states as published,
// and the policy's immutable decision view (null when the policy opted out
// of snapshotting).
struct ControlSnapshot {
  std::uint64_t board_version = 0;
  // Virtual time at which Sync() published this snapshot (0 for the initial
  // snapshot). Lock-free readers compare it against the staleness budget to
  // detect a dead/stalled sync thread.
  SimTime published_at = 0;
  std::vector<ModuleState> states;
  std::shared_ptr<const PolicyView> view;
};

class ControlPlane {
 public:
  struct Options {
    // Striped admission-RNG shards for randomized admission policies.
    int admission_shards = 8;
    // Seeds the per-shard RNG forks.
    std::uint64_t seed = 1234;
    // Forces every decision through the single-mutex fallback even when the
    // policy provides a view — the pre-sharding baseline, kept honest by
    // the bench/micro_overhead.cc admission benchmark.
    bool force_locked = false;
    // Graceful degradation: when > 0 and the pinned snapshot's published_at
    // is older than this, broker decisions fall back to a conservative
    // static rule instead of trusting a stale estimator (see the reader
    // implementations for the exact rules). 0 disables the check.
    Duration staleness_budget = 0;
  };

  // `policy` and `board` must outlive the control plane. Binds the policy to
  // the spec/board like PipelineRuntime does, and publishes the initial
  // snapshot so readers never see an empty cell.
  ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board,
               Options options);
  // Default options (no default argument: Options' member initializers are
  // not usable until the enclosing class is complete).
  ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board);

  // --- Request Broker decisions (lock-free snapshot reads) ----------------
  bool ShouldDrop(const AdmissionContext& ctx);
  PopSide ChoosePopSide(int module_id, SimTime now);
  bool AdmitAtModule(const Request& request, int module_id, SimTime now);
  // Lock-free: a fixed per-policy property, cached at construction so every
  // batch formation does not pin a snapshot just to re-read it.
  bool PurgeExpired() const { return purge_expired_; }

  // State sync: publishes every module state, lets the policy react, then
  // swaps in the next snapshot — one control-lock acquisition per period.
  void Sync(std::vector<ModuleState> states, SimTime now);

  // True when broker decisions run on the lock-free snapshot path.
  bool LockFree() const { return !force_locked_ && has_view_; }
  // Snapshot epochs are monotone: 1 at construction, +1 per Sync.
  std::uint64_t SnapshotEpoch() const { return snapshot_.Epoch(); }
  // Broker decisions answered by the conservative static fallback because
  // the pinned snapshot exceeded the staleness budget.
  std::uint64_t StaleFallbacks() const {
    return stale_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) AdmissionShard {
    std::mutex mu;
    Rng rng{1};
  };

  // Builds the snapshot for the current board/policy state, stamped with the
  // publish time. Caller holds mu_ (or is the constructor).
  std::unique_ptr<const ControlSnapshot> BuildSnapshot(SimTime now);
  // True when the staleness budget is enabled and `snap` is too old at
  // `now`; counts the fallback.
  bool Stale(const ControlSnapshot& snap, SimTime now);
  AdmissionShard& ShardFor(const Request& request) {
    return *shards_[static_cast<std::size_t>(request.id) % shards_.size()];
  }

  mutable std::mutex mu_;  // LockRank::kControl.
  DropPolicy* policy_;
  StateBoard* board_;
  bool purge_expired_ = false;
  bool force_locked_ = false;
  Duration staleness_budget_ = 0;
  bool has_view_ = false;  // Written once in the constructor, then const.
  std::atomic<std::uint64_t> stale_fallbacks_{0};
  std::vector<std::unique_ptr<AdmissionShard>> shards_;
  SnapshotCell<ControlSnapshot> snapshot_;
};

}  // namespace pard

#endif  // PARD_SERVE_CONTROL_PLANE_H_
