// The serve-side control plane: lock-free broker reads over RCU snapshots.
//
// None of the decision-time machinery is internally synchronized: the
// estimator's epoch cache and RNG mutate on every estimate, the adaptive
// priority controllers mutate on OnSync(), and StateBoard::Publish bumps the
// version counter the caches key on. The simulator's single event loop
// serializes all of it for free; in the serving runtime many broker threads
// (module workers forming batches plus ingress admission threads) decide
// concurrently. PR 4's answer was one mutex around everything — correct,
// but every decision serialized. This control plane splits the problem by
// write frequency instead:
//
//   READ PATH (hot, every request): ShouldDrop / ChoosePopSide /
//   AdmitAtModule pin the current ControlSnapshot through an epoch-based
//   SnapshotCell (runtime/snapshot.h) — one CAS, no mutex — and decide
//   against the policy's immutable PolicyView. Decisions within one pin are
//   mutually consistent: they all see the same sync's state.
//
//   WRITE PATH (cold, once per sync period): Sync() publishes the module
//   states to the StateBoard, runs the policy's OnSync(), refreshes the
//   policy's estimator incrementally (RefreshEstimates — only modules whose
//   inputs moved are re-drawn, optionally fanned across the refresh pool),
//   builds the next ControlSnapshot and publishes it with one SnapshotCell
//   store. On the snapshot path ALL of that runs off the control mutex:
//   when LockFree() holds, no broker ever takes mu_ or touches the
//   board/policy (they only read published snapshots), and Sync has exactly
//   one caller (the control thread) — so a slow refresh can no longer stall
//   a single broker decision. Retired snapshots are reclaimed once no
//   reader pins them. Policies without a view (and force_locked) keep the
//   historical everything-under-mu_ sync, which also skips the incremental
//   refresh — their estimates come from the lazy shared-stream draws,
//   bit-identical to the pre-refactor behavior.
//
//   SHARDED RESIDUE: policies whose admission needs randomness (the DAGOR
//   baseline's Bernoulli shed) draw from per-shard RNGs behind striped
//   mutexes picked by request id, so admission entropy scales with shards
//   instead of serializing globally.
//
// Policies that return no view (MakeView() == nullptr, the default for
// out-of-tree policies) fall back to the single-mutex path — the exact
// PR 4 behavior, also selectable via Options::force_locked as the baseline
// leg of the bench/micro_overhead.cc admission benchmark.
//
// Lock ordering (enforced in debug builds by common/lock_order.h): a worker
// may take the control mutex (fallback path) or an admission-shard mutex
// while holding its module's queue-shard lock, never the reverse. The sync
// path snapshots module state FIRST (module-side locks, one at a time) and
// publishes SECOND (control lock), never holding both. TSan-cleanliness of
// the serve suite pins the whole contract.
#ifndef PARD_SERVE_CONTROL_PLANE_H_
#define PARD_SERVE_CONTROL_PLANE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "runtime/drop_policy.h"
#include "runtime/snapshot.h"
#include "runtime/state_board.h"

namespace pard {

class ThreadPool;

// One sync interval's frozen control state: the board states as published,
// and the policy's immutable decision view (null when the policy opted out
// of snapshotting).
struct ControlSnapshot {
  std::uint64_t board_version = 0;
  // Virtual time at which Sync() published this snapshot (0 for the initial
  // snapshot). Lock-free readers compare it against the staleness budget to
  // detect a dead/stalled sync thread.
  SimTime published_at = 0;
  // Scalar module states only: the wait reservoirs (up to 10k doubles per
  // module) are estimator inputs consumed during Sync() and never read from
  // a snapshot, so BuildSnapshot strips them instead of copying ~1 MB per
  // sync interval.
  std::vector<ModuleState> states;
  std::shared_ptr<const PolicyView> view;
};

class ControlPlane {
 public:
  struct Options {
    // Striped admission-RNG shards for randomized admission policies.
    int admission_shards = 8;
    // Seeds the per-shard RNG forks.
    std::uint64_t seed = 1234;
    // Forces every decision through the single-mutex fallback even when the
    // policy provides a view — the pre-sharding baseline, kept honest by
    // the bench/micro_overhead.cc admission benchmark.
    bool force_locked = false;
    // Graceful degradation: when > 0 and the pinned snapshot's published_at
    // is older than this, broker decisions fall back to a conservative
    // static rule instead of trusting a stale estimator (see the reader
    // implementations for the exact rules). 0 disables the check.
    Duration staleness_budget = 0;
    // Fan the policy's incremental estimator refresh across a thread pool
    // during Sync() (per-module forked RNG streams keep the result
    // identical at any thread count). false = run the refresh inline on the
    // control thread; the refresh itself stays incremental either way.
    // Only consulted on the lock-free sync path — the locked fallback keeps
    // the historical lazy refresh.
    bool parallel_refresh = true;
    // Refresh-pool threads; 0 = one per hardware thread
    // (ThreadPool::ResolveJobs). Ignored unless parallel_refresh.
    int refresh_threads = 0;
  };

  // `policy` and `board` must outlive the control plane. Binds the policy to
  // the spec/board like PipelineRuntime does, and publishes the initial
  // snapshot so readers never see an empty cell.
  ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board,
               Options options);
  // Default options (no default argument: Options' member initializers are
  // not usable until the enclosing class is complete).
  ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board);
  ~ControlPlane();

  // --- Request Broker decisions (lock-free snapshot reads) ----------------
  bool ShouldDrop(const AdmissionContext& ctx);
  PopSide ChoosePopSide(int module_id, SimTime now);
  bool AdmitAtModule(const Request& request, int module_id, SimTime now);
  // Lock-free: a fixed per-policy property, cached at construction so every
  // batch formation does not pin a snapshot just to re-read it.
  bool PurgeExpired() const { return purge_expired_; }

  // State sync: publishes every module state, lets the policy react,
  // refreshes its estimator incrementally, then swaps in the next snapshot.
  // Entirely off the control lock when LockFree() holds (see the WRITE PATH
  // note above); one control-lock acquisition on the fallback path. Single
  // caller only — the control thread owns both the board and the snapshot
  // cell's writer side.
  struct SyncStats {
    int refreshed = 0;   // estimator cache entries recomputed
    int skipped = 0;     // estimator cache entries reused unchanged
    bool off_lock = false;  // true = snapshot path, mu_ never taken
  };
  SyncStats Sync(std::vector<ModuleState> states, SimTime now);

  // True when broker decisions run on the lock-free snapshot path.
  bool LockFree() const { return !force_locked_ && has_view_; }
  // Snapshot epochs are monotone: 1 at construction, +1 per Sync.
  std::uint64_t SnapshotEpoch() const { return snapshot_.Epoch(); }
  // Broker decisions answered by the conservative static fallback because
  // the pinned snapshot exceeded the staleness budget.
  std::uint64_t StaleFallbacks() const {
    return stale_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) AdmissionShard {
    std::mutex mu;
    Rng rng{1};
  };

  // Builds the snapshot for the current board/policy state, stamped with the
  // publish time. Caller is the control thread: either holding mu_ (locked
  // fallback, constructor) or off-lock on the snapshot path, where the
  // board/policy have no other readers or writers.
  std::unique_ptr<const ControlSnapshot> BuildSnapshot(SimTime now);
  // True when the staleness budget is enabled and `snap` is too old at
  // `now`; counts the fallback.
  bool Stale(const ControlSnapshot& snap, SimTime now);
  AdmissionShard& ShardFor(const Request& request) {
    return *shards_[static_cast<std::size_t>(request.id) % shards_.size()];
  }

  mutable std::mutex mu_;  // LockRank::kControl.
  DropPolicy* policy_;
  StateBoard* board_;
  bool purge_expired_ = false;
  bool force_locked_ = false;
  Duration staleness_budget_ = 0;
  bool has_view_ = false;  // Written once in the constructor, then const.
  std::atomic<std::uint64_t> stale_fallbacks_{0};
  std::vector<std::unique_ptr<AdmissionShard>> shards_;
  // Workers for the policy's incremental estimator refresh; null when
  // Options::parallel_refresh is off (refresh runs inline on the control
  // thread). Owned here so the pool outlives every Sync.
  std::unique_ptr<ThreadPool> refresh_pool_;
  SnapshotCell<ControlSnapshot> snapshot_;
};

}  // namespace pard

#endif  // PARD_SERVE_CONTROL_PLANE_H_
