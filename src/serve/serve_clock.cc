#include "serve/serve_clock.h"

#include <cmath>
#include <thread>

#include "common/check.h"

namespace pard {

ServeClock::ServeClock(double speedup) : speedup_(speedup) {
  PARD_CHECK_MSG(std::isfinite(speedup) && speedup > 0.0, "speedup must be positive");
}

void ServeClock::Start() { epoch_ = std::chrono::steady_clock::now(); }

SimTime ServeClock::Now() const {
  const auto wall = std::chrono::steady_clock::now() - epoch_;
  const double wall_us = std::chrono::duration<double, std::micro>(wall).count();
  return static_cast<SimTime>(wall_us * speedup_);
}

std::chrono::steady_clock::time_point ServeClock::WallAt(SimTime t) const {
  const double wall_us = static_cast<double>(t) / speedup_;
  return epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::micro>(wall_us));
}

void ServeClock::SleepUntil(SimTime t) const { std::this_thread::sleep_until(WallAt(t)); }

void ServeClock::SleepFor(Duration d) const {
  if (d <= 0) {
    return;
  }
  const double wall_us = static_cast<double>(d) / speedup_;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(wall_us));
}

}  // namespace pard
