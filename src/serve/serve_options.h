// Configuration specific to the wall-clock serving runtime.
//
// Same documentation convention as runtime/runtime_options.h: every option
// states its default and unit. Everything here is [serve]-only — the
// simulator never reads ServeOptions; knobs both substrates honor live in
// RuntimeOptions.
#ifndef PARD_SERVE_SERVE_OPTIONS_H_
#define PARD_SERVE_SERVE_OPTIONS_H_

#include "common/time_types.h"
#include "serve/load_generator.h"

namespace pard {

struct ServeOptions {
  // Virtual seconds per wall second. Default 20. 1.0 serves in true real
  // time; the default compresses a 240 s trace into 12 s of wall time.
  // Timing noise (scheduler jitter, sleep granularity ~100 us wall) is
  // multiplied by the speedup in virtual terms, so very large values blur
  // the latency decomposition — keep <= ~100 for meaningful numbers.
  double speedup = 20.0;

  // How the load generator produces arrivals. Default kTrace.
  //   kTrace   — replay the harness trace's virtual timestamps (matched
  //              workload for sim-vs-serve comparison).
  //   kPoisson — open-loop homogeneous Poisson at `poisson_rate`.
  //   kMmpp    — two-state Markov-modulated Poisson (bursty stress).
  enum class Arrivals { kTrace, kPoisson, kMmpp };
  Arrivals arrivals = Arrivals::kTrace;
  double poisson_rate = 120.0;  // req/s (virtual), kPoisson only.
  MmppOptions mmpp;             // kMmpp only; defaults in load_generator.h.

  // Virtual drain budget (us) after the last arrival before in-flight
  // requests are abandoned (accounted kLate). Default 5 s. Bounds the run
  // when a queue wedges.
  Duration drain = 5 * kUsPerSec;

  // Hard cap on total worker threads across all modules; provisioning
  // scales down proportionally when the plan exceeds it. Default 64.
  // Real threads are not free the way simulated workers are.
  int max_total_threads = 64;

  // Request-broker ingress threads. 1 (default) delivers each arrival
  // inline on the load-generator thread — the PR 4/5 behavior. N > 1 fans
  // source-module deliveries (merge check, admission front-end, enqueue)
  // across N broker threads pulling from a shared backlog, exercising the
  // control plane's lock-free snapshot path concurrently. Delivery order at
  // the source module becomes approximate across brokers.
  int broker_threads = 1;

  // Fan the policy's incremental estimator refresh across a thread pool at
  // every control sync (ControlPlane::Options::parallel_refresh). Default
  // true. Per-module forked RNG streams keep the refreshed estimates
  // identical at any thread count; false runs the same incremental refresh
  // inline on the control thread.
  bool parallel_refresh = true;

  // Refresh-pool threads; 0 (default) = one per hardware thread. Ignored
  // unless parallel_refresh.
  int refresh_threads = 0;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_OPTIONS_H_
