// Wall-clock serving runtime: the simulator's serving semantics on real
// threads.
//
// Where PipelineRuntime multiplexes every module, worker and control tick
// through one discrete-event loop, ServeRuntime is a live prototype of the
// paper's system: an open-loop load generator injects requests in (scaled)
// real time, each module's GPU workers are OS threads draining sharded
// DEPQs with work stealing, the PARD broker / estimator / baselines make
// their decisions against wall-clock deadlines behind the ControlPlane
// facade, and a control thread publishes ModuleState snapshots once per
// virtual second exactly like the paper's gRPC state exchange.
//
// An admission front-end performs the proactive drops before a request
// enters any module queue: at every delivery the policy's enqueue-time
// admission AND the Request Broker predicate (with the delivery instant as
// the hypothetical batch start) run first, so requests that cannot meet
// their SLO never consume queue space or GPU time. With
// serve.broker_threads > 1 this front-end runs on a pool of broker threads
// fed from a shared ingress backlog, so admission decisions — reads of the
// control plane's published snapshot — execute genuinely concurrently.
//
// Fleet dynamics: worker rosters live in a BackendFleet shared with the
// simulator's abstraction — slots draw (possibly heterogeneous) backend
// profiles from the pipeline's catalog. With options.enable_scaling the
// control thread runs the same scaling engine as the simulator every
// scaling_epoch (target capacity in baseline-worker units from the smoothed
// offered rate; scale-ups are real threads that serve only after their
// profile's cold start, bounded by serve.max_total_threads), recording the
// per-epoch worker history. options.failures / options.fleet_events apply a
// deterministic kill/recover schedule mid-run, mirroring the simulator's
// Worker::Fail semantics (a killed worker's in-flight batch is lost; the
// shared queue shards survive for the remaining workers).
//
// Concurrency contract (ranks per common/lock_order.h). There is no global
// runtime mutex. Mutable state is partitioned by owner:
//   - Request fate/finish transitions, DAG merge counters: 16 fate stripes
//     (kFate, keyed by request id) — the highest rank, so any thread may
//     resolve a fate while holding module/queue/control locks, never the
//     reverse.
//   - The request log, id counter and dynamic-path RNG belong to the load
//     generator thread alone; the final conservation sweep reads them only
//     after every thread has joined.
//   - The ingress backlog (broker pool) has its own leaf mutex, never held
//     across a delivery.
//   - Module queues/monitors and the control plane's snapshot publication
//     synchronize themselves (serve_module.h, control_plane.h).
//
// Scope vs the simulator: inter-module network delay is folded into real
// forwarding cost, and runs are NOT bit-deterministic — thread scheduling
// and sleep granularity vary run to run; determinism lives in the arrival
// stream and the fault schedule only. Leftover in-flight requests at the
// drain deadline are accounted kLate so conservation holds.
#ifndef PARD_SERVE_SERVE_RUNTIME_H_
#define PARD_SERVE_SERVE_RUNTIME_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "core/tenant_governor.h"
#include "exec/thread_pool.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "resilience/chaos.h"
#include "runtime/drop_policy.h"
#include "runtime/request.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "serve/control_plane.h"
#include "serve/serve_clock.h"
#include "serve/serve_module.h"
#include "serve/serve_options.h"

namespace pard {

class Counter;          // obs/metrics.h
class AtomicHistogram;  // obs/metrics.h

class ServeRuntime {
 public:
  // `policy` must outlive the runtime. Worker provisioning mirrors
  // PipelineRuntime (options.fixed_workers, else PlanWorkers from
  // `expected_rate`), additionally capped at serve.max_total_threads real
  // threads across all modules (the cap also bounds runtime scale-ups).
  ServeRuntime(const PipelineSpec& spec, const RuntimeOptions& options, DropPolicy* policy,
               double expected_rate, const ServeOptions& serve);

  // Serves the complete arrival stream (sorted virtual send timestamps) in
  // scaled wall time and blocks until every request is terminal or the drain
  // deadline passes. Call at most once.
  void RunTrace(const std::vector<SimTime>& arrivals);

  // Terminal request records (valid after RunTrace returns); same shape the
  // metrics library analyzes for simulated runs.
  const std::vector<RequestPtr>& requests() const { return requests_; }

  const PipelineSpec& spec() const { return spec_; }
  const ServeClock& clock() const { return clock_; }
  ControlPlane& control() { return control_; }
  const std::vector<int>& batch_sizes() const { return batch_sizes_; }
  const std::vector<int>& worker_plan() const { return worker_plan_; }
  // Shared roster layer: backend profiles, per-worker states, transitions.
  const BackendFleet& fleet() const { return fleet_; }
  // Per-scaling-epoch active worker counts (empty when scaling is off).
  // Valid after RunTrace returns.
  const std::vector<FleetSample>& worker_history() const { return worker_history_; }

  // --- Internal transitions (called from module worker threads) -----------
  void OnModuleDone(const RequestPtr& req, int module_id, SimTime now);
  void Drop(const RequestPtr& req, int module_id, SimTime now, DropReason reason);
  // Deadline-aware retry for a killed/hung worker's in-flight batch: the
  // request is re-enqueued at `module_id` (bounded by
  // options.resilience.max_retries, and only while its remaining deadline
  // budget still covers the stage's planned batch duration); otherwise it
  // drops as kRetryExhausted / kWorkerFailure. Called from the dying worker
  // thread, which owns the batch — retry_count needs no lock.
  void RetryOrDrop(const RequestPtr& req, int module_id, SimTime now);
  // Thread-safe read of req.fate (fates flip on other threads' branches).
  bool IsTerminal(const Request& req) const;

  // Observability (null when disabled). Trace emission goes through the
  // recorder's per-thread SPSC shards, so any worker/broker thread may emit
  // without synchronization; see obs/trace_recorder.h.
  TraceRecorder* trace() { return options_.trace; }
  MetricsRegistry* metrics() { return options_.metrics; }

  // Multi-tenant governor; null for untenanted runs (empty
  // RuntimeOptions::tenants). Its ingress reads are lock-free, so the load
  // generator consults it without entering the lock-rank hierarchy.
  const TenantGovernor* governor() const { return governor_.get(); }

  // Resilience counters (valid while running and after RunTrace returns).
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  // Hung workers the watchdog force-failed (each one also provisions a
  // replacement, thread budget permitting).
  std::uint64_t watchdog_recoveries() const {
    return watchdog_kills_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kFateStripes = 16;

  void Inject(SimTime scheduled);
  // Broker pool thread: pops ingress backlog entries and runs the delivery
  // front-end for the source module. Only active with broker_threads > 1.
  void BrokerLoop();
  // Stops the broker pool first (its backlog is provably empty on a drained
  // run, discarded otherwise), then the control thread (so no scale-up can
  // spawn a thread while modules join), then module workers in topo order,
  // so downstream drains what upstream already forwarded. With
  // `abandon_backlog` (drain timeout, mid-run exception) queued requests are
  // discarded instead of served, bounding shutdown to ~one in-flight batch
  // per worker even under a drop-free policy. Idempotent; runs on the normal
  // exit path AND before rethrowing a mid-run exception, so worker threads
  // are never left parked on a condition variable a destructor would then
  // join forever.
  void Shutdown(bool abandon_backlog);
  // Metrics sampler thread: snapshots the registry every
  // options_.metrics_interval of virtual time while the run is live. Reads
  // only lock-free instruments + the registry's leaf mutex, so it can stop
  // at any point in the shutdown sequence.
  void SamplerLoop();
  // Admission front-end + merge bookkeeping + enqueue.
  void Deliver(const RequestPtr& req, int module_id, SimTime now);
  void Complete(const RequestPtr& req, SimTime now);
  // Load-generator thread only (owns rng_).
  void AssignDynamicPath(Request& req);
  // Control thread: state sync every sync_period, the scaling engine every
  // scaling_epoch (when enabled), and the deterministic fault schedule.
  void ControlLoop();
  void ScalingTick(SimTime now);
  // O(1): reads the in-flight counter, so the 2 ms drain poll never scans
  // the request log while workers race the deadline.
  bool AllTerminal() const { return in_flight_.load(std::memory_order_acquire) == 0; }
  std::mutex& FateMutex(const Request& req) const {
    return fate_mu_[static_cast<std::size_t>(req.id) % kFateStripes];
  }

  PipelineSpec spec_;
  RuntimeOptions options_;
  ServeOptions serve_;
  ServeClock clock_;
  StateBoard board_;
  ControlPlane control_;
  std::vector<int> batch_sizes_;
  std::vector<int> worker_plan_;
  BackendFleet fleet_;
  // Merged options_.failures + options_.fleet_events, sorted by time;
  // applied from the control thread.
  std::vector<FleetEvent> fault_schedule_;
  // Expanded chaos schedule (probabilistic templates already concretized),
  // sorted by time; applied from the control thread.
  std::vector<ChaosEvent> chaos_schedule_;
  // Per-module d(batch) at the planned batch size, cached at construction so
  // ingress admission never touches the profile registry from worker threads.
  std::vector<Duration> planned_batch_duration_;
  std::vector<std::unique_ptr<ServeModule>> modules_;
  // Written by the control thread only; read after RunTrace joins it.
  std::vector<FleetSample> worker_history_;

  // Striped fate locks (LockRank::kFate): request fate/finish transitions
  // and DAG merge counters for request r serialize on stripe r.id % 16.
  // Nothing else is ever acquired under a fate stripe.
  mutable std::array<std::mutex, kFateStripes> fate_mu_;
  // Load-generator thread only; read post-join by the conservation sweep.
  Rng rng_;
  std::vector<RequestPtr> requests_;
  std::uint64_t next_request_id_ = 1;
  // Injected-but-not-terminal count; bumped in Inject, dropped on the fate
  // transition in Drop/Complete (under the request's fate stripe, but atomic
  // so the drain loop can read without any lock).
  std::atomic<std::size_t> in_flight_{0};

  // Ingress backlog for the broker pool (broker_threads > 1). Leaf mutex:
  // held only around deque operations, never across a delivery.
  std::mutex broker_mu_;
  std::condition_variable broker_ready_;
  std::deque<RequestPtr> broker_backlog_;
  bool broker_stop_ = false;
  WorkerGroup broker_pool_;

  std::atomic<bool> stop_control_{false};
  WorkerGroup control_thread_;
  std::atomic<bool> stop_sampler_{false};
  WorkerGroup sampler_thread_;
  bool ran_ = false;

  // Resilience accounting: bumped from worker threads (retries) and the
  // control thread (watchdog kills); read by getters and the text summary.
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> watchdog_kills_{0};

  // Pre-resolved instruments (null when options_.metrics is null). Fate
  // counters are bumped outside the fate stripe — counters are lock-free.
  Counter* completed_counter_ = nullptr;
  Counter* drop_reason_counters_[kNumDropReasons] = {};
  Counter* retry_counter_ = nullptr;
  Counter* watchdog_counter_ = nullptr;
  std::vector<Counter*> admitted_counters_;  // per module
  // Tenant-keyed fate tallies ("tenant.<name>.completed|dropped"), indexed
  // by tenant; empty when untenanted or metrics are disabled. Counters are
  // lock-free, bumped outside the fate stripes like the fate counters.
  std::vector<Counter*> tenant_completed_;
  std::vector<Counter*> tenant_dropped_;
  // Control-sync health: wall-clock Sync() duration (us) and what the
  // incremental estimator refresh did each epoch. Bumped by the control
  // thread only.
  AtomicHistogram* sync_duration_hist_ = nullptr;
  Counter* refresh_refreshed_counter_ = nullptr;
  Counter* refresh_skipped_counter_ = nullptr;
  // Weighted ingress governor (null when options_.tenants is empty). The
  // control thread resyncs it at each snapshot publish; Inject reads it
  // lock-free.
  std::unique_ptr<TenantGovernor> governor_;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_RUNTIME_H_
