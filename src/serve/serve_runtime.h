// Wall-clock serving runtime: the simulator's serving semantics on real
// threads.
//
// Where PipelineRuntime multiplexes every module, worker and control tick
// through one discrete-event loop, ServeRuntime is a live prototype of the
// paper's system: an open-loop load generator injects requests in (scaled)
// real time, each module's GPU workers are OS threads draining a shared
// DEPQ, the PARD broker / estimator / baselines make their decisions against
// wall-clock deadlines behind the ControlPlane facade, and a state-sync
// thread publishes ModuleState snapshots once per virtual second exactly
// like the paper's gRPC state exchange.
//
// An admission front-end performs the proactive drops before a request
// enters any module queue: at every delivery the policy's enqueue-time
// admission AND the Request Broker predicate (with the delivery instant as
// the hypothetical batch start) run first, so requests that cannot meet
// their SLO never consume queue space or GPU time.
//
// Scope vs the simulator: worker counts are fixed for the run (no scaling
// engine), failure injection is not modeled, and inter-module network delay
// is folded into real forwarding cost. Runs are NOT bit-deterministic —
// thread scheduling and sleep granularity vary run to run; determinism lives
// in the arrival stream only. Leftover in-flight requests at the drain
// deadline are accounted kLate so conservation holds.
#ifndef PARD_SERVE_SERVE_RUNTIME_H_
#define PARD_SERVE_SERVE_RUNTIME_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/drop_policy.h"
#include "runtime/request.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "serve/control_plane.h"
#include "serve/serve_clock.h"
#include "serve/serve_module.h"
#include "serve/serve_options.h"

namespace pard {

class ServeRuntime {
 public:
  // `policy` must outlive the runtime. Worker provisioning mirrors
  // PipelineRuntime (options.fixed_workers, else PlanWorkers from
  // `expected_rate`), additionally capped at serve.max_total_threads real
  // threads across all modules.
  ServeRuntime(const PipelineSpec& spec, const RuntimeOptions& options, DropPolicy* policy,
               double expected_rate, const ServeOptions& serve);

  // Serves the complete arrival stream (sorted virtual send timestamps) in
  // scaled wall time and blocks until every request is terminal or the drain
  // deadline passes. Call at most once.
  void RunTrace(const std::vector<SimTime>& arrivals);

  // Terminal request records (valid after RunTrace returns); same shape the
  // metrics library analyzes for simulated runs.
  const std::vector<RequestPtr>& requests() const { return requests_; }

  const PipelineSpec& spec() const { return spec_; }
  const ServeClock& clock() const { return clock_; }
  ControlPlane& control() { return control_; }
  const std::vector<int>& batch_sizes() const { return batch_sizes_; }
  const std::vector<int>& worker_plan() const { return worker_plan_; }

  // --- Internal transitions (called from module worker threads) -----------
  void OnModuleDone(const RequestPtr& req, int module_id, SimTime now);
  void Drop(const RequestPtr& req, int module_id, SimTime now);
  // Thread-safe read of req.fate (fates flip on other threads' branches).
  bool IsTerminal(const Request& req) const;

 private:
  void Inject(SimTime scheduled);
  // Stops module workers (topo order, so downstream drains what upstream
  // already forwarded) and the sync thread. With `abandon_backlog` (drain
  // timeout, mid-run exception) queued requests are discarded instead of
  // served, bounding shutdown to ~one in-flight batch per worker even under
  // a drop-free policy. Idempotent; runs on the normal exit path AND before
  // rethrowing a mid-run exception, so worker threads are never left parked
  // on a condition variable a destructor would then join forever.
  void Shutdown(bool abandon_backlog);
  // Admission front-end + merge bookkeeping + enqueue.
  void Deliver(const RequestPtr& req, int module_id, SimTime now);
  void Complete(const RequestPtr& req, SimTime now);
  void AssignDynamicPathLocked(Request& req);
  void SyncLoop();
  // O(1): reads the in-flight counter, so the 2 ms drain poll never scans
  // the request log under state_mu_ while workers race the deadline.
  bool AllTerminal() const { return in_flight_.load(std::memory_order_acquire) == 0; }

  PipelineSpec spec_;
  RuntimeOptions options_;
  ServeOptions serve_;
  ServeClock clock_;
  StateBoard board_;
  ControlPlane control_;
  std::vector<int> batch_sizes_;
  std::vector<int> worker_plan_;
  // Per-module d(batch) at the planned batch size, cached at construction so
  // ingress admission never touches the profile registry from worker threads.
  std::vector<Duration> planned_batch_duration_;
  std::vector<std::unique_ptr<ServeModule>> modules_;

  // Guards request fate/finish transitions, DAG merge counters, the request
  // log and the dynamic-path RNG. Never held while taking a module or
  // control-plane lock.
  mutable std::mutex state_mu_;
  Rng rng_;
  std::vector<RequestPtr> requests_;
  std::uint64_t next_request_id_ = 1;
  // Injected-but-not-terminal count; bumped in Inject, dropped on the
  // fate transition in Drop/Complete (both under state_mu_, but atomic so
  // the drain loop can read without the lock).
  std::atomic<std::size_t> in_flight_{0};

  std::atomic<bool> stop_sync_{false};
  WorkerGroup sync_thread_;
  bool ran_ = false;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_RUNTIME_H_
