#include "serve/serve_module.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/lock_order.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "serve/serve_runtime.h"

namespace pard {

ServeModule::ServeModule(ServeRuntime* runtime, BackendFleet* fleet, const ModuleSpec& spec,
                         const ModelProfile& profile, int batch_size, int workers,
                         const RuntimeOptions& options)
    : runtime_(runtime),
      fleet_(fleet),
      spec_(spec),
      profile_(profile),
      batch_size_(batch_size),
      initial_workers_(workers),
      options_(options) {
  PARD_CHECK(batch_size_ >= 1);
  PARD_CHECK(initial_workers_ >= 1);
  PARD_CHECK(fleet_ != nullptr);
  // One shard per initial worker (capped): enough to spread contention while
  // keeping the steal scan and the per-shard monitor slices cheap to merge.
  const int num_shards = std::min(std::max(initial_workers_, 1), 8);
  const std::size_t reservoir_per_shard = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.reservoir_capacity) /
             static_cast<std::size_t>(num_shards));
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<QueueShard>(options.stats_window, reservoir_per_shard));
  }
  if (options_.metrics != nullptr) {
    const std::string prefix = "module.m" + std::to_string(spec_.id) + ".";
    executed_counter_ = options_.metrics->GetCounter(prefix + "executed");
    steal_counter_ = options_.metrics->GetCounter(prefix + "steals");
    batch_size_hist_ = options_.metrics->GetHistogram(
        prefix + "batch_size", 0.0, static_cast<double>(batch_size_) + 1.0,
        static_cast<std::size_t>(batch_size_) + 1);
    for (int i = 0; i < num_shards; ++i) {
      depth_gauges_.push_back(options_.metrics->GetGauge(
          prefix + "shard" + std::to_string(i) + ".depth"));
    }
  }
}

void ServeModule::SpawnWorker(bool warm, SimTime now) {
  const BackendSlot slot = fleet_->Provision(spec_.id, now);
  if (warm) {
    fleet_->SetState(spec_.id, slot.worker_id, BackendState::kActive, now);
  }
  const int index = spawned_++;
  const int home = index % static_cast<int>(shards_.size());
  // Worker-private jitter stream: forked per slot so batch jitter needs no
  // shared RNG (and no lock) on the execution path.
  Rng jitter = Rng(options_.seed)
                   .Fork("serve-jitter:" + std::to_string(spec_.id) + ":" +
                         std::to_string(index));
  ServeWorker* worker = nullptr;
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    roster_.push_back(
        std::make_unique<ServeWorker>(slot, /*cold=*/!warm, home, jitter));
    worker = roster_.back().get();
  }
  workers_.Spawn([this, worker] { WorkerLoop(worker); });
}

void ServeModule::Start() {
  for (int i = 0; i < initial_workers_; ++i) {
    SpawnWorker(/*warm=*/true, 0);  // The initial fleet starts warm.
  }
}

int ServeModule::AddWorkers(int count, SimTime now) {
  // Per-module worker cap, exactly like the simulator's recovery path.
  count = std::min(count,
                   options_.max_workers_per_module - fleet_->ProvisionedCount(spec_.id));
  for (int i = 0; i < count; ++i) {
    SpawnWorker(/*warm=*/false, now);
  }
  return std::max(0, count);
}

int ServeModule::FailWorkers(int count, SimTime now) {
  int killed = 0;
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest active workers first, mirroring ModuleRuntime::FailWorkers.
    for (auto& entry : roster_) {
      if (killed >= count) {
        break;
      }
      ServeWorker& w = *entry;
      if (w.kill.load(std::memory_order_relaxed)) {
        continue;
      }
      if (fleet_->State(spec_.id, w.slot.worker_id) != BackendState::kActive) {
        continue;
      }
      w.kill.store(true, std::memory_order_release);
      fleet_->SetState(spec_.id, w.slot.worker_id, BackendState::kFailed, now);
      ++killed;
    }
  }
  work_ready_.notify_all();
  return killed;
}

int ServeModule::HangWorkers(int count, Duration duration, SimTime now) {
  const SimTime until =
      duration > 0 ? now + duration : std::numeric_limits<SimTime>::max();
  int hung = 0;
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest active workers first, like FailWorkers.
    for (auto& entry : roster_) {
      if (hung >= count) {
        break;
      }
      ServeWorker& w = *entry;
      if (w.kill.load(std::memory_order_relaxed) ||
          w.drain.load(std::memory_order_relaxed) ||
          w.hang_until.load(std::memory_order_relaxed) > now) {
        continue;
      }
      if (fleet_->State(spec_.id, w.slot.worker_id) != BackendState::kActive) {
        continue;
      }
      w.hang_until.store(until, std::memory_order_release);
      ++hung;
    }
  }
  return hung;
}

void ServeModule::SetSlowdown(double factor, SimTime until) {
  PARD_CHECK(factor > 0.0);
  slow_factor_.store(factor, std::memory_order_relaxed);
  slow_until_.store(until, std::memory_order_release);
}

int ServeModule::WatchdogSweep(SimTime now, Duration budget) {
  int killed = 0;
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& entry : roster_) {
      ServeWorker& w = *entry;
      if (w.kill.load(std::memory_order_relaxed) ||
          w.drain.load(std::memory_order_relaxed)) {
        continue;
      }
      // Only busy workers owe a heartbeat: an idle worker parked on the
      // condition variable has nothing in flight and nothing to recover.
      if (!w.busy.load(std::memory_order_acquire)) {
        continue;
      }
      if (now - w.heartbeat.load(std::memory_order_acquire) <= budget) {
        continue;
      }
      if (fleet_->State(spec_.id, w.slot.worker_id) != BackendState::kActive) {
        continue;
      }
      // Hung past the budget: force-fail through the same path as a fault-
      // schedule kill. The worker observes `kill` and routes its in-flight
      // batch through the runtime's retry path on its way out.
      w.kill.store(true, std::memory_order_release);
      fleet_->SetState(spec_.id, w.slot.worker_id, BackendState::kFailed, now);
      ++killed;
    }
  }
  if (killed > 0) {
    work_ready_.notify_all();
  }
  return killed;
}

int ServeModule::SetTargetUnits(double target_units, SimTime now, int max_new_threads) {
  target_units =
      std::clamp(target_units, 1.0, static_cast<double>(options_.max_workers_per_module));
  int added = 0;
  double provisioned = fleet_->ProvisionedUnits(spec_.id);
  while (provisioned < target_units && added < max_new_threads &&
         fleet_->ProvisionedCount(spec_.id) < options_.max_workers_per_module) {
    AddWorkers(1, now);
    ++added;
    provisioned = fleet_->ProvisionedUnits(spec_.id);
  }
  if (added == 0 && provisioned > target_units) {
    bool any = false;
    {
      LockOrderGuard order(LockRank::kModule);
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = roster_.rbegin(); it != roster_.rend(); ++it) {
        ServeWorker& w = **it;
        if (w.kill.load(std::memory_order_relaxed) ||
            w.drain.load(std::memory_order_relaxed)) {
          continue;
        }
        const BackendState state = fleet_->State(spec_.id, w.slot.worker_id);
        if (state != BackendState::kActive && state != BackendState::kColdStarting) {
          continue;
        }
        if (provisioned - w.slot.speed < target_units) {
          continue;  // Removing this worker would undershoot the target.
        }
        w.drain.store(true, std::memory_order_release);
        fleet_->SetState(spec_.id, w.slot.worker_id, BackendState::kDraining, now);
        provisioned -= w.slot.speed;
        any = true;
      }
    }
    if (any) {
      work_ready_.notify_all();
    }
  }
  return added;
}

void ServeModule::NoteOffered(SimTime now) {
  QueueShard& shard =
      *shards_[offered_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size()];
  LockOrderGuard order(LockRank::kQueueShard);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.rate_monitor.Bump(shard.Monotonic(now));
}

void ServeModule::Receive(RequestPtr req) {
  const SimTime now = runtime_->clock().Now();
  const std::size_t shard_index =
      push_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  QueueShard& shard = *shards_[shard_index];
  if (!depth_gauges_.empty()) {
    depth_gauges_[shard_index]->Add(1);
  }
  {
    LockOrderGuard order(LockRank::kQueueShard);
    std::lock_guard<std::mutex> lock(shard.mu);
    req->hops[static_cast<std::size_t>(spec_.id)].arrive = now;
    shard.queue.Push(std::move(req));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: a worker that observed queued_ == 0 is either
    // before its wait (will re-check the predicate) or inside it (this
    // lock/unlock orders our increment before the notify it will receive).
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
  }
  work_ready_.notify_one();
}

void ServeModule::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
}

void ServeModule::Abort() {
  stopping_.store(true, std::memory_order_release);
  {
    LockOrderGuard order(LockRank::kModule);
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    QueueShard& shard = *shards_[i];
    LockOrderGuard order(LockRank::kQueueShard);
    std::lock_guard<std::mutex> lock(shard.mu);
    while (!shard.queue.Empty()) {
      shard.queue.Pop(PopSide::kOldest);  // Discard; leftovers are swept kLate.
      queued_.fetch_sub(1, std::memory_order_relaxed);
      if (!depth_gauges_.empty()) {
        depth_gauges_[i]->Add(-1);
      }
    }
  }
  work_ready_.notify_all();
}

void ServeModule::Join() { workers_.Join(); }

void ServeModule::FormBatchFromShard(QueueShard& shard, int shard_index,
                                     bool stolen, SimTime now, Duration d_k,
                                     std::vector<RequestPtr>* batch) {
  ControlPlane& control = runtime_->control();
  TraceRecorder* trace = runtime_->trace();
  std::int64_t popped = 0;
  std::int64_t stolen_count = 0;
  {
    LockOrderGuard order(LockRank::kQueueShard);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (control.PurgeExpired()) {
      // Deadline already passed while queued: unservable under any policy.
      while (shard.queue.MinDeadline() < now) {
        RequestPtr expired = shard.queue.Pop(PopSide::kMinBudget);
        if (expired == nullptr) {
          break;
        }
        queued_.fetch_sub(1, std::memory_order_relaxed);
        ++popped;
        if (!runtime_->IsTerminal(*expired)) {
          HopRecord& hop = expired->hops[static_cast<std::size_t>(spec_.id)];
          // Same clamp as the dispatch path below: `now` predates the shard
          // lock, so it can trail a fresh push's arrive stamp.
          hop.batch_entry = std::max(now, hop.arrive);
          runtime_->Drop(expired, spec_.id, now, DropReason::kPurgeExpired);
        }
      }
    }
    while (static_cast<int>(batch->size()) < batch_size_ && !shard.queue.Empty()) {
      const PopSide side = control.ChoosePopSide(spec_.id, now);
      RequestPtr req = shard.queue.Pop(side);
      if (req == nullptr) {
        break;
      }
      queued_.fetch_sub(1, std::memory_order_relaxed);
      ++popped;
      if (runtime_->IsTerminal(*req)) {
        continue;  // Dropped on another DAG branch while queued here.
      }
      HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
      // `now` was read before this shard's lock was taken, so a request
      // pushed (and arrive-stamped) in that window can carry an arrive a few
      // virtual microseconds ahead of it; clamp so hop records stay monotone.
      hop.batch_entry = std::max(now, hop.arrive);
      AdmissionContext ctx;
      ctx.request = req.get();
      ctx.module_id = spec_.id;
      ctx.now = now;
      // A pull-based worker is free when it forms: the batch starts now.
      ctx.batch_start = now;
      ctx.batch_duration = d_k;
      ctx.batch_size = batch_size_;
      if (control.ShouldDrop(ctx)) {
        runtime_->Drop(req, spec_.id, now, DropReason::kBrokerCandidate);
        continue;
      }
      shard.queue_delay_window.Add(shard.Monotonic(now),
                                   static_cast<double>(hop.QueueDelay()));
      if (stolen) {
        ++stolen_count;
        if (trace != nullptr && trace->Sampled(req->id)) {
          TraceEvent ev;
          ev.kind = TraceEventKind::kSteal;
          ev.module = spec_.id;
          ev.request_id = req->id;
          ev.ts = now;
          ev.arg0 = shard_index;
          trace->Emit(ev);
        }
      }
      batch->push_back(std::move(req));
    }
  }
  if (popped > 0 && !depth_gauges_.empty()) {
    depth_gauges_[static_cast<std::size_t>(shard_index)]->Add(-popped);
  }
  if (stolen_count > 0 && steal_counter_ != nullptr) {
    steal_counter_->Add(stolen_count);
  }
}

std::vector<RequestPtr> ServeModule::FormBatch(int home_shard, SimTime now) {
  std::vector<RequestPtr> batch;
  batch.reserve(static_cast<std::size_t>(batch_size_));
  const Duration d_k = profile_.BatchDuration(batch_size_);
  const int n = static_cast<int>(shards_.size());
  // Home shard first, then steal from siblings round-robin until the batch
  // fills. One shard lock at a time, never two.
  for (int i = 0; i < n && static_cast<int>(batch.size()) < batch_size_; ++i) {
    const int shard_index = (home_shard + i) % n;
    FormBatchFromShard(*shards_[static_cast<std::size_t>(shard_index)],
                       shard_index, /*stolen=*/i > 0, now, d_k, &batch);
  }
  return batch;
}

void ServeModule::WorkerLoop(ServeWorker* w) {
  const ServeClock& clock = runtime_->clock();
  if (w->cold) {
    // Model load: this slot serves only after its backend's cold start.
    clock.SleepFor(w->slot.cold_start);
    if (w->kill.load(std::memory_order_acquire)) {
      return;  // Killed while warming; the fleet already logged kFailed.
    }
    if (w->drain.load(std::memory_order_acquire)) {
      fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
      return;
    }
    fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kActive, clock.Now());
  }
  for (;;) {
    {
      LockOrderGuard order(LockRank::kModule);
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, w] {
        return stop_ || w->kill.load(std::memory_order_relaxed) ||
               w->drain.load(std::memory_order_relaxed) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
      if (w->kill.load(std::memory_order_relaxed)) {
        // Failed while idle: nothing in flight; the shared shards survive
        // for the remaining workers (unlike the simulator's private queues).
        return;
      }
      if (w->drain.load(std::memory_order_relaxed)) {
        fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
        return;
      }
      if (queued_.load(std::memory_order_acquire) <= 0) {
        if (stop_) {
          return;
        }
        continue;  // Spurious wake or a sibling consumed the work.
      }
    }

    // Batch formation runs OUTSIDE mu_: it takes shard locks (and through
    // the broker's decisions, control-plane and fate locks) one at a time.
    std::vector<RequestPtr> batch = FormBatch(w->home, clock.Now());
    if (batch.empty()) {
      continue;  // Everything expired, was dropped, or a sibling stole it.
    }
    // Liveness stamp for the watchdog: heartbeat first, then busy (release),
    // so a watchdog that sees busy == true also sees this batch's heartbeat.
    w->heartbeat.store(clock.Now(), std::memory_order_relaxed);
    w->busy.store(true, std::memory_order_release);

    // Chaos hang: stall holding the formed batch, without heartbeating. Ends
    // when the window passes, the watchdog kills us, or the run stops (a
    // stopping hung worker executes its batch normally — each worker
    // finishes at most one in-flight batch at shutdown).
    if (w->hang_until.load(std::memory_order_acquire) > clock.Now()) {
      while (w->hang_until.load(std::memory_order_acquire) > clock.Now() &&
             !w->kill.load(std::memory_order_acquire) &&
             !stopping_.load(std::memory_order_acquire)) {
        clock.SleepFor(10 * kUsPerMs);
      }
      if (w->kill.load(std::memory_order_acquire)) {
        // Watchdog (or fault schedule) rescued the batch from the hang.
        w->busy.store(false, std::memory_order_release);
        const SimTime now = clock.Now();
        for (const RequestPtr& req : batch) {
          runtime_->RetryOrDrop(req, spec_.id, now);
        }
        return;
      }
    }

    // Profiled duration on THIS slot's backend (exec_scale), with the
    // configured jitter from the worker-private stream — no lock needed.
    Duration planned = ScaleBatchDuration(
        profile_.BatchDuration(static_cast<int>(batch.size())), w->slot.exec_scale);
    if (options_.exec_jitter > 0.0) {
      const double factor = std::max(0.5, w->jitter.Normal(1.0, options_.exec_jitter));
      planned = static_cast<Duration>(static_cast<double>(planned) * factor);
    }
    // Chaos slowdown: transient interference scales this batch's execution.
    if (clock.Now() < slow_until_.load(std::memory_order_acquire)) {
      planned = static_cast<Duration>(static_cast<double>(planned) *
                                      slow_factor_.load(std::memory_order_relaxed));
    }

    // "Execute" on the GPU: occupy this worker for the profiled duration in
    // scaled wall time. Timestamps use the measured window, so scheduler
    // overshoot is charged to the batch like real kernel-time variance.
    const SimTime exec_start = clock.Now();
    clock.SleepFor(planned);
    const SimTime exec_end = clock.Now();

    if (w->kill.load(std::memory_order_acquire)) {
      // The GPU died mid-batch: the executing batch is lost from this worker,
      // but each request gets a deadline-aware second chance (mirroring the
      // simulator's Worker::Fail accounting).
      w->busy.store(false, std::memory_order_release);
      for (const RequestPtr& req : batch) {
        runtime_->RetryOrDrop(req, spec_.id, exec_end);
      }
      return;
    }
    w->heartbeat.store(exec_end, std::memory_order_relaxed);
    w->busy.store(false, std::memory_order_release);

    if (executed_counter_ != nullptr) {
      executed_counter_->Add(static_cast<std::int64_t>(batch.size()));
      batch_size_hist_->Observe(static_cast<double>(batch.size()));
    }
    if (TraceRecorder* trace = runtime_->trace(); trace != nullptr) {
      TraceEvent batch_ev;
      batch_ev.kind = TraceEventKind::kBatchExec;
      batch_ev.module = spec_.id;
      batch_ev.ts = exec_start;
      batch_ev.dur = exec_end - exec_start;
      batch_ev.arg0 = static_cast<std::int64_t>(batch.size());
      trace->Emit(batch_ev);
      for (const RequestPtr& req : batch) {
        if (!trace->Sampled(req->id)) {
          continue;
        }
        const HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
        TraceEvent queue_ev;
        queue_ev.kind = TraceEventKind::kQueueSpan;
        queue_ev.module = spec_.id;
        queue_ev.request_id = req->id;
        queue_ev.ts = hop.arrive;
        queue_ev.dur = hop.batch_entry - hop.arrive;
        trace->Emit(queue_ev);
        TraceEvent exec_ev;
        exec_ev.kind = TraceEventKind::kExecSpan;
        exec_ev.module = spec_.id;
        exec_ev.request_id = req->id;
        exec_ev.ts = exec_start;
        exec_ev.dur = exec_end - exec_start;
        trace->Emit(exec_ev);
      }
    }

    const Duration gpu_share = (exec_end - exec_start) / static_cast<Duration>(batch.size());
    {
      // Post-execution monitoring lands on the worker's home shard.
      QueueShard& shard = *shards_[static_cast<std::size_t>(w->home)];
      LockOrderGuard order(LockRank::kQueueShard);
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const RequestPtr& req : batch) {
        HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
        hop.exec_start = exec_start;
        hop.exec_end = exec_end;
        hop.gpu_time = gpu_share;
        hop.executed = true;
        shard.wait_reservoir.Add(static_cast<double>(hop.BatchWait()));
        shard.stage_latency_window.Add(shard.Monotonic(exec_end),
                                       static_cast<double>(exec_end - hop.arrive));
      }
    }
    for (RequestPtr& req : batch) {
      runtime_->OnModuleDone(req, spec_.id, exec_end);
    }
    if (w->drain.load(std::memory_order_acquire)) {
      fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
      return;
    }
  }
}

double ServeModule::SmoothedInputRate(SimTime now) {
  RateMonitor merged(options_.stats_window);
  for (auto& shard_ptr : shards_) {
    QueueShard& shard = *shard_ptr;
    LockOrderGuard order(LockRank::kQueueShard);
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.Merge(shard.rate_monitor);
  }
  return merged.Smoothed(now);
}

ModuleState ServeModule::Snapshot(SimTime now) {
  // Merge the per-shard monitor slices, one shard lock at a time. The merges
  // are exact (see the class comment), so the published ModuleState matches
  // what the unsharded module would have computed over the same samples.
  double delay_weighted = 0.0;
  double delay_weight = 0.0;
  double worst_latency = 0.0;
  bool any_latency = false;
  RateMonitor merged_rate(options_.stats_window);
  std::vector<double> wait_samples;
  for (auto& shard_ptr : shards_) {
    QueueShard& shard = *shard_ptr;
    LockOrderGuard order(LockRank::kQueueShard);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.queue_delay_window.AccumulateLinearWeighted(now, &delay_weighted, &delay_weight);
    shard.stage_latency_window.Evict(now);
    if (shard.stage_latency_window.Size() > 0) {
      worst_latency = std::max(worst_latency, shard.stage_latency_window.Max(now));
      any_latency = true;
    }
    merged_rate.Merge(shard.rate_monitor);
    const std::vector<double>& samples = shard.wait_reservoir.values();
    wait_samples.insert(wait_samples.end(), samples.begin(), samples.end());
  }

  ModuleState state;
  state.module_id = spec_.id;
  state.updated_at = now;
  state.avg_queue_delay = delay_weight > 0.0 ? delay_weighted / delay_weight : 0.0;
  state.worst_stage_latency =
      any_latency ? worst_latency : static_cast<double>(profile_.BatchDuration(batch_size_));
  state.batch_size = batch_size_;
  state.batch_duration = profile_.BatchDuration(batch_size_);
  const double capacity = fleet_->PublishCapacity(spec_.id, PerWorkerThroughput(), state);
  state.input_rate = merged_rate.Raw(now);
  state.smoothed_rate = merged_rate.Smoothed(now);
  state.load_factor = capacity > 0.0 ? state.smoothed_rate / capacity : 0.0;
  state.burstiness = merged_rate.Burstiness(now);
  state.wait_samples = std::move(wait_samples);
  std::sort(state.wait_samples.begin(), state.wait_samples.end());
  return state;
}

}  // namespace pard
