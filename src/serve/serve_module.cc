#include "serve/serve_module.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "serve/serve_runtime.h"

namespace pard {

ServeModule::ServeModule(ServeRuntime* runtime, const ModuleSpec& spec,
                         const ModelProfile& profile, int batch_size, int workers,
                         const RuntimeOptions& options)
    : runtime_(runtime),
      spec_(spec),
      profile_(profile),
      batch_size_(batch_size),
      worker_count_(workers),
      options_(options),
      jitter_rng_(Rng(options.seed).Fork("serve-jitter:" + std::to_string(spec.id))),
      queue_delay_window_(options.stats_window),
      stage_latency_window_(options.stats_window),
      wait_reservoir_(static_cast<std::size_t>(options.reservoir_capacity)),
      rate_monitor_(options.stats_window) {
  PARD_CHECK(batch_size_ >= 1);
  PARD_CHECK(worker_count_ >= 1);
}

void ServeModule::Start() {
  for (int i = 0; i < worker_count_; ++i) {
    workers_.Spawn([this] { WorkerLoop(); });
  }
}

void ServeModule::NoteOffered(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_monitor_.Bump(now);
}

void ServeModule::Receive(RequestPtr req) {
  const SimTime now = runtime_->clock().Now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    req->hops[static_cast<std::size_t>(spec_.id)].arrive = now;
    queue_.Push(std::move(req));
  }
  work_ready_.notify_one();
}

void ServeModule::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
}

void ServeModule::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    while (!queue_.Empty()) {
      queue_.Pop(PopSide::kOldest);  // Discard; leftovers are swept kLate.
    }
  }
  work_ready_.notify_all();
}

void ServeModule::Join() { workers_.Join(); }

std::vector<RequestPtr> ServeModule::FormBatchLocked(SimTime now) {
  std::vector<RequestPtr> batch;
  ControlPlane& control = runtime_->control();
  if (control.PurgeExpired()) {
    // Deadline already passed while queued: unservable under any policy.
    while (queue_.MinDeadline() < now) {
      RequestPtr expired = queue_.Pop(PopSide::kMinBudget);
      if (expired == nullptr) {
        break;
      }
      if (!runtime_->IsTerminal(*expired)) {
        expired->hops[static_cast<std::size_t>(spec_.id)].batch_entry = now;
        runtime_->Drop(expired, spec_.id, now);
      }
    }
  }
  const Duration d_k = profile_.BatchDuration(batch_size_);
  while (static_cast<int>(batch.size()) < batch_size_ && !queue_.Empty()) {
    const PopSide side = control.ChoosePopSide(spec_.id, now);
    RequestPtr req = queue_.Pop(side);
    if (req == nullptr) {
      break;
    }
    if (runtime_->IsTerminal(*req)) {
      continue;  // Dropped on another DAG branch while queued here.
    }
    HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
    hop.batch_entry = now;
    AdmissionContext ctx;
    ctx.request = req.get();
    ctx.module_id = spec_.id;
    ctx.now = now;
    // A pull-based worker is free when it forms: the batch starts now.
    ctx.batch_start = now;
    ctx.batch_duration = d_k;
    ctx.batch_size = batch_size_;
    if (control.ShouldDrop(ctx)) {
      runtime_->Drop(req, spec_.id, now);
      continue;
    }
    queue_delay_window_.Add(MonotonicLocked(now), static_cast<double>(hop.QueueDelay()));
    batch.push_back(std::move(req));
  }
  return batch;
}

void ServeModule::WorkerLoop() {
  const ServeClock& clock = runtime_->clock();
  for (;;) {
    std::vector<RequestPtr> batch;
    SimTime formed_at = 0;
    Duration planned = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.Empty(); });
      if (queue_.Empty()) {
        if (stop_) {
          return;
        }
        continue;  // Spurious wake or a sibling consumed the work.
      }
      formed_at = clock.Now();
      batch = FormBatchLocked(formed_at);
      if (batch.empty()) {
        continue;  // Everything expired or was dropped proactively.
      }
      // Profiled duration with the configured jitter (jitter_rng_ under mu_).
      planned = profile_.BatchDuration(static_cast<int>(batch.size()));
      if (options_.exec_jitter > 0.0) {
        const double factor =
            std::max(0.5, jitter_rng_.Normal(1.0, options_.exec_jitter));
        planned = static_cast<Duration>(static_cast<double>(planned) * factor);
      }
    }

    // "Execute" on the GPU: occupy this worker for the profiled duration in
    // scaled wall time. Timestamps use the measured window, so scheduler
    // overshoot is charged to the batch like real kernel-time variance.
    const SimTime exec_start = clock.Now();
    clock.SleepFor(planned);
    const SimTime exec_end = clock.Now();
    const Duration gpu_share = (exec_end - exec_start) / static_cast<Duration>(batch.size());

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const RequestPtr& req : batch) {
        HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
        hop.exec_start = exec_start;
        hop.exec_end = exec_end;
        hop.gpu_time = gpu_share;
        hop.executed = true;
        wait_reservoir_.Add(static_cast<double>(hop.BatchWait()));
        stage_latency_window_.Add(MonotonicLocked(exec_end),
                                  static_cast<double>(exec_end - hop.arrive));
      }
    }
    for (RequestPtr& req : batch) {
      runtime_->OnModuleDone(req, spec_.id, exec_end);
    }
  }
}

ModuleState ServeModule::Snapshot(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ModuleState state;
  state.module_id = spec_.id;
  state.updated_at = now;
  state.avg_queue_delay = queue_delay_window_.LinearWeightedMean(now, 0.0);
  state.worst_stage_latency = stage_latency_window_.Max(
      now, static_cast<double>(profile_.BatchDuration(batch_size_)));
  state.batch_size = batch_size_;
  state.batch_duration = profile_.BatchDuration(batch_size_);
  state.num_workers = worker_count_;
  state.per_worker_throughput = profile_.Throughput(batch_size_);
  state.input_rate = rate_monitor_.Raw(now);
  state.smoothed_rate = rate_monitor_.Smoothed(now);
  const double capacity = state.per_worker_throughput * state.num_workers;
  state.load_factor = capacity > 0.0 ? state.smoothed_rate / capacity : 0.0;
  state.burstiness = rate_monitor_.Burstiness(now);
  state.wait_samples = wait_reservoir_.values();
  std::sort(state.wait_samples.begin(), state.wait_samples.end());
  return state;
}

}  // namespace pard
