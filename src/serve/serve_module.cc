#include "serve/serve_module.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "serve/serve_runtime.h"

namespace pard {

ServeModule::ServeModule(ServeRuntime* runtime, BackendFleet* fleet, const ModuleSpec& spec,
                         const ModelProfile& profile, int batch_size, int workers,
                         const RuntimeOptions& options)
    : runtime_(runtime),
      fleet_(fleet),
      spec_(spec),
      profile_(profile),
      batch_size_(batch_size),
      initial_workers_(workers),
      options_(options),
      jitter_rng_(Rng(options.seed).Fork("serve-jitter:" + std::to_string(spec.id))),
      queue_delay_window_(options.stats_window),
      stage_latency_window_(options.stats_window),
      wait_reservoir_(static_cast<std::size_t>(options.reservoir_capacity)),
      rate_monitor_(options.stats_window) {
  PARD_CHECK(batch_size_ >= 1);
  PARD_CHECK(initial_workers_ >= 1);
  PARD_CHECK(fleet_ != nullptr);
}

void ServeModule::SpawnWorker(bool warm, SimTime now) {
  const BackendSlot slot = fleet_->Provision(spec_.id, now);
  if (warm) {
    fleet_->SetState(spec_.id, slot.worker_id, BackendState::kActive, now);
  }
  ServeWorker* worker = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    roster_.push_back(std::make_unique<ServeWorker>(slot, /*cold=*/!warm));
    worker = roster_.back().get();
  }
  workers_.Spawn([this, worker] { WorkerLoop(worker); });
}

void ServeModule::Start() {
  for (int i = 0; i < initial_workers_; ++i) {
    SpawnWorker(/*warm=*/true, 0);  // The initial fleet starts warm.
  }
}

int ServeModule::AddWorkers(int count, SimTime now) {
  // Per-module worker cap, exactly like the simulator's recovery path.
  count = std::min(count,
                   options_.max_workers_per_module - fleet_->ProvisionedCount(spec_.id));
  for (int i = 0; i < count; ++i) {
    SpawnWorker(/*warm=*/false, now);
  }
  return std::max(0, count);
}

int ServeModule::FailWorkers(int count, SimTime now) {
  int killed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest active workers first, mirroring ModuleRuntime::FailWorkers.
    for (auto& entry : roster_) {
      if (killed >= count) {
        break;
      }
      ServeWorker& w = *entry;
      if (w.kill.load(std::memory_order_relaxed)) {
        continue;
      }
      if (fleet_->State(spec_.id, w.slot.worker_id) != BackendState::kActive) {
        continue;
      }
      w.kill.store(true, std::memory_order_release);
      fleet_->SetState(spec_.id, w.slot.worker_id, BackendState::kFailed, now);
      ++killed;
    }
  }
  work_ready_.notify_all();
  return killed;
}

int ServeModule::SetTargetUnits(double target_units, SimTime now, int max_new_threads) {
  target_units =
      std::clamp(target_units, 1.0, static_cast<double>(options_.max_workers_per_module));
  int added = 0;
  double provisioned = fleet_->ProvisionedUnits(spec_.id);
  while (provisioned < target_units && added < max_new_threads &&
         fleet_->ProvisionedCount(spec_.id) < options_.max_workers_per_module) {
    AddWorkers(1, now);
    ++added;
    provisioned = fleet_->ProvisionedUnits(spec_.id);
  }
  if (added == 0 && provisioned > target_units) {
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = roster_.rbegin(); it != roster_.rend(); ++it) {
        ServeWorker& w = **it;
        if (w.kill.load(std::memory_order_relaxed) ||
            w.drain.load(std::memory_order_relaxed)) {
          continue;
        }
        const BackendState state = fleet_->State(spec_.id, w.slot.worker_id);
        if (state != BackendState::kActive && state != BackendState::kColdStarting) {
          continue;
        }
        if (provisioned - w.slot.speed < target_units) {
          continue;  // Removing this worker would undershoot the target.
        }
        w.drain.store(true, std::memory_order_release);
        fleet_->SetState(spec_.id, w.slot.worker_id, BackendState::kDraining, now);
        provisioned -= w.slot.speed;
        any = true;
      }
    }
    if (any) {
      work_ready_.notify_all();
    }
  }
  return added;
}

void ServeModule::NoteOffered(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_monitor_.Bump(now);
}

void ServeModule::Receive(RequestPtr req) {
  const SimTime now = runtime_->clock().Now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    req->hops[static_cast<std::size_t>(spec_.id)].arrive = now;
    queue_.Push(std::move(req));
  }
  work_ready_.notify_one();
}

void ServeModule::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
}

void ServeModule::Abort() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    while (!queue_.Empty()) {
      queue_.Pop(PopSide::kOldest);  // Discard; leftovers are swept kLate.
    }
  }
  work_ready_.notify_all();
}

void ServeModule::Join() { workers_.Join(); }

std::vector<RequestPtr> ServeModule::FormBatchLocked(SimTime now) {
  std::vector<RequestPtr> batch;
  ControlPlane& control = runtime_->control();
  if (control.PurgeExpired()) {
    // Deadline already passed while queued: unservable under any policy.
    while (queue_.MinDeadline() < now) {
      RequestPtr expired = queue_.Pop(PopSide::kMinBudget);
      if (expired == nullptr) {
        break;
      }
      if (!runtime_->IsTerminal(*expired)) {
        expired->hops[static_cast<std::size_t>(spec_.id)].batch_entry = now;
        runtime_->Drop(expired, spec_.id, now);
      }
    }
  }
  const Duration d_k = profile_.BatchDuration(batch_size_);
  while (static_cast<int>(batch.size()) < batch_size_ && !queue_.Empty()) {
    const PopSide side = control.ChoosePopSide(spec_.id, now);
    RequestPtr req = queue_.Pop(side);
    if (req == nullptr) {
      break;
    }
    if (runtime_->IsTerminal(*req)) {
      continue;  // Dropped on another DAG branch while queued here.
    }
    HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
    hop.batch_entry = now;
    AdmissionContext ctx;
    ctx.request = req.get();
    ctx.module_id = spec_.id;
    ctx.now = now;
    // A pull-based worker is free when it forms: the batch starts now.
    ctx.batch_start = now;
    ctx.batch_duration = d_k;
    ctx.batch_size = batch_size_;
    if (control.ShouldDrop(ctx)) {
      runtime_->Drop(req, spec_.id, now);
      continue;
    }
    queue_delay_window_.Add(MonotonicLocked(now), static_cast<double>(hop.QueueDelay()));
    batch.push_back(std::move(req));
  }
  return batch;
}

void ServeModule::WorkerLoop(ServeWorker* w) {
  const ServeClock& clock = runtime_->clock();
  if (w->cold) {
    // Model load: this slot serves only after its backend's cold start.
    clock.SleepFor(w->slot.cold_start);
    if (w->kill.load(std::memory_order_acquire)) {
      return;  // Killed while warming; the fleet already logged kFailed.
    }
    if (w->drain.load(std::memory_order_acquire)) {
      fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
      return;
    }
    fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kActive, clock.Now());
  }
  for (;;) {
    std::vector<RequestPtr> batch;
    Duration planned = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this, w] {
        return stop_ || w->kill.load(std::memory_order_relaxed) ||
               w->drain.load(std::memory_order_relaxed) || !queue_.Empty();
      });
      if (w->kill.load(std::memory_order_relaxed)) {
        // Failed while idle: nothing in flight; the shared queue survives
        // for the remaining workers (unlike the simulator's private queues).
        return;
      }
      if (w->drain.load(std::memory_order_relaxed)) {
        fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
        return;
      }
      if (queue_.Empty()) {
        if (stop_) {
          return;
        }
        continue;  // Spurious wake or a sibling consumed the work.
      }
      batch = FormBatchLocked(clock.Now());
      if (batch.empty()) {
        continue;  // Everything expired or was dropped proactively.
      }
      // Profiled duration on THIS slot's backend (exec_scale), with the
      // configured jitter (jitter_rng_ under mu_).
      planned = ScaleBatchDuration(profile_.BatchDuration(static_cast<int>(batch.size())),
                                   w->slot.exec_scale);
      if (options_.exec_jitter > 0.0) {
        const double factor =
            std::max(0.5, jitter_rng_.Normal(1.0, options_.exec_jitter));
        planned = static_cast<Duration>(static_cast<double>(planned) * factor);
      }
    }

    // "Execute" on the GPU: occupy this worker for the profiled duration in
    // scaled wall time. Timestamps use the measured window, so scheduler
    // overshoot is charged to the batch like real kernel-time variance.
    const SimTime exec_start = clock.Now();
    clock.SleepFor(planned);
    const SimTime exec_end = clock.Now();

    if (w->kill.load(std::memory_order_acquire)) {
      // The GPU died mid-batch: the executing batch is lost, mirroring the
      // simulator's Worker::Fail accounting.
      for (const RequestPtr& req : batch) {
        runtime_->Drop(req, spec_.id, exec_end);
      }
      return;
    }

    const Duration gpu_share = (exec_end - exec_start) / static_cast<Duration>(batch.size());
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const RequestPtr& req : batch) {
        HopRecord& hop = req->hops[static_cast<std::size_t>(spec_.id)];
        hop.exec_start = exec_start;
        hop.exec_end = exec_end;
        hop.gpu_time = gpu_share;
        hop.executed = true;
        wait_reservoir_.Add(static_cast<double>(hop.BatchWait()));
        stage_latency_window_.Add(MonotonicLocked(exec_end),
                                  static_cast<double>(exec_end - hop.arrive));
      }
    }
    for (RequestPtr& req : batch) {
      runtime_->OnModuleDone(req, spec_.id, exec_end);
    }
    if (w->drain.load(std::memory_order_acquire)) {
      fleet_->SetState(spec_.id, w->slot.worker_id, BackendState::kRetired, clock.Now());
      return;
    }
  }
}

double ServeModule::SmoothedInputRate(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  return rate_monitor_.Smoothed(now);
}

ModuleState ServeModule::Snapshot(SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ModuleState state;
  state.module_id = spec_.id;
  state.updated_at = now;
  state.avg_queue_delay = queue_delay_window_.LinearWeightedMean(now, 0.0);
  state.worst_stage_latency = stage_latency_window_.Max(
      now, static_cast<double>(profile_.BatchDuration(batch_size_)));
  state.batch_size = batch_size_;
  state.batch_duration = profile_.BatchDuration(batch_size_);
  const double capacity = fleet_->PublishCapacity(spec_.id, PerWorkerThroughput(), state);
  state.input_rate = rate_monitor_.Raw(now);
  state.smoothed_rate = rate_monitor_.Smoothed(now);
  state.load_factor = capacity > 0.0 ? state.smoothed_rate / capacity : 0.0;
  state.burstiness = rate_monitor_.Burstiness(now);
  state.wait_samples = wait_reservoir_.values();
  std::sort(state.wait_samples.begin(), state.wait_samples.end());
  return state;
}

}  // namespace pard
