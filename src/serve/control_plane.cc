#include "serve/control_plane.h"

#include <utility>

#include "common/check.h"

namespace pard {

ControlPlane::ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board)
    : policy_(policy), board_(board) {
  PARD_CHECK(spec != nullptr && policy_ != nullptr && board_ != nullptr);
  policy_->Bind(spec, board_);
  purge_expired_ = policy_->PurgeExpired();
}

bool ControlPlane::ShouldDrop(const AdmissionContext& ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ShouldDrop(ctx);
}

PopSide ControlPlane::ChoosePopSide(int module_id, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ChoosePopSide(module_id, now);
}

bool ControlPlane::AdmitAtModule(const Request& request, int module_id, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->AdmitAtModule(request, module_id, now);
}

void ControlPlane::Sync(std::vector<ModuleState> states, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ModuleState& state : states) {
    board_->Publish(std::move(state));
  }
  policy_->OnSync(now);
}

}  // namespace pard
