#include "serve/control_plane.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/lock_order.h"
#include "exec/thread_pool.h"

namespace pard {

ControlPlane::ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board,
                           Options options)
    : policy_(policy),
      board_(board),
      force_locked_(options.force_locked),
      staleness_budget_(options.staleness_budget),
      snapshot_(std::make_unique<const ControlSnapshot>()) {
  PARD_CHECK(spec != nullptr && policy_ != nullptr && board_ != nullptr);
  PARD_CHECK(options.admission_shards >= 1);
  PARD_CHECK(options.staleness_budget >= 0);
  PARD_CHECK(options.refresh_threads >= 0);
  policy_->Bind(spec, board_);
  purge_expired_ = policy_->PurgeExpired();
  Rng seeder(options.seed);
  for (int i = 0; i < options.admission_shards; ++i) {
    auto shard = std::make_unique<AdmissionShard>();
    shard->rng = seeder.Fork("admission-shard:" + std::to_string(i));
    shards_.push_back(std::move(shard));
  }
  if (options.parallel_refresh) {
    refresh_pool_ =
        std::make_unique<ThreadPool>(ThreadPool::ResolveJobs(options.refresh_threads));
  }
  // Replace the placeholder published at member construction with a real
  // snapshot (the policy is bound now, so it can build a view). Stamped at
  // t=0: with a staleness budget the first sync must land within it or the
  // readers degrade, exactly as they would under a stalled sync thread.
  auto initial = BuildSnapshot(0);
  has_view_ = initial->view != nullptr;
  snapshot_.Publish(std::move(initial));
}

ControlPlane::ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board)
    : ControlPlane(spec, policy, board, Options()) {}

ControlPlane::~ControlPlane() = default;

std::unique_ptr<const ControlSnapshot> ControlPlane::BuildSnapshot(SimTime now) {
  auto snap = std::make_unique<ControlSnapshot>();
  snap->board_version = board_->Version();
  snap->published_at = now;
  snap->states.reserve(static_cast<std::size_t>(board_->NumModules()));
  for (int id = 0; id < board_->NumModules(); ++id) {
    // Scalars only — the wait reservoirs are estimator inputs already
    // consumed by this point and no snapshot reader touches them (see the
    // ControlSnapshot::states note).
    ModuleState state = board_->Get(id);
    state.wait_samples.clear();
    state.wait_samples.shrink_to_fit();
    snap->states.push_back(std::move(state));
  }
  snap->view = policy_->MakeView();
  return snap;
}

// Graceful degradation: the estimator's decisions are only as good as the
// snapshot they read. When the sync thread stalls (stall-sync chaos, or a
// genuinely wedged control plane) the snapshot's states/view describe a fleet
// that no longer exists, so past the staleness budget the readers stop
// trusting it and fall back to a conservative static rule keyed only to
// request-local facts (deadline arithmetic). The rules are deliberately
// minimal:
//   ShouldDrop     — drop only requests that provably cannot finish this
//                    stage by their deadline (batch_start + batch_duration
//                    past the deadline); never shed speculatively.
//   AdmitAtModule  — admit anything with remaining deadline budget.
//   ChoosePopSide  — FIFO (oldest first), the no-information default.
// Each fallback decision is counted; the decision remains versioned by the
// stale snapshot it rejected (snap->board_version) for trace attribution.
bool ControlPlane::Stale(const ControlSnapshot& snap, SimTime now) {
  if (staleness_budget_ <= 0 || now - snap.published_at <= staleness_budget_) {
    return false;
  }
  stale_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ControlPlane::ShouldDrop(const AdmissionContext& ctx) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      if (Stale(*snap, ctx.now)) {
        return ctx.batch_start + ctx.batch_duration > ctx.request->deadline;
      }
      return snap->view->ShouldDrop(ctx);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ShouldDrop(ctx);
}

PopSide ControlPlane::ChoosePopSide(int module_id, SimTime now) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      if (Stale(*snap, now)) {
        return PopSide::kOldest;
      }
      return snap->view->ChoosePopSide(module_id, now);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ChoosePopSide(module_id, now);
}

bool ControlPlane::AdmitAtModule(const Request& request, int module_id, SimTime now) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      if (Stale(*snap, now)) {
        return request.RemainingBudget(now) > 0;
      }
      if (!snap->view->NeedsAdmissionRng()) {
        return snap->view->AdmitAtModule(request, module_id, now, nullptr);
      }
      AdmissionShard& shard = ShardFor(request);
      LockOrderGuard order(LockRank::kAdmissionShard);
      std::lock_guard<std::mutex> lock(shard.mu);
      return snap->view->AdmitAtModule(request, module_id, now, &shard.rng);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->AdmitAtModule(request, module_id, now);
}

ControlPlane::SyncStats ControlPlane::Sync(std::vector<ModuleState> states, SimTime now) {
  SyncStats stats;
  if (LockFree()) {
    // Off-lock sync: when every broker decision reads published snapshots
    // (LockFree()), the board and policy have exactly one mutating thread —
    // this one — so the whole publish → OnSync → refresh → rebuild sequence
    // needs no mutex. Brokers keep deciding against the previous snapshot
    // until the single Publish() below swaps in the new one.
    for (ModuleState& state : states) {
      board_->Publish(std::move(state));
    }
    policy_->OnSync(now);
    const PolicyRefreshStats refresh = policy_->RefreshEstimates(refresh_pool_.get());
    stats.refreshed = refresh.refreshed;
    stats.skipped = refresh.skipped;
    stats.off_lock = true;
    auto snap = BuildSnapshot(now);
    // LockFree() implies the initial snapshot carried a view; a policy whose
    // MakeView() goes null mid-run would silently flip brokers onto the
    // locked path this sync no longer serializes with.
    PARD_CHECK(snap->view != nullptr);
    snapshot_.Publish(std::move(snap));
    return stats;
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  for (ModuleState& state : states) {
    board_->Publish(std::move(state));
  }
  policy_->OnSync(now);
  snapshot_.Publish(BuildSnapshot(now));
  return stats;
}

}  // namespace pard
