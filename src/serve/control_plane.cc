#include "serve/control_plane.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/lock_order.h"

namespace pard {

ControlPlane::ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board,
                           Options options)
    : policy_(policy),
      board_(board),
      force_locked_(options.force_locked),
      snapshot_(std::make_unique<const ControlSnapshot>()) {
  PARD_CHECK(spec != nullptr && policy_ != nullptr && board_ != nullptr);
  PARD_CHECK(options.admission_shards >= 1);
  policy_->Bind(spec, board_);
  purge_expired_ = policy_->PurgeExpired();
  Rng seeder(options.seed);
  for (int i = 0; i < options.admission_shards; ++i) {
    auto shard = std::make_unique<AdmissionShard>();
    shard->rng = seeder.Fork("admission-shard:" + std::to_string(i));
    shards_.push_back(std::move(shard));
  }
  // Replace the placeholder published at member construction with a real
  // snapshot (the policy is bound now, so it can build a view).
  auto initial = BuildSnapshot();
  has_view_ = initial->view != nullptr;
  snapshot_.Publish(std::move(initial));
}

ControlPlane::ControlPlane(const PipelineSpec* spec, DropPolicy* policy, StateBoard* board)
    : ControlPlane(spec, policy, board, Options()) {}

std::unique_ptr<const ControlSnapshot> ControlPlane::BuildSnapshot() {
  auto snap = std::make_unique<ControlSnapshot>();
  snap->board_version = board_->Version();
  snap->states.reserve(static_cast<std::size_t>(board_->NumModules()));
  for (int id = 0; id < board_->NumModules(); ++id) {
    snap->states.push_back(board_->Get(id));
  }
  snap->view = policy_->MakeView();
  return snap;
}

bool ControlPlane::ShouldDrop(const AdmissionContext& ctx) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      return snap->view->ShouldDrop(ctx);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ShouldDrop(ctx);
}

PopSide ControlPlane::ChoosePopSide(int module_id, SimTime now) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      return snap->view->ChoosePopSide(module_id, now);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->ChoosePopSide(module_id, now);
}

bool ControlPlane::AdmitAtModule(const Request& request, int module_id, SimTime now) {
  if (!force_locked_) {
    auto snap = snapshot_.Read();
    if (snap->view != nullptr) {
      if (!snap->view->NeedsAdmissionRng()) {
        return snap->view->AdmitAtModule(request, module_id, now, nullptr);
      }
      AdmissionShard& shard = ShardFor(request);
      LockOrderGuard order(LockRank::kAdmissionShard);
      std::lock_guard<std::mutex> lock(shard.mu);
      return snap->view->AdmitAtModule(request, module_id, now, &shard.rng);
    }
  }
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  return policy_->AdmitAtModule(request, module_id, now);
}

void ControlPlane::Sync(std::vector<ModuleState> states, SimTime now) {
  LockOrderGuard order(LockRank::kControl);
  std::lock_guard<std::mutex> lock(mu_);
  for (ModuleState& state : states) {
    board_->Publish(std::move(state));
  }
  policy_->OnSync(now);
  snapshot_.Publish(BuildSnapshot());
}

}  // namespace pard
