// Open-loop load generation for the serving runtime.
//
// An open-loop generator emits requests on its own schedule and never waits
// for the system — the arrival process the paper (and every serving study
// since) uses, because closed-loop clients mask overload by self-throttling.
//
// Two halves:
//   1. Arrival synthesis — pure functions that produce a sorted vector of
//      virtual send timestamps, either by replaying a trace's rate curve
//      (the harness reuses GenerateArrivals for that) or by synthesizing
//      Poisson / MMPP processes here. Deterministic in the Rng.
//   2. LoadGenerator — a thread that walks the timestamp vector against a
//      ServeClock, sleeping until each arrival's wall time and invoking the
//      inject callback. If the system falls behind, injection does NOT slow
//      down (open loop); the callback runs late and the request's budget is
//      simply that much more consumed.
#ifndef PARD_SERVE_LOAD_GENERATOR_H_
#define PARD_SERVE_LOAD_GENERATOR_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "exec/thread_pool.h"
#include "serve/serve_clock.h"

namespace pard {

// Homogeneous Poisson arrivals at `rate` req/s over [begin, end).
std::vector<SimTime> SynthesizePoissonArrivals(double rate, SimTime begin, SimTime end,
                                               Rng& rng);

// Two-state Markov-modulated Poisson process: the rate alternates between a
// base state and a burst state with exponentially distributed dwell times.
// Captures the on/off burstiness of the paper's traces without replaying
// one — the serving-mode stress workload.
struct MmppOptions {
  double base_rate = 100.0;    // req/s in the quiet state.
  double burst_rate = 400.0;   // req/s in the burst state.
  double mean_base_s = 8.0;    // Mean dwell in the quiet state, seconds.
  double mean_burst_s = 2.0;   // Mean dwell in the burst state, seconds.
};
std::vector<SimTime> SynthesizeMmppArrivals(const MmppOptions& options, SimTime begin,
                                            SimTime end, Rng& rng);

// Replays `arrivals` (sorted virtual timestamps) in wall time against
// `clock`, calling `inject(t)` for each. Start() spawns the generator
// thread; Join() blocks until the stream is exhausted. The callback runs on
// the generator thread and must be thread-safe.
class LoadGenerator {
 public:
  LoadGenerator(const ServeClock* clock, std::vector<SimTime> arrivals,
                std::function<void(SimTime)> inject);

  void Start();
  void Join();

  // Last scheduled send time (0 when the stream is empty).
  SimTime LastArrival() const;

 private:
  const ServeClock* clock_;
  std::vector<SimTime> arrivals_;
  std::function<void(SimTime)> inject_;
  WorkerGroup thread_;
};

}  // namespace pard

#endif  // PARD_SERVE_LOAD_GENERATOR_H_
