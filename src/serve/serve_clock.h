// Wall-clock ↔ virtual-time mapping for the serving runtime.
//
// The simulator reasons in virtual microseconds (SimTime); the serving
// runtime executes in real time. A ServeClock anchors virtual time 0 to a
// wall-clock epoch and advances it `speedup` times faster than the wall:
// with speedup = 20, one wall second carries 20 virtual seconds, so a
// 240 s trace replays in 12 s while every profiled duration, SLO and sync
// period keeps its virtual value. speedup = 1 is true real-time serving.
//
// Concurrency: Start() must happen before any concurrent use; after that
// every member is const and safe to call from any thread (the epoch is
// read-only and steady_clock reads are thread-safe).
#ifndef PARD_SERVE_SERVE_CLOCK_H_
#define PARD_SERVE_SERVE_CLOCK_H_

#include <chrono>

#include "common/time_types.h"

namespace pard {

class ServeClock {
 public:
  // speedup must be > 0; values < 1 slow virtual time down (useful for
  // debugging races at human speed).
  explicit ServeClock(double speedup);

  // Anchors virtual time 0 to "now". Call exactly once, before any reader.
  void Start();

  double speedup() const { return speedup_; }

  // Current virtual time (microseconds since Start()).
  SimTime Now() const;

  // Blocks the calling thread until Now() >= t. Returns immediately when t
  // is already past. Sleeps are bounded (no condition), so shutdown simply
  // waits out the last sleeper.
  void SleepUntil(SimTime t) const;

  // Blocks for `d` of virtual time (d / speedup of wall time).
  void SleepFor(Duration d) const;

 private:
  std::chrono::steady_clock::time_point WallAt(SimTime t) const;

  double speedup_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_CLOCK_H_
