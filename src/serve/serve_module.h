// One pipeline module served by real threads, over sharded work queues.
//
// The simulated ModuleRuntime dispatches to per-worker queues inside one
// event loop; here a module is N queue shards drained by M OS threads, each
// playing one GPU worker. A worker pulls a batch (applying the Request
// Broker's drop decision per candidate against the control plane's lock-free
// snapshot), "executes" it by sleeping the profiled duration in scaled wall
// time, then hands the batch back to the runtime for forwarding.
//
// Queue sharding: the single shared DEPQ of PR 4 serialized every push, pop
// and monitor update behind one module mutex. It is now split into
// min(initial workers, 8) QueueShards, each a DEPQ plus that shard's slice
// of the monitoring state (delay/latency windows, wait reservoir, rate
// bins) behind its own mutex. Deliveries land round-robin; a worker drains
// its home shard first and then WORK-STEALS from sibling shards until its
// batch is full, holding at most one shard lock at a time. Deadline-order
// semantics are preserved per shard (DEPQ pop sides, and the purge-expired
// sweep runs against every shard a worker visits); across shards ordering
// is approximate — the price of not serializing, bounded by round-robin
// balance. Monitoring merges exactly: rate bins align on absolute second
// boundaries (RateMonitor::Merge) and windows merge via their weighted sums
// (SlidingWindow::AccumulateLinearWeighted), so Snapshot() publishes the
// same arithmetic the unsharded module computed.
//
// Worker roster: every thread occupies one BackendFleet slot, so fleets can
// be heterogeneous — a slot's backend profile scales its execution
// durations (slot.exec_scale) and sets its cold-start delay. The roster is
// dynamic: AddWorkers() spawns threads that serve only after their cold
// start, DrainWorkers() retires the most recently added threads after their
// current batch, and FailWorkers() kills threads so that their in-flight
// batch is lost (mirroring the simulator's Worker::Fail; the *queued*
// backlog survives here because shards are shared by all workers, where the
// simulator loses the failed worker's private queue).
//
// Batching discipline vs the simulator: a pull-based worker launches as soon
// as it is free, so the batch-entry and execution-start instants coincide
// (W ≈ 0) and contention shows up entirely as queueing delay Q. This is the
// natural discipline for a thread-per-worker server; the simulator's
// form-while-executing overlap (W ∈ [0, d]) is one reason serve and sim
// numbers agree only within a tolerance band (see tests/serve_test.cc).
//
// Concurrency contract (lock ranks per common/lock_order.h):
//   - mu_ (kModule) guards the roster and the worker sleep/wake state only.
//   - Each QueueShard::mu (kQueueShard) guards that shard's queue and
//     monitoring slice. Workers may take a shard lock, then the control
//     plane's locks (kQueueShard < kAdmissionShard < kControl) and the
//     runtime's fate stripes (kFate) — never the reverse.
//   - queued_ is the module-wide live-entry count; Receive() bumps it and
//     performs an empty lock/unlock of mu_ before notifying so a worker
//     between its predicate check and its wait cannot miss the wakeup.
//   - Each worker owns a private jitter RNG (forked per slot), so batch
//     jitter needs no lock at all.
//   - Roster mutations (AddWorkers/DrainWorkers/FailWorkers) must come from
//     ONE control thread and never race Start()/Join(); ServeRuntime's
//     shutdown joins the control thread before joining workers to pin this.
// Snapshot() takes shard locks one at a time and never nests them with mu_,
// so the control thread can snapshot first and publish second without ever
// nesting control → module.
#ifndef PARD_SERVE_SERVE_MODULE_H_
#define PARD_SERVE_SERVE_MODULE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "models/model_profile.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "runtime/rate_monitor.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "stats/reservoir.h"
#include "stats/sliding_window.h"

namespace pard {

class ServeRuntime;
class Counter;          // obs/metrics.h
class Gauge;            // obs/metrics.h
class AtomicHistogram;  // obs/metrics.h

class ServeModule {
 public:
  ServeModule(ServeRuntime* runtime, BackendFleet* fleet, const ModuleSpec& spec,
              const ModelProfile& profile, int batch_size, int workers,
              const RuntimeOptions& options);

  // Spawns the initial (warm) worker threads. Call once, after construction
  // of all modules and before the control thread starts.
  void Start();

  // Thread-safe offered-load accounting. The runtime calls this for every
  // delivery BEFORE the admission front-end, mirroring the simulator's
  // bump-then-admit order in ModuleRuntime::Receive — load_factor and
  // burstiness must measure offered load, or the adaptive priority would
  // see artificially low load exactly when ingress shedding is heaviest.
  void NoteOffered(SimTime now);

  // Thread-safe delivery (ingress admission already done by the runtime).
  void Receive(RequestPtr req);

  // --- Fleet dynamics (control thread only; never concurrent with Join) ---
  // Provisions `count` new worker threads that begin serving after their
  // backend profile's cold start, bounded by the per-module worker cap.
  // Returns the number actually spawned (the caller additionally budgets
  // the fleet-wide thread cap).
  int AddWorkers(int count, SimTime now);
  // Fault injection: kills up to `count` active workers. A killed worker's
  // in-flight batch is routed through the runtime's deadline-aware retry
  // path (dropped kWorkerFailure/kRetryExhausted when unretryable); the
  // thread exits. Returns the number killed.
  int FailWorkers(int count, SimTime now);
  // Chaos injection: hangs up to `count` active workers. A hung worker holds
  // its in-flight batch and stops heartbeating; with duration == 0 it hangs
  // until the watchdog force-fails it (or shutdown). Takes effect at the
  // worker's next batch boundary — an idle hung worker is indistinguishable
  // from a slow one until work arrives. Returns the number hung.
  int HangWorkers(int count, Duration duration, SimTime now);
  // Chaos injection: scales every batch execution by `factor` (> 1 = slower)
  // until virtual time `until`. Later calls override earlier ones.
  void SetSlowdown(double factor, SimTime until);
  // Watchdog (control thread): force-fails every busy worker whose heartbeat
  // is older than `budget` through the BackendFleet fail path, exactly like
  // FailWorkers. Returns the number killed (the caller provisions
  // replacements).
  int WatchdogSweep(SimTime now, Duration budget);
  // Adjust the live fleet toward `target_units` of capacity (baseline-worker
  // units), spawning at most `max_new_threads` new threads; drains when
  // above target. Returns threads added.
  int SetTargetUnits(double target_units, SimTime now, int max_new_threads);

  // Asks workers to exit once the queues are empty, then unblocks them.
  void RequestStop();
  // Drain-timeout stop: discards the entire backlog (abandoned requests stay
  // non-terminal; the runtime's conservation sweep accounts them kLate) and
  // stops workers. Each worker finishes at most its in-flight batch, so the
  // run ends within one batch duration instead of serving the backlog out.
  void Abort();
  // Joins worker threads; re-throws the first worker exception.
  void Join();

  // Monitoring snapshot for the control thread: merges the per-shard
  // monitor slices (shard locks, one at a time — see the contract above).
  ModuleState Snapshot(SimTime now);
  // Window-smoothed offered rate, for the scaling engine.
  double SmoothedInputRate(SimTime now);
  double PerWorkerThroughput() const { return profile_.Throughput(batch_size_); }

  int module_id() const { return spec_.id; }
  int batch_size() const { return batch_size_; }
  int initial_workers() const { return initial_workers_; }
  int num_queue_shards() const { return static_cast<int>(shards_.size()); }

 private:
  // One worker thread's shared flags. The slot is immutable; kill/drain are
  // written by the control thread and polled by the owning thread. The
  // jitter RNG and home shard are worker-private.
  struct ServeWorker {
    ServeWorker(const BackendSlot& s, bool c, int home_shard, Rng jitter_rng)
        : slot(s), cold(c), home(home_shard), jitter(jitter_rng) {}
    const BackendSlot slot;
    const bool cold;  // Spawned mid-run: sleep slot.cold_start first.
    const int home;   // Home queue shard; siblings are steal targets.
    Rng jitter;       // Owning thread only.
    std::atomic<bool> kill{false};
    std::atomic<bool> drain{false};
    // Liveness contract with the watchdog: the owning thread stamps
    // `heartbeat` then sets `busy` at each batch start (release), and clears
    // `busy` at each batch end — so the watchdog (acquire) only ever judges
    // a fresh heartbeat. A hung worker keeps busy == true with a stale
    // heartbeat, which is exactly the watchdog's trigger.
    std::atomic<SimTime> heartbeat{0};
    std::atomic<bool> busy{false};
    // Chaos hang window: the worker stalls (holding its formed batch, not
    // heartbeating) while Now() < hang_until. INT64_MAX = hang forever.
    std::atomic<SimTime> hang_until{0};
  };

  // One slice of the module's queue + monitoring state.
  struct QueueShard {
    QueueShard(Duration window, std::size_t reservoir_capacity)
        : queue_delay_window(window),
          stage_latency_window(window),
          wait_reservoir(reservoir_capacity),
          rate_monitor(window) {}

    std::mutex mu;  // LockRank::kQueueShard.
    RequestQueue queue;

    // SlidingWindow requires non-decreasing timestamps but concurrent
    // workers observe slightly out-of-order clock reads; Monotonic() clamps
    // observation times to the shard's high-water mark. Caller holds mu.
    SimTime obs_clock = 0;
    SimTime Monotonic(SimTime t) {
      obs_clock = std::max(obs_clock, t);
      return obs_clock;
    }
    SlidingWindow queue_delay_window;
    SlidingWindow stage_latency_window;
    RecentReservoir wait_reservoir;
    RateMonitor rate_monitor;
  };

  void WorkerLoop(ServeWorker* w);
  // Pops up to batch_size_ live requests: purge + broker decisions against
  // the home shard first, then steals from siblings. Takes shard locks one
  // at a time; caller holds NO lock.
  std::vector<RequestPtr> FormBatch(int home_shard, SimTime now);
  // Scans one shard (caller holds no lock; locks shard.mu internally).
  // `shard_index` names the shard for steal attribution; `stolen` is true
  // when the scanning worker's home shard is a different one.
  void FormBatchFromShard(QueueShard& shard, int shard_index, bool stolen,
                          SimTime now, Duration d_k,
                          std::vector<RequestPtr>* batch);
  // Spawns one roster entry (cold unless `warm`). Caller must be the
  // constructor/control thread.
  void SpawnWorker(bool warm, SimTime now);

  ServeRuntime* runtime_;
  BackendFleet* fleet_;
  ModuleSpec spec_;
  const ModelProfile& profile_;
  int batch_size_;
  int initial_workers_;
  RuntimeOptions options_;

  std::mutex mu_;  // LockRank::kModule — roster + sleep/wake only.
  std::condition_variable work_ready_;
  bool stop_ = false;
  // Lock-free mirror of stop_, polled by hung workers: an indefinitely hung
  // worker never reaches the predicate wait, so shutdown must be visible
  // without taking mu_. On stop a hung worker abandons the hang and executes
  // its in-flight batch normally (each worker finishes at most one batch).
  std::atomic<bool> stopping_{false};
  // Chaos slowdown window (SetSlowdown): factor is published before the
  // `until` release store; workers pair it with an acquire load.
  std::atomic<double> slow_factor_{1.0};
  std::atomic<SimTime> slow_until_{0};
  std::vector<std::unique_ptr<ServeWorker>> roster_;  // Guarded by mu_.
  int spawned_ = 0;  // Control thread only; assigns home shards round-robin.

  std::vector<std::unique_ptr<QueueShard>> shards_;  // Fixed after ctor.
  // Live entries across all shards (includes already-terminal entries not
  // yet popped, exactly like the old queue_.Empty() predicate).
  std::atomic<std::int64_t> queued_{0};
  std::atomic<std::uint64_t> push_cursor_{0};     // Round-robin Receive.
  std::atomic<std::uint64_t> offered_cursor_{0};  // Round-robin NoteOffered.

  WorkerGroup workers_;

  // Pre-resolved instruments (null / empty when options_.metrics is null).
  // Updates are lock-free; see obs/metrics.h.
  Counter* executed_counter_ = nullptr;
  Counter* steal_counter_ = nullptr;
  AtomicHistogram* batch_size_hist_ = nullptr;
  std::vector<Gauge*> depth_gauges_;  // One per queue shard.
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_MODULE_H_
