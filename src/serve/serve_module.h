// One pipeline module served by real threads.
//
// The simulated ModuleRuntime dispatches to per-worker queues inside one
// event loop; here a module is a single shared DEPQ drained by N OS threads,
// each playing one GPU worker. A worker pulls a batch (applying the Request
// Broker's drop decision per candidate under the control-plane facade),
// "executes" it by sleeping the profiled duration in scaled wall time, then
// hands the batch back to the runtime for forwarding.
//
// Batching discipline vs the simulator: a pull-based worker launches as soon
// as it is free, so the batch-entry and execution-start instants coincide
// (W ≈ 0) and contention shows up entirely as queueing delay Q. This is the
// natural discipline for a thread-per-worker server; the simulator's
// form-while-executing overlap (W ∈ [0, d]) is one reason serve and sim
// numbers agree only within a tolerance band (see tests/serve_test.cc).
//
// Concurrency contract: `mu_` guards the queue and all monitoring state
// (windows, reservoir, rate bins). Workers may take the control-plane lock
// while holding `mu_` (module → control order); Snapshot() takes only `mu_`
// so the sync thread can snapshot first and publish second without ever
// nesting control → module.
#ifndef PARD_SERVE_SERVE_MODULE_H_
#define PARD_SERVE_SERVE_MODULE_H_

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "models/model_profile.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/rate_monitor.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "stats/reservoir.h"
#include "stats/sliding_window.h"

namespace pard {

class ServeRuntime;

class ServeModule {
 public:
  ServeModule(ServeRuntime* runtime, const ModuleSpec& spec, const ModelProfile& profile,
              int batch_size, int workers, const RuntimeOptions& options);

  // Spawns the worker threads. Call once, after construction of all modules.
  void Start();

  // Thread-safe offered-load accounting. The runtime calls this for every
  // delivery BEFORE the admission front-end, mirroring the simulator's
  // bump-then-admit order in ModuleRuntime::Receive — load_factor and
  // burstiness must measure offered load, or the adaptive priority would
  // see artificially low load exactly when ingress shedding is heaviest.
  void NoteOffered(SimTime now);

  // Thread-safe delivery (ingress admission already done by the runtime).
  void Receive(RequestPtr req);

  // Asks workers to exit once the queue is empty, then unblocks them.
  void RequestStop();
  // Drain-timeout stop: discards the entire backlog (abandoned requests stay
  // non-terminal; the runtime's conservation sweep accounts them kLate) and
  // stops workers. Each worker finishes at most its in-flight batch, so the
  // run ends within one batch duration instead of serving the backlog out.
  void Abort();
  // Joins worker threads; re-throws the first worker exception.
  void Join();

  // Monitoring snapshot for the state-sync thread. Takes only the module
  // lock (see the lock-ordering note above).
  ModuleState Snapshot(SimTime now);

  int module_id() const { return spec_.id; }
  int batch_size() const { return batch_size_; }
  int worker_count() const { return worker_count_; }

 private:
  void WorkerLoop();
  // Pops up to batch_size_ live requests, applying purge + broker decisions.
  // Caller holds mu_.
  std::vector<RequestPtr> FormBatchLocked(SimTime now);

  ServeRuntime* runtime_;
  ModuleSpec spec_;
  const ModelProfile& profile_;
  int batch_size_;
  int worker_count_;
  RuntimeOptions options_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  bool stop_ = false;
  RequestQueue queue_;
  Rng jitter_rng_;

  // State-planner monitoring, all guarded by mu_. SlidingWindow requires
  // non-decreasing timestamps but concurrent workers observe slightly
  // out-of-order clock reads; MonotonicLocked() clamps observation times to
  // the module's high-water mark before they reach a window.
  SimTime obs_clock_ = 0;
  SimTime MonotonicLocked(SimTime t) {
    obs_clock_ = std::max(obs_clock_, t);
    return obs_clock_;
  }
  SlidingWindow queue_delay_window_;
  SlidingWindow stage_latency_window_;
  RecentReservoir wait_reservoir_;
  RateMonitor rate_monitor_;

  WorkerGroup workers_;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_MODULE_H_
