// One pipeline module served by real threads.
//
// The simulated ModuleRuntime dispatches to per-worker queues inside one
// event loop; here a module is a single shared DEPQ drained by N OS threads,
// each playing one GPU worker. A worker pulls a batch (applying the Request
// Broker's drop decision per candidate under the control-plane facade),
// "executes" it by sleeping the profiled duration in scaled wall time, then
// hands the batch back to the runtime for forwarding.
//
// Worker roster: every thread occupies one BackendFleet slot, so fleets can
// be heterogeneous — a slot's backend profile scales its execution
// durations (slot.exec_scale) and sets its cold-start delay. The roster is
// dynamic: AddWorkers() spawns threads that serve only after their cold
// start, DrainWorkers() retires the most recently added threads after their
// current batch, and FailWorkers() kills threads so that their in-flight
// batch is lost (mirroring the simulator's Worker::Fail; the *queued*
// backlog survives here because the DEPQ is shared, where the simulator
// loses the failed worker's private queue).
//
// Batching discipline vs the simulator: a pull-based worker launches as soon
// as it is free, so the batch-entry and execution-start instants coincide
// (W ≈ 0) and contention shows up entirely as queueing delay Q. This is the
// natural discipline for a thread-per-worker server; the simulator's
// form-while-executing overlap (W ∈ [0, d]) is one reason serve and sim
// numbers agree only within a tolerance band (see tests/serve_test.cc).
//
// Concurrency contract: `mu_` guards the queue, the roster vector and all
// monitoring state (windows, reservoir, rate bins). Workers may take the
// control-plane lock while holding `mu_` (module → control order);
// Snapshot() takes only `mu_` so the control thread can snapshot first and
// publish second without ever nesting control → module. Roster mutations
// (AddWorkers/DrainWorkers/FailWorkers) must come from ONE control thread
// and never race Start()/Join() — ServeRuntime's shutdown joins the control
// thread before joining workers to pin this.
#ifndef PARD_SERVE_SERVE_MODULE_H_
#define PARD_SERVE_SERVE_MODULE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "models/model_profile.h"
#include "pipeline/pipeline_spec.h"
#include "runtime/backend_fleet.h"
#include "runtime/rate_monitor.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"
#include "runtime/runtime_options.h"
#include "runtime/state_board.h"
#include "stats/reservoir.h"
#include "stats/sliding_window.h"

namespace pard {

class ServeRuntime;

class ServeModule {
 public:
  ServeModule(ServeRuntime* runtime, BackendFleet* fleet, const ModuleSpec& spec,
              const ModelProfile& profile, int batch_size, int workers,
              const RuntimeOptions& options);

  // Spawns the initial (warm) worker threads. Call once, after construction
  // of all modules and before the control thread starts.
  void Start();

  // Thread-safe offered-load accounting. The runtime calls this for every
  // delivery BEFORE the admission front-end, mirroring the simulator's
  // bump-then-admit order in ModuleRuntime::Receive — load_factor and
  // burstiness must measure offered load, or the adaptive priority would
  // see artificially low load exactly when ingress shedding is heaviest.
  void NoteOffered(SimTime now);

  // Thread-safe delivery (ingress admission already done by the runtime).
  void Receive(RequestPtr req);

  // --- Fleet dynamics (control thread only; never concurrent with Join) ---
  // Provisions `count` new worker threads that begin serving after their
  // backend profile's cold start, bounded by the per-module worker cap.
  // Returns the number actually spawned (the caller additionally budgets
  // the fleet-wide thread cap).
  int AddWorkers(int count, SimTime now);
  // Fault injection: kills up to `count` active workers. A killed worker's
  // in-flight batch is dropped at this module; the thread exits. Returns
  // the number killed.
  int FailWorkers(int count, SimTime now);
  // Adjust the live fleet toward `target_units` of capacity (baseline-worker
  // units), spawning at most `max_new_threads` new threads; drains when
  // above target. Returns threads added.
  int SetTargetUnits(double target_units, SimTime now, int max_new_threads);

  // Asks workers to exit once the queue is empty, then unblocks them.
  void RequestStop();
  // Drain-timeout stop: discards the entire backlog (abandoned requests stay
  // non-terminal; the runtime's conservation sweep accounts them kLate) and
  // stops workers. Each worker finishes at most its in-flight batch, so the
  // run ends within one batch duration instead of serving the backlog out.
  void Abort();
  // Joins worker threads; re-throws the first worker exception.
  void Join();

  // Monitoring snapshot for the control thread. Takes only the module lock
  // (see the lock-ordering note above).
  ModuleState Snapshot(SimTime now);
  // Window-smoothed offered rate, for the scaling engine.
  double SmoothedInputRate(SimTime now);
  double PerWorkerThroughput() const { return profile_.Throughput(batch_size_); }

  int module_id() const { return spec_.id; }
  int batch_size() const { return batch_size_; }
  int initial_workers() const { return initial_workers_; }

 private:
  // One worker thread's shared flags. The slot is immutable; kill/drain are
  // written by the control thread and polled by the owning thread.
  struct ServeWorker {
    explicit ServeWorker(const BackendSlot& s, bool c) : slot(s), cold(c) {}
    const BackendSlot slot;
    const bool cold;  // Spawned mid-run: sleep slot.cold_start first.
    std::atomic<bool> kill{false};
    std::atomic<bool> drain{false};
  };

  void WorkerLoop(ServeWorker* w);
  // Pops up to batch_size_ live requests, applying purge + broker decisions.
  // Caller holds mu_.
  std::vector<RequestPtr> FormBatchLocked(SimTime now);
  // Spawns one roster entry (cold unless `warm`). Caller must be the
  // constructor/control thread.
  void SpawnWorker(bool warm, SimTime now);

  ServeRuntime* runtime_;
  BackendFleet* fleet_;
  ModuleSpec spec_;
  const ModelProfile& profile_;
  int batch_size_;
  int initial_workers_;
  RuntimeOptions options_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  bool stop_ = false;
  RequestQueue queue_;
  Rng jitter_rng_;
  std::vector<std::unique_ptr<ServeWorker>> roster_;  // Guarded by mu_.

  // State-planner monitoring, all guarded by mu_. SlidingWindow requires
  // non-decreasing timestamps but concurrent workers observe slightly
  // out-of-order clock reads; MonotonicLocked() clamps observation times to
  // the module's high-water mark before they reach a window.
  SimTime obs_clock_ = 0;
  SimTime MonotonicLocked(SimTime t) {
    obs_clock_ = std::max(obs_clock_, t);
    return obs_clock_;
  }
  SlidingWindow queue_delay_window_;
  SlidingWindow stage_latency_window_;
  RecentReservoir wait_reservoir_;
  RateMonitor rate_monitor_;

  WorkerGroup workers_;
};

}  // namespace pard

#endif  // PARD_SERVE_SERVE_MODULE_H_
