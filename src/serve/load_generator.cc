#include "serve/load_generator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace pard {

std::vector<SimTime> SynthesizePoissonArrivals(double rate, SimTime begin, SimTime end,
                                               Rng& rng) {
  PARD_CHECK_MSG(rate > 0.0, "Poisson rate must be positive");
  PARD_CHECK(begin <= end);
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<std::size_t>(UsToSec(end - begin) * rate) + 16);
  const double mean_gap_us = 1e6 / rate;
  double t = static_cast<double>(begin);
  for (;;) {
    t += rng.Exponential(mean_gap_us);
    if (t >= static_cast<double>(end)) {
      break;
    }
    arrivals.push_back(static_cast<SimTime>(t));
  }
  return arrivals;
}

std::vector<SimTime> SynthesizeMmppArrivals(const MmppOptions& options, SimTime begin,
                                            SimTime end, Rng& rng) {
  PARD_CHECK_MSG(options.base_rate > 0.0 && options.burst_rate > 0.0,
                 "MMPP rates must be positive");
  PARD_CHECK_MSG(options.mean_base_s > 0.0 && options.mean_burst_s > 0.0,
                 "MMPP dwell means must be positive");
  PARD_CHECK(begin <= end);
  std::vector<SimTime> arrivals;
  bool burst = false;
  double segment_start = static_cast<double>(begin);
  // Walk state segments; within each, arrivals are Poisson at the state rate.
  while (segment_start < static_cast<double>(end)) {
    const double dwell_us =
        rng.Exponential((burst ? options.mean_burst_s : options.mean_base_s) * 1e6);
    const double segment_end =
        std::min(segment_start + dwell_us, static_cast<double>(end));
    const double rate = burst ? options.burst_rate : options.base_rate;
    const double mean_gap_us = 1e6 / rate;
    double t = segment_start;
    for (;;) {
      t += rng.Exponential(mean_gap_us);
      if (t >= segment_end) {
        break;
      }
      arrivals.push_back(static_cast<SimTime>(t));
    }
    segment_start = segment_end;
    burst = !burst;
  }
  return arrivals;
}

LoadGenerator::LoadGenerator(const ServeClock* clock, std::vector<SimTime> arrivals,
                             std::function<void(SimTime)> inject)
    : clock_(clock), arrivals_(std::move(arrivals)), inject_(std::move(inject)) {
  PARD_CHECK(clock_ != nullptr);
  PARD_CHECK(inject_ != nullptr);
  PARD_CHECK_MSG(std::is_sorted(arrivals_.begin(), arrivals_.end()),
                 "arrival timestamps must be sorted");
}

void LoadGenerator::Start() {
  thread_.Spawn([this] {
    for (SimTime t : arrivals_) {
      clock_->SleepUntil(t);
      inject_(t);
    }
  });
}

void LoadGenerator::Join() { thread_.Join(); }

SimTime LoadGenerator::LastArrival() const {
  return arrivals_.empty() ? 0 : arrivals_.back();
}

}  // namespace pard
