#include "serve/serve_runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/lock_order.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "runtime/batch_planner.h"

namespace pard {

namespace {

// Proportional scale-down of a worker plan to a total-thread cap. The
// max(1, ...) floor can leave the scaled sum above the cap (many light
// modules plus one heavy one), so trim the largest entries until the cap
// truly holds — the caller guarantees cap >= module count, so one worker
// per module always fits.
std::vector<int> CapTotalWorkers(std::vector<int> plan, int cap) {
  int total = 0;
  for (int w : plan) {
    total += w;
  }
  if (total <= cap) {
    return plan;
  }
  const double scale = static_cast<double>(cap) / static_cast<double>(total);
  total = 0;
  for (int& w : plan) {
    w = std::max(1, static_cast<int>(static_cast<double>(w) * scale));
    total += w;
  }
  while (total > cap) {
    auto largest = std::max_element(plan.begin(), plan.end());
    if (*largest <= 1) {
      break;  // Cannot trim below one worker per module.
    }
    --*largest;
    --total;
  }
  return plan;
}

ControlPlane::Options MakeControlOptions(const RuntimeOptions& options,
                                         const ServeOptions& serve) {
  ControlPlane::Options control;
  control.seed = options.seed;
  control.staleness_budget = options.resilience.staleness_budget;
  control.parallel_refresh = serve.parallel_refresh;
  control.refresh_threads = serve.refresh_threads;
  return control;
}

}  // namespace

ServeRuntime::ServeRuntime(const PipelineSpec& spec, const RuntimeOptions& options,
                           DropPolicy* policy, double expected_rate, const ServeOptions& serve)
    : spec_(spec),
      options_(options),
      serve_(serve),
      clock_(serve.speedup),
      board_(spec.NumModules()),
      control_(&spec_, policy, &board_, MakeControlOptions(options, serve)),
      batch_sizes_(PlanBatchSizes(spec_)),
      fleet_(spec_, options.cold_start, options.cost_aware_provisioning),
      rng_(options.seed) {
  PARD_CHECK(serve_.max_total_threads >= spec_.NumModules());
  if (!options_.tenants.empty()) {
    governor_ = std::make_unique<TenantGovernor>(options_.tenants, options_.seed);
  }
  PARD_CHECK_MSG(serve_.broker_threads >= 1, "broker_threads must be >= 1");
  if (!options_.fixed_workers.empty()) {
    PARD_CHECK_MSG(static_cast<int>(options_.fixed_workers.size()) == spec_.NumModules(),
                   "fixed_workers size must match module count");
    worker_plan_ = options_.fixed_workers;
  } else {
    worker_plan_ = PlanWorkers(spec_, batch_sizes_, expected_rate, options_.provision_headroom,
                               options_.max_workers_per_module, options_.total_gpus);
  }
  worker_plan_ = CapTotalWorkers(worker_plan_, serve_.max_total_threads);
  // The deterministic fault schedule, merged and time-sorted. Validated
  // loudly here: a typo'd module id must fail the run, not silently no-op.
  for (const RuntimeOptions::FailureEvent& failure : options_.failures) {
    PARD_CHECK_MSG(failure.module_id >= 0 && failure.module_id < spec_.NumModules(),
                   "failure event targets unknown module " << failure.module_id);
    fault_schedule_.push_back(
        FleetEvent{failure.at, failure.module_id, FleetEvent::Kind::kKill, failure.workers});
  }
  for (const FleetEvent& event : options_.fleet_events) {
    PARD_CHECK_MSG(event.module_id >= 0 && event.module_id < spec_.NumModules(),
                   "fleet event targets unknown module " << event.module_id);
    PARD_CHECK(event.count >= 1);
    fault_schedule_.push_back(event);
  }
  std::stable_sort(fault_schedule_.begin(), fault_schedule_.end(),
                   [](const FleetEvent& a, const FleetEvent& b) { return a.at < b.at; });
  // The chaos schedule, expanded deterministically from the run seed (so a
  // probabilistic schedule injects the same concrete events the simulator
  // would) and validated like the fault schedule.
  PARD_CHECK(options_.resilience.max_retries >= 0);
  PARD_CHECK(options_.resilience.hang_budget >= 0);
  chaos_schedule_ = ExpandChaosSchedule(options_.resilience.chaos, options_.seed);
  for (const ChaosEvent& event : chaos_schedule_) {
    PARD_CHECK_MSG(event.kind == ChaosKind::kStallSync ||
                       (event.module_id >= 0 && event.module_id < spec_.NumModules()),
                   "chaos event targets unknown module " << event.module_id);
  }
  for (const ModuleSpec& m : spec_.modules()) {
    const ModelProfile& profile = ProfileRegistry::Get(m.model);
    planned_batch_duration_.push_back(
        profile.BatchDuration(batch_sizes_[static_cast<std::size_t>(m.id)]));
    modules_.push_back(std::make_unique<ServeModule>(
        this, &fleet_, m, profile, batch_sizes_[static_cast<std::size_t>(m.id)],
        worker_plan_[static_cast<std::size_t>(m.id)], options_));
  }
  if (options_.metrics != nullptr) {
    // Same metric names as the simulator (pipeline_runtime.cc), so the two
    // substrates export comparable series.
    completed_counter_ = options_.metrics->GetCounter("fate.completed");
    for (int r = 1; r < kNumDropReasons; ++r) {
      drop_reason_counters_[r] = options_.metrics->GetCounter(
          std::string("fate.dropped.") + DropReasonName(static_cast<DropReason>(r)));
    }
    retry_counter_ = options_.metrics->GetCounter("resilience.retries");
    watchdog_counter_ = options_.metrics->GetCounter("resilience.watchdog_kills");
    // Control-sync tail: wall-clock Sync() cost per epoch. 0..20 ms in
    // 0.5 ms buckets comfortably brackets both the incremental fast path
    // (tens of us) and a pathological full recompute.
    sync_duration_hist_ =
        options_.metrics->GetHistogram("control.sync_duration_us", 0.0, 20000.0, 40);
    refresh_refreshed_counter_ =
        options_.metrics->GetCounter("control.refresh_modules_refreshed");
    refresh_skipped_counter_ =
        options_.metrics->GetCounter("control.refresh_modules_skipped");
    for (const ModuleSpec& m : spec_.modules()) {
      admitted_counters_.push_back(options_.metrics->GetCounter(
          "module.m" + std::to_string(m.id) + ".admitted"));
    }
    if (governor_ != nullptr) {
      for (const TenantSpec& tenant : options_.tenants) {
        tenant_completed_.push_back(
            options_.metrics->GetCounter("tenant." + tenant.name + ".completed"));
        tenant_dropped_.push_back(
            options_.metrics->GetCounter("tenant." + tenant.name + ".dropped"));
      }
    }
  }
}

bool ServeRuntime::IsTerminal(const Request& req) const {
  LockOrderGuard order(LockRank::kFate);
  std::lock_guard<std::mutex> lock(FateMutex(req));
  return req.Terminal();
}

void ServeRuntime::AssignDynamicPath(Request& req) {
  const int n = spec_.NumModules();
  req.branch_choice.assign(static_cast<std::size_t>(n), -1);
  req.expected_arrivals.assign(static_cast<std::size_t>(n), 0);
  std::vector<bool> active(static_cast<std::size_t>(n), false);
  active[static_cast<std::size_t>(spec_.SourceModule())] = true;
  for (int id : spec_.TopoOrder()) {
    if (!active[static_cast<std::size_t>(id)]) {
      continue;
    }
    const ModuleSpec& m = spec_.Module(id);
    if (m.subs.size() > 1) {
      const int pick = static_cast<int>(
          rng_.UniformInt(0, static_cast<std::int64_t>(m.subs.size()) - 1));
      const int chosen = m.subs[static_cast<std::size_t>(pick)];
      req.branch_choice[static_cast<std::size_t>(id)] = chosen;
      active[static_cast<std::size_t>(chosen)] = true;
      ++req.expected_arrivals[static_cast<std::size_t>(chosen)];
    } else {
      for (int s : m.subs) {
        active[static_cast<std::size_t>(s)] = true;
        ++req.expected_arrivals[static_cast<std::size_t>(s)];
      }
    }
  }
}

void ServeRuntime::Inject(SimTime scheduled) {
  (void)scheduled;  // Open loop: the *actual* instant is the send time.
  const SimTime now = clock_.Now();
  RequestPtr req = std::make_shared<Request>();
  // No lock: the id counter, RNG and request log belong to this (the load
  // generator's) thread; identity fields are immutable once the request is
  // visible to any other thread (runtime/request.h).
  req->id = next_request_id_++;
  req->sent = now;
  req->slo = spec_.slo();
  if (governor_ != nullptr) {
    // Tenant identity is a pure hash of the request id (no RNG draw) and is
    // stamped before the request becomes visible to any other thread.
    req->tenant = governor_->TenantOf(req->id);
    const TenantSpec& tenant = governor_->Tenant(req->tenant);
    req->weight = tenant.weight;
    req->slo = static_cast<Duration>(
        std::llround(static_cast<double>(req->slo) * tenant.slo_scale));
  }
  req->deadline = req->sent + req->slo;
  req->hops.resize(static_cast<std::size_t>(spec_.NumModules()));
  req->merge_arrivals.assign(static_cast<std::size_t>(spec_.NumModules()), 0);
  if (options_.dynamic_paths) {
    AssignDynamicPath(*req);
  }
  requests_.push_back(req);
  in_flight_.fetch_add(1, std::memory_order_release);
  if (governor_ != nullptr && !governor_->AdmitAtIngress(req->id, req->tenant)) {
    // Weighted ingress shed: lock-free threshold read on this (the load
    // generator's) thread; the request is recorded for conservation but
    // never reaches the broker backlog or any module queue.
    Drop(req, spec_.SourceModule(), now, DropReason::kTenantShed);
    return;
  }
  if (serve_.broker_threads > 1) {
    {
      std::lock_guard<std::mutex> lock(broker_mu_);
      broker_backlog_.push_back(std::move(req));
    }
    broker_ready_.notify_one();
  } else {
    Deliver(req, spec_.SourceModule(), now);
  }
}

void ServeRuntime::BrokerLoop() {
  for (;;) {
    RequestPtr req;
    {
      std::unique_lock<std::mutex> lock(broker_mu_);
      broker_ready_.wait(lock,
                         [this] { return broker_stop_ || !broker_backlog_.empty(); });
      if (broker_backlog_.empty()) {
        return;  // Stop requested and the backlog is drained (or discarded).
      }
      req = std::move(broker_backlog_.front());
      broker_backlog_.pop_front();
    }
    Deliver(req, spec_.SourceModule(), clock_.Now());
  }
}

void ServeRuntime::Deliver(const RequestPtr& req, int module_id, SimTime now) {
  const ModuleSpec& m = spec_.Module(module_id);
  if (m.pres.size() > 1) {
    // DAG merge: enqueue only once all expected branches delivered. The
    // merge counter shares the request's fate stripe, so a sibling branch's
    // drop and this arrival serialize.
    LockOrderGuard order(LockRank::kFate);
    std::lock_guard<std::mutex> lock(FateMutex(*req));
    int& arrived = req->merge_arrivals[static_cast<std::size_t>(module_id)];
    ++arrived;
    if (req->Terminal()) {
      return;  // A sibling branch was dropped; nothing to merge.
    }
    const int expected = req->HasDynamicPath()
                             ? req->expected_arrivals[static_cast<std::size_t>(module_id)]
                             : static_cast<int>(m.pres.size());
    if (arrived < expected) {
      return;
    }
  }
  // Offered load is counted before admission (like the simulator's
  // bump-then-admit Receive), so shed traffic still drives load_factor.
  modules_[static_cast<std::size_t>(module_id)]->NoteOffered(now);
  // Admission front-end: the paper's proactive drop runs BEFORE the request
  // enters the module queue — enqueue-time admission plus the Request Broker
  // predicate with the delivery instant as the hypothetical batch start. A
  // request that cannot meet its SLO even if a worker picked it up right now
  // never consumes queue space or a broker slot later. Both predicates read
  // the control plane's published snapshot — no control lock on this path.
  if (!control_.AdmitAtModule(*req, module_id, now)) {
    req->hops[static_cast<std::size_t>(module_id)].arrive = now;
    Drop(req, module_id, now, DropReason::kProactiveAdmission);
    return;
  }
  AdmissionContext ctx;
  ctx.request = req.get();
  ctx.module_id = module_id;
  ctx.now = now;
  ctx.batch_start = now;
  ctx.batch_duration = planned_batch_duration_[static_cast<std::size_t>(module_id)];
  ctx.batch_size = batch_sizes_[static_cast<std::size_t>(module_id)];
  if (control_.ShouldDrop(ctx)) {
    req->hops[static_cast<std::size_t>(module_id)].arrive = now;
    req->hops[static_cast<std::size_t>(module_id)].batch_entry = now;
    Drop(req, module_id, now, DropReason::kBrokerCandidate);
    return;
  }
  if (!admitted_counters_.empty()) {
    admitted_counters_[static_cast<std::size_t>(module_id)]->Add();
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kAdmit;
    ev.module = module_id;
    ev.request_id = req->id;
    ev.ts = now;
    options_.trace->EmitSampled(ev);
  }
  modules_[static_cast<std::size_t>(module_id)]->Receive(req);
}

void ServeRuntime::OnModuleDone(const RequestPtr& req, int module_id, SimTime now) {
  if (IsTerminal(*req)) {
    return;  // Dropped on a parallel branch while this one executed.
  }
  const ModuleSpec& m = spec_.Module(module_id);
  if (m.subs.empty()) {
    Complete(req, now);
    return;
  }
  if (req->HasDynamicPath() && m.subs.size() > 1) {
    Deliver(req, req->branch_choice[static_cast<std::size_t>(module_id)], now);
    return;
  }
  for (int sub : m.subs) {
    Deliver(req, sub, now);
  }
}

void ServeRuntime::Drop(const RequestPtr& req, int module_id, SimTime now,
                        DropReason reason) {
  {
    LockOrderGuard order(LockRank::kFate);
    std::lock_guard<std::mutex> lock(FateMutex(*req));
    if (req->Terminal()) {
      return;
    }
    req->fate = RequestFate::kDropped;
    req->drop_module = module_id;
    req->finish = now;
    req->drop_reason = reason;
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
  // Instrumentation outside the fate stripe: counters and trace shards are
  // lock-free, but keeping the stripe's critical section minimal keeps the
  // traced and untraced paths contention-identical.
  if (drop_reason_counters_[static_cast<int>(reason)] != nullptr) {
    drop_reason_counters_[static_cast<int>(reason)]->Add();
  }
  if (req->tenant >= 0 && !tenant_dropped_.empty()) {
    tenant_dropped_[static_cast<std::size_t>(req->tenant)]->Add();
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFate;
    ev.module = module_id;
    ev.request_id = req->id;
    ev.ts = now;
    ev.arg0 = static_cast<std::int64_t>(RequestFate::kDropped);
    ev.arg1 = static_cast<std::int64_t>(reason);
    options_.trace->EmitSampled(ev);
  }
}

void ServeRuntime::RetryOrDrop(const RequestPtr& req, int module_id, SimTime now) {
  if (IsTerminal(*req)) {
    return;  // Resolved on another branch; nothing left to rescue.
  }
  const ResilienceOptions& res = options_.resilience;
  if (res.max_retries > 0) {
    if (req->retry_count >= res.max_retries) {
      Drop(req, module_id, now, DropReason::kRetryExhausted);
      return;
    }
    // Deadline-aware: re-enqueue only when the remaining budget could still
    // cover this stage's planned batch duration — a request that cannot
    // finish even if picked up immediately is dead capacity.
    if (req->RemainingBudget(now) >
        planned_batch_duration_[static_cast<std::size_t>(module_id)]) {
      ++req->retry_count;  // Single writer: the thread that owned the batch.
      retries_.fetch_add(1, std::memory_order_relaxed);
      if (retry_counter_ != nullptr) {
        retry_counter_->Add();
      }
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kRetry;
        ev.module = module_id;
        ev.request_id = req->id;
        ev.ts = now;
        ev.arg0 = req->retry_count;
        options_.trace->EmitSampled(ev);
      }
      // Straight back into the module's queue shards: admission already
      // passed at delivery, and re-running NoteOffered/merge bookkeeping
      // would double-count this request.
      modules_[static_cast<std::size_t>(module_id)]->Receive(req);
      return;
    }
  }
  Drop(req, module_id, now, DropReason::kWorkerFailure);
}

void ServeRuntime::Complete(const RequestPtr& req, SimTime now) {
  RequestFate fate;
  {
    LockOrderGuard order(LockRank::kFate);
    std::lock_guard<std::mutex> lock(FateMutex(*req));
    if (req->Terminal()) {
      return;
    }
    req->finish = now;
    fate = now <= req->deadline ? RequestFate::kCompleted : RequestFate::kLate;
    req->fate = fate;
    if (fate == RequestFate::kLate) {
      req->drop_reason = DropReason::kSloLate;
    }
    in_flight_.fetch_sub(1, std::memory_order_release);
  }
  if (options_.metrics != nullptr) {
    if (fate == RequestFate::kCompleted) {
      completed_counter_->Add();
    } else {
      drop_reason_counters_[static_cast<int>(DropReason::kSloLate)]->Add();
    }
    if (req->tenant >= 0 && !tenant_completed_.empty()) {
      (fate == RequestFate::kCompleted
           ? tenant_completed_[static_cast<std::size_t>(req->tenant)]
           : tenant_dropped_[static_cast<std::size_t>(req->tenant)])
          ->Add();
    }
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kFate;
    ev.module = -1;
    ev.request_id = req->id;
    ev.ts = now;
    ev.arg0 = static_cast<std::int64_t>(fate);
    ev.arg1 = static_cast<std::int64_t>(
        fate == RequestFate::kLate ? DropReason::kSloLate : DropReason::kNone);
    options_.trace->EmitSampled(ev);
  }
}

void ServeRuntime::ScalingTick(SimTime now) {
  FleetSample sample;
  sample.t = now;
  for (auto& module : modules_) {
    const double rate = module->SmoothedInputRate(now);
    const double per_worker = module->PerWorkerThroughput();
    // Same engine as PipelineRuntime::ScalingTick: target capacity in
    // baseline-worker units from the smoothed offered rate.
    double target_units = fleet_.ProvisionedUnits(module->module_id());
    if (rate > 0.0 && per_worker > 0.0) {
      target_units = rate * options_.provision_headroom / per_worker;
    }
    // Real threads are capped fleet-wide; scale-ups spend the remaining
    // thread budget, scale-downs always apply.
    const int budget = serve_.max_total_threads - fleet_.TotalProvisioned();
    module->SetTargetUnits(target_units, now, std::max(0, budget));
    sample.workers.push_back(fleet_.ActiveCount(module->module_id()));
  }
  worker_history_.push_back(std::move(sample));
}

void ServeRuntime::ControlLoop() {
  SimTime next_sync = options_.sync_period;
  SimTime next_scale = options_.enable_scaling ? options_.scaling_epoch : -1;
  std::size_t next_fault = 0;
  std::size_t next_chaos = 0;
  // Watchdog cadence: a fraction of the hang budget, so a hang is detected
  // within budget + one sweep period (floored to keep the control thread
  // from spinning under a tiny budget).
  const Duration hang_budget = options_.resilience.hang_budget;
  const Duration watchdog_period =
      hang_budget > 0 ? std::max<Duration>(hang_budget / 4, 10 * kUsPerMs) : 0;
  SimTime next_watchdog = hang_budget > 0 ? watchdog_period : -1;
  // stall-sync chaos: sync epochs falling inside the stall window are
  // skipped, so the published snapshot ages exactly as a wedged sync thread
  // would leave it.
  SimTime sync_stalled_until = 0;
  while (!stop_control_.load(std::memory_order_relaxed)) {
    SimTime wake = next_sync;
    if (next_scale >= 0) {
      wake = std::min(wake, next_scale);
    }
    if (next_fault < fault_schedule_.size()) {
      wake = std::min(wake, fault_schedule_[next_fault].at);
    }
    if (next_chaos < chaos_schedule_.size()) {
      wake = std::min(wake, chaos_schedule_[next_chaos].at);
    }
    if (next_watchdog >= 0) {
      wake = std::min(wake, next_watchdog);
    }
    clock_.SleepUntil(wake);
    if (stop_control_.load(std::memory_order_relaxed)) {
      return;
    }
    const SimTime now = clock_.Now();
    // Deterministic fault schedule first: kill/recover exactly as scheduled
    // (transitions are logged at the scheduled instant).
    while (next_fault < fault_schedule_.size() && fault_schedule_[next_fault].at <= now) {
      const FleetEvent& event = fault_schedule_[next_fault++];
      ServeModule& module = *modules_[static_cast<std::size_t>(event.module_id)];
      if (event.kind == FleetEvent::Kind::kKill) {
        module.FailWorkers(event.count, event.at);
      } else {
        // Recovery spends the remaining thread budget like any scale-up —
        // a fault schedule cannot push past the fleet-wide thread cap.
        const int budget =
            std::max(0, serve_.max_total_threads - fleet_.TotalProvisioned());
        module.AddWorkers(std::min(event.count, budget), event.at);
      }
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kFleet;
        ev.module = event.module_id;
        ev.ts = event.at;
        ev.arg0 = event.kind == FleetEvent::Kind::kKill ? 0 : 1;
        ev.arg1 = event.count;
        options_.trace->Emit(ev);
      }
    }
    // Chaos schedule: hang/slow land on the target module; stall-sync arms
    // the sync-skip window below.
    while (next_chaos < chaos_schedule_.size() && chaos_schedule_[next_chaos].at <= now) {
      const ChaosEvent& event = chaos_schedule_[next_chaos++];
      switch (event.kind) {
        case ChaosKind::kHang:
          modules_[static_cast<std::size_t>(event.module_id)]->HangWorkers(
              event.count, event.duration, now);
          break;
        case ChaosKind::kSlow:
          modules_[static_cast<std::size_t>(event.module_id)]->SetSlowdown(
              event.factor, event.at + event.duration);
          break;
        case ChaosKind::kStallSync:
          sync_stalled_until = std::max(sync_stalled_until, event.at + event.duration);
          break;
      }
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kChaos;
        ev.module = event.module_id;
        ev.ts = event.at;
        ev.arg0 = static_cast<std::int64_t>(event.kind);
        ev.arg1 = event.kind == ChaosKind::kHang ? event.count
                                                 : static_cast<std::int64_t>(event.duration);
        options_.trace->Emit(ev);
      }
    }
    // Watchdog: force-fail busy workers with stale heartbeats and provision
    // replacements from the remaining thread budget.
    if (next_watchdog >= 0 && now >= next_watchdog) {
      for (auto& module : modules_) {
        const int killed = module->WatchdogSweep(now, hang_budget);
        if (killed == 0) {
          continue;
        }
        watchdog_kills_.fetch_add(static_cast<std::uint64_t>(killed),
                                  std::memory_order_relaxed);
        if (watchdog_counter_ != nullptr) {
          watchdog_counter_->Add(killed);
        }
        const int budget =
            std::max(0, serve_.max_total_threads - fleet_.TotalProvisioned());
        module->AddWorkers(std::min(killed, budget), now);
        if (options_.trace != nullptr) {
          TraceEvent ev;
          ev.kind = TraceEventKind::kWatchdog;
          ev.module = module->module_id();
          ev.ts = now;
          ev.arg0 = killed;
          options_.trace->Emit(ev);
        }
      }
      next_watchdog = now + watchdog_period;
    }
    if (next_scale >= 0 && now >= next_scale) {
      ScalingTick(now);
      next_scale += options_.scaling_epoch;
    }
    if (now >= next_sync && now < sync_stalled_until) {
      // stall-sync chaos: skip this epoch; the snapshot published before the
      // stall keeps serving readers (and aging toward the staleness budget).
      next_sync += options_.sync_period;
    } else if (now >= next_sync) {
      std::vector<ModuleState> states;
      states.reserve(modules_.size());
      for (auto& module : modules_) {
        states.push_back(module->Snapshot(now));  // Shard locks, one at a time.
      }
      if (governor_ != nullptr) {
        // Weighted shed plan from the same states the brokers are about to
        // read — the governor is never fresher than the snapshot.
        governor_->Resync(states);
      }
      // Publishes a fresh immutable snapshot for the brokers — entirely off
      // the control lock on the snapshot path. Timed in wall-clock terms:
      // sync cost is real CPU work, not virtual time.
      const auto sync_begin = std::chrono::steady_clock::now();
      const ControlPlane::SyncStats sync_stats = control_.Sync(std::move(states), now);
      const auto sync_wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                    std::chrono::steady_clock::now() - sync_begin)
                                    .count();
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kEpochSync;
        ev.module = -1;
        ev.ts = now;
        ev.arg0 = static_cast<std::int64_t>(control_.SnapshotEpoch());
        options_.trace->Emit(ev);
        TraceEvent refresh_ev;
        refresh_ev.kind = TraceEventKind::kControlRefresh;
        refresh_ev.module = -1;
        refresh_ev.ts = now;
        refresh_ev.dur = sync_wall_us;
        refresh_ev.arg0 = sync_stats.refreshed;
        refresh_ev.arg1 = sync_stats.skipped;
        options_.trace->Emit(refresh_ev);
      }
      if (sync_duration_hist_ != nullptr) {
        sync_duration_hist_->Observe(static_cast<double>(sync_wall_us));
        refresh_refreshed_counter_->Add(sync_stats.refreshed);
        refresh_skipped_counter_->Add(sync_stats.skipped);
      }
      if (options_.metrics != nullptr) {
        options_.metrics->GetGauge("control.snapshot_epoch")
            ->Set(static_cast<std::int64_t>(control_.SnapshotEpoch()));
        // How far behind schedule this sync ran (virtual us): the sampler's
        // view of control-plane health under load.
        options_.metrics->GetGauge("control.sync_lag_us")->Set(now - next_sync);
        options_.metrics->GetGauge("resilience.stale_fallbacks")
            ->Set(static_cast<std::int64_t>(control_.StaleFallbacks()));
      }
      next_sync += options_.sync_period;
    }
  }
}

void ServeRuntime::SamplerLoop() {
  SimTime next = options_.metrics_interval;
  while (!stop_sampler_.load(std::memory_order_relaxed)) {
    clock_.SleepUntil(next);
    if (stop_sampler_.load(std::memory_order_relaxed)) {
      return;
    }
    options_.metrics->Sample(clock_.Now());
    next += options_.metrics_interval;
  }
}

void ServeRuntime::Shutdown(bool abandon_backlog) {
  // Brokers go first: on a drained run their backlog is empty (a backlogged
  // request is non-terminal, so the drain loop would still be waiting); on
  // the abandon path the backlog is discarded — the conservation sweep
  // accounts those requests kLate.
  {
    std::lock_guard<std::mutex> lock(broker_mu_);
    broker_stop_ = true;
    if (abandon_backlog) {
      broker_backlog_.clear();
    }
  }
  broker_ready_.notify_all();
  broker_pool_.Join();
  // The sampler only reads the registry; stop it before the control thread
  // so its final sample still sees live gauges (bounded by one clock sleep).
  stop_sampler_.store(true, std::memory_order_relaxed);
  sampler_thread_.Join();
  // The control thread next: once it is joined, no scaling tick or fault
  // event can spawn a worker thread while the module groups join.
  stop_control_.store(true, std::memory_order_relaxed);
  control_thread_.Join();
  // Topo order: once module k's workers have joined, nothing can deliver to
  // k's successors, so each successor sees its final queue before its own
  // stop flag is observed with an empty queue. On the abandon path the
  // backlog is discarded instead of served; upstream joins first, so each
  // module re-discards at most the handful of batches its predecessors had
  // in flight.
  for (int id : spec_.TopoOrder()) {
    ServeModule& module = *modules_[static_cast<std::size_t>(id)];
    if (abandon_backlog) {
      module.Abort();
    } else {
      module.RequestStop();
    }
    module.Join();
    if (abandon_backlog) {
      module.Abort();  // Re-discard what upstream forwarded while joining.
    }
  }
}

void ServeRuntime::RunTrace(const std::vector<SimTime>& arrivals) {
  PARD_CHECK_MSG(!ran_, "ServeRuntime::RunTrace may run only once");
  ran_ = true;
  PARD_CHECK_MSG(std::is_sorted(arrivals.begin(), arrivals.end()),
                 "arrival timestamps must be sorted");

  clock_.Start();
  for (auto& module : modules_) {
    module->Start();
  }
  if (serve_.broker_threads > 1) {
    for (int i = 0; i < serve_.broker_threads; ++i) {
      broker_pool_.Spawn([this] { BrokerLoop(); });
    }
  }
  control_thread_.Spawn([this] { ControlLoop(); });
  if (options_.metrics != nullptr && options_.metrics_interval > 0) {
    sampler_thread_.Spawn([this] { SamplerLoop(); });
  }

  try {
    LoadGenerator generator(&clock_, arrivals, [this](SimTime t) { Inject(t); });
    generator.Start();
    generator.Join();

    // Drain: wait for in-flight requests to resolve, bounded by SLO + drain.
    const SimTime deadline = generator.LastArrival() + spec_.slo() + serve_.drain;
    bool drained = AllTerminal();
    while (!drained && clock_.Now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      drained = AllTerminal();
    }
    // Deadline hit with work still queued (e.g. a drop-free policy under
    // overload): abandon the backlog so the run actually ends here instead
    // of serving it out.
    Shutdown(/*abandon_backlog=*/!drained);
  } catch (...) {
    // A worker/injector exception must not leave sibling threads parked on
    // their condition variables (member destructors would join forever).
    // Module joins rethrow the FIRST worker error, which would mask the
    // in-flight one — so swallow secondary errors here and rethrow the
    // original.
    try {
      Shutdown(/*abandon_backlog=*/true);
    } catch (...) {
    }
    throw;
  }

  // Conservation: anything still in flight (wedged queue, drain timeout,
  // discarded broker backlog) is accounted as late rather than silently
  // vanishing. Every thread has joined; no lock needed.
  const SimTime now = clock_.Now();
  for (const RequestPtr& req : requests_) {
    if (!req->Terminal()) {
      req->fate = RequestFate::kLate;
      req->finish = now;
      req->drop_reason = DropReason::kDrainAbandoned;
      in_flight_.fetch_sub(1, std::memory_order_release);
      if (drop_reason_counters_[static_cast<int>(DropReason::kDrainAbandoned)] !=
          nullptr) {
        drop_reason_counters_[static_cast<int>(DropReason::kDrainAbandoned)]
            ->Add();
      }
      if (req->tenant >= 0 && !tenant_dropped_.empty()) {
        tenant_dropped_[static_cast<std::size_t>(req->tenant)]->Add();
      }
    }
  }
}

}  // namespace pard
