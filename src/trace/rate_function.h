// Piecewise-linear request-rate functions (requests/second over time).
//
// Traces are represented as rate curves; the arrival generator turns a curve
// into a concrete non-homogeneous Poisson arrival sequence.
#ifndef PARD_TRACE_RATE_FUNCTION_H_
#define PARD_TRACE_RATE_FUNCTION_H_

#include <vector>

#include "common/time_types.h"

namespace pard {

class RateFunction {
 public:
  struct Point {
    SimTime t;
    double rate;  // req/s, >= 0
  };

  RateFunction() = default;
  // Points must be strictly increasing in time and non-negative in rate.
  explicit RateFunction(std::vector<Point> points);

  // Constant rate over all time.
  static RateFunction Constant(double rate);

  // Rate at time t (linear interpolation; clamped to end values outside the
  // defined range).
  double At(SimTime t) const;

  // Maximum rate over the defined points.
  double MaxRate() const;
  // Time-average rate over [begin, end].
  double MeanRate(SimTime begin, SimTime end, int samples = 1024) const;
  // Coefficient of variation of the rate curve sampled at 1 s intervals over
  // [begin, end] — the burstiness measure the paper quotes per trace.
  double Cv(SimTime begin, SimTime end) const;

  SimTime Begin() const { return points_.empty() ? 0 : points_.front().t; }
  SimTime End() const { return points_.empty() ? 0 : points_.back().t; }
  const std::vector<Point>& points() const { return points_; }

  // Returns a copy with all rates multiplied by `factor` and all times by
  // `time_scale` — used to compress paper-length traces into faster benches.
  RateFunction Scaled(double rate_factor, double time_scale = 1.0) const;

 private:
  std::vector<Point> points_;
};

}  // namespace pard

#endif  // PARD_TRACE_RATE_FUNCTION_H_
