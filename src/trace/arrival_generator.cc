#include "trace/arrival_generator.h"

#include <cmath>

#include "common/check.h"

namespace pard {

std::vector<SimTime> GenerateArrivals(const RateFunction& rate, SimTime begin, SimTime end,
                                      Rng& rng) {
  PARD_CHECK(end > begin);
  const double max_rate = rate.MaxRate();
  PARD_CHECK_MSG(max_rate > 0.0, "rate function is identically zero");
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<std::size_t>(UsToSec(end - begin) * max_rate * 0.7) + 16);
  double t = UsToSec(begin);
  const double t_end = UsToSec(end);
  while (true) {
    t += rng.Exponential(1.0 / max_rate);
    if (t >= t_end) {
      break;
    }
    const SimTime ts = SecToUs(t);
    if (rng.NextDouble() < rate.At(ts) / max_rate) {
      arrivals.push_back(ts);
    }
  }
  return arrivals;
}

std::vector<SimTime> GenerateUniformArrivals(double rate_per_sec, SimTime begin, SimTime end) {
  PARD_CHECK(rate_per_sec > 0.0);
  PARD_CHECK(end > begin);
  const Duration gap = static_cast<Duration>(std::llround(1e6 / rate_per_sec));
  PARD_CHECK(gap > 0);
  std::vector<SimTime> arrivals;
  for (SimTime t = begin; t < end; t += gap) {
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace pard
