#include "trace/traces.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace pard {
namespace {

constexpr double kStepSeconds = 5.0;  // Rate curve resolution.

std::vector<RateFunction::Point> GridPoints(double duration_s) {
  std::vector<RateFunction::Point> pts;
  const int n = static_cast<int>(duration_s / kStepSeconds) + 1;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({SecToUs(i * kStepSeconds), 0.0});
  }
  return pts;
}

}  // namespace

RateFunction MakeWikiTrace(const TraceOptions& options) {
  Rng rng(options.seed ^ 0x77696b69ULL);
  auto pts = GridPoints(options.duration_s);
  // Two nested periods (a slow diurnal swing plus a faster access wave) and
  // small multiplicative noise: smooth and periodic, CV ~= 0.47.
  const double slow_period = options.duration_s / 2.0;
  const double fast_period = options.duration_s / 7.0;
  for (auto& p : pts) {
    const double t = UsToSec(p.t);
    const double slow = 0.55 * std::sin(2.0 * M_PI * t / slow_period);
    const double fast = 0.25 * std::sin(2.0 * M_PI * t / fast_period + 0.8);
    const double noise = rng.Normal(0.0, 0.03);
    p.rate = std::max(1.0, options.base_rate * (1.0 + slow + fast + noise));
  }
  return RateFunction(std::move(pts));
}

RateFunction MakeTweetTrace(const TraceOptions& options) {
  Rng rng(options.seed ^ 0x7477656574ULL);
  auto pts = GridPoints(options.duration_s);
  // Low-ish baseline with occasional short bursts, plus the sustained 2x step
  // at 60% of the trace that the paper's Fig. 2d / Fig. 10 analyzes.
  const double step_at = 0.60 * options.duration_s;
  const double step_len = 0.12 * options.duration_s;
  double burst_until = -1.0;
  double burst_gain = 0.0;
  for (auto& p : pts) {
    const double t = UsToSec(p.t);
    double level = 0.55;  // Baseline fraction of base_rate.
    if (t >= step_at && t < step_at + step_len) {
      level = 1.35;  // The 2x+ step event.
    }
    if (t > burst_until && rng.Bernoulli(0.06)) {
      burst_until = t + rng.Uniform(10.0, 40.0);
      burst_gain = rng.Uniform(1.2, 2.8);
    }
    if (t <= burst_until) {
      level += burst_gain;
    }
    const double noise = rng.Normal(0.0, 0.06);
    p.rate = std::max(1.0, options.base_rate * std::max(0.05, level + noise));
  }
  return RateFunction(std::move(pts));
}

RateFunction MakeAzureTrace(const TraceOptions& options) {
  Rng rng(options.seed ^ 0x617a757265ULL);
  auto pts = GridPoints(options.duration_s);
  // Serverless invocations: low floor with frequent tall, short spikes.
  double burst_until = -1.0;
  double burst_gain = 0.0;
  for (auto& p : pts) {
    const double t = UsToSec(p.t);
    double level = 0.35 + 0.10 * std::sin(2.0 * M_PI * t / (options.duration_s / 3.0));
    if (t > burst_until && rng.Bernoulli(0.10)) {
      burst_until = t + rng.Uniform(5.0, 20.0);
      burst_gain = rng.Uniform(1.5, 3.6);
    }
    if (t <= burst_until) {
      level += burst_gain;
    }
    const double noise = rng.Normal(0.0, 0.08);
    p.rate = std::max(1.0, options.base_rate * std::max(0.05, level + noise));
  }
  return RateFunction(std::move(pts));
}

RateFunction MakeTrace(const std::string& name, const TraceOptions& options) {
  if (name == "wiki") {
    return MakeWikiTrace(options);
  }
  if (name == "tweet") {
    return MakeTweetTrace(options);
  }
  if (name == "azure") {
    return MakeAzureTrace(options);
  }
  PARD_CHECK_MSG(false, "unknown trace: " << name);
}

TraceRegion BurstRegion(const std::string& name, const TraceOptions& options) {
  // Mirrors the red boxes in Fig. 10: the most overloaded stretch of the
  // trace — found as the window with the highest mean rate.
  const RateFunction rate = MakeTrace(name, options);
  const SimTime end = SecToUs(options.duration_s);
  const Duration window = std::min<Duration>(SecToUs(30), end);
  const Duration step = SecToUs(1);
  SimTime best_begin = 0;
  double best_mean = -1.0;
  for (SimTime begin = 0; begin + window <= end; begin += step) {
    const double mean = rate.MeanRate(begin, begin + window, 64);
    if (mean > best_mean) {
      best_mean = mean;
      best_begin = begin;
    }
  }
  return {best_begin, best_begin + window};
}

}  // namespace pard
