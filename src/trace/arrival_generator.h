// Non-homogeneous Poisson arrival sampling from a RateFunction.
#ifndef PARD_TRACE_ARRIVAL_GENERATOR_H_
#define PARD_TRACE_ARRIVAL_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "trace/rate_function.h"

namespace pard {

// Generates arrival timestamps over [begin, end) whose instantaneous
// intensity follows `rate` (Lewis–Shedler thinning against the curve's max
// rate). Deterministic in `rng`.
std::vector<SimTime> GenerateArrivals(const RateFunction& rate, SimTime begin, SimTime end,
                                      Rng& rng);

// Deterministic (evenly spaced) arrivals at a constant rate — useful in unit
// tests where Poisson noise would obscure the property under test.
std::vector<SimTime> GenerateUniformArrivals(double rate_per_sec, SimTime begin, SimTime end);

}  // namespace pard

#endif  // PARD_TRACE_ARRIVAL_GENERATOR_H_
