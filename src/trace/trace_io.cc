#include "trace/trace_io.h"

#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace pard {

JsonValue RateFunctionToJson(const RateFunction& rate) {
  JsonArray t_s;
  JsonArray rates;
  for (const RateFunction::Point& p : rate.points()) {
    t_s.emplace_back(UsToSec(p.t));
    rates.emplace_back(p.rate);
  }
  JsonObject obj;
  obj["t_s"] = std::move(t_s);
  obj["rate_rps"] = std::move(rates);
  return JsonValue(std::move(obj));
}

RateFunction RateFunctionFromJson(const JsonValue& v) {
  const JsonArray& t_s = v.At("t_s").AsArray();
  const JsonArray& rates = v.At("rate_rps").AsArray();
  PARD_CHECK_MSG(t_s.size() == rates.size(), "t_s/rate_rps size mismatch");
  std::vector<RateFunction::Point> points;
  points.reserve(t_s.size());
  for (std::size_t i = 0; i < t_s.size(); ++i) {
    points.push_back({SecToUs(t_s[i].AsDouble()), rates[i].AsDouble()});
  }
  return RateFunction(std::move(points));
}

std::string RateFunctionToCsv(const RateFunction& rate) {
  std::ostringstream os;
  os << "seconds,rate\n";
  for (const RateFunction::Point& p : rate.points()) {
    os << UsToSec(p.t) << "," << p.rate << "\n";
  }
  return os.str();
}

RateFunction RateFunctionFromCsv(const std::string& csv) {
  std::vector<RateFunction::Point> points;
  bool first = true;
  for (const std::string& line : Split(csv, '\n')) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    if (first) {
      first = false;
      if (!StartsWith(trimmed, "seconds")) {
        // Headerless CSV: fall through and parse the row.
      } else {
        continue;
      }
    }
    const std::vector<std::string> fields = Split(std::string(trimmed), ',');
    PARD_CHECK_MSG(fields.size() == 2, "CSV row needs two fields: " << std::string(trimmed));
    try {
      points.push_back({SecToUs(std::stod(fields[0])), std::stod(fields[1])});
    } catch (const std::logic_error&) {
      PARD_CHECK_MSG(false, "bad CSV number in row: " << std::string(trimmed));
    }
  }
  return RateFunction(std::move(points));
}

}  // namespace pard
