// Trace serialization.
//
// Rate curves can be exported/imported as JSON (self-describing) or CSV
// ("seconds,rate" rows), so users can replay their own production traces
// through the simulator instead of the built-in synthetic ones.
#ifndef PARD_TRACE_TRACE_IO_H_
#define PARD_TRACE_TRACE_IO_H_

#include <string>

#include "jsonio/json.h"
#include "trace/rate_function.h"

namespace pard {

JsonValue RateFunctionToJson(const RateFunction& rate);
RateFunction RateFunctionFromJson(const JsonValue& v);

// CSV with a "seconds,rate" header; one point per row.
std::string RateFunctionToCsv(const RateFunction& rate);
RateFunction RateFunctionFromCsv(const std::string& csv);

}  // namespace pard

#endif  // PARD_TRACE_TRACE_IO_H_
