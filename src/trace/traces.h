// Synthetic versions of the paper's three real-world traces (§5.1, Fig. 10
// left): Wikipedia access (periodic, CV≈0.47), Twitter access (bursty with a
// 2x step near t=850 s, CV≈1.0) and Azure Functions (highly bursty, CV≈1.3).
//
// The real traces are not redistributable; these generators reproduce the
// published shape parameters — mean level, periodicity, burst structure and
// coefficient of variation — which are the only properties the evaluation
// depends on.
#ifndef PARD_TRACE_TRACES_H_
#define PARD_TRACE_TRACES_H_

#include <cstdint>
#include <string>

#include "trace/rate_function.h"

namespace pard {

struct TraceOptions {
  // Total trace length in seconds (paper traces are ~1000-1400 s).
  double duration_s = 1000.0;
  // Mean request rate in req/s around which the curve oscillates.
  double base_rate = 250.0;
  // RNG seed for the noise/burst structure.
  std::uint64_t seed = 7;
};

// Diurnal-style periodic trace, CV ~= 0.45-0.5.
RateFunction MakeWikiTrace(const TraceOptions& options);

// Bursty trace with a sudden 2x rate step around 60% of the duration
// (the event the paper analyzes at t=850 s), CV ~= 1.0.
RateFunction MakeTweetTrace(const TraceOptions& options);

// Highly bursty serverless-style trace with spiky invocations, CV ~= 1.3.
RateFunction MakeAzureTrace(const TraceOptions& options);

// Dispatch by name: "wiki" | "tweet" | "azure".
RateFunction MakeTrace(const std::string& name, const TraceOptions& options);

// The sub-interval of the trace the paper zooms into in Fig. 10 (the
// "red-boxed region"): the most overloaded stretch. Returned as [begin, end]
// in simulation time.
struct TraceRegion {
  SimTime begin;
  SimTime end;
};
TraceRegion BurstRegion(const std::string& name, const TraceOptions& options);

}  // namespace pard

#endif  // PARD_TRACE_TRACES_H_
