#include "trace/rate_function.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/running_stat.h"

namespace pard {

RateFunction::RateFunction(std::vector<Point> points) : points_(std::move(points)) {
  PARD_CHECK(!points_.empty());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    PARD_CHECK_MSG(points_[i].rate >= 0.0, "rates must be non-negative");
    if (i > 0) {
      PARD_CHECK_MSG(points_[i].t > points_[i - 1].t, "points must be strictly increasing");
    }
  }
}

RateFunction RateFunction::Constant(double rate) {
  return RateFunction({{0, rate}, {kSimTimeMax / 2, rate}});
}

double RateFunction::At(SimTime t) const {
  PARD_CHECK(!points_.empty());
  if (t <= points_.front().t) {
    return points_.front().rate;
  }
  if (t >= points_.back().t) {
    return points_.back().rate;
  }
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime value, const Point& p) { return value < p.t; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double frac =
      static_cast<double>(t - lo.t) / static_cast<double>(hi.t - lo.t);
  return lo.rate + frac * (hi.rate - lo.rate);
}

double RateFunction::MaxRate() const {
  double best = 0.0;
  for (const Point& p : points_) {
    best = std::max(best, p.rate);
  }
  return best;
}

double RateFunction::MeanRate(SimTime begin, SimTime end, int samples) const {
  PARD_CHECK(end > begin);
  PARD_CHECK(samples > 1);
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const SimTime t =
        begin + static_cast<SimTime>((end - begin) * static_cast<double>(i) / (samples - 1));
    sum += At(t);
  }
  return sum / samples;
}

double RateFunction::Cv(SimTime begin, SimTime end) const {
  RunningStat stat;
  for (SimTime t = begin; t <= end; t += kUsPerSec) {
    stat.Add(At(t));
  }
  return stat.Cv();
}

RateFunction RateFunction::Scaled(double rate_factor, double time_scale) const {
  PARD_CHECK(rate_factor > 0.0);
  PARD_CHECK(time_scale > 0.0);
  std::vector<Point> scaled;
  scaled.reserve(points_.size());
  for (const Point& p : points_) {
    scaled.push_back(
        Point{static_cast<SimTime>(static_cast<double>(p.t) * time_scale), p.rate * rate_factor});
  }
  // Time scaling may collapse adjacent points; deduplicate.
  std::vector<Point> unique;
  for (const Point& p : scaled) {
    if (!unique.empty() && p.t <= unique.back().t) {
      unique.back().rate = p.rate;
    } else {
      unique.push_back(p);
    }
  }
  return RateFunction(std::move(unique));
}

}  // namespace pard
