// Offline model profiles: execution duration as a function of batch size.
//
// PARD (like Nexus and Clockwork) reduces each DNN to its offline-profiled
// batch latency table d(b); every control decision — batch-size planning,
// throughput estimation, the D terms of the latency estimator — reads this
// table. Profiles can be constructed directly, fitted from (alpha, beta)
// linear coefficients, or loaded from the JSON emitted by the offline
// profiler.
#ifndef PARD_MODELS_MODEL_PROFILE_H_
#define PARD_MODELS_MODEL_PROFILE_H_

#include <string>
#include <vector>

#include "common/time_types.h"
#include "jsonio/json.h"

namespace pard {

class ModelProfile {
 public:
  ModelProfile() = default;

  // `durations[i]` is the execution duration at batch size i+1; must be
  // non-empty and strictly positive.
  ModelProfile(std::string name, std::vector<Duration> durations);

  // Builds a profile from the common linear batch model
  //   d(b) = alpha + beta * b
  // which matches GPU inference behaviour well (fixed kernel-launch/copy cost
  // plus per-sample compute).
  static ModelProfile Linear(std::string name, Duration alpha_us, Duration beta_us,
                             int max_batch);

  const std::string& name() const { return name_; }
  int MaxBatch() const { return static_cast<int>(durations_.size()); }

  // Duration at batch size b; b is clamped to [1, MaxBatch()].
  Duration BatchDuration(int batch) const;

  // Requests per second at batch size b.
  double Throughput(int batch) const;

  // Largest batch size whose throughput is maximal subject to
  // 2 * d(b) <= budget (a request may wait up to one full batch duration
  // before executing, so feasibility requires two batch durations within the
  // module budget — the rule Nexus and the paper use for batch planning).
  // Returns at least 1.
  int LargestFeasibleBatch(Duration budget) const;

  JsonValue ToJson() const;
  static ModelProfile FromJson(const JsonValue& v);

 private:
  std::string name_;
  std::vector<Duration> durations_;
};

}  // namespace pard

#endif  // PARD_MODELS_MODEL_PROFILE_H_
