#include "models/registry.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace pard {
namespace {

// alpha/beta in microseconds; max batch 32 everywhere.
const std::map<std::string, ModelProfile>& Zoo() {
  static const std::map<std::string, ModelProfile>* zoo = [] {
    auto* m = new std::map<std::string, ModelProfile>();
    const auto add = [m](const char* name, Duration alpha_ms, Duration beta_ms) {
      m->emplace(name, ModelProfile::Linear(name, alpha_ms * kUsPerMs, beta_ms * kUsPerMs, 32));
    };
    // Traffic monitoring (tm).
    add("object_detection", 12, 4);
    add("face_recognition", 8, 3);
    add("text_recognition", 10, 3);
    // Live video (lv) adds:
    add("person_detection", 10, 4);
    add("expression_recognition", 6, 2);
    add("eye_tracking", 5, 2);
    add("pose_recognition", 9, 3);
    // Game analysis (gm) adds:
    add("kill_count_detection", 7, 2);
    add("alive_player_recognition", 6, 2);
    add("health_value_recognition", 5, 2);
    add("icon_recognition", 4, 2);
    return m;
  }();
  return *zoo;
}

}  // namespace

const ModelProfile& ProfileRegistry::Get(const std::string& name) {
  const auto& zoo = Zoo();
  const auto it = zoo.find(name);
  PARD_CHECK_MSG(it != zoo.end(), "unknown model: " << name);
  return it->second;
}

bool ProfileRegistry::Contains(const std::string& name) { return Zoo().count(name) > 0; }

std::vector<std::string> ProfileRegistry::Names() {
  std::vector<std::string> names;
  for (const auto& [name, profile] : Zoo()) {
    names.push_back(name);
  }
  return names;
}

}  // namespace pard
