// Simulated offline profiler.
//
// The paper performs an offline profiling pass before startup to obtain
// per-model execution duration and throughput under various batch sizes
// (§5.1). This module reproduces that pipeline stage: given a ground-truth
// latency function (the "hardware"), it runs R repetitions per batch size
// with multiplicative measurement noise and emits a ModelProfile from the
// median, exactly as a real profiler would.
#ifndef PARD_MODELS_PROFILER_H_
#define PARD_MODELS_PROFILER_H_

#include <functional>
#include <string>

#include "common/rng.h"
#include "models/model_profile.h"

namespace pard {

struct ProfilerOptions {
  int max_batch = 32;
  int repetitions = 21;
  // Stddev of multiplicative measurement noise (e.g. 0.03 = 3%).
  double noise = 0.03;
};

class OfflineProfiler {
 public:
  // `true_latency(b)` is the hardware's real duration for batch size b.
  using LatencyFn = std::function<Duration(int)>;

  OfflineProfiler(ProfilerOptions options, Rng rng);

  // Measures the model and returns its profile (median of noisy repetitions,
  // monotonized over batch size so planners see a sane table).
  ModelProfile Profile(const std::string& name, const LatencyFn& true_latency);

 private:
  ProfilerOptions options_;
  Rng rng_;
};

}  // namespace pard

#endif  // PARD_MODELS_PROFILER_H_
