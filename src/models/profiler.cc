#include "models/profiler.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace pard {

OfflineProfiler::OfflineProfiler(ProfilerOptions options, Rng rng)
    : options_(options), rng_(rng) {
  PARD_CHECK(options_.max_batch >= 1);
  PARD_CHECK(options_.repetitions >= 1);
  PARD_CHECK(options_.noise >= 0.0);
}

ModelProfile OfflineProfiler::Profile(const std::string& name, const LatencyFn& true_latency) {
  std::vector<Duration> durations;
  durations.reserve(static_cast<std::size_t>(options_.max_batch));
  for (int b = 1; b <= options_.max_batch; ++b) {
    const Duration truth = true_latency(b);
    PARD_CHECK_MSG(truth > 0, "hardware latency must be positive");
    std::vector<Duration> reps;
    reps.reserve(static_cast<std::size_t>(options_.repetitions));
    for (int r = 0; r < options_.repetitions; ++r) {
      const double factor = std::max(0.5, rng_.Normal(1.0, options_.noise));
      reps.push_back(static_cast<Duration>(static_cast<double>(truth) * factor));
    }
    std::nth_element(reps.begin(), reps.begin() + reps.size() / 2, reps.end());
    durations.push_back(reps[reps.size() / 2]);
  }
  // Monotonize: larger batches can never be profiled as strictly faster.
  for (std::size_t i = 1; i < durations.size(); ++i) {
    durations[i] = std::max(durations[i], durations[i - 1]);
  }
  return ModelProfile(name, std::move(durations));
}

}  // namespace pard
