#include "models/model_profile.h"

#include <algorithm>

#include "common/check.h"

namespace pard {

ModelProfile::ModelProfile(std::string name, std::vector<Duration> durations)
    : name_(std::move(name)), durations_(std::move(durations)) {
  PARD_CHECK_MSG(!durations_.empty(), "profile needs at least batch size 1");
  for (Duration d : durations_) {
    PARD_CHECK_MSG(d > 0, "profiled durations must be positive");
  }
}

ModelProfile ModelProfile::Linear(std::string name, Duration alpha_us, Duration beta_us,
                                  int max_batch) {
  PARD_CHECK(max_batch >= 1);
  std::vector<Duration> durations;
  durations.reserve(static_cast<std::size_t>(max_batch));
  for (int b = 1; b <= max_batch; ++b) {
    durations.push_back(alpha_us + beta_us * b);
  }
  return ModelProfile(std::move(name), std::move(durations));
}

Duration ModelProfile::BatchDuration(int batch) const {
  PARD_CHECK(!durations_.empty());
  const int b = std::clamp(batch, 1, MaxBatch());
  return durations_[static_cast<std::size_t>(b - 1)];
}

double ModelProfile::Throughput(int batch) const {
  const int b = std::clamp(batch, 1, MaxBatch());
  return static_cast<double>(b) / UsToSec(BatchDuration(b));
}

int ModelProfile::LargestFeasibleBatch(Duration budget) const {
  int best = 1;
  double best_tput = 0.0;
  for (int b = 1; b <= MaxBatch(); ++b) {
    if (2 * BatchDuration(b) <= budget) {
      const double tput = Throughput(b);
      if (tput >= best_tput) {
        best = b;
        best_tput = tput;
      }
    }
  }
  return best;
}

JsonValue ModelProfile::ToJson() const {
  JsonArray durations;
  durations.reserve(durations_.size());
  for (Duration d : durations_) {
    durations.emplace_back(static_cast<std::int64_t>(d));
  }
  JsonObject obj;
  obj["name"] = name_;
  obj["durations_us"] = std::move(durations);
  return JsonValue(std::move(obj));
}

ModelProfile ModelProfile::FromJson(const JsonValue& v) {
  std::vector<Duration> durations;
  for (const JsonValue& d : v.At("durations_us").AsArray()) {
    durations.push_back(d.AsInt());
  }
  return ModelProfile(v.At("name").AsString(), std::move(durations));
}

}  // namespace pard
