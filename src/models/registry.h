// Model zoo for the paper's four applications (§5.1).
//
// The paper's pipelines are built from eleven vision models. Their absolute
// latencies are not published; the zoo assigns plausible 2080Ti-class linear
// profiles (alpha = fixed launch cost, beta = per-image cost) chosen so that
// the pipelines fit their SLOs (400/500/600/420 ms) with dynamic batching,
// mirroring the paper's setup. DESIGN.md records this substitution.
#ifndef PARD_MODELS_REGISTRY_H_
#define PARD_MODELS_REGISTRY_H_

#include <string>
#include <vector>

#include "models/model_profile.h"

namespace pard {

class ProfileRegistry {
 public:
  // Returns the profile for a zoo model; throws CheckError for unknown names.
  static const ModelProfile& Get(const std::string& name);

  // True if the zoo contains `name`.
  static bool Contains(const std::string& name);

  // All registered model names (sorted).
  static std::vector<std::string> Names();
};

}  // namespace pard

#endif  // PARD_MODELS_REGISTRY_H_
