#include <gtest/gtest.h>

#include "rag/rag_workflow.h"

namespace pard {
namespace {

RagOptions QuickOptions() {
  RagOptions o;
  o.duration_s = 40.0;
  o.seed = 5;
  return o;
}

TEST(RagWorkflow, ConservationAndDeterminism) {
  const RagResult a = RunRagWorkflow(RagPolicy::kProactive, QuickOptions());
  EXPECT_EQ(a.good + a.dropped, a.total);
  EXPECT_GT(a.total, 500u);
  const RagResult b = RunRagWorkflow(RagPolicy::kProactive, QuickOptions());
  EXPECT_EQ(a.good, b.good);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST(RagWorkflow, SameWorkloadAcrossPolicies) {
  const RagResult reactive = RunRagWorkflow(RagPolicy::kReactive, QuickOptions());
  const RagResult proactive = RunRagWorkflow(RagPolicy::kProactive, QuickOptions());
  EXPECT_EQ(reactive.total, proactive.total);
}

// The paper's Fig. 15a ordering: proactive dropping beats reactive, and the
// output-length oracle (predict) does at least as well as proactive.
TEST(RagWorkflow, ProactiveBeatsReactive) {
  const RagResult reactive = RunRagWorkflow(RagPolicy::kReactive, QuickOptions());
  const RagResult proactive = RunRagWorkflow(RagPolicy::kProactive, QuickOptions());
  const RagResult predict = RunRagWorkflow(RagPolicy::kPredict, QuickOptions());
  EXPECT_GT(proactive.NormalizedGoodput(), reactive.NormalizedGoodput());
  EXPECT_LT(proactive.DropRate(), reactive.DropRate());
  EXPECT_GE(predict.NormalizedGoodput(), proactive.NormalizedGoodput() - 0.02);
}

TEST(RagWorkflow, StageLatencyShapes) {
  const RagResult r = RunRagWorkflow(RagPolicy::kProactive, QuickOptions());
  ASSERT_EQ(r.stages.size(), 4u);
  const auto& rewrite = r.stages[0].latency;
  const auto& retrieve = r.stages[1].latency;
  const auto& search = r.stages[2].latency;
  ASSERT_FALSE(rewrite.Empty());
  ASSERT_FALSE(retrieve.Empty());
  ASSERT_FALSE(search.Empty());
  // search has the long tail (Fig. 15b): p99/p50 far above retrieve's ratio.
  const double search_tail = search.Quantile(0.99) / search.Quantile(0.50);
  const double retrieve_tail = retrieve.Quantile(0.99) / std::max(1.0, retrieve.Quantile(0.50));
  EXPECT_GT(search_tail, 3.0);
  EXPECT_LT(retrieve_tail, 3.0);
  // rewrite latency varies with output length: nontrivial spread.
  EXPECT_GT(rewrite.Quantile(0.9), 1.5 * rewrite.Quantile(0.1));
}

TEST(RagWorkflow, HigherLoadIncreasesDrops) {
  RagOptions low = QuickOptions();
  low.arrival_rate = 20.0;
  RagOptions high = QuickOptions();
  high.arrival_rate = 80.0;
  const RagResult a = RunRagWorkflow(RagPolicy::kProactive, low);
  const RagResult b = RunRagWorkflow(RagPolicy::kProactive, high);
  EXPECT_LE(a.DropRate(), b.DropRate() + 0.02);
}

TEST(RagWorkflow, PolicyNames) {
  EXPECT_EQ(RagPolicyName(RagPolicy::kReactive), "reactive");
  EXPECT_EQ(RagPolicyName(RagPolicy::kProactive), "proactive");
  EXPECT_EQ(RagPolicyName(RagPolicy::kPredict), "predict");
}

}  // namespace
}  // namespace pard
