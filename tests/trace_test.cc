#include <gtest/gtest.h>

#include <algorithm>

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "trace/arrival_generator.h"
#include "trace/rate_function.h"
#include "trace/traces.h"

namespace pard {
namespace {

TEST(RateFunction, InterpolatesLinearly) {
  const RateFunction f({{0, 100.0}, {SecToUs(10), 200.0}});
  EXPECT_DOUBLE_EQ(f.At(0), 100.0);
  EXPECT_DOUBLE_EQ(f.At(SecToUs(5)), 150.0);
  EXPECT_DOUBLE_EQ(f.At(SecToUs(10)), 200.0);
}

TEST(RateFunction, ClampsOutsideRange) {
  const RateFunction f({{SecToUs(1), 50.0}, {SecToUs(2), 70.0}});
  EXPECT_DOUBLE_EQ(f.At(0), 50.0);
  EXPECT_DOUBLE_EQ(f.At(SecToUs(100)), 70.0);
}

TEST(RateFunction, ConstantIsFlat) {
  const RateFunction f = RateFunction::Constant(42.0);
  EXPECT_DOUBLE_EQ(f.At(0), 42.0);
  EXPECT_DOUBLE_EQ(f.At(SecToUs(12345)), 42.0);
  EXPECT_DOUBLE_EQ(f.MaxRate(), 42.0);
}

TEST(RateFunction, MeanRateOfRamp) {
  const RateFunction f({{0, 0.0}, {SecToUs(10), 100.0}});
  EXPECT_NEAR(f.MeanRate(0, SecToUs(10)), 50.0, 1.0);
}

TEST(RateFunction, CvOfConstantIsZero) {
  const RateFunction f = RateFunction::Constant(10.0);
  EXPECT_NEAR(f.Cv(0, SecToUs(100)), 0.0, 1e-9);
}

TEST(RateFunction, ScaledMultipliesRate) {
  const RateFunction f({{0, 100.0}, {SecToUs(10), 200.0}});
  const RateFunction g = f.Scaled(2.0);
  EXPECT_DOUBLE_EQ(g.At(SecToUs(5)), 300.0);
}

TEST(RateFunction, RejectsInvalidPoints) {
  EXPECT_THROW(RateFunction({{0, -1.0}}), CheckError);
  EXPECT_THROW(RateFunction({{10, 1.0}, {5, 1.0}}), CheckError);
  EXPECT_THROW(RateFunction(std::vector<RateFunction::Point>{}), CheckError);
}

// ---- paper traces --------------------------------------------------------------

TraceOptions DefaultOptions() {
  TraceOptions o;
  o.duration_s = 600.0;
  o.base_rate = 200.0;
  o.seed = 11;
  return o;
}

TEST(Traces, WikiIsSmoothlyPeriodic) {
  const RateFunction f = MakeWikiTrace(DefaultOptions());
  const double cv = f.Cv(0, SecToUs(600));
  // Paper: CV ~= 0.47 for wiki.
  EXPECT_GT(cv, 0.3);
  EXPECT_LT(cv, 0.65);
}

TEST(Traces, TweetIsBursty) {
  const RateFunction f = MakeTweetTrace(DefaultOptions());
  const double cv = f.Cv(0, SecToUs(600));
  // Paper: CV ~= 1.0 for tweet.
  EXPECT_GT(cv, 0.7);
  EXPECT_LT(cv, 1.4);
}

TEST(Traces, AzureIsMostBursty) {
  const TraceOptions o = DefaultOptions();
  const double cv_azure = MakeAzureTrace(o).Cv(0, SecToUs(600));
  const double cv_tweet = MakeTweetTrace(o).Cv(0, SecToUs(600));
  const double cv_wiki = MakeWikiTrace(o).Cv(0, SecToUs(600));
  // Paper ordering: wiki (0.47) < tweet (1.0) <= azure (1.3).
  EXPECT_LT(cv_wiki, cv_tweet);
  EXPECT_GT(cv_azure, 1.0);
}

TEST(Traces, TweetHasSustainedStep) {
  const TraceOptions o = DefaultOptions();
  const RateFunction f = MakeTweetTrace(o);
  // The sustained step lives at 60%..72% of the duration. Compare it to the
  // pre-step *baseline* (median rate, so transient random bursts in the
  // earlier region don't inflate the reference).
  std::vector<double> pre;
  for (double t = 0.0; t < 0.55 * 600; t += 1.0) {
    pre.push_back(f.At(SecToUs(t)));
  }
  std::sort(pre.begin(), pre.end());
  const double baseline = pre[pre.size() / 2];
  const double during = f.MeanRate(SecToUs(0.61 * 600), SecToUs(0.70 * 600));
  EXPECT_GT(during, 1.5 * baseline);
}

TEST(Traces, DeterministicInSeed) {
  const TraceOptions o = DefaultOptions();
  const RateFunction a = MakeAzureTrace(o);
  const RateFunction b = MakeAzureTrace(o);
  for (SimTime t = 0; t < SecToUs(600); t += SecToUs(7)) {
    EXPECT_DOUBLE_EQ(a.At(t), b.At(t));
  }
}

TEST(Traces, DispatchByName) {
  const TraceOptions o = DefaultOptions();
  EXPECT_NO_THROW(MakeTrace("wiki", o));
  EXPECT_NO_THROW(MakeTrace("tweet", o));
  EXPECT_NO_THROW(MakeTrace("azure", o));
  EXPECT_THROW(MakeTrace("bogus", o), CheckError);
}

TEST(Traces, BurstRegionInsideTrace) {
  const TraceOptions o = DefaultOptions();
  for (const char* name : {"wiki", "tweet", "azure"}) {
    const TraceRegion r = BurstRegion(name, o);
    EXPECT_GE(r.begin, 0);
    EXPECT_GT(r.end, r.begin);
    EXPECT_LE(r.end, SecToUs(o.duration_s));
  }
}

// ---- arrival generation ----------------------------------------------------------

TEST(ArrivalGenerator, CountMatchesIntegratedRate) {
  Rng rng(5);
  const RateFunction f = RateFunction::Constant(100.0);
  const auto arrivals = GenerateArrivals(f, 0, SecToUs(100), rng);
  // Expect ~10000 arrivals; Poisson sd = 100.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 400.0);
}

TEST(ArrivalGenerator, SortedAndInRange) {
  Rng rng(6);
  const RateFunction f = MakeTweetTrace(DefaultOptions());
  const auto arrivals = GenerateArrivals(f, SecToUs(10), SecToUs(50), rng);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], SecToUs(10));
    EXPECT_LT(arrivals[i], SecToUs(50));
    if (i > 0) {
      EXPECT_GE(arrivals[i], arrivals[i - 1]);
    }
  }
}

TEST(ArrivalGenerator, ThinningTracksRateChanges) {
  Rng rng(7);
  // 10 req/s then 100 req/s: the second half should have ~10x the arrivals.
  const RateFunction f({{0, 10.0}, {SecToUs(50) - 1, 10.0}, {SecToUs(50), 100.0},
                        {SecToUs(100), 100.0}});
  const auto arrivals = GenerateArrivals(f, 0, SecToUs(100), rng);
  std::size_t first = 0;
  for (SimTime t : arrivals) {
    first += t < SecToUs(50) ? 1 : 0;
  }
  const std::size_t second = arrivals.size() - first;
  EXPECT_GT(second, 6 * first);
}

TEST(ArrivalGenerator, DeterministicInRng) {
  const RateFunction f = RateFunction::Constant(50.0);
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(GenerateArrivals(f, 0, SecToUs(10), a), GenerateArrivals(f, 0, SecToUs(10), b));
}

TEST(ArrivalGenerator, UniformArrivalsEvenlySpaced) {
  const auto arrivals = GenerateUniformArrivals(10.0, 0, SecToUs(1));
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], SecToUs(0.1));
  }
}

}  // namespace
}  // namespace pard
