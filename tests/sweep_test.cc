// Determinism contract of the parallel sweep runner: job count changes
// wall-clock, never numbers. Also covers the sharded-experiment harness
// entry point.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/sweep_runner.h"
#include "harness/experiment.h"

namespace pard {
namespace {

std::vector<ExperimentConfig> SmallGrid() {
  std::vector<ExperimentConfig> grid;
  for (const std::string app : {"tm", "lv"}) {
    for (const std::string policy : {"pard", "nexus", "naive"}) {
      ExperimentConfig c;
      c.app = app;
      c.trace = "tweet";
      c.policy = policy;
      c.duration_s = 30.0;
      c.base_rate = 120.0;
      c.seed = 11;
      grid.push_back(c);
    }
  }
  return grid;
}

// Render the headline metrics at full precision so "bit-identical" means
// exactly that — any ULP of drift across job counts fails the comparison.
std::string MetricBytes(const ExperimentResult& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%.17g|%zu", r.analysis->NormalizedGoodput(),
                r.analysis->DropRate(), r.analysis->InvalidRate(), r.analysis->Total());
  return buf;
}

TEST(SweepDeterminism, JobCountNeverChangesMetrics) {
  const std::vector<ExperimentConfig> grid = SmallGrid();
  const std::vector<ExperimentResult> serial = RunExperiments(grid, 1);
  const std::vector<ExperimentResult> parallel = RunExperiments(grid, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(MetricBytes(serial[i]), MetricBytes(parallel[i]))
        << grid[i].app << "/" << grid[i].policy;
  }
}

TEST(SweepDeterminism, DerivedTaskSeedsAreOrderIndependent) {
  SweepOptions one;
  one.jobs = 1;
  one.derive_task_seeds = true;
  SweepOptions eight;
  eight.jobs = 8;
  eight.derive_task_seeds = true;

  const std::vector<ExperimentConfig> grid = SmallGrid();
  const std::vector<ExperimentResult> serial = SweepRunner(one).Run(grid);
  const std::vector<ExperimentResult> parallel = SweepRunner(eight).Run(grid);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(MetricBytes(serial[i]), MetricBytes(parallel[i]));
  }
  // Derived seeds decorrelate grid points that share a base seed: the same
  // (app, policy) pair at different indices sees different workloads.
  EXPECT_NE(MetricBytes(serial[0]), MetricBytes(RunExperiments(grid, 1)[0]));
}

TEST(SweepDeterminism, ResultsMatchSerialRunExperiment) {
  const std::vector<ExperimentConfig> grid = SmallGrid();
  const std::vector<ExperimentResult> swept = RunExperiments(grid, 4);
  // Spot-check one grid point against a direct serial run.
  const ExperimentResult direct = RunExperiment(grid[4]);
  EXPECT_EQ(MetricBytes(swept[4]), MetricBytes(direct));
}

TEST(ShardedExperiment, JobCountNeverChangesMetrics) {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 60.0;
  config.base_rate = 120.0;
  config.seed = 5;

  const ExperimentResult serial = RunShardedExperiment(config, 4, 1);
  const ExperimentResult parallel = RunShardedExperiment(config, 4, 8);
  EXPECT_EQ(MetricBytes(serial), MetricBytes(parallel));
}

TEST(ShardedExperiment, AccountsForEveryArrivalExactlyOnce) {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "wiki";
  config.policy = "pard";
  config.duration_s = 60.0;
  config.base_rate = 100.0;
  config.seed = 9;

  const ExperimentResult unsharded = RunExperiment(config);
  const ExperimentResult sharded = RunShardedExperiment(config, 5, 2);
  // Sharding approximates pipeline state at boundaries but never loses or
  // duplicates a request: the merged record set covers the same arrivals.
  EXPECT_EQ(sharded.analysis->Total(), unsharded.analysis->Total());
  // Under an uncontended workload the approximation is tight.
  EXPECT_NEAR(sharded.analysis->NormalizedGoodput(),
              unsharded.analysis->NormalizedGoodput(), 0.05);
}

TEST(ShardedExperiment, OneShardIsExactlyRunExperiment) {
  ExperimentConfig config;
  config.app = "lv";
  config.trace = "tweet";
  config.policy = "nexus";
  config.duration_s = 30.0;
  config.base_rate = 100.0;
  const ExperimentResult direct = RunExperiment(config);
  const ExperimentResult sharded = RunShardedExperiment(config, 1, 8);
  EXPECT_EQ(MetricBytes(direct), MetricBytes(sharded));
}

TEST(Replicated, ParallelReplicasMatchSerial) {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 30.0;
  config.base_rate = 100.0;
  const ReplicatedResult serial = RunReplicated(config, 4, 1);
  const ReplicatedResult parallel = RunReplicated(config, 4, 4);
  EXPECT_EQ(serial.drop_rate.mean, parallel.drop_rate.mean);
  EXPECT_EQ(serial.drop_rate.stddev, parallel.drop_rate.stddev);
  EXPECT_EQ(serial.normalized_goodput.mean, parallel.normalized_goodput.mean);
  EXPECT_EQ(serial.invalid_rate.max, parallel.invalid_rate.max);
}

}  // namespace
}  // namespace pard
