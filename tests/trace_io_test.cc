#include <gtest/gtest.h>

#include "common/check.h"
#include "trace/trace_io.h"
#include "trace/traces.h"

namespace pard {
namespace {

RateFunction Sample() {
  return RateFunction({{0, 10.0}, {SecToUs(5), 20.5}, {SecToUs(9), 3.25}});
}

TEST(TraceIo, JsonRoundTrip) {
  const RateFunction f = Sample();
  const RateFunction g = RateFunctionFromJson(RateFunctionToJson(f));
  ASSERT_EQ(g.points().size(), f.points().size());
  for (std::size_t i = 0; i < f.points().size(); ++i) {
    EXPECT_EQ(g.points()[i].t, f.points()[i].t);
    EXPECT_DOUBLE_EQ(g.points()[i].rate, f.points()[i].rate);
  }
}

TEST(TraceIo, CsvRoundTrip) {
  const RateFunction f = Sample();
  const RateFunction g = RateFunctionFromCsv(RateFunctionToCsv(f));
  ASSERT_EQ(g.points().size(), f.points().size());
  for (std::size_t i = 0; i < f.points().size(); ++i) {
    EXPECT_EQ(g.points()[i].t, f.points()[i].t);
    EXPECT_NEAR(g.points()[i].rate, f.points()[i].rate, 1e-9);
  }
}

TEST(TraceIo, CsvWithoutHeaderAccepted) {
  const RateFunction f = RateFunctionFromCsv("0,5\n10,6\n");
  EXPECT_EQ(f.points().size(), 2u);
  EXPECT_DOUBLE_EQ(f.At(SecToUs(10)), 6.0);
}

TEST(TraceIo, CsvSkipsBlankLines) {
  const RateFunction f = RateFunctionFromCsv("seconds,rate\n\n0,5\n\n10,6\n\n");
  EXPECT_EQ(f.points().size(), 2u);
}

TEST(TraceIo, CsvErrors) {
  EXPECT_THROW(RateFunctionFromCsv("seconds,rate\n1\n"), CheckError);
  EXPECT_THROW(RateFunctionFromCsv("seconds,rate\n1,x\n"), CheckError);
  // No data rows -> empty RateFunction is invalid.
  EXPECT_THROW(RateFunctionFromCsv("seconds,rate\n"), CheckError);
}

TEST(TraceIo, JsonMismatchedArraysThrow) {
  JsonObject obj;
  obj["t_s"] = JsonArray{0.0, 1.0};
  obj["rate_rps"] = JsonArray{5.0};
  EXPECT_THROW(RateFunctionFromJson(JsonValue(std::move(obj))), CheckError);
}

TEST(TraceIo, SyntheticTraceSurvivesRoundTrip) {
  TraceOptions o;
  o.duration_s = 120.0;
  const RateFunction f = MakeTweetTrace(o);
  const RateFunction g = RateFunctionFromJson(RateFunctionToJson(f));
  for (SimTime t = 0; t < SecToUs(120); t += SecToUs(3)) {
    EXPECT_NEAR(g.At(t), f.At(t), 1e-6);
  }
}

}  // namespace
}  // namespace pard
