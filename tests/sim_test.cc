#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/simulation.h"

namespace pard {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(Simulation, TiesBreakByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(50, [&] { order.push_back(1); });
  sim.ScheduleAt(50, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(25, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 125);
}

TEST(Simulation, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.ScheduleAt(100, [&] {
    EXPECT_THROW(sim.ScheduleAt(50, [] {}), CheckError);
  });
  sim.Run();
}

TEST(Simulation, NegativeDelayThrows) {
  Simulation sim;
  EXPECT_THROW(sim.ScheduleAfter(-1, [] {}), CheckError);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelUnknownIdReturnsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.Cancel(12345));
}

TEST(Simulation, CancelFiredEventReturnsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  sim.Run();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(sim.ExecutedEvents(), 0u);
}

TEST(Simulation, CancelAtCurrentTime) {
  // An event scheduled for Now() (fires later this instant) can still be
  // cancelled before the kernel reaches it.
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(10, [&] {
    const EventId id = sim.ScheduleAt(sim.Now(), [&] { fired = true; });
    EXPECT_TRUE(sim.Cancel(id));
  });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(Simulation, CancelledIdStaysDeadAfterSlotReuse) {
  // Cancelling frees the slot for reuse; the old id must not be able to
  // cancel (or otherwise touch) the slot's next occupant.
  Simulation sim;
  const EventId stale = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(stale));
  bool fired = false;
  sim.ScheduleAt(10, [&] { fired = true; });  // Likely reuses the slot.
  EXPECT_FALSE(sim.Cancel(stale));
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelMiddleOfSameTickPreservesOrder) {
  // Three events at one instant; cancelling the middle one must keep the
  // others in schedule order.
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(50, [&] { order.push_back(1); });
  const EventId middle = sim.ScheduleAt(50, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] { order.push_back(3); });
  EXPECT_TRUE(sim.Cancel(middle));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulation, SelfCancelInsideCallbackReturnsFalse) {
  // By firing time the event is already retired; cancelling its own id from
  // inside the callback is a no-op.
  Simulation sim;
  EventId self = 0;
  bool result = true;
  self = sim.ScheduleAt(5, [&] { result = sim.Cancel(self); });
  sim.Run();
  EXPECT_FALSE(result);
}

TEST(Simulation, FarApartEventTimesFireInOrder) {
  // Spread events across very different timescales (all wheel levels).
  Simulation sim;
  std::vector<SimTime> fired;
  const std::vector<SimTime> times = {1,
                                      255,
                                      256,
                                      65536,
                                      1000000,
                                      3600LL * 1000000,
                                      400LL * 1000000 * 86400};
  // Schedule in reverse to exercise out-of-order insertion.
  for (auto it = times.rbegin(); it != times.rend(); ++it) {
    const SimTime t = *it;
    sim.ScheduleAt(t, [&fired, t] { fired.push_back(t); });
  }
  sim.Run();
  EXPECT_EQ(fired, times);
  EXPECT_EQ(sim.Now(), times.back());
}

TEST(Simulation, RunUntilThenScheduleBeforePendingEvent) {
  // Stop the clock inside an empty stretch, then schedule ahead of the
  // still-pending far event; both must fire in time order.
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(1000000, [&] { order.push_back(2); });
  sim.Run(5000);
  EXPECT_EQ(sim.Now(), 5000);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.ScheduleAt(7000, [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulation, RunUntilStopsAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.Run(20);
  EXPECT_EQ(fired, 2);  // Events exactly at the boundary run.
  EXPECT_EQ(sim.Now(), 20);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, StepExecutesExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sim.ScheduleAfter(1, recurse);
    }
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 99);
  EXPECT_EQ(sim.ExecutedEvents(), 100u);
}

TEST(Simulation, CancelledEventsDoNotBlockRunUntil) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(5, [] {});
  sim.Cancel(id);
  bool fired = false;
  sim.ScheduleAt(50, [&] { fired = true; });
  sim.Run(100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 100);  // Clock advances to the requested horizon.
}

TEST(Simulation, PendingEventsCountsLiveOnly) {
  Simulation sim;
  const EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

}  // namespace
}  // namespace pard
