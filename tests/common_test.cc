#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/time_types.h"

namespace pard {
namespace {

// ---- time types -------------------------------------------------------------

TEST(TimeTypes, MsRoundTrip) {
  EXPECT_EQ(MsToUs(1.0), 1000);
  EXPECT_EQ(MsToUs(0.5), 500);
  EXPECT_DOUBLE_EQ(UsToMs(2500), 2.5);
}

TEST(TimeTypes, SecRoundTrip) {
  EXPECT_EQ(SecToUs(1.0), kUsPerSec);
  EXPECT_DOUBLE_EQ(UsToSec(1500000), 1.5);
}

TEST(TimeTypes, NegativeDurations) {
  EXPECT_EQ(MsToUs(-2.0), -2000);
  EXPECT_DOUBLE_EQ(UsToMs(-1000), -1.0);
}

// ---- check ------------------------------------------------------------------

TEST(Check, PassingCheckDoesNotThrow) { EXPECT_NO_THROW(PARD_CHECK(1 + 1 == 2)); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(PARD_CHECK(false), CheckError);
}

TEST(Check, MessageIsIncluded) {
  try {
    PARD_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsIndependentOfDrawCount) {
  Rng a(9);
  Rng b(9);
  a.NextU64();  // Perturb a only.
  EXPECT_EQ(a.Fork("x").NextU64(), b.Fork("x").NextU64());
}

TEST(Rng, ForkTagMatters) {
  Rng a(9);
  EXPECT_NE(a.Fork("x").NextU64(), a.Fork("y").NextU64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(6.5));
  }
  EXPECT_NEAR(sum / n, 6.5, 0.2);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.5);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(3);
  EXPECT_THROW(rng.Exponential(0.0), CheckError);
}

// ---- string_util --------------------------------------------------------------

TEST(StringUtil, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("pard-back", "pard"));
  EXPECT_FALSE(StartsWith("pa", "pard"));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("PaRd"), "pard"); }

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

}  // namespace
}  // namespace pard
