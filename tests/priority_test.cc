#include <gtest/gtest.h>

#include "core/adaptive_priority.h"

namespace pard {
namespace {

TEST(AdaptivePriority, StartsInConfiguredMode) {
  AdaptivePriority p;
  EXPECT_EQ(p.mode(), PriorityMode::kLbf);
  AdaptivePriorityOptions options;
  options.initial = PriorityMode::kHbf;
  AdaptivePriority q(options);
  EXPECT_EQ(q.mode(), PriorityMode::kHbf);
}

TEST(AdaptivePriority, SwitchesToHbfAboveUpperThreshold) {
  AdaptivePriority p;
  p.Update(/*load_factor=*/1.3, /*burstiness=*/0.2);  // 1.3 > 1.2.
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
  EXPECT_EQ(p.side(), PopSide::kMaxBudget);
}

TEST(AdaptivePriority, SwitchesToLbfBelowLowerThreshold) {
  AdaptivePriorityOptions options;
  options.initial = PriorityMode::kHbf;
  AdaptivePriority p(options);
  p.Update(0.7, 0.2);  // 0.7 < 0.8.
  EXPECT_EQ(p.mode(), PriorityMode::kLbf);
  EXPECT_EQ(p.side(), PopSide::kMinBudget);
}

TEST(AdaptivePriority, HysteresisHoldsInsideBand) {
  AdaptivePriority p;
  p.Update(1.5, 0.2);  // -> HBF.
  ASSERT_EQ(p.mode(), PriorityMode::kHbf);
  // Load falls back inside [0.8, 1.2]: mode must NOT change.
  p.Update(0.95, 0.2);
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
  p.Update(1.1, 0.2);
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
  // Only below 1 - eps does it flip.
  p.Update(0.75, 0.2);
  EXPECT_EQ(p.mode(), PriorityMode::kLbf);
}

TEST(AdaptivePriority, InstantModeFlipsAtUnity) {
  AdaptivePriorityOptions options;
  options.delayed_transition = false;
  AdaptivePriority p(options);
  p.Update(1.05, 0.5);  // eps ignored: 1.05 > 1.0 -> HBF.
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
  p.Update(0.97, 0.5);
  EXPECT_EQ(p.mode(), PriorityMode::kLbf);
}

TEST(AdaptivePriority, InstantModeThrashesWhereDelayedHolds) {
  AdaptivePriorityOptions instant;
  instant.delayed_transition = false;
  AdaptivePriority fast(instant);
  AdaptivePriority slow;  // Delayed.
  // Load oscillates tightly around 1.0 with high burstiness (the Fig. 13
  // regime): instant transitions every step, delayed holds steady.
  const double loads[] = {1.05, 0.95, 1.08, 0.92, 1.03, 0.97, 1.06, 0.94};
  for (double mu : loads) {
    fast.Update(mu, 0.3);
    slow.Update(mu, 0.3);
  }
  EXPECT_GE(fast.transitions(), 7);
  EXPECT_LE(slow.transitions(), 1);
}

TEST(AdaptivePriority, EpsilonClamped) {
  AdaptivePriorityOptions options;
  options.max_epsilon = 0.1;
  AdaptivePriority p(options);
  // Burstiness 5.0 clamps to 0.1, so 1.2 > 1.1 still switches.
  p.Update(1.2, 5.0);
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
}

TEST(AdaptivePriority, MinEpsilonEnforced) {
  AdaptivePriorityOptions options;
  options.min_epsilon = 0.25;
  AdaptivePriority p(options);
  // Burstiness 0 but floor 0.25: 1.2 < 1.25 must NOT switch.
  p.Update(1.2, 0.0);
  EXPECT_EQ(p.mode(), PriorityMode::kLbf);
  p.Update(1.3, 0.0);
  EXPECT_EQ(p.mode(), PriorityMode::kHbf);
}

TEST(AdaptivePriority, TransitionsCounted) {
  AdaptivePriority p;
  EXPECT_EQ(p.transitions(), 0);
  p.Update(2.0, 0.0);
  p.Update(0.5, 0.0);
  p.Update(2.0, 0.0);
  EXPECT_EQ(p.transitions(), 3);
}

// Burstiness-dependent band: bursty workloads (larger eps) suppress switches
// that steady workloads would make — the adaptive eps design of §4.3.
TEST(AdaptivePriority, BurstinessWidensTheBand) {
  AdaptivePriority steady;
  AdaptivePriority bursty;
  steady.Update(1.15, 0.05);  // 1.15 > 1.05 -> switch.
  bursty.Update(1.15, 0.40);  // 1.15 < 1.40 -> hold.
  EXPECT_EQ(steady.mode(), PriorityMode::kHbf);
  EXPECT_EQ(bursty.mode(), PriorityMode::kLbf);
}

}  // namespace
}  // namespace pard
