// Tests for the observability layer (src/obs/).
//
// Pins the contracts the instrumentation relies on:
//   - TraceShard is a bounded SPSC ring that drops NEWEST on overflow and
//     counts what it dropped (a truncated trace must be self-describing).
//   - Sampling is a deterministic function of (request_id, seed), so a sim
//     run replays to a bit-identical trace — asserted end to end by running
//     the same experiment twice and comparing exported JSON strings.
//   - AtomicHistogram routes under/overflow (and NaN) to dedicated buckets
//     and refuses to Merge across different layouts.
//   - Striped counters tally exactly under concurrent writers.
//   - The registry returns stable pointers and valid JSON.
//   - Drop-reason attribution is conservative in sim mode: every dropped
//     request carries a non-kNone reason and the reasons sum to the drop
//     count (the serve-mode twin lives in tests/serve_test.cc).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.h"
#include "harness/experiment.h"
#include "jsonio/json.h"
#include "obs/drop_reason.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace pard {
namespace {

TEST(TraceShard, DropsNewestOnWrapAndCountsThem) {
  TraceShard shard(0, /*capacity_pow2=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceEvent ev;
    ev.request_id = static_cast<std::uint64_t>(i);
    shard.Push(ev);
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(shard.Drain(&out), 8u);
  ASSERT_EQ(out.size(), 8u);
  // Drop-newest: the ring keeps the OLDEST 8 events (0..7); 12 are counted.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].request_id,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(shard.dropped_events(), 12u);
  // After a drain the ring has room again and the counter is cumulative.
  TraceEvent ev;
  ev.request_id = 99;
  shard.Push(ev);
  out.clear();
  EXPECT_EQ(shard.Drain(&out), 1u);
  EXPECT_EQ(out[0].request_id, 99u);
  EXPECT_EQ(shard.dropped_events(), 12u);
}

TEST(TraceRecorder, SamplingIsDeterministicAndRateShaped) {
  TraceRecorder::Options options;
  options.sample_rate = 0.5;
  options.seed = 1234;
  TraceRecorder a(options);
  TraceRecorder b(options);
  int sampled = 0;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    EXPECT_EQ(a.Sampled(id), b.Sampled(id)) << id;
    sampled += a.Sampled(id) ? 1 : 0;
  }
  // 5000 expected; 5 sigma is ~±250.
  EXPECT_GT(sampled, 4700);
  EXPECT_LT(sampled, 5300);

  options.sample_rate = 0.0;
  TraceRecorder none(options);
  EXPECT_FALSE(none.Sampled(1));
  options.sample_rate = 1.0;
  TraceRecorder all(options);
  EXPECT_TRUE(all.Sampled(1));
}

ExperimentConfig TracedSimConfig() {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 1.5;
  config.base_rate = 40.0;
  config.seed = 7;
  config.provision_factor = 1.25;
  config.runtime.enable_scaling = false;
  return config;
}

TEST(TraceRecorder, SimulatorRunExportsBitIdenticalTraceOnReplay) {
  // Same seed, same workload, sample rate 0.5 (the sampling filter must make
  // the same decisions both times): the exported JSON strings are identical.
  auto run = [] {
    ExperimentConfig config = TracedSimConfig();
    TraceRecorder::Options options;
    options.sample_rate = 0.5;
    options.seed = config.seed;
    TraceRecorder recorder(options);
    MetricsRegistry registry;
    config.runtime.trace = &recorder;
    config.runtime.metrics = &registry;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.analysis->Total(), 0u);
    return recorder.ChromeTraceJson();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // And the export is well-formed Chrome trace JSON with real events.
  const JsonValue doc = ParseJson(first);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_GT(events->AsArray().size(), 10u);
  EXPECT_EQ(doc.At("otherData").At("dropped_events").AsInt(), 0);
}

TEST(TraceRecorder, WiringTraceDoesNotChangeSimOutcomes) {
  // Instrumentation must observe, never perturb: the same sim run with and
  // without a recorder wired produces identical per-request outcomes.
  ExperimentConfig config = TracedSimConfig();
  const ExperimentResult bare = RunExperiment(config);

  TraceRecorder::Options options;
  options.seed = config.seed;
  TraceRecorder recorder(options);
  MetricsRegistry registry;
  config.runtime.trace = &recorder;
  config.runtime.metrics = &registry;
  const ExperimentResult traced = RunExperiment(config);

  ASSERT_EQ(bare.analysis->Total(), traced.analysis->Total());
  EXPECT_EQ(bare.analysis->GoodCount(), traced.analysis->GoodCount());
  EXPECT_EQ(bare.analysis->DroppedCount(), traced.analysis->DroppedCount());
  for (std::size_t i = 0; i < bare.analysis->requests().size(); ++i) {
    const RequestPtr& a = bare.analysis->requests()[i];
    const RequestPtr& b = traced.analysis->requests()[i];
    ASSERT_EQ(a->fate, b->fate) << i;
    ASSERT_EQ(a->finish, b->finish) << i;
  }
}

TEST(AtomicHistogram, RoutesUnderOverflowAndNan) {
  AtomicHistogram hist(0.0, 10.0, 10);
  hist.Observe(-1.0);                                      // underflow
  hist.Observe(std::numeric_limits<double>::quiet_NaN());  // underflow
  hist.Observe(10.0);                                      // hi is exclusive
  hist.Observe(1e18);                                      // overflow
  hist.Observe(0.0);                                       // first bucket
  hist.Observe(9.999);                                     // last bucket
  EXPECT_EQ(hist.UnderflowCount(), 2);
  EXPECT_EQ(hist.OverflowCount(), 2);
  EXPECT_EQ(hist.BucketCount(0), 1);
  EXPECT_EQ(hist.BucketCount(9), 1);
  EXPECT_EQ(hist.Count(), 6);
}

TEST(AtomicHistogram, MergeAddsAndRejectsLayoutMismatch) {
  AtomicHistogram a(0.0, 10.0, 10);
  AtomicHistogram b(0.0, 10.0, 10);
  a.Observe(1.5);
  b.Observe(1.5);
  b.Observe(-1.0);
  a.Merge(b);
  EXPECT_EQ(a.BucketCount(1), 2);
  EXPECT_EQ(a.UnderflowCount(), 1);
  EXPECT_EQ(a.Count(), 3);

  AtomicHistogram different_range(0.0, 20.0, 10);
  AtomicHistogram different_buckets(0.0, 10.0, 5);
  EXPECT_THROW(a.Merge(different_range), CheckError);
  EXPECT_THROW(a.Merge(different_buckets), CheckError);
}

TEST(Counter, TalliesExactlyUnderConcurrentWriters) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        counter.Add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsRegistry, ReturnsStablePointersAndValidJson) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("fate.completed");
  Counter* c2 = registry.GetCounter("fate.completed");
  EXPECT_EQ(c1, c2);
  Gauge* g = registry.GetGauge("control.snapshot_epoch");
  AtomicHistogram* h1 = registry.GetHistogram("module.m0.batch_size", 0.0, 9.0, 9);
  AtomicHistogram* h2 = registry.GetHistogram("module.m0.batch_size", 0.0, 9.0, 9);
  EXPECT_EQ(h1, h2);
  // Re-registering a histogram with a different layout is a naming bug.
  EXPECT_THROW(registry.GetHistogram("module.m0.batch_size", 0.0, 5.0, 5), CheckError);

  c1->Add(3);
  g->Set(17);
  h1->Observe(4.0);
  registry.Sample(1 * kUsPerSec);
  registry.Sample(2 * kUsPerSec);
  EXPECT_EQ(registry.sample_count(), 2u);

  const JsonValue doc = ParseJson(registry.ToJson().Dump());
  EXPECT_EQ(doc.At("totals").At("fate.completed").AsInt(), 3);
  EXPECT_EQ(doc.At("gauges").At("control.snapshot_epoch").AsInt(), 17);
  ASSERT_TRUE(doc.At("samples").IsArray());
  EXPECT_EQ(doc.At("samples").AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(doc.At("samples").AsArray()[0].At("t_s").AsDouble(), 1.0);
}

TEST(DropReason, NamesCoverEveryEnumerator) {
  for (int r = 0; r < kNumDropReasons; ++r) {
    const char* name = DropReasonName(static_cast<DropReason>(r));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(DropReasonName(DropReason::kNone), "none");
  EXPECT_STREQ(DropReasonName(DropReason::kProactiveAdmission), "proactive_admission");
  EXPECT_STREQ(DropReasonName(DropReason::kSloLate), "slo_late");
}

TEST(DropReason, SimDropsAreFullyAttributedUnderOverload) {
  // Structural overload in the simulator: plenty of drops, and every one of
  // them must carry a reason — the reasons sum exactly to the drop count.
  // The fleet is pinned to one worker per module (provisioning scales with
  // the offered rate, so raising base_rate alone would not overload).
  ExperimentConfig config = TracedSimConfig();
  config.base_rate = 400.0;
  config.runtime.fixed_workers = std::vector<int>(3, 1);  // tm has 3 modules.
  const ExperimentResult result = RunExperiment(config);
  const RunAnalysis& analysis = *result.analysis;
  ASSERT_GT(analysis.DroppedCount(), 0u);
  const std::vector<std::size_t> reasons = analysis.DropReasonCounts();
  ASSERT_EQ(reasons.size(), static_cast<std::size_t>(kNumDropReasons));
  EXPECT_EQ(reasons[0], 0u) << "dropped request without attribution";
  std::size_t sum = 0;
  for (std::size_t r = 1; r < reasons.size(); ++r) {
    sum += reasons[r];
  }
  EXPECT_EQ(sum, analysis.DroppedCount());
  // The harness mirrors the same vector into the result struct.
  EXPECT_EQ(result.drop_reason_counts, reasons);
}

}  // namespace
}  // namespace pard
