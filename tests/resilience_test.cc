// Tests for the resilience layer (src/resilience/ + the runtime hooks):
//
//   1. ChaosSchedule grammar — positive parses for all four event forms and
//      negative parses whose errors name the event index, field position and
//      offending token.
//   2. Deterministic expansion — probabilistic entries expand to the same
//      concrete timeline for the same (schedule, seed) on every call, so sim
//      and serve replay identical chaos.
//   3. Simulator substrate — kill-heavy schedules with retries enabled
//      conserve every request with exact per-reason attribution, and chaos
//      runs are bit-deterministic.
//   4. Serving substrate — the randomized chaos soak: ~30 virtual seconds of
//      hangs (scheduled + probabilistic), a slowdown, a control-plane sync
//      stall and live scaling. Asserts conservation, watchdog recovery of
//      hung workers within the hang budget (plus sweep/scheduling slack),
//      replacement provisioning, and stale-snapshot fallback activity. Runs
//      under TSan in the tsan preset, pinning the heartbeat/watchdog and
//      snapshot-staleness concurrency contracts.
//   5. The acceptance comparison: under chaos overload PARD's proactive
//      dropping must still beat the drop-free baseline on goodput
//      (simulated, so the comparison is exact and cannot flake).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/policy_factory.h"
#include "common/check.h"
#include "common/time_types.h"
#include "harness/experiment.h"
#include "obs/drop_reason.h"
#include "pipeline/apps.h"
#include "resilience/chaos.h"
#include "runtime/backend_fleet.h"
#include "serve/serve_options.h"
#include "serve/serve_runtime.h"

namespace pard {
namespace {

// ---------------------------------------------------------------- grammar --

TEST(ChaosSchedule, ParsesAllEventForms) {
  const ChaosSchedule schedule = ParseChaosSchedule(
      "5:1:hang:2, 8:0:slow:3.5:4, 10:stall-sync:3, 2:1:hang:1:0.5, "
      "prob:2:hang:0.4:30");
  ASSERT_EQ(schedule.events.size(), 5u);

  const ChaosEvent& hang = schedule.events[0];
  EXPECT_EQ(hang.kind, ChaosKind::kHang);
  EXPECT_EQ(hang.at, SecToUs(5));
  EXPECT_EQ(hang.module_id, 1);
  EXPECT_EQ(hang.count, 2);
  EXPECT_EQ(hang.duration, 0);  // Indefinite: cleared by watchdog/Fail only.

  const ChaosEvent& slow = schedule.events[1];
  EXPECT_EQ(slow.kind, ChaosKind::kSlow);
  EXPECT_EQ(slow.module_id, 0);
  EXPECT_DOUBLE_EQ(slow.factor, 3.5);
  EXPECT_EQ(slow.duration, SecToUs(4));

  const ChaosEvent& stall = schedule.events[2];
  EXPECT_EQ(stall.kind, ChaosKind::kStallSync);
  EXPECT_EQ(stall.module_id, -1);
  EXPECT_EQ(stall.duration, SecToUs(3));

  const ChaosEvent& finite_hang = schedule.events[3];
  EXPECT_EQ(finite_hang.duration, MsToUs(500));

  const ChaosEvent& prob = schedule.events[4];
  EXPECT_DOUBLE_EQ(prob.rate_per_s, 0.4);
  EXPECT_EQ(prob.window_end, SecToUs(30));
}

TEST(ChaosSchedule, RejectsMalformedEntries) {
  EXPECT_THROW(ParseChaosSchedule(""), CheckError);
  EXPECT_THROW(ParseChaosSchedule("5:1"), CheckError);
  EXPECT_THROW(ParseChaosSchedule("x:1:hang:1"), CheckError);
  EXPECT_THROW(ParseChaosSchedule("5:1:explode:1"), CheckError);
  EXPECT_THROW(ParseChaosSchedule("5:1:hang:0"), CheckError);
  EXPECT_THROW(ParseChaosSchedule("5:1:slow:2.0"), CheckError);       // No duration.
  EXPECT_THROW(ParseChaosSchedule("5:1:slow:0:4"), CheckError);       // Zero factor.
  EXPECT_THROW(ParseChaosSchedule("5:stall-sync:0"), CheckError);     // Zero duration.
  EXPECT_THROW(ParseChaosSchedule("prob:1:slow:2.0:4"), CheckError);  // prob != hang.
  EXPECT_THROW(ParseChaosSchedule("prob:1:hang:0:30"), CheckError);   // Zero rate.
}

// Parse errors must point at the exact event and token, mirroring the fault-
// schedule parser's contract.
TEST(ChaosSchedule, ErrorsNameTheBadTokenAndPosition) {
  const auto message_of = [](const char* text) -> std::string {
    try {
      ParseChaosSchedule(text);
    } catch (const CheckError& e) {
      return e.what();
    }
    return "";
  };
  {
    const std::string msg = message_of("1:0:hang:1, 5:bad:hang:1");
    EXPECT_NE(msg.find("chaos event 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("field 2 (\"bad\")"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("5:1:explode:1");
    EXPECT_NE(msg.find("chaos event 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("field 3 (\"explode\")"), std::string::npos) << msg;
    EXPECT_NE(msg.find("hang|slow|stall-sync"), std::string::npos) << msg;
  }
  {
    const std::string msg = message_of("q:1:hang:1");
    EXPECT_NE(msg.find("field 1 (\"q\")"), std::string::npos) << msg;
  }
}

// ------------------------------------------------------------- expansion --

TEST(ChaosSchedule, ExpansionIsDeterministicPerSeed) {
  const ChaosSchedule schedule = ParseChaosSchedule("prob:0:hang:2.0:20, 3:1:slow:2.0:5");
  const std::vector<ChaosEvent> a = ExpandChaosSchedule(schedule, 42);
  const std::vector<ChaosEvent> b = ExpandChaosSchedule(schedule, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].module_id, b[i].module_id);
  }
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const ChaosEvent& x, const ChaosEvent& y) {
    return x.at < y.at;
  }));
  // ~40 expected hangs plus the pass-through slow event; every expanded hang
  // is concrete (no residual rate) and inside the window.
  std::size_t hangs = 0;
  for (const ChaosEvent& e : a) {
    if (e.kind == ChaosKind::kHang) {
      ++hangs;
      EXPECT_EQ(e.rate_per_s, 0.0);
      EXPECT_EQ(e.count, 1);
      EXPECT_LT(e.at, SecToUs(20));
    }
  }
  EXPECT_GT(hangs, 10u);
  EXPECT_LT(hangs, 100u);

  // A different seed draws a different timeline (equal timelines would need
  // dozens of identical exponential draws).
  const std::vector<ChaosEvent> c = ExpandChaosSchedule(schedule, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at;
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------------- simulator --

ExperimentConfig KillHeavyConfig() {
  ExperimentConfig config;
  config.app = "tm";
  config.trace = "tweet";
  config.policy = "pard";
  config.duration_s = 10.0;
  config.base_rate = 250.0;  // Structural overload for 2-worker modules.
  config.seed = 7;
  config.slo_override = 2 * kUsPerSec;  // Roomy SLO so retries can land.
  config.runtime.enable_scaling = false;
  config.runtime.fixed_workers = {2, 2, 2};
  config.runtime.fleet_events =
      ParseFaultSchedule("2:0:kill:1,3:1:kill:1,4:1:add:1,5:2:kill:1,6:0:add:1,7:1:kill:1");
  config.runtime.resilience.max_retries = 2;
  return config;
}

TEST(SimResilience, KillHeavyScheduleConservesWithExactReasonAttribution) {
  const ExperimentResult result = RunExperiment(KillHeavyConfig());
  const RunAnalysis& analysis = *result.analysis;
  ASSERT_GT(analysis.Total(), 500u);

  std::size_t good = 0;
  std::size_t not_good = 0;
  for (const RequestPtr& req : analysis.requests()) {
    ASSERT_TRUE(req->Terminal());
    if (req->Good()) {
      ++good;
      EXPECT_EQ(req->drop_reason, DropReason::kNone);
    } else {
      ++not_good;
      // Every non-good request carries a reason — nothing is lost silently,
      // even mid-batch on a dying worker.
      EXPECT_NE(req->drop_reason, DropReason::kNone);
    }
  }
  EXPECT_EQ(good + not_good, analysis.Total());

  // The per-reason counts sum exactly to the non-good population.
  ASSERT_EQ(result.drop_reason_counts.size(), static_cast<std::size_t>(kNumDropReasons));
  std::size_t reason_sum = 0;
  for (int r = 1; r < kNumDropReasons; ++r) {
    reason_sum += result.drop_reason_counts[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(reason_sum, not_good);
  EXPECT_EQ(result.drop_reason_counts[0], 0u);  // kNone never counts.

  // Under overload the killed workers held queued work with budget to spare,
  // so the deadline-aware path must have re-enqueued some of it.
  EXPECT_GT(result.retries, 0u);
}

TEST(SimResilience, ChaosRunsAreBitDeterministic) {
  ExperimentConfig config = KillHeavyConfig();
  config.runtime.resilience.chaos =
      ParseChaosSchedule("2.5:1:hang:1:1.5, 4:0:slow:2.5:3, 5:stall-sync:2, prob:2:hang:0.5:9");
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  ASSERT_EQ(a.analysis->Total(), b.analysis->Total());
  EXPECT_EQ(a.retries, b.retries);
  for (std::size_t i = 0; i < a.analysis->requests().size(); ++i) {
    const Request& x = *a.analysis->requests()[i];
    const Request& y = *b.analysis->requests()[i];
    ASSERT_EQ(x.fate, y.fate) << "request " << x.id;
    ASSERT_EQ(x.finish, y.finish) << "request " << x.id;
    ASSERT_EQ(x.drop_reason, y.drop_reason) << "request " << x.id;
  }
}

TEST(SimResilience, FiniteHangDelaysButConserves) {
  // A finite hang freezes one of two workers for 2 s mid-run: throughput
  // halves during the window, then the worker resumes. Everything stays
  // terminal and attributed; the hang itself drops nothing.
  ExperimentConfig config = KillHeavyConfig();
  config.runtime.fleet_events.clear();
  config.runtime.resilience.chaos = ParseChaosSchedule("3:1:hang:1:2");
  const ExperimentResult result = RunExperiment(config);
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
  EXPECT_EQ(result.drop_reason_counts[static_cast<std::size_t>(DropReason::kWorkerFailure)],
            0u);
  EXPECT_EQ(
      result.drop_reason_counts[static_cast<std::size_t>(DropReason::kRetryExhausted)], 0u);
}

TEST(SimResilience, PardBeatsDropFreeBaselineUnderChaosOverload) {
  // The acceptance comparison, run on the deterministic substrate so the
  // ordering is exact: under overload with kills, hangs, a slowdown and a
  // sync stall, proactive dropping must still clear more goodput than the
  // drop-free naive baseline (which wastes GPU time on doomed requests).
  ExperimentConfig config = KillHeavyConfig();
  config.slo_override = 0;  // The app SLO: tight enough that lateness bites.
  config.runtime.resilience.chaos =
      ParseChaosSchedule("2.5:1:hang:1:1.5, 4:0:slow:2.0:3, 5:stall-sync:2");
  const ExperimentResult pard = RunExperiment(config);
  config.policy = "naive";
  const ExperimentResult naive = RunExperiment(config);
  EXPECT_GE(pard.analysis->NormalizedGoodput(), naive.analysis->NormalizedGoodput())
      << "pard=" << pard.analysis->NormalizedGoodput()
      << " naive=" << naive.analysis->NormalizedGoodput();
  EXPECT_GT(pard.analysis->NormalizedGoodput(), 0.0);
}

// --------------------------------------------------------------- serving --

TEST(ServeResilience, ChaosSoakRecoversHungWorkersAndConserves) {
  // The randomized chaos soak: 30 virtual seconds of structural overload
  // with a scheduled indefinite hang, probabilistic hangs, a slowdown, a
  // control-plane sync stall and the deadline-aware retry path — the full
  // self-healing loop end to end. Bounds below are generous because
  // wall-clock scheduling (and TSan's ~10x slowdown in the tsan preset)
  // jitters detection latency; the *virtual* duration is fixed by the
  // speedup, so the test costs ~3 s of wall time regardless.
  PipelineSpec spec = MakeApp("tm");
  RuntimeOptions options;
  options.seed = 11;
  options.enable_scaling = false;  // Recovery comes from the watchdog path.
  options.fixed_workers = {2, 2, 2};
  options.resilience.chaos = ParseChaosSchedule(
      "3:1:hang:1, 10:stall-sync:4, 16:2:slow:3.0:6, prob:0:hang:0.15:28");
  options.resilience.max_retries = 2;
  options.resilience.hang_budget = 2 * kUsPerSec;
  options.resilience.staleness_budget = 1 * kUsPerSec;
  std::unique_ptr<DropPolicy> policy = MakePolicy("pard", PolicyParams{});
  ServeOptions serve;
  serve.speedup = 10.0;
  ServeRuntime runtime(spec, options, policy.get(), 150.0, serve);

  // 150 req/s of evenly-spaced arrivals for 30 virtual seconds: structural
  // overload for 2-worker modules, so every worker is continuously busy and
  // the hang at t=3 s is guaranteed to land on an in-flight batch.
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 4500; ++i) {
    arrivals.push_back(static_cast<SimTime>(i) * 6667);
  }
  runtime.RunTrace(arrivals);

  // Conservation under chaos: terminal exactly once, reasons partition the
  // non-good population.
  ASSERT_EQ(runtime.requests().size(), arrivals.size());
  std::size_t good = 0;
  std::size_t not_good = 0;
  std::vector<std::size_t> reason_counts(static_cast<std::size_t>(kNumDropReasons), 0);
  for (const RequestPtr& req : runtime.requests()) {
    ASSERT_TRUE(req->Terminal());
    if (req->Good()) {
      ++good;
    } else {
      ++not_good;
      ASSERT_NE(req->drop_reason, DropReason::kNone);
      ++reason_counts[static_cast<std::size_t>(req->drop_reason)];
    }
  }
  EXPECT_EQ(good + not_good, arrivals.size());
  std::size_t reason_sum = 0;
  for (int r = 1; r < kNumDropReasons; ++r) {
    reason_sum += reason_counts[static_cast<std::size_t>(r)];
  }
  EXPECT_EQ(reason_sum, not_good);

  // The watchdog force-failed the scheduled indefinite hang (plus any
  // probabilistic hangs it caught mid-batch), and each kill provisioned a
  // replacement worker.
  ASSERT_GE(runtime.watchdog_recoveries(), 1u);

  // Recovery timeline from the fleet transition log: the scheduled hang
  // lands at t=3 s on a busy module-1 worker. Detection must come after the
  // 2 s hang budget has genuinely elapsed and before budget + sweep cadence
  // + generous scheduling slack; the replacement must cold-start and
  // eventually activate.
  constexpr SimTime kHangAt = 3 * kUsPerSec;
  constexpr SimTime kBudget = 2 * kUsPerSec;
  constexpr SimTime kSlack = 6 * kUsPerSec;  // Sweep period + TSan/CI jitter.
  SimTime first_kill = -1;
  bool saw_replacement_cold = false;
  bool saw_replacement_active = false;
  for (const FleetTransition& t : runtime.fleet().transitions()) {
    if (t.module_id != 1) {
      continue;
    }
    if (t.to == BackendState::kFailed && first_kill < 0 && t.at >= kHangAt) {
      first_kill = t.at;
    } else if (first_kill >= 0 && t.to == BackendState::kColdStarting) {
      saw_replacement_cold = true;
    } else if (saw_replacement_cold && t.to == BackendState::kActive) {
      saw_replacement_active = true;
    }
  }
  ASSERT_GE(first_kill, 0) << "watchdog never failed the hung module-1 worker";
  EXPECT_GE(first_kill, kHangAt + kBudget);
  EXPECT_LE(first_kill, kHangAt + kBudget + kSlack);
  EXPECT_TRUE(saw_replacement_cold);
  EXPECT_TRUE(saw_replacement_active);

  // The sync stall at t=10 s ages the snapshot past the 1 s staleness
  // budget, so lock-free readers must have taken the conservative fallback.
  EXPECT_GT(runtime.control().StaleFallbacks(), 0u);
}

}  // namespace
}  // namespace pard
