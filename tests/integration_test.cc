// End-to-end experiments asserting the paper's qualitative results hold in
// this reproduction: PARD beats the reactive baselines on goodput, drop rate
// and invalid rate; reactive policies drop late in the pipeline while PARD
// drops early; conservation and determinism invariants hold.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <string>

#include "harness/experiment.h"

namespace pard {
namespace {

ExperimentConfig QuickConfig(const std::string& app, const std::string& trace,
                             const std::string& policy) {
  ExperimentConfig c;
  c.app = app;
  c.trace = trace;
  c.policy = policy;
  // A rate whose burst peaks exceed the mean-provisioned capacity: the
  // regime where dropping policy decides goodput (paper's red-box regions).
  c.duration_s = 150.0;
  c.base_rate = 240.0;
  c.seed = 7;
  return c;
}

TEST(Integration, ConservationOfRequests) {
  for (const char* policy : {"pard", "nexus", "clipper++", "naive"}) {
    const ExperimentResult r = RunExperiment(QuickConfig("tm", "tweet", policy));
    const RunAnalysis& a = *r.analysis;
    std::size_t good = 0;
    std::size_t late = 0;
    std::size_t dropped = 0;
    std::size_t in_flight = 0;
    for (const RequestPtr& req : a.requests()) {
      switch (req->fate) {
        case RequestFate::kCompleted: ++good; break;
        case RequestFate::kLate: ++late; break;
        case RequestFate::kDropped: ++dropped; break;
        case RequestFate::kInFlight: ++in_flight; break;
      }
    }
    EXPECT_EQ(in_flight, 0u) << policy;
    EXPECT_EQ(good + late + dropped, a.Total()) << policy;
    EXPECT_EQ(a.GoodCount(), good) << policy;
    EXPECT_EQ(a.DroppedCount(), late + dropped) << policy;
  }
}

TEST(Integration, DeterministicAcrossRuns) {
  const ExperimentResult a = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  const ExperimentResult b = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  EXPECT_EQ(a.analysis->Total(), b.analysis->Total());
  EXPECT_DOUBLE_EQ(a.analysis->DropRate(), b.analysis->DropRate());
  EXPECT_DOUBLE_EQ(a.analysis->InvalidRate(), b.analysis->InvalidRate());
}

TEST(Integration, SameArrivalsAcrossPolicies) {
  const ExperimentResult a = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  const ExperimentResult b = RunExperiment(QuickConfig("lv", "tweet", "naive"));
  ASSERT_EQ(a.analysis->Total(), b.analysis->Total());
  for (std::size_t i = 0; i < a.analysis->requests().size(); i += 97) {
    EXPECT_EQ(a.analysis->requests()[i]->sent, b.analysis->requests()[i]->sent);
  }
}

// The paper's headline comparison (Fig. 8/10): PARD sustains higher goodput
// with lower drop and invalid rates than every baseline.
TEST(Integration, PardBeatsBaselinesOnBurstyWorkload) {
  std::map<std::string, double> goodput;
  std::map<std::string, double> drop;
  std::map<std::string, double> invalid;
  for (const char* policy : {"pard", "nexus", "clipper++", "naive"}) {
    const ExperimentResult r = RunExperiment(QuickConfig("lv", "tweet", policy));
    goodput[policy] = r.analysis->NormalizedGoodput();
    drop[policy] = r.analysis->DropRate();
    invalid[policy] = r.analysis->InvalidRate();
  }
  EXPECT_GT(goodput["pard"], goodput["nexus"]);
  EXPECT_GT(goodput["pard"], goodput["clipper++"]);
  EXPECT_GT(goodput["pard"], goodput["naive"]);
  EXPECT_LT(drop["pard"], drop["nexus"]);
  EXPECT_LT(drop["pard"], drop["clipper++"]);
  EXPECT_LT(invalid["pard"], invalid["nexus"]);
  // Naive wastes the most computation of all (paper: up to 129x PARD).
  EXPECT_GT(invalid["naive"], invalid["pard"]);
}

// Fig. 2c / Fig. 11b: reactive policies concentrate drops in the latter half
// of the pipeline; PARD concentrates them in the first half.
TEST(Integration, DropPlacementEarlyForPardLateForReactive) {
  const auto share_late_half = [](const ExperimentResult& r) {
    const std::vector<double> share = r.analysis->PerModuleDropShare();
    double late = 0.0;
    for (std::size_t m = share.size() / 2; m < share.size(); ++m) {
      late += share[m];
    }
    return late;
  };
  const ExperimentResult pard_run = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  const ExperimentResult nexus_run = RunExperiment(QuickConfig("lv", "tweet", "nexus"));
  EXPECT_LT(share_late_half(pard_run), 0.5);
  EXPECT_GT(share_late_half(nexus_run), share_late_half(pard_run));
}

TEST(Integration, PardBackDropsLaterThanPard) {
  const ExperimentResult pard_run = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  const ExperimentResult back_run = RunExperiment(QuickConfig("lv", "tweet", "pard-back"));
  const auto last_module_share = [](const ExperimentResult& r) {
    return r.analysis->PerModuleDropShare().back();
  };
  // Without downstream awareness most drops land in the last module
  // (paper: 95% for PARD-back).
  EXPECT_GT(last_module_share(back_run), last_module_share(pard_run));
  EXPECT_GT(back_run.analysis->InvalidRate(), pard_run.analysis->InvalidRate());
}

TEST(Integration, SweetSpotBeatsLowerAndUpperOnGoodput) {
  const double pard = RunExperiment(QuickConfig("lv", "tweet", "pard"))
                          .analysis->NormalizedGoodput();
  const double lower = RunExperiment(QuickConfig("lv", "tweet", "pard-lower"))
                           .analysis->NormalizedGoodput();
  const double upper = RunExperiment(QuickConfig("lv", "tweet", "pard-upper"))
                           .analysis->NormalizedGoodput();
  EXPECT_GE(pard, lower - 0.02);
  EXPECT_GE(pard, upper - 0.02);
  // PARD-lower mis-keeps: its invalid rate exceeds PARD's (paper: 3.5x).
  const double pard_invalid =
      RunExperiment(QuickConfig("lv", "tweet", "pard")).analysis->InvalidRate();
  const double lower_invalid =
      RunExperiment(QuickConfig("lv", "tweet", "pard-lower")).analysis->InvalidRate();
  EXPECT_GE(lower_invalid, pard_invalid);
}

TEST(Integration, DagPipelineServesAndDropsCorrectly) {
  const ExperimentResult r = RunExperiment(QuickConfig("da", "wiki", "pard"));
  const RunAnalysis& a = *r.analysis;
  EXPECT_GT(a.Total(), 1000u);
  EXPECT_GT(a.NormalizedGoodput(), 0.5);
  // Completed requests executed BOTH branches and the merge module.
  std::size_t checked = 0;
  for (const RequestPtr& req : a.requests()) {
    if (req->Good()) {
      EXPECT_TRUE(req->hops[1].executed);  // pose branch
      EXPECT_TRUE(req->hops[2].executed);  // face branch
      EXPECT_TRUE(req->hops[3].executed);  // merge
      // The merge waited for the later branch.
      EXPECT_GE(req->hops[3].arrive, req->hops[1].exec_end);
      EXPECT_GE(req->hops[3].arrive, req->hops[2].exec_end);
      if (++checked > 200) {
        break;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Integration, SloSensitivityMonotone) {
  // Looser SLOs must not increase the drop rate (Fig. 14b trend).
  ExperimentConfig c = QuickConfig("lv", "tweet", "pard");
  c.slo_override = MsToUs(250);
  const double tight = RunExperiment(c).analysis->DropRate();
  c.slo_override = MsToUs(600);
  const double loose = RunExperiment(c).analysis->DropRate();
  EXPECT_LE(loose, tight + 0.02);
}

TEST(Integration, StressGoodputSaturatesNearCapacity) {
  // Fixed provisioning, rising offered load (Fig. 14a): goodput grows, then
  // saturates instead of collapsing for PARD.
  ExperimentConfig c = QuickConfig("tm", "wiki", "pard");
  c.runtime.fixed_workers = {8, 5, 5};
  double last_goodput = 0.0;
  double peak = 0.0;
  for (double rate : {60.0, 120.0, 240.0, 480.0}) {
    c.base_rate = rate;
    const ExperimentResult r = RunExperiment(c);
    last_goodput = r.analysis->MeanGoodput();
    peak = std::max(peak, last_goodput);
  }
  // At 4x overload PARD still delivers a large fraction of its peak.
  EXPECT_GT(last_goodput, 0.5 * peak);
}

TEST(Integration, AdaptivePriorityActuallyTransitions) {
  const ExperimentResult r = RunExperiment(QuickConfig("lv", "azure", "pard"));
  // The bursty azure trace pushes modules above and below saturation, so the
  // adaptive controller must have logged transitions for module 0.
  bool saw_hbf = false;
  bool saw_lbf = false;
  for (const auto& t : r.transitions) {
    if (t.module_id == 0) {
      saw_hbf |= t.mode == PriorityMode::kHbf;
      saw_lbf |= t.mode == PriorityMode::kLbf;
    }
  }
  EXPECT_TRUE(saw_lbf);
  EXPECT_TRUE(saw_hbf);
}

TEST(Integration, ScalingEngineAddsWorkersUnderLoad) {
  ExperimentConfig c = QuickConfig("tm", "tweet", "pard");
  c.base_rate = 550.0;  // High enough that worker targets actually move.
  c.runtime.enable_scaling = true;
  c.provision_factor = 0.7;  // Start under-provisioned; scaling must react.
  const ExperimentResult r = RunExperiment(c);
  ASSERT_FALSE(r.worker_history.empty());
  int max_workers = 0;
  int min_workers = 1 << 20;
  for (const auto& sample : r.worker_history) {
    const int total = std::accumulate(sample.workers.begin(), sample.workers.end(), 0);
    max_workers = std::max(max_workers, total);
    min_workers = std::min(min_workers, total);
  }
  EXPECT_GT(max_workers, min_workers);
}

TEST(Integration, OverloadControlShedsButCoarsely) {
  const ExperimentResult oc = RunExperiment(QuickConfig("lv", "tweet", "pard-oc"));
  const ExperimentResult pard = RunExperiment(QuickConfig("lv", "tweet", "pard"));
  // OC sheds (drops exist) but is coarser than PARD (paper: 2.1x drop rate).
  EXPECT_GT(oc.analysis->DropRate(), 0.0);
  EXPECT_GE(oc.analysis->DropRate(), pard.analysis->DropRate() * 0.8);
}

}  // namespace
}  // namespace pard
