#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "runtime/request.h"
#include "runtime/request_queue.h"

namespace pard {
namespace {

RequestPtr MakeReq(std::uint64_t id, SimTime deadline) {
  auto r = std::make_shared<Request>();
  r->id = id;
  r->deadline = deadline;
  return r;
}

TEST(RequestQueue, EmptyPopsNull) {
  RequestQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Pop(PopSide::kOldest), nullptr);
  EXPECT_EQ(q.Pop(PopSide::kMinBudget), nullptr);
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget), nullptr);
  EXPECT_EQ(q.MinDeadline(), kSimTimeMax);
}

TEST(RequestQueue, FifoOrder) {
  RequestQueue q;
  q.Push(MakeReq(1, 300));
  q.Push(MakeReq(2, 100));
  q.Push(MakeReq(3, 200));
  EXPECT_EQ(q.Pop(PopSide::kOldest)->id, 1u);
  EXPECT_EQ(q.Pop(PopSide::kOldest)->id, 2u);
  EXPECT_EQ(q.Pop(PopSide::kOldest)->id, 3u);
}

TEST(RequestQueue, MinBudgetOrder) {
  RequestQueue q;
  q.Push(MakeReq(1, 300));
  q.Push(MakeReq(2, 100));
  q.Push(MakeReq(3, 200));
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 2u);
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 3u);
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 1u);
}

TEST(RequestQueue, MaxBudgetOrder) {
  RequestQueue q;
  q.Push(MakeReq(1, 300));
  q.Push(MakeReq(2, 100));
  q.Push(MakeReq(3, 200));
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget)->id, 1u);
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget)->id, 3u);
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget)->id, 2u);
}

TEST(RequestQueue, MixedSidesNeverReturnSameEntryTwice) {
  RequestQueue q;
  q.Push(MakeReq(1, 100));
  q.Push(MakeReq(2, 200));
  q.Push(MakeReq(3, 300));
  // Pop min (id 1), then FIFO must skip the consumed entry.
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 1u);
  EXPECT_EQ(q.Pop(PopSide::kOldest)->id, 2u);
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget)->id, 3u);
  EXPECT_TRUE(q.Empty());
}

TEST(RequestQueue, EqualDeadlinesBreakTiesByArrival) {
  RequestQueue q;
  q.Push(MakeReq(1, 100));
  q.Push(MakeReq(2, 100));
  q.Push(MakeReq(3, 100));
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 1u);
  EXPECT_EQ(q.Pop(PopSide::kMaxBudget)->id, 3u);
  EXPECT_EQ(q.Pop(PopSide::kMinBudget)->id, 2u);
}

TEST(RequestQueue, MinDeadlineTracksLiveEntries) {
  RequestQueue q;
  q.Push(MakeReq(1, 100));
  q.Push(MakeReq(2, 200));
  EXPECT_EQ(q.MinDeadline(), 100);
  // Consume the min through the FIFO view; MinDeadline must skip it.
  EXPECT_EQ(q.Pop(PopSide::kOldest)->id, 1u);
  EXPECT_EQ(q.MinDeadline(), 200);
}

TEST(RequestQueue, SizeTracksLiveCount) {
  RequestQueue q;
  q.Push(MakeReq(1, 100));
  q.Push(MakeReq(2, 200));
  EXPECT_EQ(q.Size(), 2u);
  q.Pop(PopSide::kMaxBudget);
  EXPECT_EQ(q.Size(), 1u);
  q.Pop(PopSide::kOldest);
  EXPECT_EQ(q.Size(), 0u);
}

// Regression (ISSUE 3): entries consumed through one view used to linger in
// the other forever under lazy invalidation. A long run that only ever pops
// through the heap (alternating HBF/LBF, the adaptive-priority pattern) must
// keep the FIFO view — and the slab — bounded by the live size, not by
// history.
TEST(RequestQueue, HeapOnlyConsumptionKeepsFifoBounded) {
  RequestQueue q;
  constexpr std::size_t kDepth = 128;
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < kDepth; ++i) {
    q.Push(MakeReq(next_id, static_cast<SimTime>(next_id % 997)));
    ++next_id;
  }
  std::size_t max_fifo = 0;
  std::size_t max_slab = 0;
  for (int step = 0; step < 200000; ++step) {
    q.Push(MakeReq(next_id, static_cast<SimTime>(next_id % 997)));
    ++next_id;
    const RequestPtr got =
        q.Pop(step % 2 == 0 ? PopSide::kMinBudget : PopSide::kMaxBudget);
    ASSERT_NE(got, nullptr);
    max_fifo = std::max(max_fifo, q.FifoFootprint());
    max_slab = std::max(max_slab, q.SlabFootprint());
  }
  EXPECT_EQ(q.Size(), kDepth);
  // Compaction triggers at 2x live + slack; anything near history size
  // (200k) means unbounded growth came back.
  EXPECT_LE(max_fifo, 2 * kDepth + 128);
  EXPECT_LE(max_slab, 2 * kDepth + 128);
}

// The mirror image: FIFO-only consumption must keep the heap view bounded.
TEST(RequestQueue, FifoOnlyConsumptionKeepsHeapBounded) {
  RequestQueue q;
  constexpr std::size_t kDepth = 128;
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < kDepth; ++i) {
    q.Push(MakeReq(next_id, static_cast<SimTime>(next_id % 997)));
    ++next_id;
  }
  std::size_t max_heap = 0;
  for (int step = 0; step < 200000; ++step) {
    q.Push(MakeReq(next_id, static_cast<SimTime>(next_id % 997)));
    ++next_id;
    ASSERT_NE(q.Pop(PopSide::kOldest), nullptr);
    max_heap = std::max(max_heap, q.HeapFootprint());
  }
  EXPECT_EQ(q.Size(), kDepth);
  EXPECT_LE(max_heap, 2 * kDepth + 128);
}

// Property: under random interleaved operation the queue agrees with a
// reference implementation.
class RequestQueuePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RequestQueuePropertyTest, AgreesWithReference) {
  Rng rng(GetParam());
  RequestQueue q;
  std::vector<RequestPtr> reference;  // Insertion-ordered live entries.
  std::uint64_t next_id = 1;
  for (int step = 0; step < 3000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.5 || reference.empty()) {
      auto r = MakeReq(next_id++, rng.UniformInt(0, 500));
      reference.push_back(r);
      q.Push(r);
    } else {
      const double which = rng.NextDouble();
      std::size_t pick = 0;
      PopSide side;
      if (which < 0.34) {
        side = PopSide::kOldest;
        pick = 0;
      } else if (which < 0.67) {
        side = PopSide::kMinBudget;
        for (std::size_t i = 1; i < reference.size(); ++i) {
          if (reference[i]->deadline < reference[pick]->deadline) {
            pick = i;
          }
        }
      } else {
        side = PopSide::kMaxBudget;
        for (std::size_t i = 1; i < reference.size(); ++i) {
          // >= : on equal deadlines the queue's PopMax returns the latest
          // arrival (largest sequence number).
          if (reference[i]->deadline >= reference[pick]->deadline) {
            pick = i;
          }
        }
      }
      const RequestPtr got = q.Pop(side);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->id, reference[pick]->id);
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(q.Size(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestQueuePropertyTest, ::testing::Values(3, 7, 11, 19, 43));

}  // namespace
}  // namespace pard
