#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/check.h"
#include "models/registry.h"
#include "pipeline/apps.h"
#include "runtime/batch_planner.h"

namespace pard {
namespace {

TEST(BatchPlanner, BatchSizesFeasible) {
  for (const std::string& app : AppNames()) {
    const PipelineSpec spec = MakeApp(app);
    const std::vector<int> batches = PlanBatchSizes(spec);
    ASSERT_EQ(static_cast<int>(batches.size()), spec.NumModules());
    Duration total_d1 = 0;
    for (const ModuleSpec& m : spec.modules()) {
      total_d1 += ProfileRegistry::Get(m.model).BatchDuration(1);
    }
    for (const ModuleSpec& m : spec.modules()) {
      const int b = batches[static_cast<std::size_t>(m.id)];
      EXPECT_GE(b, 1);
      const ModelProfile& p = ProfileRegistry::Get(m.model);
      const Duration share = static_cast<Duration>(
          static_cast<double>(p.BatchDuration(1)) / static_cast<double>(total_d1) *
          static_cast<double>(spec.slo()));
      // Either the planned batch fits twice in the share or it is the
      // minimum batch of 1.
      EXPECT_TRUE(2 * p.BatchDuration(b) <= share || b == 1) << app << " module " << m.id;
    }
  }
}

TEST(BatchPlanner, TighterSloShrinksBatches) {
  PipelineSpec spec = MakeLiveVideo();
  const std::vector<int> loose = PlanBatchSizes(spec);
  spec.set_slo(MsToUs(200));
  const std::vector<int> tight = PlanBatchSizes(spec);
  for (std::size_t i = 0; i < loose.size(); ++i) {
    EXPECT_LE(tight[i], loose[i]);
  }
}

TEST(BatchPlanner, WorkersScaleWithRate) {
  const PipelineSpec spec = MakeLiveVideo();
  const std::vector<int> batches = PlanBatchSizes(spec);
  const std::vector<int> low = PlanWorkers(spec, batches, 50.0, 1.0, 32, 1000);
  const std::vector<int> high = PlanWorkers(spec, batches, 500.0, 1.0, 32, 1000);
  for (std::size_t i = 0; i < low.size(); ++i) {
    EXPECT_GE(high[i], low[i]);
    EXPECT_GE(low[i], 1);
  }
}

TEST(BatchPlanner, WorkersSufficientForRate) {
  const PipelineSpec spec = MakeTrafficMonitoring();
  const std::vector<int> batches = PlanBatchSizes(spec);
  const double rate = 200.0;
  const std::vector<int> workers = PlanWorkers(spec, batches, rate, 1.1, 32, 1000);
  for (const ModuleSpec& m : spec.modules()) {
    const double tput = ProfileRegistry::Get(m.model)
                            .Throughput(batches[static_cast<std::size_t>(m.id)]) *
                        workers[static_cast<std::size_t>(m.id)];
    EXPECT_GE(tput, rate) << "module " << m.id;
  }
}

TEST(BatchPlanner, GpuCapScalesDown) {
  const PipelineSpec spec = MakeLiveVideo();
  const std::vector<int> batches = PlanBatchSizes(spec);
  const std::vector<int> workers = PlanWorkers(spec, batches, 5000.0, 1.0, 32, 10);
  const int total = std::accumulate(workers.begin(), workers.end(), 0);
  EXPECT_LE(total, 10 + spec.NumModules());  // Floor-to-1 rule allows slight overshoot.
  for (int w : workers) {
    EXPECT_GE(w, 1);
  }
}

TEST(BatchPlanner, CumulativeSplitMonotoneAndBounded) {
  for (const std::string& app : AppNames()) {
    const PipelineSpec spec = MakeApp(app);
    const std::vector<Duration> budgets = CumulativeSplitBudgets(spec, PlanBatchSizes(spec));
    // Monotone along every downstream edge; sink equals the full SLO.
    for (const ModuleSpec& m : spec.modules()) {
      for (int s : m.subs) {
        EXPECT_LT(budgets[static_cast<std::size_t>(m.id)], budgets[static_cast<std::size_t>(s)]);
      }
      EXPECT_GT(budgets[static_cast<std::size_t>(m.id)], 0);
      EXPECT_LE(budgets[static_cast<std::size_t>(m.id)], spec.slo());
    }
    EXPECT_EQ(budgets[static_cast<std::size_t>(spec.SinkModule())], spec.slo());
  }
}

TEST(BatchPlanner, WeightsDriveSplit) {
  const PipelineSpec spec = MakeTrafficMonitoring();
  // All weight on module 0: its cumulative budget ~ the full SLO share.
  const std::vector<Duration> budgets =
      CumulativeBudgetsFromWeights(spec, {98.0, 1.0, 1.0}, spec.slo());
  EXPECT_NEAR(static_cast<double>(budgets[0]), 0.98 * static_cast<double>(spec.slo()),
              static_cast<double>(spec.slo()) * 0.01);
}

TEST(BatchPlanner, RejectsBadWeights) {
  const PipelineSpec spec = MakeTrafficMonitoring();
  EXPECT_THROW(CumulativeBudgetsFromWeights(spec, {1.0, 0.0, 1.0}, spec.slo()), CheckError);
  EXPECT_THROW(CumulativeBudgetsFromWeights(spec, {1.0}, spec.slo()), CheckError);
}

}  // namespace
}  // namespace pard
