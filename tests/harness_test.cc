// Tests for the experiment harness, the JSON run report, and failure
// injection.
#include <gtest/gtest.h>
#include <cctype>
#include <string>

#include "harness/experiment.h"
#include "metrics/report.h"
#include "pipeline/apps.h"

namespace pard {
namespace {

ExperimentConfig Quick(const std::string& policy = "pard") {
  ExperimentConfig c;
  c.app = "tm";
  c.trace = "wiki";
  c.policy = policy;
  c.duration_s = 60.0;
  c.base_rate = 150.0;
  c.seed = 3;
  return c;
}

TEST(Harness, RunsAndAnalyzes) {
  const ExperimentResult r = RunExperiment(Quick());
  EXPECT_GT(r.analysis->Total(), 1000u);
  EXPECT_GT(r.mean_input_rate, 50.0);
  EXPECT_EQ(r.spec.app_name(), "tm");
}

TEST(Harness, SloOverrideApplied) {
  ExperimentConfig c = Quick();
  c.slo_override = MsToUs(321);
  const ExperimentResult r = RunExperiment(c);
  EXPECT_EQ(r.spec.slo(), MsToUs(321));
  for (const RequestPtr& req : r.analysis->requests()) {
    EXPECT_EQ(req->slo, MsToUs(321));
    break;
  }
}

TEST(Harness, CustomSpecOverridesApp) {
  ExperimentConfig c = Quick();
  c.custom_spec = MakeGameAnalysis();
  const ExperimentResult r = RunExperiment(c);
  EXPECT_EQ(r.spec.app_name(), "gm");
  EXPECT_EQ(r.spec.NumModules(), 5);
}

TEST(Harness, FixedWorkersRespected) {
  ExperimentConfig c = Quick();
  c.runtime.fixed_workers = {2, 2, 2};
  EXPECT_NO_THROW(RunExperiment(c));
  c.runtime.fixed_workers = {2, 2};  // Wrong arity.
  EXPECT_THROW(RunExperiment(c), CheckError);
}

TEST(Harness, UnknownNamesThrow) {
  ExperimentConfig c = Quick();
  c.policy = "bogus";
  EXPECT_THROW(RunExperiment(c), CheckError);
  c = Quick();
  c.trace = "bogus";
  EXPECT_THROW(RunExperiment(c), CheckError);
  c = Quick();
  c.app = "bogus";
  EXPECT_THROW(RunExperiment(c), CheckError);
}

// Every policy the factory knows must run the quick grid without violating
// conservation — a smoke property over the whole policy zoo.
class AllPoliciesTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllPoliciesTest, ConservationOnQuickRun) {
  ExperimentConfig c = Quick(GetParam());
  c.duration_s = 30.0;
  const ExperimentResult r = RunExperiment(c);
  std::size_t good = 0;
  std::size_t bad = 0;
  for (const RequestPtr& req : r.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
    good += req->Good() ? 1 : 0;
    bad += req->CountsDropped() ? 1 : 0;
  }
  EXPECT_EQ(good + bad, r.analysis->Total());
}

INSTANTIATE_TEST_SUITE_P(PolicyZoo, AllPoliciesTest, ::testing::ValuesIn(AllPolicyNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// ---- run report ---------------------------------------------------------------

TEST(RunReport, ContainsSummaryAndPerModule) {
  const ExperimentResult r = RunExperiment(Quick());
  const JsonValue report = BuildRunReport(*r.analysis);
  EXPECT_EQ(report.At("summary").At("total").AsInt(),
            static_cast<std::int64_t>(r.analysis->Total()));
  EXPECT_NEAR(report.At("summary").At("drop_rate").AsDouble(), r.analysis->DropRate(), 1e-12);
  EXPECT_EQ(report.At("per_module").At("drop_share").AsArray().size(), 3u);
  EXPECT_EQ(report.At("per_module").At("mean_queue_delay_ms").AsArray().size(), 3u);
  EXPECT_TRUE(report.At("latency").At("sum_wait_ms").IsObject());
}

TEST(RunReport, SeriesOptional) {
  const ExperimentResult r = RunExperiment(Quick());
  ReportOptions options;
  options.include_series = false;
  const JsonValue report = BuildRunReport(*r.analysis, options);
  EXPECT_EQ(report.Find("series"), nullptr);
  options.include_series = true;
  const JsonValue with = BuildRunReport(*r.analysis, options);
  EXPECT_NE(with.Find("series"), nullptr);
  EXPECT_EQ(with.At("series").At("t_s").AsArray().size(),
            with.At("series").At("normalized_goodput").AsArray().size());
}

TEST(RunReport, JsonSerializable) {
  const ExperimentResult r = RunExperiment(Quick());
  const JsonValue report = BuildRunReport(*r.analysis);
  // Dump/parse round trip must preserve the document.
  EXPECT_TRUE(ParseJson(report.Dump()) == report);
}

// ---- failure injection -----------------------------------------------------------

TEST(FailureInjection, KilledWorkersDropTheirRequests) {
  ExperimentConfig c = Quick("naive");
  c.runtime.fixed_workers = {2, 2, 2};
  RuntimeOptions::FailureEvent failure;
  failure.at = SecToUs(20);
  failure.module_id = 1;
  failure.workers = 2;  // Kill the whole module.
  c.runtime.failures = {failure};
  const ExperimentResult r = RunExperiment(c);
  // Everything after the failure is dropped at module 1 (no capacity left,
  // no scaling) even though the policy itself never drops.
  std::size_t dropped_at_m1 = 0;
  for (const RequestPtr& req : r.analysis->requests()) {
    EXPECT_TRUE(req->Terminal());
    if (req->fate == RequestFate::kDropped) {
      EXPECT_EQ(req->drop_module, 1);
      ++dropped_at_m1;
    }
  }
  EXPECT_GT(dropped_at_m1, 100u);
}

TEST(FailureInjection, ScalingRestoresCapacity) {
  ExperimentConfig c = Quick("pard");
  c.runtime.enable_scaling = true;
  c.runtime.scaling_epoch = 2 * kUsPerSec;
  c.runtime.cold_start = 1 * kUsPerSec;
  RuntimeOptions::FailureEvent failure;
  failure.at = SecToUs(20);
  failure.module_id = 0;
  failure.workers = 1;
  c.runtime.failures = {failure};
  const ExperimentResult r = RunExperiment(c);
  // Requests sent well after the failure complete again.
  const RunAnalysis tail = r.analysis->Slice(SecToUs(40), SecToUs(60));
  EXPECT_GT(tail.NormalizedGoodput(), 0.5);
}

TEST(FailureInjection, OutOfRangeModuleThrows) {
  ExperimentConfig c = Quick();
  RuntimeOptions::FailureEvent failure;
  failure.at = SecToUs(1);
  failure.module_id = 99;
  c.runtime.failures = {failure};
  EXPECT_THROW(RunExperiment(c), CheckError);
}

}  // namespace
}  // namespace pard
