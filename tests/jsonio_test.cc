#include <gtest/gtest.h>

#include <string>

#include "jsonio/json.h"

namespace pard {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null").IsNull());
  EXPECT_TRUE(ParseJson("true").AsBool());
  EXPECT_FALSE(ParseJson("false").AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("3.5").AsDouble(), 3.5);
  EXPECT_EQ(ParseJson("-17").AsInt(), -17);
  EXPECT_EQ(ParseJson("\"hi\"").AsString(), "hi");
}

TEST(JsonParse, Exponents) {
  EXPECT_DOUBLE_EQ(ParseJson("1e3").AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseJson("2.5E-2").AsDouble(), 0.025);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e+1").AsDouble(), -15.0);
}

TEST(JsonParse, Arrays) {
  const JsonValue v = ParseJson("[1, 2, [3, 4], []]");
  ASSERT_TRUE(v.IsArray());
  ASSERT_EQ(v.AsArray().size(), 4u);
  EXPECT_EQ(v.AsArray()[2].AsArray()[1].AsInt(), 4);
  EXPECT_TRUE(v.AsArray()[3].AsArray().empty());
}

TEST(JsonParse, Objects) {
  const JsonValue v = ParseJson(R"({"a": 1, "b": {"c": [true]}})");
  EXPECT_EQ(v.At("a").AsInt(), 1);
  EXPECT_TRUE(v.At("b").At("c").AsArray()[0].AsBool());
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_THROW(v.At("missing"), JsonError);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue v = ParseJson(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.AsString(), "a\"b\\c\nd\teA");
}

TEST(JsonParse, UnicodeEscapeMultiByte) {
  // U+00E9 (é) encodes as two UTF-8 bytes.
  const JsonValue v = ParseJson(R"("é")");
  EXPECT_EQ(v.AsString(), "\xc3\xa9");
}

TEST(JsonParse, Whitespace) {
  const JsonValue v = ParseJson("  { \"k\" :\n[ 1 ,\t2 ] }  ");
  EXPECT_EQ(v.At("k").AsArray().size(), 2u);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(ParseJson(""), JsonError);
  EXPECT_THROW(ParseJson("{"), JsonError);
  EXPECT_THROW(ParseJson("[1,]"), JsonError);
  EXPECT_THROW(ParseJson("{\"a\":}"), JsonError);
  EXPECT_THROW(ParseJson("nul"), JsonError);
  EXPECT_THROW(ParseJson("1 2"), JsonError);  // Trailing content.
  EXPECT_THROW(ParseJson("\"unterminated"), JsonError);
  EXPECT_THROW(ParseJson("01x"), JsonError);
  EXPECT_THROW(ParseJson("1."), JsonError);
  EXPECT_THROW(ParseJson("--1"), JsonError);
  EXPECT_THROW(ParseJson(R"("\q")"), JsonError);
  EXPECT_THROW(ParseJson(R"("\u00g0")"), JsonError);
}

TEST(JsonParse, ErrorMessageIncludesOffset) {
  try {
    ParseJson("[1, x]");
    FAIL() << "expected throw";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(JsonTypeChecks, MismatchThrows) {
  const JsonValue v = ParseJson("42");
  EXPECT_THROW(v.AsString(), JsonError);
  EXPECT_THROW(v.AsArray(), JsonError);
  EXPECT_THROW(v.AsObject(), JsonError);
  EXPECT_THROW(v.AsBool(), JsonError);
  EXPECT_THROW(ParseJson("1.5").AsInt(), JsonError);
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string text = R"({"arr":[1,2.5,"x"],"flag":true,"nested":{"n":null}})";
  const JsonValue v = ParseJson(text);
  const JsonValue reparsed = ParseJson(v.Dump());
  EXPECT_TRUE(v == reparsed);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(JsonValue(7).Dump(), "7");
  EXPECT_EQ(JsonValue(-3).Dump(), "-3");
  EXPECT_EQ(JsonValue(2.5).Dump(), "2.5");
}

TEST(JsonDump, EscapesControlCharacters) {
  const std::string dumped = JsonValue(std::string("a\nb\"c")).Dump();
  EXPECT_EQ(dumped, R"("a\nb\"c")");
  EXPECT_TRUE(ParseJson(dumped).AsString() == "a\nb\"c");
}

TEST(JsonDump, PrettyPrintParsesBack) {
  JsonObject obj;
  obj["k"] = JsonArray{1, 2};
  obj["m"] = JsonObject{{"x", "y"}};
  const JsonValue v(std::move(obj));
  const std::string pretty = v.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(ParseJson(pretty) == v);
}

TEST(JsonDump, DeterministicKeyOrder) {
  JsonObject obj;
  obj["zebra"] = 1;
  obj["alpha"] = 2;
  const std::string dumped = JsonValue(std::move(obj)).Dump();
  EXPECT_LT(dumped.find("alpha"), dumped.find("zebra"));
}

// Property: dump/parse round trip preserves structure on random documents.
class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripTest, RandomDocumentRoundTrips) {
  // Deterministic pseudo-random document built from the seed.
  const int seed = GetParam();
  JsonArray arr;
  for (int i = 0; i < 20; ++i) {
    const int kind = (seed * 31 + i * 7) % 4;
    switch (kind) {
      case 0:
        arr.emplace_back(static_cast<std::int64_t>(seed * 1000 + i));
        break;
      case 1:
        arr.emplace_back(0.5 * i + seed);
        break;
      case 2:
        arr.emplace_back("s" + std::to_string(i));
        break;
      default:
        arr.emplace_back(JsonObject{{"i", i}, {"seed", seed}});
    }
  }
  const JsonValue v(std::move(arr));
  EXPECT_TRUE(ParseJson(v.Dump()) == v);
  EXPECT_TRUE(ParseJson(v.Dump(2)) == v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace pard
