// Dynamic-path DAG routing (§5.2) and request-path prediction (future work).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/naive_policy.h"
#include "core/latency_estimator.h"
#include "core/pard_policy.h"
#include "harness/experiment.h"
#include "pipeline/apps.h"
#include "runtime/pipeline_runtime.h"
#include "trace/arrival_generator.h"

namespace pard {
namespace {

ExperimentConfig DynConfig(const std::string& policy) {
  ExperimentConfig c;
  c.app = "da";
  c.trace = "tweet";
  c.policy = policy;
  c.duration_s = 120.0;
  c.base_rate = 240.0;
  c.seed = 13;
  c.runtime.dynamic_paths = true;
  return c;
}

TEST(DynamicPath, RequestsTakeExactlyOneBranch) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {2, 2, 2, 2, 2};
  options.dynamic_paths = true;
  PipelineRuntime rt(MakeDagLiveVideo(), options, &policy, 50.0);
  rt.RunTrace(GenerateUniformArrivals(50.0, 0, SecToUs(5)));
  int pose_only = 0;
  int face_only = 0;
  for (const RequestPtr& r : rt.requests()) {
    ASSERT_TRUE(r->HasDynamicPath());
    const bool pose = r->hops[1].executed;
    const bool face = r->hops[2].executed;
    EXPECT_NE(pose, face) << "exactly one branch must execute";
    pose_only += pose && !face ? 1 : 0;
    face_only += face && !pose ? 1 : 0;
    // The merge and sink still execute for every completed request.
    if (r->Good()) {
      EXPECT_TRUE(r->hops[3].executed);
      EXPECT_TRUE(r->hops[4].executed);
    }
  }
  // Both branches are exercised across the population (p = 0.5 each).
  EXPECT_GT(pose_only, 0);
  EXPECT_GT(face_only, 0);
}

TEST(DynamicPath, MergeWaitsForSingleExpectedArrival) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1, 1, 1, 1, 1};
  options.dynamic_paths = true;
  PipelineRuntime rt(MakeDagLiveVideo(), options, &policy, 10.0);
  rt.RunTrace({0});
  const RequestPtr& r = rt.requests()[0];
  EXPECT_TRUE(r->Good());
  const int chosen = r->branch_choice[0];
  EXPECT_TRUE(chosen == 1 || chosen == 2);
  EXPECT_EQ(r->expected_arrivals[3], 1);  // Merge expects one delivery.
  EXPECT_EQ(r->merge_arrivals[3], 1);
}

TEST(DynamicPath, StaticPipelinesUnaffected) {
  NaivePolicy policy;
  RuntimeOptions options;
  options.fixed_workers = {1, 1, 1, 1, 1};
  PipelineRuntime rt(MakeDagLiveVideo(), options, &policy, 10.0);
  rt.RunTrace({0});
  const RequestPtr& r = rt.requests()[0];
  EXPECT_FALSE(r->HasDynamicPath());
  EXPECT_TRUE(r->hops[1].executed);
  EXPECT_TRUE(r->hops[2].executed);
}

TEST(DynamicPath, EstimatorFiltersInconsistentPaths) {
  const PipelineSpec da = MakeDagLiveVideo();
  StateBoard board(5);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = (i == 1) ? 50 * kUsPerMs : 5 * kUsPerMs;  // Pose slow.
    board.Publish(std::move(s));
  }
  EstimatorOptions options;
  options.include_wait = false;
  options.include_queue = false;
  LatencyEstimator est(&da, &board, options, Rng(2));

  Request via_face;
  via_face.branch_choice.assign(5, -1);
  via_face.branch_choice[0] = 2;  // Face branch chosen at the fork.
  via_face.expected_arrivals.assign(5, 1);
  // Static estimate from module 0 takes the slow pose path: 50+5+5 = 60 ms.
  EXPECT_EQ(est.EstimateSubsequent(0), 60 * kUsPerMs);
  // Path-aware estimate follows the chosen face branch: 5+5+5 = 15 ms.
  EXPECT_EQ(est.EstimateSubsequentForRequest(0, via_face), 15 * kUsPerMs);

  Request via_pose;
  via_pose.branch_choice.assign(5, -1);
  via_pose.branch_choice[0] = 1;
  via_pose.expected_arrivals.assign(5, 1);
  EXPECT_EQ(est.EstimateSubsequentForRequest(0, via_pose), 60 * kUsPerMs);

  // Static requests fall back to the conservative maximum.
  Request static_req;
  EXPECT_EQ(est.EstimateSubsequentForRequest(0, static_req), 60 * kUsPerMs);
}

TEST(DynamicPath, ConservationHoldsUnderLoad) {
  const auto r = RunExperiment(DynConfig("pard"));
  std::size_t terminal = 0;
  for (const RequestPtr& req : r.analysis->requests()) {
    terminal += req->Terminal() ? 1 : 0;
  }
  EXPECT_EQ(terminal, r.analysis->Total());
  EXPECT_GT(r.analysis->Total(), 1000u);
}

TEST(DynamicPath, PredictionDoesNotHurtDropRate) {
  // §5.2: dynamic paths degrade PARD's estimation; path prediction recovers
  // it. At minimum prediction must not do worse.
  const double plain = RunExperiment(DynConfig("pard")).analysis->DropRate();
  const double predicted = RunExperiment(DynConfig("pard-path")).analysis->DropRate();
  EXPECT_LE(predicted, plain + 0.01);
}

TEST(DynamicPath, PardPathFactoryName) {
  const auto policy = MakePolicy("pard-path");
  EXPECT_EQ(policy->Name(), "pard-path");
}

}  // namespace
}  // namespace pard
