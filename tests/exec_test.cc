// Tests for the parallel-execution subsystem: thread pool semantics
// (coverage, shutdown, exception propagation) and trace sharding
// (partitioning, warm-up overlap, record merging).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "baselines/policy_factory.h"
#include "common/check.h"
#include "common/time_types.h"
#include "exec/sharded_trace.h"
#include "exec/sweep_runner.h"
#include "exec/thread_pool.h"
#include "pipeline/apps.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/request.h"

namespace pard {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool pool(4);
  ParallelFor(pool, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ConvenienceOverloadRunsInlineWithOneJob) {
  // jobs == 1 must execute on the calling thread, in order.
  std::vector<std::size_t> order;
  ParallelFor(1, 5, [&order](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DestructorDrainsSubmittedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything already queued.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&executed, i] {
      executed.fetch_add(1);
      if (i % 5 == 0) {
        throw std::runtime_error("task failed");
      }
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // A failing task never cancels its siblings.
  EXPECT_EQ(executed.load(), 20);
  // The error is consumed: a second Wait() is clean and the pool reusable.
  pool.Submit([&executed] { executed.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(executed.load(), 21);
}

TEST(ThreadPool, ParallelForPropagatesExceptionsAfterDraining) {
  std::vector<std::atomic<int>> hits(50);
  EXPECT_THROW(ParallelFor(4, hits.size(),
                           [&hits](std::size_t i) {
                             hits[i].fetch_add(1);
                             if (i == 7) {
                               throw std::runtime_error("boom");
                             }
                           }),
               std::runtime_error);
  int total = 0;
  for (auto& h : hits) {
    total += h.load();
  }
  EXPECT_EQ(total, 50);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(ThreadPool::ResolveJobs(1), 1);
  EXPECT_EQ(ThreadPool::ResolveJobs(8), 8);
  EXPECT_GE(ThreadPool::ResolveJobs(0), 1);
  EXPECT_GE(ThreadPool::ResolveJobs(-3), 1);
}

TEST(TaskSeedTest, DependsOnIndexAndBase) {
  EXPECT_NE(TaskSeed(7, 0), TaskSeed(7, 1));
  EXPECT_NE(TaskSeed(7, 0), TaskSeed(8, 0));
  EXPECT_EQ(TaskSeed(7, 3), TaskSeed(7, 3));
}

std::vector<SimTime> EvenArrivals(std::size_t count, Duration step) {
  std::vector<SimTime> arrivals(count);
  for (std::size_t i = 0; i < count; ++i) {
    arrivals[i] = static_cast<SimTime>(i) * step;
  }
  return arrivals;
}

RequestPtr MakeRequestAt(SimTime sent) {
  auto req = std::make_shared<Request>();
  req->sent = sent;
  return req;
}

TEST(ShardedTrace, SingleShardHoldsWholeStream) {
  const auto arrivals = EvenArrivals(100, kUsPerSec);
  ShardOptions options;
  options.shards = 1;
  const ShardedTrace sharded(arrivals, 0, 100 * kUsPerSec, options);
  ASSERT_EQ(sharded.size(), 1u);
  EXPECT_EQ(sharded.shards()[0].arrivals, arrivals);
  EXPECT_EQ(sharded.shards()[0].warmup_count, 0u);
}

TEST(ShardedTrace, CoreIntervalsPartitionEveryArrivalExactlyOnce) {
  const auto arrivals = EvenArrivals(1000, kUsPerSec / 2);  // 500 s at 2 req/s.
  const SimTime end = 500 * kUsPerSec;
  ShardOptions options;
  options.shards = 7;
  options.warmup = 10 * kUsPerSec;
  const ShardedTrace sharded(arrivals, 0, end, options);
  ASSERT_EQ(sharded.size(), 7u);

  std::size_t core_total = 0;
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& shard = sharded.shards()[i];
    core_total += shard.arrivals.size() - shard.warmup_count;
    // Shards tile the span: each begins where the previous ended.
    if (i > 0) {
      EXPECT_EQ(shard.begin, sharded.shards()[i - 1].end);
      EXPECT_GT(shard.warmup_count, 0u);
      // Warm-up entries precede the core interval; core entries lie in it.
      EXPECT_LT(shard.arrivals[shard.warmup_count - 1], shard.begin);
    }
    EXPECT_GE(shard.arrivals[shard.warmup_count], shard.begin);
    EXPECT_LT(shard.arrivals.back(), shard.end);
  }
  EXPECT_EQ(sharded.shards().front().begin, 0);
  EXPECT_EQ(sharded.shards().back().end, end);
  EXPECT_EQ(core_total, arrivals.size());
}

TEST(ShardedTrace, ArrivalExactlyOnTraceEndStaysInLastShard) {
  // SecToUs rounding can place an arrival exactly on the trace end; the last
  // shard's closed right edge must keep it (no request silently lost vs the
  // unsharded run).
  auto arrivals = EvenArrivals(20, kUsPerSec);
  const SimTime end = 19 * kUsPerSec;  // Last arrival == end.
  ShardOptions options;
  options.shards = 4;
  const ShardedTrace sharded(arrivals, 0, end, options);

  std::size_t core_total = 0;
  std::vector<std::vector<RequestPtr>> records(sharded.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& shard = sharded.shards()[i];
    core_total += shard.arrivals.size() - shard.warmup_count;
    for (SimTime t : shard.arrivals) {
      records[i].push_back(MakeRequestAt(t));
    }
  }
  EXPECT_EQ(core_total, arrivals.size());
  const std::vector<RequestPtr> merged = MergeShardRecords(sharded, std::move(records));
  ASSERT_EQ(merged.size(), arrivals.size());
  EXPECT_EQ(merged.back()->sent, end);
}

TEST(ShardedTrace, WarmupClampsToStreamBegin) {
  const auto arrivals = EvenArrivals(40, kUsPerSec);
  ShardOptions options;
  options.shards = 2;
  options.warmup = 3600 * kUsPerSec;  // Far longer than the whole trace.
  const ShardedTrace sharded(arrivals, 0, 40 * kUsPerSec, options);
  // Shard 1's warm-up covers all of shard 0 but never underflows time zero.
  EXPECT_EQ(sharded.shards()[1].arrivals.size(), arrivals.size());
  EXPECT_EQ(sharded.shards()[1].warmup_count, sharded.shards()[0].arrivals.size());
}

TEST(ShardedTrace, MergeDropsWarmupReplaysAndKeepsOrder) {
  const auto arrivals = EvenArrivals(10, kUsPerSec);  // 0..9 s.
  ShardOptions options;
  options.shards = 2;
  options.warmup = 2 * kUsPerSec;
  const ShardedTrace sharded(arrivals, 0, 10 * kUsPerSec, options);

  // Simulate what two shard runtimes would leave behind: shard 1 re-ran the
  // 3 s and 4 s arrivals as warm-up.
  std::vector<std::vector<RequestPtr>> records(2);
  for (SimTime t : sharded.shards()[0].arrivals) {
    records[0].push_back(MakeRequestAt(t));
  }
  for (SimTime t : sharded.shards()[1].arrivals) {
    records[1].push_back(MakeRequestAt(t));
  }
  ASSERT_EQ(sharded.shards()[1].warmup_count, 2u);

  const std::vector<RequestPtr> merged = MergeShardRecords(sharded, std::move(records));
  ASSERT_EQ(merged.size(), arrivals.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i]->sent, arrivals[i]);
  }
}

TEST(ShardedTrace, EmptyShardIsKeptAndMergesCleanly) {
  // All arrivals cluster in the first quarter of the span: later shards have
  // zero core arrivals (and possibly zero arrivals at all) but must still
  // exist, keep the tiling invariant, and merge without losing anything.
  std::vector<SimTime> arrivals;
  for (int i = 0; i < 50; ++i) {
    arrivals.push_back(i * (kUsPerSec / 2));  // All within [0, 25 s).
  }
  const SimTime end = 100 * kUsPerSec;
  ShardOptions options;
  options.shards = 4;
  options.warmup = 5 * kUsPerSec;
  const ShardedTrace sharded(arrivals, 0, end, options);
  ASSERT_EQ(sharded.size(), 4u);

  std::size_t core_total = 0;
  std::vector<std::vector<RequestPtr>> records(sharded.size());
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& shard = sharded.shards()[i];
    core_total += shard.arrivals.size() - shard.warmup_count;
    for (SimTime t : shard.arrivals) {
      records[i].push_back(MakeRequestAt(t));
    }
  }
  // Shards 2 and 3 saw nothing, not even warm-up.
  EXPECT_TRUE(sharded.shards()[2].arrivals.empty());
  EXPECT_TRUE(sharded.shards()[3].arrivals.empty());
  EXPECT_EQ(core_total, arrivals.size());
  const std::vector<RequestPtr> merged = MergeShardRecords(sharded, std::move(records));
  ASSERT_EQ(merged.size(), arrivals.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i]->sent, arrivals[i]);
  }
}

TEST(ShardedTrace, WarmupLongerThanShardWidthSpansMultipleShards) {
  // 10 shards of 4 s each, 10 s warm-up: every shard's warm-up reaches back
  // across 2+ predecessor shards (clamped at the stream begin). Core
  // accounting must stay exact regardless.
  const auto arrivals = EvenArrivals(80, kUsPerSec / 2);  // 40 s at 2 req/s.
  const SimTime end = 40 * kUsPerSec;
  ShardOptions options;
  options.shards = 10;
  options.warmup = 10 * kUsPerSec;
  const ShardedTrace sharded(arrivals, 0, end, options);
  ASSERT_EQ(sharded.size(), 10u);

  std::size_t core_total = 0;
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& shard = sharded.shards()[i];
    core_total += shard.arrivals.size() - shard.warmup_count;
    const SimTime warmup_begin = std::max<SimTime>(0, shard.begin - options.warmup);
    if (!shard.arrivals.empty()) {
      EXPECT_GE(shard.arrivals.front(), warmup_begin);
    }
    if (i >= 3) {
      // Far enough in that the full 10 s (2.5 shard widths) is available:
      // warm-up replays must cover more than one predecessor shard's span.
      EXPECT_EQ(shard.arrivals.front(), shard.begin - options.warmup);
      EXPECT_GT(shard.warmup_count,
                sharded.shards()[i - 1].arrivals.size() -
                    sharded.shards()[i - 1].warmup_count);
    }
  }
  EXPECT_EQ(core_total, arrivals.size());
}

TEST(ShardedTrace, SingleShardRunMatchesUnshardedBitForBit) {
  // The degenerate shards == 1 partition must reproduce the unsharded run
  // exactly: same arrivals in, one runtime, no warm-up — so every record
  // (fate, timestamps, per-hop decomposition) is bit-identical.
  const std::vector<SimTime> arrivals = EvenArrivals(200, kUsPerSec / 25);  // 8 s at 25 req/s.
  const SimTime end = 8 * kUsPerSec;
  ShardOptions options;
  options.shards = 1;
  const ShardedTrace sharded(arrivals, 0, end, options);
  ASSERT_EQ(sharded.size(), 1u);
  EXPECT_EQ(sharded.shards()[0].warmup_count, 0u);
  EXPECT_EQ(sharded.shards()[0].arrivals, arrivals);

  const PipelineSpec spec = MakeApp("tm");
  RuntimeOptions runtime;
  runtime.seed = 99;
  auto run = [&](const std::vector<SimTime>& stream) {
    std::unique_ptr<DropPolicy> policy = MakePolicy("pard", PolicyParams{});
    PipelineRuntime pipeline(spec, runtime, policy.get(), 25.0);
    pipeline.RunTrace(stream);
    return pipeline.requests();
  };
  const std::vector<RequestPtr> direct = run(arrivals);
  std::vector<std::vector<RequestPtr>> shard_records{run(sharded.shards()[0].arrivals)};
  const std::vector<RequestPtr> merged = MergeShardRecords(sharded, std::move(shard_records));

  ASSERT_EQ(merged.size(), direct.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const Request& a = *direct[i];
    const Request& b = *merged[i];
    EXPECT_EQ(a.sent, b.sent);
    EXPECT_EQ(a.fate, b.fate);
    EXPECT_EQ(a.finish, b.finish);
    EXPECT_EQ(a.drop_module, b.drop_module);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].arrive, b.hops[h].arrive);
      EXPECT_EQ(a.hops[h].batch_entry, b.hops[h].batch_entry);
      EXPECT_EQ(a.hops[h].exec_start, b.hops[h].exec_start);
      EXPECT_EQ(a.hops[h].exec_end, b.hops[h].exec_end);
      EXPECT_EQ(a.hops[h].gpu_time, b.hops[h].gpu_time);
    }
  }
}

TEST(ShardedTrace, MergeRejectsMismatchedRecordSets) {
  const auto arrivals = EvenArrivals(10, kUsPerSec);
  ShardOptions options;
  options.shards = 3;
  const ShardedTrace sharded(arrivals, 0, 10 * kUsPerSec, options);
  std::vector<std::vector<RequestPtr>> records(2);  // One shard short.
  EXPECT_THROW(MergeShardRecords(sharded, std::move(records)), CheckError);
}

}  // namespace
}  // namespace pard
