#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "stats/minmax_heap.h"

namespace pard {
namespace {

TEST(MinMaxHeap, EmptyBehaviour) {
  MinMaxHeap<int> h;
  EXPECT_TRUE(h.Empty());
  EXPECT_EQ(h.Size(), 0u);
  EXPECT_THROW(h.Min(), CheckError);
  EXPECT_THROW(h.Max(), CheckError);
  EXPECT_THROW(h.PopMin(), CheckError);
}

TEST(MinMaxHeap, SingleElement) {
  MinMaxHeap<int> h;
  h.Push(42);
  EXPECT_EQ(h.Min(), 42);
  EXPECT_EQ(h.Max(), 42);
  EXPECT_EQ(h.PopMax(), 42);
  EXPECT_TRUE(h.Empty());
}

TEST(MinMaxHeap, TwoElements) {
  MinMaxHeap<int> h;
  h.Push(5);
  h.Push(3);
  EXPECT_EQ(h.Min(), 3);
  EXPECT_EQ(h.Max(), 5);
}

TEST(MinMaxHeap, MinAndMaxTrackAfterPushes) {
  MinMaxHeap<int> h;
  for (int v : {7, 2, 9, 4, 11, 1, 8}) {
    h.Push(v);
    EXPECT_TRUE(h.Validate());
  }
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 11);
}

TEST(MinMaxHeap, PopMinYieldsSortedAscending) {
  MinMaxHeap<int> h;
  for (int v : {5, 1, 4, 2, 3, 0, 9, 7, 8, 6}) {
    h.Push(v);
  }
  for (int expected = 0; expected < 10; ++expected) {
    EXPECT_EQ(h.PopMin(), expected);
    EXPECT_TRUE(h.Validate());
  }
}

TEST(MinMaxHeap, PopMaxYieldsSortedDescending) {
  MinMaxHeap<int> h;
  for (int v : {5, 1, 4, 2, 3, 0, 9, 7, 8, 6}) {
    h.Push(v);
  }
  for (int expected = 9; expected >= 0; --expected) {
    EXPECT_EQ(h.PopMax(), expected);
    EXPECT_TRUE(h.Validate());
  }
}

TEST(MinMaxHeap, DuplicatesSupported) {
  MinMaxHeap<int> h;
  for (int i = 0; i < 20; ++i) {
    h.Push(7);
  }
  h.Push(3);
  h.Push(9);
  EXPECT_EQ(h.PopMin(), 3);
  EXPECT_EQ(h.PopMax(), 9);
  EXPECT_EQ(h.PopMin(), 7);
  EXPECT_EQ(h.PopMax(), 7);
  EXPECT_TRUE(h.Validate());
}

TEST(MinMaxHeap, ClearEmpties) {
  MinMaxHeap<int> h;
  h.Push(1);
  h.Clear();
  EXPECT_TRUE(h.Empty());
}

TEST(MinMaxHeap, CustomComparator) {
  // Reverse comparator: Min() yields the largest value.
  MinMaxHeap<int, std::greater<int>> h(std::greater<int>{});
  for (int v : {3, 1, 4}) {
    h.Push(v);
  }
  EXPECT_EQ(h.Min(), 4);
  EXPECT_EQ(h.Max(), 1);
}

// Property test: random interleavings of push/pop-min/pop-max agree with a
// reference multiset at every step, and the structural invariant holds.
class MinMaxHeapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinMaxHeapPropertyTest, AgreesWithReferenceMultiset) {
  Rng rng(GetParam());
  MinMaxHeap<int> h;
  std::multiset<int> reference;
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.55 || reference.empty()) {
      const int v = static_cast<int>(rng.UniformInt(-1000, 1000));
      h.Push(v);
      reference.insert(v);
    } else if (action < 0.8) {
      EXPECT_EQ(h.PopMin(), *reference.begin());
      reference.erase(reference.begin());
    } else {
      const auto last = std::prev(reference.end());
      EXPECT_EQ(h.PopMax(), *last);
      reference.erase(last);
    }
    EXPECT_EQ(h.Size(), reference.size());
    if (!reference.empty()) {
      EXPECT_EQ(h.Min(), *reference.begin());
      EXPECT_EQ(h.Max(), *std::prev(reference.end()));
    }
    if (step % 250 == 0) {
      EXPECT_TRUE(h.Validate());
    }
  }
  EXPECT_TRUE(h.Validate());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MinMaxHeapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pard
