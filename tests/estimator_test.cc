#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/irwin_hall.h"
#include "core/latency_estimator.h"
#include "exec/thread_pool.h"
#include "pipeline/apps.h"
#include "runtime/state_board.h"

namespace pard {
namespace {

// ---- Irwin–Hall ---------------------------------------------------------------

TEST(IrwinHall, CdfOfUniform) {
  // n=1 is U[0,1].
  EXPECT_NEAR(IrwinHallCdf(1, 0.3), 0.3, 1e-12);
  EXPECT_NEAR(IrwinHallCdf(1, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(IrwinHallCdf(1, -1.0), 0.0, 1e-12);
}

TEST(IrwinHall, CdfSymmetryAroundMean) {
  // The Irwin-Hall distribution is symmetric about n/2.
  for (int n : {2, 3, 4, 5}) {
    for (double x = 0.1; x < n / 2.0; x += 0.2) {
      EXPECT_NEAR(IrwinHallCdf(n, x), 1.0 - IrwinHallCdf(n, n - x), 1e-9) << n << " " << x;
    }
  }
}

TEST(IrwinHall, QuantileInvertsCdf) {
  for (int n : {1, 2, 3, 4, 6}) {
    for (double q : {0.05, 0.1, 0.25, 0.5, 0.9}) {
      const double x = IrwinHallQuantile(n, q);
      EXPECT_NEAR(IrwinHallCdf(n, x), q, 1e-6) << n << " " << q;
    }
  }
}

// The paper's worked example (§4.2): lambda = 0.1 in a 4-module pipeline with
// equal durations d gives w_1 = 0.31 * sum d (4 modules), w_2 = 0.28 (3),
// w_3 = 0.22 (2), w_4 = 0.10 (1), expressed as fractions of the respective
// sums.
TEST(IrwinHall, PaperWorkedExample) {
  EXPECT_NEAR(IrwinHallQuantile(4, 0.1) / 4.0, 0.31, 0.005);
  EXPECT_NEAR(IrwinHallQuantile(3, 0.1) / 3.0, 0.28, 0.005);
  EXPECT_NEAR(IrwinHallQuantile(2, 0.1) / 2.0, 0.22, 0.005);
  EXPECT_NEAR(IrwinHallQuantile(1, 0.1) / 1.0, 0.10, 0.005);
}

// ---- LatencyEstimator -----------------------------------------------------------

// Board with uniform batch duration d and no samples (uniform fallback).
StateBoard UniformBoard(int n, Duration d, double q_delay = 0.0) {
  StateBoard board(n);
  for (int i = 0; i < n; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    s.avg_queue_delay = q_delay;
    s.batch_size = 4;
    board.Publish(std::move(s));
  }
  return board;
}

EstimatorOptions HighResOptions(double lambda = 0.1) {
  EstimatorOptions o;
  o.lambda = lambda;
  o.mc_samples = 20000;  // Tight Monte-Carlo for numeric assertions.
  return o;
}

TEST(LatencyEstimator, MatchesIrwinHallOnUniformFallback) {
  const PipelineSpec lv = MakeLiveVideo();  // 5-module chain.
  const Duration d = 10 * kUsPerMs;
  StateBoard board = UniformBoard(5, d);
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(1));
  // Path of 4 downstream modules from module 0.
  const Duration w = est.AggregateWaitQuantile({1, 2, 3, 4}, 0.1);
  const double expected = IrwinHallQuantile(4, 0.1) * static_cast<double>(d);
  EXPECT_NEAR(static_cast<double>(w), expected, expected * 0.06);
}

TEST(LatencyEstimator, PaperQuantileTableAcrossPositions) {
  const PipelineSpec lv = MakeLiveVideo();
  const Duration d = 10 * kUsPerMs;
  StateBoard board = UniformBoard(5, d);
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(2));
  const struct {
    std::vector<int> path;
    double fraction;  // Of sum d over the path.
  } cases[] = {
      {{1, 2, 3, 4}, 0.31},
      {{2, 3, 4}, 0.28},
      {{3, 4}, 0.22},
      {{4}, 0.10},
  };
  for (const auto& c : cases) {
    const Duration w = est.AggregateWaitQuantile(c.path, 0.1);
    const double sum_d = static_cast<double>(d) * static_cast<double>(c.path.size());
    EXPECT_NEAR(static_cast<double>(w) / sum_d, c.fraction, 0.02);
  }
}

TEST(LatencyEstimator, LambdaExtremes) {
  const PipelineSpec lv = MakeLiveVideo();
  const Duration d = 10 * kUsPerMs;
  StateBoard board = UniformBoard(5, d);
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(3));
  const std::vector<int> path = {1, 2, 3, 4};
  // lambda = 0 -> near 0; lambda = 1 -> near sum d.
  EXPECT_LT(est.AggregateWaitQuantile(path, 0.0), 4 * d / 10);
  EXPECT_GT(est.AggregateWaitQuantile(path, 1.0), 4 * d * 9 / 10);
}

TEST(LatencyEstimator, WaitQuantileMonotoneInLambda) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = UniformBoard(5, 8 * kUsPerMs);
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(4));
  Duration prev = 0;
  for (double lambda = 0.0; lambda <= 1.0; lambda += 0.1) {
    const Duration w = est.AggregateWaitQuantile({1, 2, 3, 4}, lambda);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

TEST(LatencyEstimator, UsesObservedSamplesWhenAvailable) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = UniformBoard(5, 10 * kUsPerMs);
  // Module 4's waits are observed to be exactly 1 ms.
  ModuleState s;
  s.module_id = 4;
  s.batch_duration = 10 * kUsPerMs;
  s.wait_samples.assign(100, 1000.0);
  board.Publish(std::move(s));
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(5));
  const Duration w = est.AggregateWaitQuantile({4}, 0.5);
  EXPECT_EQ(w, 1000);
}

TEST(LatencyEstimator, SubsequentSumsQueueExecAndWait) {
  const PipelineSpec lv = MakeLiveVideo();
  const Duration d = 10 * kUsPerMs;
  const double q = 3.0 * kUsPerMs;
  StateBoard board = UniformBoard(5, d, q);
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(6));
  const Duration sub = est.EstimateSubsequent(0);
  // 4 modules downstream: 4q + 4d + w(4 uniforms, lambda=.1).
  const double expected = 4 * q + 4.0 * static_cast<double>(d) +
                          IrwinHallQuantile(4, 0.1) * static_cast<double>(d);
  EXPECT_NEAR(static_cast<double>(sub), expected, expected * 0.05);
  // Sink has nothing downstream.
  EXPECT_EQ(est.EstimateSubsequent(4), 0);
}

TEST(LatencyEstimator, AblationKnobsChangeComponents) {
  const PipelineSpec lv = MakeLiveVideo();
  const Duration d = 10 * kUsPerMs;
  StateBoard board = UniformBoard(5, d, 3.0 * kUsPerMs);

  EstimatorOptions sf = HighResOptions();
  sf.include_queue = false;
  sf.include_wait = false;
  LatencyEstimator est_sf(&lv, &board, sf, Rng(7));
  EXPECT_EQ(est_sf.EstimateSubsequent(0), 4 * d);  // sum d only (PARD-sf).

  EstimatorOptions lower = HighResOptions();
  lower.wait_mode = EstimatorOptions::WaitMode::kLower;
  LatencyEstimator est_lower(&lv, &board, lower, Rng(8));
  EstimatorOptions upper = HighResOptions();
  upper.wait_mode = EstimatorOptions::WaitMode::kUpper;
  LatencyEstimator est_upper(&lv, &board, upper, Rng(9));
  // lower < sweet spot < upper, and upper - lower = sum d exactly.
  LatencyEstimator est(&lv, &board, HighResOptions(), Rng(10));
  EXPECT_LT(est_lower.EstimateSubsequent(0), est.EstimateSubsequent(0));
  EXPECT_LT(est.EstimateSubsequent(0), est_upper.EstimateSubsequent(0));
  EXPECT_EQ(est_upper.EstimateSubsequent(0) - est_lower.EstimateSubsequent(0), 4 * d);
}

TEST(LatencyEstimator, DagTakesMaxOverPaths) {
  const PipelineSpec da = MakeDagLiveVideo();
  StateBoard board(5);
  // pose branch (module 1) is slow; face branch (module 2) fast.
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = (i == 1) ? 50 * kUsPerMs : 5 * kUsPerMs;
    board.Publish(std::move(s));
  }
  EstimatorOptions options = HighResOptions();
  options.include_wait = false;  // Deterministic comparison.
  LatencyEstimator est(&da, &board, options, Rng(11));
  // From module 0: slow path d = 50+5+5 = 60ms; fast path 5+5+5 = 15ms.
  EXPECT_EQ(est.EstimateSubsequent(0), 60 * kUsPerMs);
}

TEST(LatencyEstimator, WaitQuantileMemoizedWithinEpoch) {
  // Warm-epoch contract (ISSUE 3): repeat AggregateWaitQuantile calls between
  // board publishes must be cache reads — same value, and no Monte-Carlo RNG
  // draws. The second estimator runs the same sequence minus the repeat
  // calls; if the repeats drew from the RNG, the later distributions would
  // diverge.
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = UniformBoard(5, 10 * kUsPerMs);
  LatencyEstimator with_repeats(&lv, &board, HighResOptions(), Rng(21));
  LatencyEstimator without_repeats(&lv, &board, HighResOptions(), Rng(21));

  const Duration first = with_repeats.AggregateWaitQuantile({1, 2, 3, 4}, 0.1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(with_repeats.AggregateWaitQuantile({1, 2, 3, 4}, 0.1), first);
  }
  EXPECT_EQ(without_repeats.AggregateWaitQuantile({1, 2, 3, 4}, 0.1), first);

  // Both estimators' RNGs must now be in the same state.
  const EmpiricalDistribution a = with_repeats.AggregateWaitDistribution({2, 3, 4});
  const EmpiricalDistribution b = without_repeats.AggregateWaitDistribution({2, 3, 4});
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << q;
  }
  EXPECT_EQ(a.Mean(), b.Mean());
}

TEST(LatencyEstimator, WaitQuantileRecomputesOnEpochAdvance) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = UniformBoard(5, 10 * kUsPerMs);
  EstimatorOptions options = HighResOptions();
  LatencyEstimator est(&lv, &board, options, Rng(22));
  const Duration before = est.AggregateWaitQuantile({4}, 0.5);
  // Pin module 4's waits to exactly 2 ms and publish: the memo must refresh.
  ModuleState s;
  s.module_id = 4;
  s.batch_duration = 10 * kUsPerMs;
  s.wait_samples.assign(100, 2000.0);
  board.Publish(std::move(s));
  const Duration after = est.AggregateWaitQuantile({4}, 0.5);
  EXPECT_EQ(after, 2000);
  EXPECT_NE(after, before);
}

TEST(LatencyEstimator, CacheInvalidatesOnPublish) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board = UniformBoard(5, 10 * kUsPerMs);
  EstimatorOptions options = HighResOptions();
  options.include_wait = false;
  LatencyEstimator est(&lv, &board, options, Rng(12));
  const Duration before = est.EstimateSubsequent(0);
  // Same board version: cached value returned.
  EXPECT_EQ(est.EstimateSubsequent(0), before);
  // Bump module 4's duration: the estimate must change after publish.
  ModuleState s;
  s.module_id = 4;
  s.batch_duration = 100 * kUsPerMs;
  board.Publish(std::move(s));
  EXPECT_EQ(est.EstimateSubsequent(0), before + 90 * kUsPerMs);
}

// Parameterized sweep: the sweet spot moves toward sum d / 2 as the number of
// cascaded downstream modules grows (the central-limit effect of Fig. 6).
class SweetSpotConcentrationTest : public ::testing::TestWithParam<int> {};

TEST_P(SweetSpotConcentrationTest, FractionGrowsWithCascadeDepth) {
  const int depth = GetParam();
  // Build a chain pipeline of depth+1 modules.
  std::vector<ModuleSpec> modules;
  for (int i = 0; i <= depth; ++i) {
    ModuleSpec m;
    m.id = i;
    m.model = "eye_tracking";
    if (i > 0) {
      m.pres.push_back(i - 1);
    }
    if (i < depth) {
      m.subs.push_back(i + 1);
    }
    modules.push_back(std::move(m));
  }
  const PipelineSpec spec("deep", MsToUs(1000), std::move(modules));
  StateBoard board = UniformBoard(depth + 1, 10 * kUsPerMs);
  LatencyEstimator est(&spec, &board, HighResOptions(), Rng(13));
  std::vector<int> path;
  for (int i = 1; i <= depth; ++i) {
    path.push_back(i);
  }
  const double fraction =
      static_cast<double>(est.AggregateWaitQuantile(path, 0.1)) /
      (static_cast<double>(depth) * 10.0 * kUsPerMs);
  const double analytic = IrwinHallQuantile(depth, 0.1) / depth;
  EXPECT_NEAR(fraction, analytic, 0.03);
  if (depth >= 2) {
    // Deeper cascades concentrate toward 1/2.
    EXPECT_GT(fraction, IrwinHallQuantile(depth - 1, 0.1) / (depth - 1) - 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, SweetSpotConcentrationTest, ::testing::Values(1, 2, 3, 4, 6, 8));

// Chain pipeline of depth+1 modules (module 0 -> ... -> depth).
PipelineSpec MakeChainSpec(int depth) {
  std::vector<ModuleSpec> modules;
  for (int i = 0; i <= depth; ++i) {
    ModuleSpec m;
    m.id = i;
    m.model = "eye_tracking";
    if (i > 0) {
      m.pres.push_back(i - 1);
    }
    if (i < depth) {
      m.subs.push_back(i + 1);
    }
    modules.push_back(std::move(m));
  }
  return PipelineSpec("deep", MsToUs(1000), std::move(modules));
}

// Board mixing both wait-sample regimes: even modules carry an observed
// reservoir (sampled path), odd modules are empty (uniform fallback path).
StateBoard MixedBoard(int n, Duration d, std::uint64_t seed) {
  StateBoard board(n);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    s.batch_size = 4;
    s.avg_queue_delay = 1500.0;
    if (i % 2 == 0) {
      for (int j = 0; j < 257; ++j) {
        s.wait_samples.push_back(rng.Uniform(0.0, static_cast<double>(d)));
      }
      std::sort(s.wait_samples.begin(), s.wait_samples.end());
    }
    board.Publish(std::move(s));
  }
  return board;
}

// The vectorized sweet-spot kernel (batched draws + nth_element selection,
// ISSUE 10) must be bit-identical to the scalar reference — the preserved
// AggregateWaitDistribution + EmpiricalDistribution::Quantile pipeline — for
// every (path depth, lambda, mc_samples) cell, including the degenerate
// single-sample and interpolation-heavy cases. Both estimators consume their
// shared streams at the same rate (path.size() * mc draws per call), so each
// cell compares draws from identical RNG states.
TEST(LatencyEstimator, VectorizedQuantileParityGrid) {
  const double lambdas[] = {0.0, 0.05, 0.1, 0.5, 0.9, 1.0};
  for (int depth : {1, 2, 4, 8}) {
    const PipelineSpec spec = MakeChainSpec(depth);
    StateBoard board = MixedBoard(depth + 1, 10 * kUsPerMs, 99);
    std::vector<int> path;
    for (int i = 1; i <= depth; ++i) {
      path.push_back(i);
    }
    for (int mc : {1, 2, 7, 64, 512}) {
      EstimatorOptions options;
      options.mc_samples = mc;
      LatencyEstimator vectorized(&spec, &board, options, Rng(31).Fork("estimator"));
      LatencyEstimator reference(&spec, &board, options, Rng(31).Fork("estimator"));
      for (double lambda : lambdas) {
        const Duration fast = vectorized.AggregateWaitQuantile(path, lambda);
        const Duration slow = static_cast<Duration>(
            std::llround(reference.AggregateWaitDistribution(path).Quantile(lambda)));
        EXPECT_EQ(fast, slow) << "depth " << depth << " mc " << mc << " lambda " << lambda;
      }
    }
  }
}

// ---- Incremental refresh (RefreshAll) -------------------------------------

std::vector<ModuleState> ChainStates(int n, Duration d, double q_delay) {
  std::vector<ModuleState> states;
  for (int i = 0; i < n; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    s.batch_size = 4;
    s.avg_queue_delay = q_delay;
    states.push_back(std::move(s));
  }
  return states;
}

TEST(LatencyEstimator, RefreshAllSkipsEntriesWhoseInputsDidNotMove) {
  const int n = 6;
  const PipelineSpec spec = MakeChainSpec(n - 1);
  StateBoard board(n);
  for (ModuleState& s : ChainStates(n, 10 * kUsPerMs, 1000.0)) {
    board.Publish(std::move(s));
  }
  LatencyEstimator est(&spec, &board, EstimatorOptions(), Rng(41).Fork("estimator"));

  // First refresh computes everything.
  LatencyEstimator::RefreshStats stats = est.RefreshAll(nullptr);
  EXPECT_EQ(stats.refreshed, n);
  EXPECT_EQ(stats.skipped, 0);

  // Nothing published since: all skipped.
  stats = est.RefreshAll(nullptr);
  EXPECT_EQ(stats.refreshed, 0);
  EXPECT_EQ(stats.skipped, n);

  // Re-publishing identical estimator inputs must not dirty anything.
  for (ModuleState& s : ChainStates(n, 10 * kUsPerMs, 1000.0)) {
    board.Publish(std::move(s));
  }
  stats = est.RefreshAll(nullptr);
  EXPECT_EQ(stats.refreshed, 0);
  EXPECT_EQ(stats.skipped, n);

  // Change only the sink's batch duration: every upstream entry depends on
  // it, but the sink's own (empty) downstream set does not.
  ModuleState sink;
  sink.module_id = n - 1;
  sink.batch_duration = 20 * kUsPerMs;
  sink.batch_size = 4;
  sink.avg_queue_delay = 1000.0;
  const Duration before = est.EstimateSubsequent(0);
  board.Publish(std::move(sink));
  stats = est.RefreshAll(nullptr);
  EXPECT_EQ(stats.refreshed, n - 1);
  EXPECT_EQ(stats.skipped, 1);
  EXPECT_GT(est.EstimateSubsequent(0), before);
}

TEST(LatencyEstimator, RefreshAllDeterministicAcrossThreadCounts) {
  // Per-module forked streams make the refresh a deterministic function of
  // each module's dirty-event count — the pooled fan-out must reproduce the
  // serial refresh exactly, round after round, under partial dirtiness.
  const int n = 8;
  const PipelineSpec spec = MakeChainSpec(n - 1);
  StateBoard board_serial(n);
  StateBoard board_pooled(n);
  LatencyEstimator serial(&spec, &board_serial, EstimatorOptions(),
                          Rng(77).Fork("estimator"));
  LatencyEstimator pooled(&spec, &board_pooled, EstimatorOptions(),
                          Rng(77).Fork("estimator"));
  ThreadPool pool(4);
  for (int round = 0; round < 4; ++round) {
    // Rounds dirty a shrinking suffix of the chain (all, then last 3, 2, 1).
    const int first_dirty = round == 0 ? 0 : n - 4 + round;
    for (int m = first_dirty; m < n; ++m) {
      ModuleState s;
      s.module_id = m;
      s.batch_duration = (10 + 2 * round) * kUsPerMs;
      s.batch_size = 4;
      s.avg_queue_delay = 500.0 * (round + 1);
      ModuleState copy = s;
      board_serial.Publish(std::move(s));
      board_pooled.Publish(std::move(copy));
    }
    const LatencyEstimator::RefreshStats a = serial.RefreshAll(nullptr);
    const LatencyEstimator::RefreshStats b = pooled.RefreshAll(&pool);
    EXPECT_EQ(a.refreshed, b.refreshed) << round;
    EXPECT_EQ(a.skipped, b.skipped) << round;
    for (int m = 0; m < n; ++m) {
      EXPECT_EQ(serial.EstimateSubsequent(m), pooled.EstimateSubsequent(m))
          << "round " << round << " module " << m;
      EXPECT_EQ(serial.PathEstimates(m), pooled.PathEstimates(m))
          << "round " << round << " module " << m;
    }
  }
}

TEST(LatencyEstimator, HeterogeneousFleetStretchesExecAndWaitTerms) {
  // A fleet averaging half the baseline speed (mean_speed 0.5) doubles the
  // effective batch duration, so both the exec sum and the uniform-fallback
  // wait quantile scale accordingly — the estimator reasons against the
  // fleet's effective service rate, not `workers × uniform profile`.
  const PipelineSpec lv = MakeLiveVideo();
  const Duration d = 10 * kUsPerMs;
  StateBoard baseline_board = UniformBoard(5, d);
  StateBoard hetero_board(5);
  for (int i = 0; i < 5; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = d;
    s.batch_size = 4;
    s.num_workers = 2;
    s.effective_units = 1.0;  // Two workers of grade 0.5.
    s.mean_speed = 0.5;
    hetero_board.Publish(std::move(s));
  }
  LatencyEstimator baseline(&lv, &baseline_board, HighResOptions(), Rng(6));
  LatencyEstimator hetero(&lv, &hetero_board, HighResOptions(), Rng(6));
  const double base = static_cast<double>(baseline.EstimateSubsequent(0));
  const double slow = static_cast<double>(hetero.EstimateSubsequent(0));
  // Every term is linear in the effective duration: the estimate doubles.
  EXPECT_NEAR(slow, 2.0 * base, 2.0 * base * 0.05);
}

}  // namespace
}  // namespace pard
