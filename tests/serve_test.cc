// Tests for the wall-clock serving runtime (src/serve/).
//
// Two kinds of assertion live here:
//   1. Hard invariants — conservation (every injected request ends terminal,
//      exactly once, with consistent hop records), load-generator
//      determinism, clock monotonicity. These never depend on timing.
//   2. A sim-vs-serve validation band — the serving runtime on the fig08
//      smoke workload (tweet trace, 1.5 s, 40 req/s — the same shape the
//      smoke_bench_fig08 ctest entry uses) must land within
//      kGoodputTolerance of the simulator's normalized goodput on the
//      matched arrival stream. The band is wide (0.25) because the two
//      substrates legitimately differ: pull-based workers have W ≈ 0 where
//      the simulator overlaps batch formation with execution, wall-clock
//      scheduling jitters timestamps, and serve runs are not
//      bit-deterministic.
//
// The whole suite is in the tsan ctest preset: a TSan-clean pass pins the
// concurrency contracts of ControlPlane, ServeModule and the shared
// RequestQueue/StateBoard/estimator facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "core/pard_policy.h"
#include "exec/thread_pool.h"
#include "harness/experiment.h"
#include "jsonio/json.h"
#include "obs/drop_reason.h"
#include "pipeline/apps.h"
#include "pipeline/backend_profile.h"
#include "runtime/backend_fleet.h"
#include "runtime/drop_policy.h"
#include "runtime/state_board.h"
#include "serve/control_plane.h"
#include "serve/load_generator.h"
#include "serve/serve_clock.h"
#include "serve/serve_options.h"
#include "serve/serve_runtime.h"

namespace pard {
namespace {

constexpr double kGoodputTolerance = 0.25;

TEST(ServeClock, AdvancesVirtualTimeAtSpeedup) {
  ServeClock clock(100.0);
  clock.Start();
  const SimTime a = clock.Now();
  clock.SleepFor(50 * kUsPerMs);  // 0.5 ms wall at 100x.
  const SimTime b = clock.Now();
  EXPECT_GE(b - a, 50 * kUsPerMs);
  // Sleep overshoot exists but stays well under the slept amount's order of
  // magnitude on any sane scheduler; 100x margin keeps CI-proof.
  EXPECT_LT(b - a, 5000 * kUsPerMs);
}

TEST(ServeClock, RejectsNonPositiveSpeedup) {
  EXPECT_THROW(ServeClock(0.0), CheckError);
  EXPECT_THROW(ServeClock(-3.0), CheckError);
}

TEST(LoadGen, PoissonArrivalsAreDeterministicSortedAndRateShaped) {
  Rng rng_a(123);
  Rng rng_b(123);
  const auto a = SynthesizePoissonArrivals(200.0, 0, 10 * kUsPerSec, rng_a);
  const auto b = SynthesizePoissonArrivals(200.0, 0, 10 * kUsPerSec, rng_b);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // 2000 expected arrivals; 5 sigma is ~±224.
  EXPECT_GT(a.size(), 1700u);
  EXPECT_LT(a.size(), 2300u);
  EXPECT_GE(a.front(), 0);
  EXPECT_LT(a.back(), 10 * kUsPerSec);
}

TEST(LoadGen, MmppArrivalRateLandsBetweenBaseAndBurst) {
  MmppOptions mmpp;
  mmpp.base_rate = 50.0;
  mmpp.burst_rate = 400.0;
  mmpp.mean_base_s = 4.0;
  mmpp.mean_burst_s = 2.0;
  Rng rng(7);
  const auto arrivals = SynthesizeMmppArrivals(mmpp, 0, 120 * kUsPerSec, rng);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  const double rate = static_cast<double>(arrivals.size()) / 120.0;
  EXPECT_GT(rate, mmpp.base_rate);
  EXPECT_LT(rate, mmpp.burst_rate);
  Rng rng2(7);
  EXPECT_EQ(arrivals, SynthesizeMmppArrivals(mmpp, 0, 120 * kUsPerSec, rng2));
}

TEST(LoadGen, ReplaysEveryArrivalInOrder) {
  ServeClock clock(1000.0);
  clock.Start();
  std::vector<SimTime> schedule;
  for (int i = 0; i < 50; ++i) {
    schedule.push_back(i * 10 * kUsPerMs);  // 10 ms virtual apart.
  }
  std::atomic<int> injected{0};
  SimTime last = -1;
  LoadGenerator generator(&clock, schedule, [&](SimTime t) {
    EXPECT_GT(t, last);
    last = t;
    injected.fetch_add(1);
  });
  generator.Start();
  generator.Join();
  EXPECT_EQ(injected.load(), 50);
  EXPECT_EQ(generator.LastArrival(), schedule.back());
}

TEST(WorkerGroup, JoinRethrowsFirstWorkerException) {
  WorkerGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&ran, i] {
      ran.fetch_add(1);
      if (i == 2) {
        throw std::runtime_error("worker died");
      }
    });
  }
  EXPECT_THROW(group.Join(), std::runtime_error);
  EXPECT_EQ(ran.load(), 4);
  EXPECT_NO_THROW(group.Join());  // Error consumed; re-join is clean.
}

TEST(ServeRuntime, WorkerPlanRespectsHardThreadCapWithSkewedPlans) {
  // A skewed fixed plan (many light modules + one heavy) must come out with
  // sum <= max_total_threads and >= 1 worker per module — the max(1, ...)
  // floor alone would leave the scaled sum above the cap.
  const PipelineSpec spec = MakeApp("tm");  // 3 modules.
  RuntimeOptions options;
  options.fixed_workers = {1, 1, 100};
  std::unique_ptr<DropPolicy> policy = MakePolicy("pard", PolicyParams{});
  ServeOptions serve;
  serve.max_total_threads = 8;
  ServeRuntime runtime(spec, options, policy.get(), 50.0, serve);
  int total = 0;
  for (int w : runtime.worker_plan()) {
    EXPECT_GE(w, 1);
    total += w;
  }
  EXPECT_LE(total, serve.max_total_threads);
}

// Shared serve config: the fig08 smoke workload shape (StdConfig knobs with
// the smoke-tier PARD_BENCH_DURATION_S=1.5 / PARD_BENCH_BASE_RATE=40
// override), scaling off so sim and serve provision identically.
ExperimentConfig Fig08SmokeConfig(const std::string& app, const std::string& policy) {
  ExperimentConfig config;
  config.app = app;
  config.trace = "tweet";
  config.policy = policy;
  config.duration_s = 1.5;
  config.base_rate = 40.0;
  config.seed = 7;
  config.provision_factor = 1.25;
  config.runtime.enable_scaling = false;
  return config;
}

TEST(ServeRuntime, ConservesEveryRequestOnAChain) {
  ExperimentConfig config = Fig08SmokeConfig("tm", "pard");
  ServeOptions serve;
  serve.speedup = 25.0;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_NE(result.analysis, nullptr);
  const RunAnalysis& analysis = *result.analysis;
  ASSERT_GT(analysis.Total(), 0u);
  std::size_t good = 0;
  std::size_t dropped = 0;
  for (const RequestPtr& req : analysis.requests()) {
    // Terminal exactly once, finish stamped, fates partition the stream.
    ASSERT_TRUE(req->Terminal());
    EXPECT_GE(req->finish, req->sent);
    if (req->Good()) {
      ++good;
      EXPECT_LE(req->finish, req->deadline);
      // A good request executed every module on its path; on a chain that
      // is every module.
      for (const HopRecord& hop : req->hops) {
        EXPECT_TRUE(hop.executed);
        EXPECT_GE(hop.batch_entry, hop.arrive);
        EXPECT_GE(hop.exec_start, hop.batch_entry);
        EXPECT_GE(hop.exec_end, hop.exec_start);
      }
    } else if (req->CountsDropped()) {
      ++dropped;
    }
  }
  EXPECT_EQ(good + dropped, analysis.Total());
  EXPECT_EQ(good, analysis.GoodCount());
}

TEST(ServeRuntime, GoodputWithinToleranceOfSimulatorOnFig08SmokeTrace) {
  // The acceptance band for the serving prototype: identical arrival stream
  // (kTrace replays the exact timestamps the simulator injects), identical
  // provisioning, policy and estimator — substrate is the only variable.
  ExperimentConfig config = Fig08SmokeConfig("tm", "pard");
  const ExperimentResult sim = RunExperiment(config);
  ServeOptions serve;
  serve.speedup = 10.0;  // Modest speedup keeps wall-clock noise small.
  const ExperimentResult served = RunServeExperiment(config, serve);

  ASSERT_EQ(sim.analysis->Total(), served.analysis->Total())
      << "matched replay must inject the identical arrival stream";
  const double sim_goodput = sim.analysis->NormalizedGoodput();
  const double serve_goodput = served.analysis->NormalizedGoodput();
  EXPECT_NEAR(serve_goodput, sim_goodput, kGoodputTolerance)
      << "serving goodput drifted outside the documented tolerance band";
}

TEST(ServeRuntime, BaselinePoliciesServeCleanly) {
  // Clipper++ exercises AdmitAtModule (ingress shedding) and naive the
  // PurgeExpired=false path — both through the admission front-end.
  for (const char* policy : {"clipper++", "naive"}) {
    ExperimentConfig config = Fig08SmokeConfig("tm", policy);
    ServeOptions serve;
    serve.speedup = 25.0;
    const ExperimentResult result = RunServeExperiment(config, serve);
    ASSERT_GT(result.analysis->Total(), 0u) << policy;
    for (const RequestPtr& req : result.analysis->requests()) {
      ASSERT_TRUE(req->Terminal()) << policy;
    }
  }
}

TEST(ServeRuntime, DagMergeAndOverloadUnderContention) {
  // The TSan stress case: a DAG pipeline (split + merge bookkeeping), MMPP
  // bursts far beyond capacity, and a high speedup so many workers contend
  // in little wall time. One worker per module makes the overload
  // structural — drops are guaranteed by arithmetic (hundreds of req/s into
  // single-worker modules), not by scheduling luck, so the drop assertion
  // cannot flake.
  ExperimentConfig config = Fig08SmokeConfig("da", "pard");
  config.duration_s = 2.0;
  config.runtime.fixed_workers = std::vector<int>(5, 1);  // da has 5 modules.
  ServeOptions serve;
  serve.speedup = 40.0;
  serve.arrivals = ServeOptions::Arrivals::kMmpp;
  serve.mmpp.base_rate = 60.0;
  serve.mmpp.burst_rate = 800.0;
  serve.mmpp.mean_base_s = 0.5;
  serve.mmpp.mean_burst_s = 0.5;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_GT(result.analysis->Total(), 0u);
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
  // Under an 800 req/s burst this fleet must shed load, so drops are
  // guaranteed. Goodput is NOT asserted positive: under TSan's ~10x CPU
  // slowdown every completion can legitimately miss the SLO, and this test's
  // job is contention coverage, not throughput.
  EXPECT_GT(result.analysis->DropRate(), 0.0);
  // Accounting stays consistent even when everything is shed.
  const auto share = result.analysis->PerModuleDropShare();
  double total_share = 0.0;
  for (double s : share) {
    total_share += s;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(ServeRuntime, DrainDeadlineBoundsDropFreePolicyUnderOverload) {
  // The naive policy never drops and never purges expired requests, so under
  // structural overload the backlog at the drain deadline is large. The run
  // must end by abandoning it (leftovers swept kLate) rather than serving it
  // out — RunServeExperiment returning promptly with every request terminal
  // and a nonzero late share IS the bound.
  ExperimentConfig config = Fig08SmokeConfig("tm", "naive");
  config.runtime.fixed_workers = std::vector<int>(3, 1);  // tm has 3 modules.
  ServeOptions serve;
  serve.speedup = 40.0;
  serve.arrivals = ServeOptions::Arrivals::kPoisson;
  serve.poisson_rate = 500.0;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_GT(result.analysis->Total(), 100u);
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
  // Overload + no dropping means abandoned/late requests must exist.
  EXPECT_GT(result.analysis->DropRate(), 0.0);
}

TEST(ServeRuntime, HeterogeneousFleetFailureAndRecoveryConserves) {
  // ISSUE 5 acceptance scenario, invariant half: a mixed-grade fleet takes a
  // mid-run worker kill and a scale-up recovery (cold start) and still
  // accounts for every request exactly once. Runs under TSan in the tsan
  // preset, pinning the roster-mutation concurrency contract.
  PipelineSpec spec = MakeApp("tm");
  BackendProfile fast;
  fast.name = "fast";
  BackendProfile slow;
  slow.name = "slow";
  slow.speed_grade = 0.5;
  slow.cold_start = 200 * kUsPerMs;
  spec.set_backends({fast, slow});
  RuntimeOptions options;
  options.fixed_workers = {2, 2, 2};  // Grades 1.0/0.5 round-robin per module.
  options.cold_start = 200 * kUsPerMs;
  // Kill module 1's fast worker mid-run; provision a replacement shortly
  // after (active once its backend's cold start elapses).
  options.fleet_events = ParseFaultSchedule("0.8:1:kill:1,1.2:1:add:1");
  std::unique_ptr<DropPolicy> policy = MakePolicy("pard", PolicyParams{});
  ServeOptions serve;
  serve.speedup = 20.0;
  ServeRuntime runtime(spec, options, policy.get(), 60.0, serve);

  std::vector<SimTime> arrivals;
  for (int i = 0; i < 120; ++i) {
    arrivals.push_back(i * 25 * kUsPerMs);  // 40 req/s for 3 s.
  }
  runtime.RunTrace(arrivals);

  // Exact conservation: terminal exactly once, fates partition the stream.
  ASSERT_EQ(runtime.requests().size(), arrivals.size());
  std::size_t good = 0;
  std::size_t dropped = 0;
  for (const RequestPtr& req : runtime.requests()) {
    ASSERT_TRUE(req->Terminal());
    EXPECT_GE(req->finish, req->sent);
    good += req->Good() ? 1 : 0;
    dropped += req->CountsDropped() ? 1 : 0;
  }
  EXPECT_EQ(good + dropped, arrivals.size());

  // The fleet log tells the whole story: the scheduled kill at exactly
  // t=0.8 s, then a cold-starting replacement that eventually activates.
  bool saw_kill = false;
  bool saw_recovery_cold = false;
  bool saw_recovery_active = false;
  for (const FleetTransition& t : runtime.fleet().transitions()) {
    if (t.module_id != 1) {
      continue;
    }
    if (t.to == BackendState::kFailed) {
      saw_kill = true;
      EXPECT_EQ(t.at, 800 * kUsPerMs);
    } else if (saw_kill && t.to == BackendState::kColdStarting) {
      saw_recovery_cold = true;
    } else if (saw_recovery_cold && t.to == BackendState::kActive) {
      saw_recovery_active = true;
    }
  }
  EXPECT_TRUE(saw_kill);
  EXPECT_TRUE(saw_recovery_cold);
  EXPECT_TRUE(saw_recovery_active);
}

TEST(ServeRuntime, ScalingEngineGrowsFleetUnderOverloadAndRecordsHistory) {
  // pardsim --serve --enable-scaling end to end: an underprovisioned fixed
  // fleet under structural overload must scale up (real threads after a
  // cold start) and the per-epoch worker history must land in the result.
  ExperimentConfig config = Fig08SmokeConfig("tm", "pard");
  config.duration_s = 3.0;
  config.runtime.fixed_workers = {1, 1, 1};
  config.runtime.enable_scaling = true;
  config.runtime.scaling_epoch = 1 * kUsPerSec;
  config.runtime.cold_start = 200 * kUsPerMs;
  ServeOptions serve;
  serve.speedup = 25.0;
  serve.arrivals = ServeOptions::Arrivals::kPoisson;
  serve.poisson_rate = 300.0;
  const ExperimentResult result = RunServeExperiment(config, serve);
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
  ASSERT_FALSE(result.worker_history.empty());
  int peak_workers = 0;
  for (const auto& sample : result.worker_history) {
    ASSERT_EQ(sample.workers.size(), 3u);
    for (int w : sample.workers) {
      peak_workers = std::max(peak_workers, w);
    }
  }
  // 300 req/s into single-worker modules: the engine must have scaled past
  // the initial one worker somewhere.
  EXPECT_GT(peak_workers, 1);
}

TEST(ServeRuntime, PardGoodputAtLeastDropFreeBaselineOnHeterogeneousScenario) {
  // ISSUE 5 acceptance scenario, policy half: on the SAME heterogeneous
  // fleet + failure + recovery under structural overload, PARD's proactive
  // dropping must salvage at least the goodput of the drop-free baseline
  // (whose backlog turns completions late). Identical arrival stream, fleet
  // and fault schedule — policy is the only variable.
  // Sustained ~2x structural overload (capacity provisioned at 0.6x the
  // offered rate, further cut by the t4 grades) over 5 virtual seconds: the
  // drop-free baseline's queues grow for the whole run, so its completions
  // go late, while PARD sheds the doomed share early. The margin is
  // structural (~35% relative on this scenario), not a timing accident.
  auto run = [](const std::string& policy) {
    ExperimentConfig config;
    config.app = "lvhet";  // lv on the mixed a100/t4 catalog.
    config.trace = "tweet";
    config.policy = policy;
    config.duration_s = 5.0;
    config.seed = 7;
    config.provision_factor = 0.6;
    config.runtime.cold_start = 200 * kUsPerMs;
    config.runtime.fleet_events = ParseFaultSchedule("1.5:2:kill:1,2:2:add:1");
    ServeOptions serve;
    serve.speedup = 40.0;
    serve.arrivals = ServeOptions::Arrivals::kPoisson;
    serve.poisson_rate = 300.0;
    return RunServeExperiment(config, serve);
  };
  const ExperimentResult pard = run("pard");
  const ExperimentResult naive = run("naive");
  ASSERT_EQ(pard.analysis->Total(), naive.analysis->Total())
      << "matched scenario must inject the identical arrival stream";
  for (const RequestPtr& req : pard.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
  EXPECT_GE(pard.analysis->NormalizedGoodput(), naive.analysis->NormalizedGoodput());
}

TEST(ServeRuntime, ShardedBrokersWithScalingAndFaultsConserve) {
  // ISSUE 6 contention stress, sized for the tsan preset: 4 broker threads
  // hammer the control plane's snapshot-read admission path concurrently, a
  // DAG pipeline's workers steal across queue shards under MMPP bursts, the
  // scaling engine adds cold-starting threads, and a fault schedule kills
  // and recovers a worker mid-run. Every request must still resolve exactly
  // once — and a TSan-clean pass pins the sharded-path contracts
  // (SnapshotCell reads, striped fate locks, per-shard queue mutexes).
  ExperimentConfig config = Fig08SmokeConfig("da", "pard");
  config.duration_s = 2.5;
  config.runtime.fixed_workers = std::vector<int>(5, 2);  // 2 shards/module.
  config.runtime.enable_scaling = true;
  config.runtime.scaling_epoch = 1 * kUsPerSec;
  config.runtime.cold_start = 100 * kUsPerMs;
  config.runtime.fleet_events = ParseFaultSchedule("0.8:1:kill:1,1.2:1:add:1");
  ServeOptions serve;
  serve.speedup = 25.0;
  serve.broker_threads = 4;
  serve.arrivals = ServeOptions::Arrivals::kMmpp;
  serve.mmpp.base_rate = 80.0;
  serve.mmpp.burst_rate = 600.0;
  serve.mmpp.mean_base_s = 0.5;
  serve.mmpp.mean_burst_s = 0.5;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_GT(result.analysis->Total(), 0u);
  std::size_t good = 0;
  std::size_t dropped = 0;
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
    EXPECT_GE(req->finish, req->sent);
    good += req->Good() ? 1 : 0;
    dropped += req->CountsDropped() ? 1 : 0;
  }
  EXPECT_EQ(good + dropped, result.analysis->Total());
  // Structural overload (600 req/s bursts into this fleet): load was shed.
  EXPECT_GT(result.analysis->DropRate(), 0.0);
}

TEST(ServeRuntime, DropReasonsConserveUnderStructuralOverload) {
  // Observability acceptance, attribution half: under MMPP bursts far beyond
  // a pinned single-worker fleet, many requests drop — and every one of them
  // must carry a DropReason. Conservation is exact: the per-reason counts
  // sum to DroppedCount() and no dropped request is left at kNone, across
  // every concurrent drop site (admission shedding, broker decisions, purge
  // sweeps, drain abandonment).
  ExperimentConfig config = Fig08SmokeConfig("da", "pard");
  config.duration_s = 2.0;
  config.runtime.fixed_workers = std::vector<int>(5, 1);
  ServeOptions serve;
  serve.speedup = 40.0;
  serve.arrivals = ServeOptions::Arrivals::kMmpp;
  serve.mmpp.base_rate = 60.0;
  serve.mmpp.burst_rate = 800.0;
  serve.mmpp.mean_base_s = 0.5;
  serve.mmpp.mean_burst_s = 0.5;
  const ExperimentResult result = RunServeExperiment(config, serve);
  const RunAnalysis& analysis = *result.analysis;
  ASSERT_GT(analysis.DroppedCount(), 0u);
  const std::vector<std::size_t> reasons = analysis.DropReasonCounts();
  ASSERT_EQ(reasons.size(), static_cast<std::size_t>(kNumDropReasons));
  EXPECT_EQ(reasons[0], 0u) << "dropped request without attribution";
  std::size_t sum = 0;
  for (std::size_t r = 1; r < reasons.size(); ++r) {
    sum += reasons[r];
  }
  EXPECT_EQ(sum, analysis.DroppedCount());
  EXPECT_EQ(result.drop_reason_counts, reasons);
  // Requests that never terminated would break both sums; spot-check too.
  for (const RequestPtr& req : analysis.requests()) {
    ASSERT_TRUE(req->Terminal());
    if (req->CountsDropped()) {
      EXPECT_NE(req->drop_reason, DropReason::kNone);
    } else {
      EXPECT_EQ(req->drop_reason, DropReason::kNone);
    }
  }
}

TEST(ServeRuntime, ObsExportWritesLoadableTraceAndMetrics) {
  // End-to-end --trace-out/--metrics-out through the serving runtime: both
  // files must parse as JSON, the trace must contain real lifecycle events
  // (Perfetto loads exactly this shape) and the metrics series must have
  // sampler rows.
  ExperimentConfig config = Fig08SmokeConfig("tm", "pard");
  config.obs.trace_out = testing::TempDir() + "serve_obs_trace.json";
  config.obs.metrics_out = testing::TempDir() + "serve_obs_metrics.json";
  config.obs.metrics_interval_s = 0.25;
  ServeOptions serve;
  serve.speedup = 25.0;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_GT(result.analysis->Total(), 0u);

  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const JsonValue trace = ParseJson(read_file(config.obs.trace_out));
  const JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  EXPECT_GT(events->AsArray().size(), 10u);
  bool saw_span = false;
  bool saw_fate = false;
  for (const JsonValue& ev : events->AsArray()) {
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr) {
      continue;
    }
    saw_span = saw_span || ph->AsString() == "X";
    if (const JsonValue* name = ev.Find("name");
        name != nullptr && name->AsString().rfind("fate:", 0) == 0) {
      saw_fate = true;
    }
  }
  EXPECT_TRUE(saw_span) << "no exec/queue spans in the exported trace";
  EXPECT_TRUE(saw_fate) << "no terminal fate events in the exported trace";

  const JsonValue metrics = ParseJson(read_file(config.obs.metrics_out));
  ASSERT_TRUE(metrics.At("samples").IsArray());
  EXPECT_GT(metrics.At("samples").AsArray().size(), 0u)
      << "sampler thread produced no rows";
  // Every terminal request bumps exactly one fate.* counter. Assert the
  // conservation sum rather than completions alone — under sanitizer
  // slowdown a short run can legitimately complete zero requests.
  const JsonObject& totals = metrics.At("totals").AsObject();
  ASSERT_TRUE(totals.count("fate.completed"));
  std::int64_t fates = 0;
  for (const auto& [name, value] : totals) {
    if (name.rfind("fate.", 0) == 0) {
      fates += value.AsInt();
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(fates), result.analysis->Total());
}

TEST(ServeRuntime, DynamicPathsServeTerminalUnderBursts) {
  ExperimentConfig config = Fig08SmokeConfig("da", "pard");
  config.runtime.dynamic_paths = true;
  ServeOptions serve;
  serve.speedup = 40.0;
  serve.arrivals = ServeOptions::Arrivals::kPoisson;
  serve.poisson_rate = 120.0;
  const ExperimentResult result = RunServeExperiment(config, serve);
  ASSERT_GT(result.analysis->Total(), 0u);
  for (const RequestPtr& req : result.analysis->requests()) {
    ASSERT_TRUE(req->Terminal());
  }
}

// ---- Off-lock sync + parallel refresh (ISSUE 10) ---------------------------

std::vector<ModuleState> RefreshWarmStates(int n, int round, Rng* rng) {
  std::vector<ModuleState> states;
  for (int i = 0; i < n; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_duration = (8 + round) * kUsPerMs;
    s.batch_size = 4;
    s.avg_queue_delay = 1000.0 + 100.0 * round;
    s.load_factor = 0.7;
    for (int j = 0; j < 256; ++j) {
      s.wait_samples.push_back(rng->Uniform(0.0, 12000.0));
    }
    std::sort(s.wait_samples.begin(), s.wait_samples.end());
    states.push_back(std::move(s));
  }
  return states;
}

// Per-module forked RNG streams make the refreshed estimates a deterministic
// function of the Sync sequence, independent of the refresh pool's thread
// count: every broker decision after the same syncs must be identical.
TEST(ControlPlaneRefresh, ParallelRefreshDeterministicAcrossThreadCounts) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board_1(lv.NumModules());
  StateBoard board_4(lv.NumModules());
  PardPolicy policy_1;
  PardPolicy policy_4;
  ControlPlane::Options opt_1;
  opt_1.refresh_threads = 1;
  ControlPlane::Options opt_4;
  opt_4.refresh_threads = 4;
  ControlPlane plane_1(&lv, &policy_1, &board_1, opt_1);
  ControlPlane plane_4(&lv, &policy_4, &board_4, opt_4);
  ASSERT_TRUE(plane_1.LockFree());
  ASSERT_TRUE(plane_4.LockFree());

  Rng rng_1(55);
  Rng rng_4(55);
  for (int round = 0; round < 3; ++round) {
    const SimTime now = (round + 1) * kUsPerSec;
    const ControlPlane::SyncStats a =
        plane_1.Sync(RefreshWarmStates(lv.NumModules(), round, &rng_1), now);
    const ControlPlane::SyncStats b =
        plane_4.Sync(RefreshWarmStates(lv.NumModules(), round, &rng_4), now);
    EXPECT_TRUE(a.off_lock);
    EXPECT_TRUE(b.off_lock);
    EXPECT_EQ(a.refreshed, b.refreshed) << round;
    EXPECT_EQ(a.skipped, b.skipped) << round;

    Request req;
    req.id = 1;
    req.slo = lv.slo();
    req.sent = now;
    req.deadline = req.sent + req.slo;
    req.hops.resize(static_cast<std::size_t>(lv.NumModules()));
    for (int m = 0; m < lv.NumModules(); ++m) {
      EXPECT_EQ(policy_1.estimator()->EstimateSubsequent(m),
                policy_4.estimator()->EstimateSubsequent(m))
          << "round " << round << " module " << m;
      for (Duration age = 0; age <= req.slo; age += 10 * kUsPerMs) {
        AdmissionContext ctx;
        ctx.request = &req;
        ctx.module_id = m;
        ctx.now = now + age;
        ctx.batch_start = now + age;
        ctx.batch_duration = 10 * kUsPerMs;
        ctx.batch_size = 4;
        EXPECT_EQ(plane_1.ShouldDrop(ctx), plane_4.ShouldDrop(ctx))
            << "round " << round << " module " << m << " age " << age;
      }
    }
  }
}

// TSan hammer for the off-lock publication: broker threads decide against
// published snapshots while the control thread runs repeated Syncs — board
// publish, OnSync, pooled estimator refresh and snapshot swap all happen
// with no control mutex. A TSan-clean pass pins the single-writer contract.
TEST(ControlPlaneRefresh, OffLockSyncPublishesCleanlyUnderConcurrentReaders) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board(lv.NumModules());
  PardPolicy policy;
  ControlPlane::Options options;
  options.refresh_threads = 2;
  ControlPlane plane(&lv, &policy, &board, options);
  ASSERT_TRUE(plane.LockFree());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> decisions{0};
  WorkerGroup readers;
  for (int t = 0; t < 4; ++t) {
    readers.Spawn([&, t]() {
      Request req;
      req.id = static_cast<std::uint64_t>(t) + 1;
      req.slo = lv.slo();
      req.hops.resize(static_cast<std::size_t>(lv.NumModules()));
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int m = 0; m < lv.NumModules(); ++m) {
          const SimTime now = static_cast<SimTime>(local % 7) * 100 * kUsPerMs;
          req.sent = now;
          req.deadline = req.sent + req.slo;
          AdmissionContext ctx;
          ctx.request = &req;
          ctx.module_id = m;
          ctx.now = now;
          ctx.batch_start = now;
          ctx.batch_duration = 10 * kUsPerMs;
          ctx.batch_size = 4;
          plane.ShouldDrop(ctx);
          plane.ChoosePopSide(m, now);
          plane.AdmitAtModule(req, m, now);
          ++local;
        }
      }
      decisions.fetch_add(local, std::memory_order_relaxed);
    });
  }
  Rng rng(66);
  const std::uint64_t epoch_before = plane.SnapshotEpoch();
  for (int round = 0; round < 50; ++round) {
    const ControlPlane::SyncStats stats =
        plane.Sync(RefreshWarmStates(lv.NumModules(), round % 5, &rng),
                   (round + 1) * 100 * kUsPerMs);
    EXPECT_TRUE(stats.off_lock);
  }
  stop.store(true, std::memory_order_relaxed);
  readers.Join();
  EXPECT_EQ(plane.SnapshotEpoch(), epoch_before + 50);
  EXPECT_GT(decisions.load(), 0u);
}

}  // namespace
}  // namespace pard
