#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "pipeline/apps.h"
#include "pipeline/pipeline_spec.h"

namespace pard {
namespace {

PipelineSpec ChainOf(int n) {
  std::vector<ModuleSpec> modules;
  for (int i = 0; i < n; ++i) {
    ModuleSpec m;
    m.id = i;
    m.model = "object_detection";
    if (i > 0) {
      m.pres.push_back(i - 1);
    }
    if (i < n - 1) {
      m.subs.push_back(i + 1);
    }
    modules.push_back(std::move(m));
  }
  return PipelineSpec("chain", MsToUs(500), std::move(modules));
}

TEST(PipelineSpec, ChainBasics) {
  const PipelineSpec p = ChainOf(4);
  EXPECT_EQ(p.NumModules(), 4);
  EXPECT_TRUE(p.IsChain());
  EXPECT_EQ(p.SourceModule(), 0);
  EXPECT_EQ(p.SinkModule(), 3);
  EXPECT_EQ(p.TopoOrder(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(PipelineSpec, ChainDownstreamPaths) {
  const PipelineSpec p = ChainOf(4);
  const auto& paths0 = p.DownstreamPaths(0);
  ASSERT_EQ(paths0.size(), 1u);
  EXPECT_EQ(paths0[0], (std::vector<int>{1, 2, 3}));
  const auto& paths_sink = p.DownstreamPaths(3);
  ASSERT_EQ(paths_sink.size(), 1u);
  EXPECT_TRUE(paths_sink[0].empty());
}

TEST(PipelineSpec, DagPathsEnumerateBranches) {
  const PipelineSpec da = MakeDagLiveVideo();
  EXPECT_FALSE(da.IsChain());
  const auto& paths = da.DownstreamPaths(0);
  ASSERT_EQ(paths.size(), 2u);
  // person -> pose -> expression -> eye and person -> face -> expression -> eye.
  EXPECT_EQ(paths[0], (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(paths[1], (std::vector<int>{2, 3, 4}));
  // From the merge module there is a single path.
  ASSERT_EQ(da.DownstreamPaths(3).size(), 1u);
  EXPECT_EQ(da.DownstreamPaths(3)[0], (std::vector<int>{4}));
}

TEST(PipelineSpec, ValidateRejectsCycle) {
  std::vector<ModuleSpec> modules(2);
  modules[0].id = 0;
  modules[0].model = "object_detection";
  modules[0].pres = {1};
  modules[0].subs = {1};
  modules[1].id = 1;
  modules[1].model = "face_recognition";
  modules[1].pres = {0};
  modules[1].subs = {0};
  EXPECT_THROW(PipelineSpec("cyc", MsToUs(100), modules), CheckError);
}

TEST(PipelineSpec, ValidateRejectsAsymmetry) {
  std::vector<ModuleSpec> modules(2);
  modules[0].id = 0;
  modules[0].model = "object_detection";
  modules[0].subs = {1};
  modules[1].id = 1;
  modules[1].model = "face_recognition";
  // Missing pres = {0}.
  EXPECT_THROW(PipelineSpec("bad", MsToUs(100), modules), CheckError);
}

TEST(PipelineSpec, ValidateRejectsNonDenseIds) {
  std::vector<ModuleSpec> modules(2);
  modules[0].id = 0;
  modules[0].model = "object_detection";
  modules[1].id = 5;
  modules[1].model = "face_recognition";
  EXPECT_THROW(PipelineSpec("bad", MsToUs(100), modules), CheckError);
}

TEST(PipelineSpec, ValidateRejectsSelfLoop) {
  std::vector<ModuleSpec> modules(1);
  modules[0].id = 0;
  modules[0].model = "object_detection";
  modules[0].subs = {0};
  modules[0].pres = {0};
  EXPECT_THROW(PipelineSpec("bad", MsToUs(100), modules), CheckError);
}

TEST(PipelineSpec, ValidateRejectsMultipleSources) {
  std::vector<ModuleSpec> modules(3);
  for (int i = 0; i < 3; ++i) {
    modules[static_cast<std::size_t>(i)].id = i;
    modules[static_cast<std::size_t>(i)].model = "object_detection";
  }
  modules[0].subs = {2};
  modules[1].subs = {2};
  modules[2].pres = {0, 1};
  EXPECT_THROW(PipelineSpec("bad", MsToUs(100), modules), CheckError);
}

TEST(PipelineSpec, ValidateRejectsZeroSlo) {
  std::vector<ModuleSpec> modules(1);
  modules[0].id = 0;
  modules[0].model = "object_detection";
  EXPECT_THROW(PipelineSpec("bad", 0, modules), CheckError);
}

TEST(PipelineSpec, JsonRoundTrip) {
  const PipelineSpec p = MakeDagLiveVideo();
  const PipelineSpec q = PipelineSpec::FromJsonText(p.ToJson().Dump());
  EXPECT_EQ(q.app_name(), p.app_name());
  EXPECT_EQ(q.slo(), p.slo());
  EXPECT_EQ(q.NumModules(), p.NumModules());
  for (int i = 0; i < p.NumModules(); ++i) {
    EXPECT_EQ(q.Module(i).model, p.Module(i).model);
    EXPECT_EQ(q.Module(i).pres, p.Module(i).pres);
    EXPECT_EQ(q.Module(i).subs, p.Module(i).subs);
  }
}

TEST(PipelineSpec, FromJsonAcceptsUnorderedModules) {
  // Modules listed out of id order, as a hand-written config might be.
  const char* text = R"({
    "app": "mini", "slo_ms": 300,
    "modules": [
      {"id": 1, "name": "face_recognition", "pres": [0], "subs": []},
      {"id": 0, "name": "object_detection", "pres": [], "subs": [1]}
    ]})";
  const PipelineSpec p = PipelineSpec::FromJsonText(text);
  EXPECT_EQ(p.NumModules(), 2);
  EXPECT_EQ(p.Module(0).model, "object_detection");
  EXPECT_EQ(p.SourceModule(), 0);
}

// ---- paper apps ------------------------------------------------------------------

TEST(Apps, PaperShapes) {
  const PipelineSpec tm = MakeTrafficMonitoring();
  EXPECT_EQ(tm.NumModules(), 3);
  EXPECT_EQ(tm.slo(), MsToUs(400));
  const PipelineSpec lv = MakeLiveVideo();
  EXPECT_EQ(lv.NumModules(), 5);
  EXPECT_EQ(lv.slo(), MsToUs(500));
  const PipelineSpec gm = MakeGameAnalysis();
  EXPECT_EQ(gm.NumModules(), 5);
  EXPECT_EQ(gm.slo(), MsToUs(600));
  const PipelineSpec da = MakeDagLiveVideo();
  EXPECT_EQ(da.NumModules(), 5);
  EXPECT_EQ(da.slo(), MsToUs(420));
}

TEST(Apps, ChainsAreChains) {
  EXPECT_TRUE(MakeTrafficMonitoring().IsChain());
  EXPECT_TRUE(MakeLiveVideo().IsChain());
  EXPECT_TRUE(MakeGameAnalysis().IsChain());
  EXPECT_FALSE(MakeDagLiveVideo().IsChain());
}

TEST(Apps, DagForkAndMergeStructure) {
  const PipelineSpec da = MakeDagLiveVideo();
  EXPECT_EQ(da.Module(0).subs.size(), 2u);   // Fork at person detection.
  EXPECT_EQ(da.Module(3).pres.size(), 2u);   // Merge at expression recognition.
}

TEST(Apps, DispatchByName) {
  for (const std::string& name : AppNames()) {
    EXPECT_NO_THROW(MakeApp(name));
  }
  EXPECT_THROW(MakeApp("nope"), CheckError);
}

TEST(Apps, AllModelsRegistered) {
  for (const std::string& name : AppNames()) {
    const PipelineSpec spec = MakeApp(name);
    for (const ModuleSpec& m : spec.modules()) {
      SUCCEED();
      EXPECT_NO_THROW((void)m.model);
    }
  }
}

TEST(BackendProfile, JsonRoundTripPreservesEveryField) {
  BackendProfile t4;
  t4.name = "t4";
  t4.speed_grade = 0.5;
  t4.cold_start = 4 * kUsPerSec;
  t4.module_scale = {{"object_detection", 1.25}};
  const BackendProfile reloaded = BackendProfile::FromJson(t4.ToJson());
  EXPECT_EQ(reloaded, t4);

  BackendProfile baseline;  // Defaults: grade 1.0, inherited cold start.
  EXPECT_TRUE(baseline.IsBaseline());
  EXPECT_EQ(BackendProfile::FromJson(baseline.ToJson()), baseline);
}

TEST(BackendProfile, SpecLevelRoundTripCarriesCatalog) {
  const PipelineSpec spec = MakeHeteroLiveVideo();
  ASSERT_EQ(spec.backends().size(), 2u);
  const PipelineSpec reloaded = PipelineSpec::FromJsonText(spec.ToJson().Dump());
  ASSERT_EQ(reloaded.backends().size(), 2u);
  EXPECT_EQ(reloaded.backends()[0], spec.backends()[0]);
  EXPECT_EQ(reloaded.backends()[1], spec.backends()[1]);
  // Specs without a catalog stay catalog-free through the round trip.
  const PipelineSpec lv = MakeLiveVideo();
  EXPECT_TRUE(PipelineSpec::FromJsonText(lv.ToJson().Dump()).backends().empty());
}

TEST(BackendProfile, UnknownFieldIsRejectedNotIgnored) {
  // A typo'd field ("speed_grad") must fail the load with a clear error —
  // the same discipline bench_util.h applies to unknown PARD_BENCH_* names.
  const char* json = R"({"name": "t4", "speed_grad": 0.5})";
  try {
    BackendProfile::FromJson(ParseJson(json));
    FAIL() << "typo'd backend-profile field was silently accepted";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("speed_grad"), std::string::npos);
  }
}

TEST(BackendProfile, SpecJsonWithUnknownBackendFieldThrows) {
  PipelineSpec spec = MakeLiveVideo();
  JsonValue doc = spec.ToJson();
  JsonObject profile;
  profile["name"] = "t4";
  profile["cold_start"] = 3.0;  // Wrong name: the schema says cold_start_ms.
  JsonArray backends;
  backends.emplace_back(std::move(profile));
  doc.AsObject()["backends"] = std::move(backends);
  EXPECT_THROW(PipelineSpec::FromJson(doc), JsonError);
}

TEST(BackendProfile, ValidationRejectsBadGradesAndUnknownModels) {
  BackendProfile bad;
  bad.speed_grade = 0.0;
  EXPECT_THROW(bad.Validate(), CheckError);
  bad.speed_grade = -1.0;
  EXPECT_THROW(bad.Validate(), CheckError);

  // module_scale keys must name models that exist in the pipeline.
  PipelineSpec lv = MakeLiveVideo();
  BackendProfile scaler;
  scaler.module_scale = {{"no_such_model", 1.5}};
  EXPECT_THROW(lv.set_backends({scaler}), CheckError);

  BackendProfile zero_scale;
  zero_scale.module_scale = {{"face_recognition", 0.0}};
  EXPECT_THROW(lv.set_backends({zero_scale}), CheckError);
}

TEST(BackendProfile, ExecScaleCombinesGradeAndModuleScale) {
  BackendProfile t4;
  t4.speed_grade = 0.5;
  t4.module_scale = {{"face_recognition", 1.25}};
  EXPECT_DOUBLE_EQ(t4.ExecScaleFor("face_recognition"), 1.25 / 0.5);
  EXPECT_DOUBLE_EQ(t4.ExecScaleFor("pose_recognition"), 2.0);
  BackendProfile baseline;
  EXPECT_DOUBLE_EQ(baseline.ExecScaleFor("anything"), 1.0);
}

TEST(BackendProfile, ParseBackendGradesBuildsCatalog) {
  const auto catalog = ParseBackendGrades("1.0, 0.5,0.25");
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_DOUBLE_EQ(catalog[0].speed_grade, 1.0);
  EXPECT_DOUBLE_EQ(catalog[1].speed_grade, 0.5);
  EXPECT_DOUBLE_EQ(catalog[2].speed_grade, 0.25);
  EXPECT_THROW(ParseBackendGrades("1.0,zero"), CheckError);
  EXPECT_THROW(ParseBackendGrades("-1"), CheckError);
  EXPECT_THROW(ParseBackendGrades(""), CheckError);
}

}  // namespace
}  // namespace pard
