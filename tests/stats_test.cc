#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "stats/empirical_distribution.h"
#include "stats/histogram.h"
#include "stats/reservoir.h"
#include "stats/running_stat.h"
#include "stats/sliding_window.h"

namespace pard {
namespace {

// ---- RunningStat ------------------------------------------------------------

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

TEST(RunningStat, CvMatchesDefinition) {
  RunningStat s;
  for (double v : {1.0, 2.0, 3.0}) {
    s.Add(v);
  }
  EXPECT_NEAR(s.Cv(), s.Stddev() / s.Mean(), 1e-12);
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0);
}

// ---- SlidingWindow ------------------------------------------------------------

TEST(SlidingWindow, MeanEvictsOldEntries) {
  SlidingWindow w(SecToUs(5));
  w.Add(SecToUs(0), 10.0);
  w.Add(SecToUs(4), 20.0);
  EXPECT_DOUBLE_EQ(w.Mean(SecToUs(4)), 15.0);
  // At t=6 the first entry (age 6s) is out of the 5s window.
  EXPECT_DOUBLE_EQ(w.Mean(SecToUs(6)), 20.0);
}

TEST(SlidingWindow, EmptyReturnsFallback) {
  SlidingWindow w(SecToUs(5));
  EXPECT_DOUBLE_EQ(w.Mean(SecToUs(1), 42.0), 42.0);
  EXPECT_DOUBLE_EQ(w.LinearWeightedMean(SecToUs(1), 7.0), 7.0);
  EXPECT_DOUBLE_EQ(w.Max(SecToUs(1), -3.0), -3.0);
}

TEST(SlidingWindow, LinearWeightingFavorsRecent) {
  SlidingWindow w(SecToUs(5));
  w.Add(SecToUs(0), 0.0);    // Age 4s at query -> weight 0.2.
  w.Add(SecToUs(4), 10.0);   // Age 0s -> weight 1.0.
  const double weighted = w.LinearWeightedMean(SecToUs(4));
  // (0.2*0 + 1.0*10) / 1.2 = 8.333...
  EXPECT_NEAR(weighted, 10.0 / 1.2, 1e-9);
  EXPECT_GT(weighted, w.Mean(SecToUs(4)));
}

TEST(SlidingWindow, LinearWeightEqualsUnweightedForSimultaneous) {
  SlidingWindow w(SecToUs(5));
  w.Add(SecToUs(2), 3.0);
  w.Add(SecToUs(2), 5.0);
  EXPECT_NEAR(w.LinearWeightedMean(SecToUs(2)), 4.0, 1e-9);
}

TEST(SlidingWindow, MaxTracksWindow) {
  SlidingWindow w(SecToUs(5));
  w.Add(SecToUs(0), 100.0);
  w.Add(SecToUs(4), 1.0);
  EXPECT_DOUBLE_EQ(w.Max(SecToUs(4)), 100.0);
  EXPECT_DOUBLE_EQ(w.Max(SecToUs(7)), 1.0);  // The 100 aged out.
}

TEST(SlidingWindow, RatePerSecSteadyState) {
  SlidingWindow w(SecToUs(5));
  // 10 events per second for 10 seconds.
  for (int i = 0; i < 100; ++i) {
    w.Add(static_cast<SimTime>(i) * kUsPerSec / 10, 1.0);
  }
  EXPECT_NEAR(w.RatePerSec(SecToUs(10)), 10.0, 1.0);
}

TEST(SlidingWindow, RejectsOutOfOrderTimestamps) {
  SlidingWindow w(SecToUs(5));
  w.Add(SecToUs(2), 1.0);
  EXPECT_THROW(w.Add(SecToUs(1), 1.0), CheckError);
}

TEST(SlidingWindow, RejectsNonPositiveLength) {
  EXPECT_THROW(SlidingWindow(0), CheckError);
}

// ---- RecentReservoir -----------------------------------------------------------

TEST(RecentReservoir, KeepsMostRecentWhenFull) {
  RecentReservoir r(4);
  for (int i = 0; i < 10; ++i) {
    r.Add(static_cast<double>(i));
  }
  EXPECT_EQ(r.Size(), 4u);
  double sum = 0.0;
  for (double v : r.values()) {
    sum += v;
  }
  EXPECT_DOUBLE_EQ(sum, 6.0 + 7.0 + 8.0 + 9.0);
}

TEST(RecentReservoir, SampleDrawsFromContents) {
  RecentReservoir r(8);
  r.Add(5.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(r.Sample(rng), 5.0);
  }
}

TEST(RecentReservoir, SampleOnEmptyThrows) {
  RecentReservoir r(4);
  Rng rng(1);
  EXPECT_THROW(r.Sample(rng), CheckError);
}

TEST(RecentReservoir, ClearResets) {
  RecentReservoir r(4);
  r.Add(1.0);
  r.Clear();
  EXPECT_TRUE(r.Empty());
}

// ---- EmpiricalDistribution ------------------------------------------------------

TEST(EmpiricalDistribution, QuantileEndpoints) {
  EmpiricalDistribution d({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 3.0);
}

TEST(EmpiricalDistribution, QuantileInterpolates) {
  EmpiricalDistribution d({0.0, 10.0});
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(d.Quantile(0.75), 7.5);
}

TEST(EmpiricalDistribution, QuantileClampsArgument) {
  EmpiricalDistribution d({1.0, 2.0});
  EXPECT_DOUBLE_EQ(d.Quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(2.0), 2.0);
}

TEST(EmpiricalDistribution, EmptyFallback) {
  EmpiricalDistribution d;
  EXPECT_TRUE(d.Empty());
  EXPECT_DOUBLE_EQ(d.Quantile(0.5, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.0);
}

TEST(EmpiricalDistribution, CdfMatchesCounts) {
  EmpiricalDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(10.0), 1.0);
}

TEST(EmpiricalDistribution, AddInvalidatesSortOrder) {
  EmpiricalDistribution d({5.0});
  d.Add(1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  EXPECT_DOUBLE_EQ(d.Max(), 5.0);
}

TEST(EmpiricalDistribution, MeanIsArithmetic) {
  EmpiricalDistribution d({1.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
}

// Property: quantile is monotone in q.
TEST(EmpiricalDistribution, QuantileMonotoneProperty) {
  Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(rng.Uniform(0.0, 100.0));
  }
  EmpiricalDistribution d(std::move(samples));
  double prev = d.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = d.Quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

// ---- Histogram -----------------------------------------------------------------

TEST(Histogram, QuantileApproximatesData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, CdfAtBounds) {
  Histogram h(0.0, 10.0, 10);
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.CdfAt(-1.0), 0.0);
}

TEST(Histogram, OverflowAndUnderflowCounted) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(50.0);
  EXPECT_EQ(h.Count(), 2);
  EXPECT_DOUBLE_EQ(h.CdfAt(-1.0), 0.5);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), CheckError);
}

}  // namespace
}  // namespace pard
