#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/flags.h"

namespace pard {
namespace {

FlagSet Standard() {
  FlagSet flags;
  flags.AddString("app", "lv", "application");
  flags.AddDouble("rate", 100.0, "request rate");
  flags.AddInt("seed", 7, "random seed");
  flags.AddBool("scaling", false, "enable scaling");
  return flags;
}

void Parse(FlagSet& flags, std::vector<const char*> args) {
  flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  FlagSet flags = Standard();
  Parse(flags, {});
  EXPECT_EQ(flags.GetString("app"), "lv");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 100.0);
  EXPECT_EQ(flags.GetInt("seed"), 7);
  EXPECT_FALSE(flags.GetBool("scaling"));
}

TEST(Flags, EqualsForm) {
  FlagSet flags = Standard();
  Parse(flags, {"--app=tm", "--rate=42.5", "--seed=11", "--scaling=true"});
  EXPECT_EQ(flags.GetString("app"), "tm");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 42.5);
  EXPECT_EQ(flags.GetInt("seed"), 11);
  EXPECT_TRUE(flags.GetBool("scaling"));
}

TEST(Flags, SpaceForm) {
  FlagSet flags = Standard();
  Parse(flags, {"--app", "gm", "--rate", "9"});
  EXPECT_EQ(flags.GetString("app"), "gm");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 9.0);
}

TEST(Flags, BareBoolIsTrue) {
  FlagSet flags = Standard();
  Parse(flags, {"--scaling"});
  EXPECT_TRUE(flags.GetBool("scaling"));
}

TEST(Flags, BareBoolFollowedByExplicitValue) {
  FlagSet flags = Standard();
  Parse(flags, {"--scaling", "false"});
  EXPECT_FALSE(flags.GetBool("scaling"));
}

TEST(Flags, BoolSpellings) {
  for (const char* yes : {"true", "1", "yes"}) {
    FlagSet flags = Standard();
    Parse(flags, {"--scaling", yes});
    EXPECT_TRUE(flags.GetBool("scaling")) << yes;
  }
  FlagSet flags = Standard();
  Parse(flags, {"--scaling=no"});
  EXPECT_FALSE(flags.GetBool("scaling"));
}

TEST(Flags, PositionalArgumentsCollected) {
  FlagSet flags = Standard();
  Parse(flags, {"first", "--app=tm", "second"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(Flags, UnknownFlagThrows) {
  FlagSet flags = Standard();
  std::vector<const char*> args = {"--bogus=1"};
  EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
}

TEST(Flags, MalformedNumbersThrow) {
  {
    FlagSet flags = Standard();
    std::vector<const char*> args = {"--rate=fast"};
    EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
  }
  {
    FlagSet flags = Standard();
    std::vector<const char*> args = {"--seed=1.5x"};
    EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
  }
  {
    FlagSet flags = Standard();
    std::vector<const char*> args = {"--scaling=maybe"};
    EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
  }
}

TEST(Flags, MissingValueThrows) {
  FlagSet flags = Standard();
  std::vector<const char*> args = {"--rate"};
  EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
}

TEST(Flags, HelpRequested) {
  FlagSet flags = Standard();
  Parse(flags, {"--help"});
  EXPECT_TRUE(flags.HelpRequested());
  const std::string usage = flags.Usage("tool");
  EXPECT_NE(usage.find("--app"), std::string::npos);
  EXPECT_NE(usage.find("application"), std::string::npos);
}

TEST(Flags, BrokerThreadsRoundTrips) {
  // The pardsim serve-mode knob: defaults to 1, round-trips through both
  // spellings, and malformed values fail at parse time, not deep in serving.
  {
    FlagSet flags;
    flags.AddInt("broker-threads", 1, "serving broker threads");
    Parse(flags, {});
    EXPECT_EQ(flags.GetInt("broker-threads"), 1);
  }
  {
    FlagSet flags;
    flags.AddInt("broker-threads", 1, "serving broker threads");
    Parse(flags, {"--broker-threads=8"});
    EXPECT_EQ(flags.GetInt("broker-threads"), 8);
  }
  {
    FlagSet flags;
    flags.AddInt("broker-threads", 1, "serving broker threads");
    Parse(flags, {"--broker-threads", "4"});
    EXPECT_EQ(flags.GetInt("broker-threads"), 4);
  }
  {
    FlagSet flags;
    flags.AddInt("broker-threads", 1, "serving broker threads");
    std::vector<const char*> args = {"--broker-threads=many"};
    EXPECT_THROW(flags.Parse(1, args.data()), CheckError);
  }
}

TEST(Flags, TypeMismatchThrows) {
  FlagSet flags = Standard();
  Parse(flags, {});
  EXPECT_THROW(flags.GetDouble("app"), CheckError);
  EXPECT_THROW(flags.GetString("rate"), CheckError);
  EXPECT_THROW(flags.GetBool("seed"), CheckError);
}

}  // namespace
}  // namespace pard
