// SnapshotCell (RCU-style epoch reclamation), LockOrderGuard, and the
// ControlPlane's snapshot read path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/lock_order.h"
#include "common/rng.h"
#include "core/pard_policy.h"
#include "pipeline/apps.h"
#include "runtime/snapshot.h"
#include "runtime/state_board.h"
#include "serve/control_plane.h"

namespace pard {
namespace {

struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 1;  // Invariant: b == 2 * a + 1 in every published version.
};

std::unique_ptr<const Pair> MakePair(std::uint64_t a) {
  auto p = std::make_unique<Pair>();
  p->a = a;
  p->b = 2 * a + 1;
  return p;
}

TEST(SnapshotCell, EpochStartsAtOneAndIncrementsPerPublish) {
  SnapshotCell<Pair> cell(MakePair(0));
  EXPECT_EQ(cell.Epoch(), 1u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    cell.Publish(MakePair(i));
    EXPECT_EQ(cell.Epoch(), 1u + i);
  }
}

TEST(SnapshotCell, ReadSeesLatestPublish) {
  SnapshotCell<Pair> cell(MakePair(7));
  EXPECT_EQ(cell.Read()->a, 7u);
  cell.Publish(MakePair(8));
  auto ref = cell.Read();
  EXPECT_EQ(ref->a, 8u);
  EXPECT_EQ((*ref).b, 17u);
  EXPECT_EQ(ref.epoch(), cell.Epoch());
}

TEST(SnapshotCell, ChurnWithoutReadersReclaimsEverything) {
  SnapshotCell<Pair> cell(MakePair(0));
  for (std::uint64_t i = 1; i <= 100; ++i) {
    cell.Publish(MakePair(i));
  }
  // With no claimed slot, every replaced version's grace period is already
  // over at the next Reclaim() — nothing may accumulate.
  EXPECT_EQ(cell.RetiredCount(), 0u);
  EXPECT_EQ(cell.ReclaimedCount(), 100u);
}

TEST(SnapshotCell, ReaderPinsVersionAcrossPublishes) {
  SnapshotCell<Pair> cell(MakePair(1));
  std::optional<SnapshotCell<Pair>::ReadRef> pinned(cell.Read());
  for (std::uint64_t i = 2; i <= 10; ++i) {
    cell.Publish(MakePair(i));
  }
  // The pinned version (epoch 1) blocks reclamation of every replacement
  // retired at or after its claim epoch — i.e. all of them.
  EXPECT_EQ((*pinned)->a, 1u);
  EXPECT_EQ((*pinned)->b, 3u);
  EXPECT_EQ(cell.RetiredCount(), 9u);
  EXPECT_EQ(cell.ReclaimedCount(), 0u);
  // A fresh read still sees the newest version while the old one is pinned.
  EXPECT_EQ(cell.Read()->a, 10u);
  pinned.reset();  // Release the slot...
  cell.Publish(MakePair(11));  // ...and the next publish sweeps the backlog.
  EXPECT_EQ(cell.ReclaimedCount(), 10u);
  EXPECT_EQ(cell.RetiredCount(), 0u);
}

TEST(SnapshotCell, ManySimultaneousRefsOnOneThread) {
  SnapshotCell<Pair> cell(MakePair(5));
  std::vector<SnapshotCell<Pair>::ReadRef> refs;
  for (int i = 0; i < 16; ++i) {
    refs.push_back(cell.Read());  // Each claims its own slot.
  }
  for (const auto& ref : refs) {
    EXPECT_EQ(ref->a, 5u);
  }
}

// The use-after-free hunt: readers spin dereferencing while the writer
// churns versions. Any premature reclaim is a torn invariant here and a
// hard error under the asan/tsan presets.
TEST(SnapshotCell, ConcurrentReadersUnderWriterChurn) {
  SnapshotCell<Pair> cell(MakePair(0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&cell, &stop, &reads] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto ref = cell.Read();
        // Version consistency: both fields come from the same publish.
        ASSERT_EQ(ref->b, 2 * ref->a + 1);
        // Epoch monotonicity per reader.
        ASSERT_GE(ref.epoch(), last_epoch);
        last_epoch = ref.epoch();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::uint64_t i = 1; i <= 1000; ++i) {
    cell.Publish(MakePair(i));
    if (i % 64 == 0) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(cell.Epoch(), 1001u);
  // All readers released: one more publish must drain the retired backlog.
  cell.Publish(MakePair(1001));
  EXPECT_EQ(cell.RetiredCount(), 0u);
  EXPECT_EQ(cell.ReclaimedCount(), 1001u);
}

#ifndef NDEBUG

TEST(LockOrder, InOrderAcquisitionPasses) {
  LockOrderGuard module(LockRank::kModule);
  LockOrderGuard shard(LockRank::kQueueShard);
  LockOrderGuard control(LockRank::kControl);
  LockOrderGuard fate(LockRank::kFate);
}

TEST(LockOrder, OutOfOrderAcquisitionThrows) {
  LockOrderGuard control(LockRank::kControl);
  EXPECT_THROW(LockOrderGuard shard(LockRank::kQueueShard), CheckError);
  // The failed guard must not corrupt the stack: in-order still works.
  LockOrderGuard fate(LockRank::kFate);
}

TEST(LockOrder, EqualRankAcquisitionThrows) {
  // Two shard locks at once would deadlock against a sibling doing the same
  // in the opposite order; the hierarchy forbids holding two equal ranks.
  LockOrderGuard shard(LockRank::kQueueShard);
  EXPECT_THROW(LockOrderGuard sibling(LockRank::kQueueShard), CheckError);
}

TEST(LockOrder, ReleaseUnwindsTheStack) {
  {
    LockOrderGuard fate(LockRank::kFate);
  }
  LockOrderGuard module(LockRank::kModule);  // Fine: the stack is empty again.
}

#endif  // NDEBUG

// --- ControlPlane snapshot path --------------------------------------------

std::vector<ModuleState> WarmStates(int n, Rng* rng) {
  std::vector<ModuleState> states;
  for (int i = 0; i < n; ++i) {
    ModuleState s;
    s.module_id = i;
    s.batch_size = 8;
    s.batch_duration = 10 * kUsPerMs;
    s.avg_queue_delay = 2000.0;
    s.load_factor = 0.8;
    s.burstiness = 0.2;
    for (int j = 0; j < 512; ++j) {
      s.wait_samples.push_back(rng->Uniform(0.0, 10000.0));
    }
    std::sort(s.wait_samples.begin(), s.wait_samples.end());
    states.push_back(std::move(s));
  }
  return states;
}

TEST(ControlPlaneSnapshot, PardRunsLockFreeAndEpochAdvancesPerSync) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board(lv.NumModules());
  PardPolicy policy;
  ControlPlane control(&lv, &policy, &board);
  EXPECT_TRUE(control.LockFree());
  const std::uint64_t e0 = control.SnapshotEpoch();
  Rng rng(21);
  control.Sync(WarmStates(lv.NumModules(), &rng), kUsPerSec);
  EXPECT_EQ(control.SnapshotEpoch(), e0 + 1);
  control.Sync(WarmStates(lv.NumModules(), &rng), 2 * kUsPerSec);
  EXPECT_EQ(control.SnapshotEpoch(), e0 + 2);
}

// The snapshot read path must make the same drop decisions as the policy's
// locked path against the same published state — sharding may not change
// semantics, only contention. Pinned on the deterministic upper-bound wait
// mode: the sweet-spot Monte-Carlo term intentionally diverges bit-wise
// between the paths (the snapshot path refreshes from per-module forked
// streams, the locked path from the lazy shared stream — statistically
// equivalent, covered by estimator_test's refresh suite), so exact parity
// is only meaningful where the estimate is RNG-free.
TEST(ControlPlaneSnapshot, SnapshotDecisionsMatchLockedFallback) {
  const PipelineSpec lv = MakeLiveVideo();
  StateBoard board_free(lv.NumModules());
  StateBoard board_locked(lv.NumModules());
  PardOptions upper;
  upper.estimator.wait_mode = EstimatorOptions::WaitMode::kUpper;
  PardPolicy policy_free(upper);
  PardPolicy policy_locked(upper);
  ControlPlane::Options locked_options;
  locked_options.force_locked = true;
  ControlPlane free_plane(&lv, &policy_free, &board_free);
  ControlPlane locked_plane(&lv, &policy_locked, &board_locked, locked_options);
  ASSERT_TRUE(free_plane.LockFree());
  ASSERT_FALSE(locked_plane.LockFree());

  Rng rng_a(33);
  Rng rng_b(33);  // Identical streams -> identical published states.
  free_plane.Sync(WarmStates(lv.NumModules(), &rng_a), kUsPerSec);
  locked_plane.Sync(WarmStates(lv.NumModules(), &rng_b), kUsPerSec);

  Request req;
  req.id = 1;
  req.slo = lv.slo();
  req.hops.resize(static_cast<std::size_t>(lv.NumModules()));
  int drops = 0;
  for (int m = 0; m < lv.NumModules(); ++m) {
    for (Duration age = 0; age <= req.slo + 20 * kUsPerMs; age += 5 * kUsPerMs) {
      req.sent = kUsPerSec;
      req.deadline = req.sent + req.slo;
      const SimTime now = req.sent + age;
      AdmissionContext ctx;
      ctx.request = &req;
      ctx.module_id = m;
      ctx.now = now;
      ctx.batch_start = now;
      ctx.batch_duration = 10 * kUsPerMs;
      ctx.batch_size = 8;
      const bool snap = free_plane.ShouldDrop(ctx);
      const bool locked = locked_plane.ShouldDrop(ctx);
      EXPECT_EQ(snap, locked) << "module " << m << " age " << age;
      drops += snap ? 1 : 0;
      EXPECT_EQ(free_plane.ChoosePopSide(m, now), locked_plane.ChoosePopSide(m, now));
      EXPECT_EQ(free_plane.AdmitAtModule(req, m, now), locked_plane.AdmitAtModule(req, m, now));
    }
  }
  // The grid must exercise both outcomes, or the parity check is vacuous.
  EXPECT_GT(drops, 0);
}

}  // namespace
}  // namespace pard
